// Property fuzz for the fixed-point execution paths: random register
// programs (random op mix, offsets, constants — the moral extension of
// test_frontend_fuzz.cpp's random-input robustness to the execution layer)
// must evaluate identically through three independent routes:
//
//   1. the whole-frame integer row engine (Exec_engine::run_fixed),
//   2. the scalar integer tape (Fixed_tape::eval_point) applied per pixel,
//   3. the reference interpreter (run_fixed_raw) applied per pixel.
//
// Every trial derives from a printed seed, so a failure is reproducible by
// pinning that seed in a unit test.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "fuzz_env.hpp"
#include "grid/frame_ops.hpp"
#include "sim/exec_engine.hpp"
#include "sim/fixed_exec.hpp"
#include "sim/tape_lanes.hpp"
#include "support/prng.hpp"
#include "support/text.hpp"

namespace islhls {
namespace {

// Builds a random stencil step: 1-3 state fields (plus sometimes a const
// field — fdtd-style coupled multi-field updates included), each updated by
// a random expression over bounded-offset reads, constants and the full
// operator set (div/sqrt/select corners included). The simplifying
// constructors may fold parts away — that is the point: the surviving
// program shapes are exactly what the frontend can produce.
Stencil_step random_step(Prng& rng) {
    Stencil_step step;
    const int n_state = rng.next_int(1, 3);
    const int n_const = rng.next_int(0, 1);
    std::vector<int> fields;
    for (int s = 0; s < n_state; ++s) {
        fields.push_back(step.add_state_field(cat("s", s)));
    }
    for (int c = 0; c < n_const; ++c) {
        fields.push_back(step.add_const_field(cat("g", c)));
    }
    Expr_pool& pool = step.pool();

    std::function<Expr_id(int)> gen = [&](int depth) -> Expr_id {
        if (depth <= 0 || rng.next_int(0, 9) < 3) {
            if (rng.next_int(0, 3) == 0) {
                // Coarse constants keep folding interesting without making
                // every trial saturate instantly; whole-number constants
                // stress the integer-native program shapes (conway-style
                // compare/select tapes over exact small integers).
                if (rng.next_int(0, 1)) {
                    return pool.constant(
                        static_cast<double>(rng.next_int(-8, 8)));
                }
                return pool.constant(rng.next_in(-8.0, 8.0));
            }
            const int f = fields[static_cast<std::size_t>(
                rng.next_int(0, static_cast<int>(fields.size()) - 1))];
            // Offsets up to ±3 cover the zoo's widest (radius-2) windows
            // with one extra step of slack.
            return pool.input(f, rng.next_int(-3, 3), rng.next_int(-3, 3));
        }
        switch (rng.next_int(0, 12)) {
            case 0: return pool.add(gen(depth - 1), gen(depth - 1));
            case 1: return pool.sub(gen(depth - 1), gen(depth - 1));
            case 2: return pool.mul(gen(depth - 1), gen(depth - 1));
            case 3: return pool.div(gen(depth - 1), gen(depth - 1));
            case 4: return pool.min_of(gen(depth - 1), gen(depth - 1));
            case 5: return pool.max_of(gen(depth - 1), gen(depth - 1));
            case 6: return pool.neg(gen(depth - 1));
            case 7: return pool.abs_of(gen(depth - 1));
            case 8: return pool.sqrt_of(gen(depth - 1));
            case 9: return pool.less(gen(depth - 1), gen(depth - 1));
            case 10: return pool.less_equal(gen(depth - 1), gen(depth - 1));
            case 11: return pool.equal(gen(depth - 1), gen(depth - 1));
            default:
                return pool.select(gen(depth - 1), gen(depth - 1), gen(depth - 1));
        }
    };
    for (int s = 0; s < n_state; ++s) {
        step.set_update(cat("s", s), gen(rng.next_int(2, 4)));
    }
    return step;
}

const std::vector<Fixed_format>& fuzz_formats() {
    static const std::vector<Fixed_format> formats = {
        {10, 6}, {3, 2}, {5, 3}, {12, 4}};
    return formats;
}

constexpr Boundary kBoundaries[] = {Boundary::clamp, Boundary::zero,
                                    Boundary::mirror, Boundary::periodic};

TEST(Fixed_engine_fuzz, random_programs_agree_across_all_three_paths) {
    const int trials = 220 * fuzz::scale();
    const std::uint64_t base = fuzz::seed_base(0xF1C5ED00ULL);
    for (int trial = 0; trial < trials; ++trial) {
        const std::uint64_t seed = base + static_cast<std::uint64_t>(trial);
        Prng rng(seed);
        const Stencil_step step = random_step(rng);
        const Exec_engine engine(step);
        const Register_program& program = engine.program();
        const Compiled_program& cp = program.compiled();

        const int w = rng.next_int(1, 9);
        const int h = rng.next_int(1, 7);
        const Boundary b = kBoundaries[rng.next_int(0, 3)];
        const Fixed_format fmt =
            fuzz_formats()[static_cast<std::size_t>(rng.next_int(0, 3))];
        const int iterations = rng.next_int(1, 3);

        Frame_set initial(w, h);
        for (const std::string& name : step.state_fields()) {
            initial.add_field(name, make_noise(w, h, rng.next_u64(), -40.0, 296.0));
        }
        for (const std::string& name : step.const_fields()) {
            initial.add_field(name, make_noise(w, h, rng.next_u64(), -40.0, 296.0));
        }

        Exec_options options;
        options.threads = rng.next_int(0, 1) ? 2 : 1;
        options.tile_iterations = rng.next_int(0, 1) ? 2 : 1;
        options.band_rows = rng.next_int(1, 3);
        // Column panels and pinned budgets only reshape the schedule; the
        // raw words must not notice. Panel widths cover degenerate (1),
        // misaligned (3), lane-sized (kTapeLane > w, so the whole span) and
        // auto (0).
        const int panels[] = {0, 1, 3, kTapeLane};
        options.panel_cols = panels[rng.next_int(0, 3)];
        if (rng.next_int(0, 1)) {
            options.budgets.tile_bytes = 1;
            options.budgets.band_bytes = 1u << 10;
            options.budgets.panel_bytes = 1;
        }
        const Fixed_frame_result engine_out =
            engine.run_fixed(initial, iterations, b, fmt, options);

        // Per-pixel references: quantize once, then iterate pixel by pixel
        // through (a) run_fixed_raw and (b) Fixed_tape::eval_point.
        const Raw_quantizer quantize(fmt);
        const Fixed_tape tape(cp, fmt);
        std::vector<std::int64_t> slots(static_cast<std::size_t>(cp.slot_count()));
        const auto& ports = program.input_ports();
        std::vector<std::int64_t> inputs(ports.size());

        const std::size_t states = step.state_fields().size();
        std::vector<std::vector<std::int64_t>> raw;  // canonical field order
        std::vector<int> field_index(
            static_cast<std::size_t>(step.pool().field_count()), -1);
        {
            std::size_t i = 0;
            for (const std::string& name : step.state_fields()) {
                const Frame& f = initial.field(name);
                std::vector<std::int64_t> q(f.element_count());
                for (std::size_t j = 0; j < q.size(); ++j) q[j] = quantize(f.data()[j]);
                raw.push_back(std::move(q));
                field_index[static_cast<std::size_t>(step.pool().find_field(name))] =
                    static_cast<int>(i++);
            }
            for (const std::string& name : step.const_fields()) {
                const Frame& f = initial.field(name);
                std::vector<std::int64_t> q(f.element_count());
                for (std::size_t j = 0; j < q.size(); ++j) q[j] = quantize(f.data()[j]);
                raw.push_back(std::move(q));
                field_index[static_cast<std::size_t>(step.pool().find_field(name))] =
                    static_cast<int>(i++);
            }
        }
        std::vector<std::vector<std::int64_t>> raw_tape = raw;

        for (int it = 0; it < iterations; ++it) {
            std::vector<std::vector<std::int64_t>> next(states),
                next_tape(states);
            for (std::size_t s = 0; s < states; ++s) {
                next[s].assign(static_cast<std::size_t>(w) * h, 0);
                next_tape[s].assign(static_cast<std::size_t>(w) * h, 0);
            }
            for (int y = 0; y < h; ++y) {
                for (int x = 0; x < w; ++x) {
                    for (std::size_t i = 0; i < ports.size(); ++i) {
                        const int rx = resolve_coordinate(x + ports[i].dx, w, b);
                        const int ry = resolve_coordinate(y + ports[i].dy, h, b);
                        const int fi = field_index[static_cast<std::size_t>(
                            ports[i].field)];
                        inputs[i] =
                            (rx < 0 || ry < 0)
                                ? 0
                                : raw[static_cast<std::size_t>(fi)]
                                     [static_cast<std::size_t>(ry) * w + rx];
                    }
                    const std::vector<std::int64_t> out =
                        run_fixed_raw(program, inputs, fmt);
                    tape.eval_point(inputs.data(), slots.data());
                    for (std::size_t s = 0; s < states; ++s) {
                        next[s][static_cast<std::size_t>(y) * w + x] = out[s];
                        next_tape[s][static_cast<std::size_t>(y) * w + x] =
                            slots[static_cast<std::size_t>(cp.output_slots()[s])];
                    }
                }
            }
            for (std::size_t s = 0; s < states; ++s) {
                raw[s] = std::move(next[s]);
                raw_tape[s] = std::move(next_tape[s]);
            }
        }

        for (std::size_t i = 0; i < engine_out.names.size(); ++i) {
            ASSERT_EQ(0, std::memcmp(raw[i].data(), raw_tape[i].data(),
                                     raw[i].size() * sizeof(std::int64_t)))
                << "interpreter vs tape diverged: seed=" << seed << " field "
                << engine_out.names[i];
            ASSERT_EQ(0, std::memcmp(raw[i].data(), engine_out.raw[i].data(),
                                     raw[i].size() * sizeof(std::int64_t)))
                << "row engine vs interpreter diverged: seed=" << seed << " field "
                << engine_out.names[i] << " (" << w << "x" << h << " "
                << to_string(fmt) << " " << to_string(b) << " threads "
                << options.threads << " depth " << options.tile_iterations
                << " panel " << options.panel_cols << ")";
        }
    }
}

}  // namespace
}  // namespace islhls
