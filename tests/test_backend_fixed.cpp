#include <gtest/gtest.h>

#include <cmath>

#include "backend/fixed_point.hpp"
#include "support/prng.hpp"

namespace islhls {
namespace {

TEST(Fixed_point, format_metadata) {
    const Fixed_format q10_6{10, 6};
    EXPECT_EQ(q10_6.total_bits(), 16);
    EXPECT_EQ(q10_6.scale(), 64.0);
    EXPECT_EQ(q10_6.resolution(), 1.0 / 64.0);
    EXPECT_DOUBLE_EQ(q10_6.max_value(), (32768.0 - 1.0) / 64.0);
    EXPECT_DOUBLE_EQ(q10_6.min_value(), -32768.0 / 64.0);
    EXPECT_EQ(to_string(q10_6), "Q10.6");
}

TEST(Fixed_point, exact_values_round_trip) {
    const Fixed_format fmt{8, 8};
    for (double v : {0.0, 1.0, -1.0, 0.5, -0.25, 127.99609375, -128.0}) {
        EXPECT_EQ(quantize(v, fmt), v) << v;
    }
}

TEST(Fixed_point, rounding_to_nearest) {
    const Fixed_format fmt{8, 2};  // resolution 0.25
    EXPECT_EQ(quantize(0.3, fmt), 0.25);
    EXPECT_EQ(quantize(0.4, fmt), 0.5);
    EXPECT_EQ(quantize(-0.3, fmt), -0.25);
    // Ties to even (nearbyint default rounding).
    EXPECT_EQ(quantize(0.125, fmt), 0.0);
    EXPECT_EQ(quantize(0.375, fmt), 0.5);
}

TEST(Fixed_point, saturation_at_range_ends) {
    const Fixed_format fmt{4, 4};  // range [-8, 7.9375]
    EXPECT_EQ(quantize(100.0, fmt), fmt.max_value());
    EXPECT_EQ(quantize(-100.0, fmt), fmt.min_value());
    EXPECT_EQ(to_raw(100.0, fmt), 127);
    EXPECT_EQ(to_raw(-100.0, fmt), -128);
}

TEST(Fixed_point, raw_conversion_is_scaling) {
    const Fixed_format fmt{10, 6};
    EXPECT_EQ(to_raw(1.0, fmt), 64);
    EXPECT_EQ(to_raw(-2.5, fmt), -160);
    EXPECT_EQ(from_raw(64, fmt), 1.0);
    EXPECT_EQ(from_raw(-160, fmt), -2.5);
}

// Property: quantization error is bounded by half an LSB inside the range.
class Quantize_property : public ::testing::TestWithParam<Fixed_format> {};

TEST_P(Quantize_property, error_within_half_lsb) {
    const Fixed_format fmt = GetParam();
    Prng rng(404);
    const double lo = fmt.min_value();
    const double hi = fmt.max_value();
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.next_in(lo, hi);
        const double q = quantize(v, fmt);
        EXPECT_LE(std::fabs(q - v), fmt.resolution() / 2.0 + 1e-15);
        // Idempotence.
        EXPECT_EQ(quantize(q, fmt), q);
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, Quantize_property,
                         ::testing::Values(Fixed_format{8, 8}, Fixed_format{10, 6},
                                           Fixed_format{4, 12}, Fixed_format{12, 4},
                                           Fixed_format{6, 2}),
                         [](const auto& info) {
                             std::string name = "Q";
                             name += std::to_string(info.param.integer_bits);
                             name += "_";
                             name += std::to_string(info.param.frac_bits);
                             return name;
                         });

}  // namespace
}  // namespace islhls
