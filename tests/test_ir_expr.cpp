// Hash-consing and the simplifying constructors — the foundation of the
// register-reuse property.
#include <gtest/gtest.h>

#include "ir/expr.hpp"
#include "ir/print.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

class Expr_fixture : public ::testing::Test {
protected:
    Expr_pool pool;
    int u = -1;
    Expr_id a = no_expr, b = no_expr, c = no_expr;

    void SetUp() override {
        u = pool.intern_field("u");
        a = pool.input(u, -1, 0);
        b = pool.input(u, 1, 0);
        c = pool.input(u, 0, 1);
    }
};

TEST_F(Expr_fixture, hash_consing_dedupes_structurally_equal_nodes) {
    const Expr_id s1 = pool.add(a, b);
    const Expr_id s2 = pool.add(a, b);
    EXPECT_EQ(s1, s2);
    const Expr_id t1 = pool.mul(s1, c);
    const Expr_id t2 = pool.mul(pool.add(a, b), c);
    EXPECT_EQ(t1, t2);
}

TEST_F(Expr_fixture, commutative_canonicalization_shares_registers) {
    EXPECT_EQ(pool.add(a, b), pool.add(b, a));
    EXPECT_EQ(pool.mul(a, b), pool.mul(b, a));
    EXPECT_EQ(pool.min_of(a, b), pool.min_of(b, a));
    EXPECT_EQ(pool.max_of(a, b), pool.max_of(b, a));
    // sub and div are not commutative.
    EXPECT_NE(pool.sub(a, b), pool.sub(b, a));
    EXPECT_NE(pool.div(a, b), pool.div(b, a));
}

TEST_F(Expr_fixture, constant_folding) {
    const Expr_id two = pool.constant(2.0);
    const Expr_id three = pool.constant(3.0);
    EXPECT_EQ(pool.add(two, three), pool.constant(5.0));
    EXPECT_EQ(pool.sub(two, three), pool.constant(-1.0));
    EXPECT_EQ(pool.mul(two, three), pool.constant(6.0));
    EXPECT_EQ(pool.div(three, two), pool.constant(1.5));
    EXPECT_EQ(pool.min_of(two, three), two);
    EXPECT_EQ(pool.max_of(two, three), three);
    EXPECT_EQ(pool.sqrt_of(pool.constant(9.0)), pool.constant(3.0));
    EXPECT_EQ(pool.abs_of(pool.constant(-4.0)), pool.constant(4.0));
    EXPECT_EQ(pool.neg(pool.constant(4.0)), pool.constant(-4.0));
    EXPECT_EQ(pool.less(two, three), pool.constant(1.0));
    EXPECT_EQ(pool.less_equal(three, two), pool.constant(0.0));
    EXPECT_EQ(pool.equal(two, two), pool.constant(1.0));
}

TEST_F(Expr_fixture, identity_simplifications) {
    const Expr_id zero = pool.constant(0.0);
    const Expr_id one = pool.constant(1.0);
    EXPECT_EQ(pool.add(a, zero), a);
    EXPECT_EQ(pool.add(zero, a), a);
    EXPECT_EQ(pool.sub(a, zero), a);
    EXPECT_EQ(pool.sub(a, a), zero);
    EXPECT_EQ(pool.mul(a, one), a);
    EXPECT_EQ(pool.mul(one, a), a);
    EXPECT_EQ(pool.mul(a, zero), zero);
    EXPECT_EQ(pool.div(a, one), a);
    EXPECT_EQ(pool.div(zero, a), zero);
    EXPECT_EQ(pool.min_of(a, a), a);
    EXPECT_EQ(pool.max_of(a, a), a);
    EXPECT_EQ(pool.neg(pool.neg(a)), a);
    EXPECT_EQ(pool.abs_of(pool.abs_of(a)), pool.abs_of(a));
    EXPECT_EQ(pool.abs_of(pool.neg(a)), pool.abs_of(a));
    EXPECT_EQ(pool.sub(zero, a), pool.neg(a));
}

TEST_F(Expr_fixture, select_simplifications) {
    const Expr_id cond = pool.less(a, b);
    EXPECT_EQ(pool.select(pool.constant(1.0), a, b), a);
    EXPECT_EQ(pool.select(pool.constant(0.0), a, b), b);
    EXPECT_EQ(pool.select(cond, a, a), a);
    const Expr_id sel = pool.select(cond, a, b);
    EXPECT_EQ(pool.node(sel).kind, Op_kind::select);
}

TEST_F(Expr_fixture, comparisons_of_identical_operands_fold) {
    EXPECT_EQ(pool.less(a, a), pool.constant(0.0));
    EXPECT_EQ(pool.less_equal(a, a), pool.constant(1.0));
    EXPECT_EQ(pool.equal(a, a), pool.constant(1.0));
}

TEST_F(Expr_fixture, negative_zero_constants_stay_distinct) {
    // The pool distinguishes the two zero bit patterns...
    EXPECT_NE(pool.constant(0.0), pool.constant(-0.0));
    // ...but x + (-0.0) == x holds bit-exactly in IEEE-754 for every x
    // (including both zeros), so the identity fold still applies.
    EXPECT_EQ(pool.add(a, pool.constant(-0.0)), a);
}

TEST_F(Expr_fixture, field_interning) {
    EXPECT_EQ(pool.find_field("u"), u);
    EXPECT_EQ(pool.find_field("nope"), -1);
    const int g = pool.intern_field("g");
    EXPECT_NE(g, u);
    EXPECT_EQ(pool.intern_field("g"), g);
    EXPECT_EQ(pool.field_name(g), "g");
    EXPECT_EQ(pool.field_count(), 2);
}

TEST_F(Expr_fixture, input_leaves_distinct_by_offset_and_field) {
    EXPECT_NE(a, b);
    EXPECT_NE(pool.input(u, 0, 0), pool.input(u, 0, 1));
    const int g = pool.intern_field("g");
    EXPECT_NE(pool.input(u, 0, 0), pool.input(g, 0, 0));
    EXPECT_EQ(pool.input(u, -1, 0), a);
}

TEST_F(Expr_fixture, generic_dispatch_simplifies_like_named_ctors) {
    const Expr_id zero = pool.constant(0.0);
    EXPECT_EQ(pool.binary(Op_kind::add, a, zero), a);
    EXPECT_EQ(pool.unary(Op_kind::neg, pool.neg(a)), a);
    EXPECT_THROW(pool.binary(Op_kind::neg, a, b), Internal_error);
    EXPECT_THROW(pool.unary(Op_kind::add, a), Internal_error);
}

TEST_F(Expr_fixture, arity_and_kind_metadata) {
    EXPECT_EQ(arity(Op_kind::constant), 0);
    EXPECT_EQ(arity(Op_kind::neg), 1);
    EXPECT_EQ(arity(Op_kind::add), 2);
    EXPECT_EQ(arity(Op_kind::select), 3);
    EXPECT_TRUE(is_operation(Op_kind::sqrt_op));
    EXPECT_FALSE(is_operation(Op_kind::input));
    EXPECT_TRUE(is_commutative(Op_kind::mul));
    EXPECT_FALSE(is_commutative(Op_kind::sub));
    EXPECT_EQ(to_string(Op_kind::min_op), "min");
}

TEST_F(Expr_fixture, printer_renders_infix_and_sexpr) {
    const Expr_id e = pool.mul(pool.add(a, b), pool.constant(0.5));
    const std::string infix = to_infix(pool, e);
    EXPECT_NE(infix.find("u[-1,0]"), std::string::npos);
    EXPECT_NE(infix.find("+"), std::string::npos);
    const std::string sexpr = to_sexpr(pool, e);
    EXPECT_EQ(sexpr.find("(mul"), 0u);
}

TEST_F(Expr_fixture, transform_inputs_substitutes_and_resimplifies) {
    // (a + 0-const-leaf-replacement) collapses when leaves map to constants.
    const Expr_id e = pool.add(pool.mul(a, pool.constant(2.0)), b);
    const Expr_id r = transform_inputs(pool, e, [&](const Expr_node& leaf) {
        return pool.constant(leaf.dx == -1 ? 3.0 : 4.0);
    });
    EXPECT_EQ(r, pool.constant(10.0));
}

TEST_F(Expr_fixture, transform_inputs_preserves_sharing) {
    const Expr_id shared = pool.add(a, b);
    const Expr_id e = pool.mul(shared, pool.add(shared, c));
    const std::size_t before = pool.size();
    // Identity transform: nothing new should be created.
    const Expr_id r = transform_inputs(pool, e, [&](const Expr_node& leaf) {
        return pool.input(leaf.field, leaf.dx, leaf.dy);
    });
    EXPECT_EQ(r, e);
    EXPECT_EQ(pool.size(), before);
}

}  // namespace
}  // namespace islhls
