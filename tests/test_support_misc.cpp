// Table rendering, PRNG determinism and the logging threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "support/cache_info.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace islhls {
namespace {

TEST(Table, renders_aligned_columns) {
    Table t({"a", "long_header"});
    t.add(1, "x");
    t.add(22, "yy");
    const std::string text = t.to_text();
    EXPECT_NE(text.find("a  long_header"), std::string::npos);
    EXPECT_NE(text.find("1            x"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
    EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, rejects_wrong_arity_rows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), Internal_error);
    EXPECT_THROW(t.add(1, 2, 3), Internal_error);
}

TEST(Table, csv_escapes_delimiters_and_quotes) {
    Table t({"name", "value"});
    t.add("with,comma", "say \"hi\"");
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, csv_round_numbers_plain) {
    Table t({"v"});
    t.add(42);
    EXPECT_EQ(t.to_csv(), "v\n42\n");
}

TEST(Prng, same_seed_same_stream) {
    Prng a(7);
    Prng b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, different_seeds_differ) {
    Prng a(7);
    Prng b(8);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Prng, unit_range_and_mean) {
    Prng rng(123);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.next_unit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, int_range_inclusive) {
    Prng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.next_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.next_int(3, 2), Internal_error);
}

TEST(Prng, gaussian_moments) {
    Prng rng(77);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Log, threshold_round_trip) {
    const Log_level before = log_threshold();
    set_log_threshold(Log_level::error);
    EXPECT_EQ(log_threshold(), Log_level::error);
    log_debug("suppressed");  // must not crash; nothing asserted on output
    set_log_threshold(before);
}

TEST(Cache_info, probe_is_sane_and_stable) {
    const Cache_topology& t = cache_topology();
    // Every level is filled (probe or fallback), the struct normalizes
    // llc >= l2, and the one-shot probe hands back the same object forever.
    EXPECT_GE(t.l1d_bytes, 1u * 1024);
    EXPECT_GE(t.l2_bytes, t.l1d_bytes / 8);
    EXPECT_GE(t.llc_bytes, t.l2_bytes);
    EXPECT_EQ(&t, &cache_topology());
    const std::string text = to_string(t);
    EXPECT_NE(text.find("L1d"), std::string::npos);
    EXPECT_NE(text.find("LLC"), std::string::npos);
    EXPECT_NE(text.find(t.probed ? "probed" : "fallback"), std::string::npos);
}

}  // namespace
}  // namespace islhls
