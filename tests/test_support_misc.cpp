// Table rendering, PRNG determinism and the logging threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "support/cache_info.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "support/prng.hpp"
#include "support/table.hpp"

namespace islhls {
namespace {

TEST(Table, renders_aligned_columns) {
    Table t({"a", "long_header"});
    t.add(1, "x");
    t.add(22, "yy");
    const std::string text = t.to_text();
    EXPECT_NE(text.find("a  long_header"), std::string::npos);
    EXPECT_NE(text.find("1            x"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
    EXPECT_EQ(t.column_count(), 2u);
}

TEST(Table, rejects_wrong_arity_rows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), Internal_error);
    EXPECT_THROW(t.add(1, 2, 3), Internal_error);
}

TEST(Table, csv_escapes_delimiters_and_quotes) {
    Table t({"name", "value"});
    t.add("with,comma", "say \"hi\"");
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, csv_round_numbers_plain) {
    Table t({"v"});
    t.add(42);
    EXPECT_EQ(t.to_csv(), "v\n42\n");
}

TEST(Prng, same_seed_same_stream) {
    Prng a(7);
    Prng b(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, different_seeds_differ) {
    Prng a(7);
    Prng b(8);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Prng, unit_range_and_mean) {
    Prng rng(123);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.next_unit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Prng, int_range_inclusive) {
    Prng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.next_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.next_int(3, 2), Internal_error);
}

TEST(Prng, gaussian_moments) {
    Prng rng(77);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.next_gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Log, threshold_round_trip) {
    const Log_level before = log_threshold();
    set_log_threshold(Log_level::error);
    EXPECT_EQ(log_threshold(), Log_level::error);
    log_debug("suppressed");  // must not crash; nothing asserted on output
    set_log_threshold(before);
}

TEST(Cache_info, probe_is_sane_and_stable) {
    const Cache_topology& t = cache_topology();
    // Every level is filled (probe or fallback), the struct normalizes
    // llc >= l2, and the one-shot probe hands back the same object forever.
    EXPECT_GE(t.l1d_bytes, 1u * 1024);
    EXPECT_GE(t.l2_bytes, t.l1d_bytes / 8);
    EXPECT_GE(t.llc_bytes, t.l2_bytes);
    // The clamp only ever shrinks the raw probe, and records when it did.
    EXPECT_GE(t.raw_llc_bytes, t.llc_bytes);
    EXPECT_EQ(t.llc_clamped, t.llc_bytes < t.raw_llc_bytes);
    EXPECT_EQ(&t, &cache_topology());
    const std::string text = to_string(t);
    EXPECT_NE(text.find("L1d"), std::string::npos);
    EXPECT_NE(text.find("LLC"), std::string::npos);
    EXPECT_NE(text.find(t.probed ? "probed" : "fallback"), std::string::npos);
    if (t.llc_clamped) {
        EXPECT_NE(text.find("clamped from"), std::string::npos);
    }
}

TEST(Cache_info, cpu_list_counting) {
    EXPECT_EQ(count_cpu_list("0"), 1);
    EXPECT_EQ(count_cpu_list("0-3"), 4);
    EXPECT_EQ(count_cpu_list("0-3,8-11"), 8);
    EXPECT_EQ(count_cpu_list("0,2,4"), 3);
    EXPECT_EQ(count_cpu_list("0-63\n"), 64);
    // Malformed lists count as unknown, never as a partial number.
    EXPECT_EQ(count_cpu_list(""), 0);
    EXPECT_EQ(count_cpu_list("0-"), 0);
    EXPECT_EQ(count_cpu_list("3-1"), 0);
    EXPECT_EQ(count_cpu_list("0,,2"), 0);
    EXPECT_EQ(count_cpu_list("abc"), 0);
}

TEST(Cache_info, llc_clamp_arithmetic) {
    constexpr std::size_t kMiB = 1024u * 1024;
    // The CI-container bug this fixes: a 1-vCPU cgroup on a 64-core host
    // with a 260 MiB shared LLC must not budget 260 MiB of tiles.
    EXPECT_EQ(clamp_llc_bytes(260 * kMiB, 2 * kMiB, 0, 64, 1),
              260 * kMiB / 64);
    // A cgroup memory limit caps the budget at half the limit.
    EXPECT_EQ(clamp_llc_bytes(260 * kMiB, 2 * kMiB, 64 * kMiB, 64, 64),
              32 * kMiB);
    // Both clamps: the tighter one wins.
    EXPECT_EQ(clamp_llc_bytes(260 * kMiB, 2 * kMiB, 64 * kMiB, 64, 1),
              260 * kMiB / 64);
    // Unknown inputs clamp nothing.
    EXPECT_EQ(clamp_llc_bytes(32 * kMiB, 2 * kMiB, 0, 0, 0), 32 * kMiB);
    // All cpus online: no per-core cut on bare metal.
    EXPECT_EQ(clamp_llc_bytes(32 * kMiB, 2 * kMiB, 0, 16, 16), 32 * kMiB);
    // The floor: the budget never drops below L2...
    EXPECT_EQ(clamp_llc_bytes(260 * kMiB, 4 * kMiB, 0, 256, 1), 4 * kMiB);
    EXPECT_EQ(clamp_llc_bytes(260 * kMiB, 4 * kMiB, 1 * kMiB, 64, 64), 4 * kMiB);
    // ...but also never exceeds the probe, even when L2 tables are weird.
    EXPECT_EQ(clamp_llc_bytes(3 * kMiB, 4 * kMiB, 0, 256, 1), 3 * kMiB);
}

TEST(Cache_info, llc_budget_respects_the_cgroup_allowance) {
    // Sanity on the machine actually running the tests: wherever a cgroup
    // memory limit is readable, the probed budget must fit inside it (half
    // the limit, floored at L2) — the exec engine sizes tile working sets
    // from llc_bytes, and a budget above the allowance invites the OOM
    // killer on CI runners.
    std::size_t limit = 0;
    for (const char* path : {"/sys/fs/cgroup/memory.max",
                             "/sys/fs/cgroup/memory/memory.limit_in_bytes"}) {
        std::ifstream in(path);
        std::string text;
        if (!in || !std::getline(in, text) || text.empty() || text == "max") {
            continue;
        }
        const unsigned long long value = std::strtoull(text.c_str(), nullptr, 10);
        if (value == 0 || value >= (1ull << 60)) continue;
        limit = static_cast<std::size_t>(value);
        break;
    }
    if (limit == 0) {
        GTEST_SKIP() << "no cgroup memory limit on this host";
    }
    const Cache_topology& t = cache_topology();
    EXPECT_LE(t.llc_bytes, std::max(limit / 2, t.l2_bytes));
}

}  // namespace
}  // namespace islhls
