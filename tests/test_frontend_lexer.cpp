#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

std::vector<Token> lex(const std::string& src) { return tokenize(src); }

TEST(Lexer, identifiers_keywords_numbers) {
    const auto tokens = lex("void f(float x) { int y1 = 42; }");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_TRUE(tokens[0].is(Token_kind::keyword, "void"));
    EXPECT_TRUE(tokens[1].is(Token_kind::identifier, "f"));
    bool saw_42 = false;
    for (const Token& t : tokens) {
        if (t.kind == Token_kind::number && t.number_value == 42.0) {
            EXPECT_TRUE(t.is_integer);
            saw_42 = true;
        }
    }
    EXPECT_TRUE(saw_42);
    EXPECT_TRUE(tokens.back().is(Token_kind::end_of_input));
}

TEST(Lexer, float_literals_with_suffix_and_exponent) {
    const auto tokens = lex("0.25f 1e3 2.5E-2 .5 7f");
    ASSERT_GE(tokens.size(), 5u);
    EXPECT_DOUBLE_EQ(tokens[0].number_value, 0.25);
    EXPECT_FALSE(tokens[0].is_integer);
    EXPECT_DOUBLE_EQ(tokens[1].number_value, 1000.0);
    EXPECT_FALSE(tokens[1].is_integer);
    EXPECT_DOUBLE_EQ(tokens[2].number_value, 0.025);
    EXPECT_DOUBLE_EQ(tokens[3].number_value, 0.5);
    // "7f" lexes as 7 with the float suffix.
    EXPECT_DOUBLE_EQ(tokens[4].number_value, 7.0);
    EXPECT_FALSE(tokens[4].is_integer);
}

TEST(Lexer, two_char_operators) {
    const auto tokens = lex("<= >= == != && || += -= *= /= ++ --");
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        EXPECT_EQ(tokens[i].kind, Token_kind::op) << i;
        EXPECT_EQ(tokens[i].text.size(), 2u) << i;
    }
}

TEST(Lexer, comments_are_skipped) {
    const auto tokens = lex("a // line comment\n b /* block\n comment */ c");
    ASSERT_EQ(tokens.size(), 4u);  // a b c eof
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[2].text, "c");
}

TEST(Lexer, locations_are_tracked) {
    const auto tokens = lex("a\n  b");
    EXPECT_EQ(tokens[0].loc.line, 1);
    EXPECT_EQ(tokens[0].loc.column, 1);
    EXPECT_EQ(tokens[1].loc.line, 2);
    EXPECT_EQ(tokens[1].loc.column, 3);
}

TEST(Lexer, define_substitutes_numeric_literal) {
    const auto tokens = lex("#define TAU 0.25\nx = TAU;");
    bool found = false;
    for (const Token& t : tokens) {
        if (t.kind == Token_kind::number) {
            EXPECT_DOUBLE_EQ(t.number_value, 0.25);
            found = true;
        }
        EXPECT_NE(t.text, "TAU");
    }
    EXPECT_TRUE(found);
}

TEST(Lexer, rejects_bad_input) {
    EXPECT_THROW(lex("a @ b"), Parse_error);
    EXPECT_THROW(lex("/* unterminated"), Parse_error);
    EXPECT_THROW(lex("1e+"), Parse_error);
    EXPECT_THROW(lex("#include <x>"), Parse_error);
    EXPECT_THROW(lex("#define X y"), Parse_error);  // non-numeric value
}

TEST(Lexer, error_carries_location) {
    try {
        lex("ok\n   @");
        FAIL() << "expected Parse_error";
    } catch (const Parse_error& e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_EQ(e.column(), 4);
    }
}

}  // namespace
}  // namespace islhls
