// DAG analyses, register programs and evaluation equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/analysis.hpp"
#include "ir/eval.hpp"
#include "ir/expr.hpp"
#include "ir/program.hpp"
#include "support/prng.hpp"

namespace islhls {
namespace {

class Ir_fixture : public ::testing::Test {
protected:
    Expr_pool pool;
    int u = -1;

    void SetUp() override { u = pool.intern_field("u"); }

    Expr_id in(int dx, int dy) { return pool.input(u, dx, dy); }
};

TEST_F(Ir_fixture, census_counts_unique_nodes_once) {
    const Expr_id shared = pool.add(in(0, 0), in(1, 0));
    const Expr_id e = pool.mul(shared, shared);  // mul(x, x) — one mul, one add
    const Op_census census = count_ops(pool, {e});
    EXPECT_EQ(census.count(Op_kind::add), 1);
    EXPECT_EQ(census.count(Op_kind::mul), 1);
    EXPECT_EQ(census.operation_count, 2);
    EXPECT_EQ(census.input_count, 2);
    EXPECT_EQ(census.constant_count, 0);
}

TEST_F(Ir_fixture, depth_is_longest_operand_chain) {
    EXPECT_EQ(dag_depth(pool, {in(0, 0)}), 0);
    const Expr_id s1 = pool.add(in(0, 0), in(1, 0));
    EXPECT_EQ(dag_depth(pool, {s1}), 1);
    const Expr_id s2 = pool.add(s1, in(2, 0));
    const Expr_id s3 = pool.mul(s2, s1);
    EXPECT_EQ(dag_depth(pool, {s3}), 3);
}

TEST_F(Ir_fixture, support_is_sorted_and_unique) {
    const Expr_id e =
        pool.add(pool.add(in(-1, 2), in(3, -1)), pool.mul(in(-1, 2), in(0, 0)));
    const auto support = input_support(pool, {e});
    ASSERT_EQ(support.size(), 3u);
    EXPECT_TRUE(std::is_sorted(support.begin(), support.end()));
}

TEST_F(Ir_fixture, footprint_from_support) {
    const Expr_id e = pool.add(in(-2, 1), in(3, -1));
    const Footprint fp = support_footprint(pool, {e});
    EXPECT_EQ(fp, (Footprint{2, 3, 1, 1}));
    EXPECT_EQ(support_footprint(pool, {pool.constant(1.0)}), (Footprint{}));
}

TEST_F(Ir_fixture, reachable_nodes_topologically_ordered) {
    const Expr_id s = pool.add(in(0, 0), in(1, 0));
    const Expr_id e = pool.mul(s, pool.constant(2.0));
    const auto order = reachable_nodes(pool, {e});
    // Every operand appears before its user.
    std::vector<int> position(pool.size(), -1);
    for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = static_cast<int>(i);
    for (Expr_id id : order) {
        const Expr_node& n = pool.node(id);
        for (int a = 0; a < n.arg_count(); ++a) {
            EXPECT_LT(position[n.args[static_cast<std::size_t>(a)]], position[id]);
        }
    }
}

TEST_F(Ir_fixture, program_register_count_excludes_leaves) {
    const Expr_id e = pool.mul(pool.add(in(0, 0), in(1, 0)), pool.constant(0.5));
    const Register_program prog = build_program(pool, {e});
    EXPECT_EQ(prog.register_count(), 2);  // add + mul
    EXPECT_EQ(prog.input_count(), 2);
    EXPECT_EQ(prog.constant_count(), 1);
    EXPECT_EQ(prog.depth(), 2);
    EXPECT_EQ(prog.outputs().size(), 1u);
}

TEST_F(Ir_fixture, program_run_matches_direct_evaluation) {
    // Build a nontrivial expression with every operator.
    const Expr_id x = in(0, 0);
    const Expr_id y = in(1, 0);
    const Expr_id z = in(0, 1);
    const Expr_id e = pool.select(
        pool.less(x, y),
        pool.div(pool.add(pool.mul(x, y), pool.sqrt_of(pool.abs_of(z))),
                 pool.max_of(y, pool.constant(0.25))),
        pool.sub(pool.min_of(x, z), pool.neg(y)));
    const Register_program prog = build_program(pool, {e});

    Prng rng(2024);
    for (int trial = 0; trial < 200; ++trial) {
        double vals[3] = {rng.next_in(-10, 10), rng.next_in(-10, 10),
                          rng.next_in(-10, 10)};
        auto resolve = [&](int, int dx, int dy) {
            if (dx == 0 && dy == 0) return vals[0];
            if (dx == 1) return vals[1];
            return vals[2];
        };
        const double direct = evaluate(pool, e, resolve);
        std::vector<double> inputs;
        for (const auto& port : prog.input_ports()) {
            inputs.push_back(resolve(port.field, port.dx, port.dy));
        }
        const double via_program = prog.run(inputs)[0];
        EXPECT_EQ(direct, via_program) << "trial " << trial;
    }
}

TEST_F(Ir_fixture, evaluate_many_shares_common_subtrees) {
    const Expr_id s = pool.add(in(0, 0), in(1, 0));
    const Expr_id e1 = pool.mul(s, pool.constant(2.0));
    const Expr_id e2 = pool.mul(s, pool.constant(3.0));
    int resolver_calls = 0;
    auto resolve = [&](int, int, int) {
        ++resolver_calls;
        return 1.0;
    };
    const auto out = evaluate_many(pool, {e1, e2}, resolve);
    EXPECT_EQ(out[0], 4.0);
    EXPECT_EQ(out[1], 6.0);
    EXPECT_EQ(resolver_calls, 2);  // each distinct input resolved exactly once
}

TEST_F(Ir_fixture, apply_op_semantics) {
    const double ab[2] = {3.0, -4.0};
    EXPECT_EQ(apply_op(Op_kind::add, ab), -1.0);
    EXPECT_EQ(apply_op(Op_kind::sub, ab), 7.0);
    EXPECT_EQ(apply_op(Op_kind::mul, ab), -12.0);
    EXPECT_EQ(apply_op(Op_kind::min_op, ab), -4.0);
    EXPECT_EQ(apply_op(Op_kind::max_op, ab), 3.0);
    EXPECT_EQ(apply_op(Op_kind::lt, ab), 0.0);
    EXPECT_EQ(apply_op(Op_kind::le, ab), 0.0);
    EXPECT_EQ(apply_op(Op_kind::eq, ab), 0.0);
    const double sel_true[3] = {2.0, 10.0, 20.0};
    const double sel_false[3] = {0.0, 10.0, 20.0};
    EXPECT_EQ(apply_op(Op_kind::select, sel_true), 10.0);
    EXPECT_EQ(apply_op(Op_kind::select, sel_false), 20.0);
}

// Randomized DAG property: program lowering preserves evaluation for any DAG
// built from random operations.
class Random_dag : public ::testing::TestWithParam<int> {};

TEST_P(Random_dag, lowering_preserves_semantics) {
    Expr_pool pool;
    const int u = pool.intern_field("u");
    Prng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<Expr_id> nodes;
    for (int dx = -2; dx <= 2; ++dx) nodes.push_back(pool.input(u, dx, 0));
    nodes.push_back(pool.constant(0.5));
    nodes.push_back(pool.constant(2.0));
    for (int step = 0; step < 40; ++step) {
        const Expr_id a = nodes[static_cast<std::size_t>(
            rng.next_int(0, static_cast<int>(nodes.size()) - 1))];
        const Expr_id b = nodes[static_cast<std::size_t>(
            rng.next_int(0, static_cast<int>(nodes.size()) - 1))];
        switch (rng.next_int(0, 5)) {
            case 0: nodes.push_back(pool.add(a, b)); break;
            case 1: nodes.push_back(pool.sub(a, b)); break;
            case 2: nodes.push_back(pool.mul(a, b)); break;
            case 3: nodes.push_back(pool.min_of(a, b)); break;
            case 4: nodes.push_back(pool.max_of(a, b)); break;
            default: nodes.push_back(pool.abs_of(a)); break;
        }
    }
    const std::vector<Expr_id> roots{nodes.back(), nodes[nodes.size() / 2]};
    const Register_program prog = build_program(pool, roots);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> cell(5);
        for (double& v : cell) v = rng.next_in(-4.0, 4.0);
        auto resolve = [&](int, int dx, int) { return cell[static_cast<std::size_t>(dx + 2)]; };
        const auto direct = evaluate_many(pool, roots, resolve);
        std::vector<double> inputs;
        for (const auto& port : prog.input_ports()) {
            inputs.push_back(resolve(port.field, port.dx, port.dy));
        }
        const auto lowered = prog.run(inputs);
        ASSERT_EQ(direct.size(), lowered.size());
        for (std::size_t i = 0; i < direct.size(); ++i) EXPECT_EQ(direct[i], lowered[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random_dag, ::testing::Range(1, 11));

}  // namespace
}  // namespace islhls
