// Cross-validation: the analytical evaluator and the functional simulator
// describe the same machine. The throughput model's per-window execution
// counts, cone input volumes and off-chip traffic (Sec. 3.3 quantities) must
// equal what the architecture simulator actually measures while computing a
// frame — otherwise the DSE ranks designs with numbers the hardware wouldn't
// produce.
#include <gtest/gtest.h>

#include <numeric>

#include "dse/evaluator.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "symexec/executor.hpp"
#include "kernels/kernels.hpp"

namespace islhls {
namespace {

struct Case {
    const char* kernel;
    int window;
    std::vector<int> levels;
    int frame_w;
    int frame_h;
};

class Model_vs_sim : public ::testing::TestWithParam<Case> {};

TEST_P(Model_vs_sim, traffic_accounting_agrees) {
    const Case& c = GetParam();
    const Kernel_def& kernel = kernel_by_name(c.kernel);
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);

    Arch_instance instance;
    instance.window = c.window;
    instance.level_depths = c.levels;
    for (int d : instance.depth_classes()) instance.cores_per_depth[d] = 1;

    // Analytical side.
    Evaluator_options options;
    options.frame_width = c.frame_w;
    options.frame_height = c.frame_h;
    Arch_evaluator evaluator(library, device_by_name("xc6vlx760"), options);
    const Arch_evaluation eval = evaluator.evaluate(instance);
    ASSERT_TRUE(eval.feasible) << eval.infeasible_reason;

    // Functional side.
    const Frame content = make_synthetic_scene(c.frame_w, c.frame_h, 31);
    const Frame_set initial = kernel.make_initial(content);
    Arch_sim_options sim_options;
    sim_options.boundary = kernel.boundary;
    const Arch_sim_result sim =
        simulate_architecture(library, instance, initial, sim_options);

    // Window count.
    EXPECT_EQ(sim.stats.output_windows, eval.windows_per_frame);

    // Cone executions per window: reconstruct the model's level loads.
    const Coverage cov =
        level_coverages(c.window, c.levels, library.step().footprint());
    long long model_execs = 0;
    long long model_reads = 0;
    for (std::size_t k = 1; k <= c.levels.size(); ++k) {
        const long long execs = executions_for_level(cov, k, c.window);
        model_execs += execs;
        model_reads +=
            execs * library.stats(c.window, c.levels[k - 1]).input_count;
    }
    EXPECT_EQ(sim.stats.cone_executions,
              model_execs * eval.windows_per_frame);
    EXPECT_EQ(sim.stats.onchip_elements_read,
              model_reads * eval.windows_per_frame);

    // Off-chip reads: input coverage times fields, once per window.
    const int fields = library.step().pool().field_count();
    const long long per_window_in =
        static_cast<long long>(cov.width[0]) * cov.height[0] * fields;
    EXPECT_EQ(sim.stats.offchip_elements_read,
              per_window_in * eval.windows_per_frame);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Model_vs_sim,
    ::testing::Values(Case{"igf", 4, {2, 2}, 24, 16},
                      Case{"igf", 3, {3, 1}, 21, 15},
                      Case{"jacobi", 5, {1, 1, 1}, 25, 20},
                      Case{"chambolle", 4, {2, 1}, 16, 12},
                      Case{"erosion", 2, {2, 2}, 12, 10},
                      Case{"life", 3, {1, 1}, 18, 12}),
    [](const auto& info) {
        std::string name = info.param.kernel;
        name += "_w";
        name += std::to_string(info.param.window);
        for (int d : info.param.levels) {
            name += "_";
            name += std::to_string(d);
        }
        return name;
    });

// Frames that do not divide evenly by the window still account consistently
// (flush tiles overlap; the model uses ceil-counts on both sides).
TEST(Model_vs_sim, ragged_frame_edges) {
    const Kernel_def& kernel = kernel_by_name("jacobi");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 5;
    instance.level_depths = {2};
    instance.cores_per_depth = {{2, 1}};
    Evaluator_options options;
    options.frame_width = 23;  // 23 = 4*5 + 3: ragged
    options.frame_height = 17;
    Arch_evaluator evaluator(library, device_by_name("xc6vlx760"), options);
    const Arch_evaluation eval = evaluator.evaluate(instance);

    const Frame_set initial = kernel.make_initial(make_gradient(23, 17));
    const Arch_sim_result sim = simulate_architecture(library, instance, initial, {});
    EXPECT_EQ(sim.stats.output_windows, eval.windows_per_frame);
    EXPECT_EQ(eval.windows_per_frame, 5LL * 4LL);  // ceil(23/5) * ceil(17/5)
    // Flush placement pulls edge tiles back into the frame, so overlapped
    // elements are written twice; the model charges the same w^2 words per
    // window, keeping the two accountings equal (and >= one write per
    // element).
    EXPECT_EQ(sim.stats.offchip_elements_written,
              eval.windows_per_frame * 5LL * 5LL);
    EXPECT_GE(sim.stats.offchip_elements_written, 23LL * 17LL);
}

}  // namespace
}  // namespace islhls
