// Environment knobs shared by the fuzz harnesses, so the nightly CI job can
// deepen and rotate the fuzzing without a rebuild:
//
//   ISLHLS_FUZZ_SCALE  multiplies each harness's per-push trial count
//                      (nightly runs at 10x);
//   ISLHLS_FUZZ_SEED   rotates the seed base (nightly derives it from the
//                      UTC date, so every night explores fresh trials while
//                      any failure stays reproducible from the printed seed).
//
// Unset or malformed variables leave the per-push defaults untouched, so
// local `ctest` runs are bit-for-bit the historical suites.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace islhls::fuzz {

inline int scale() {
    if (const char* s = std::getenv("ISLHLS_FUZZ_SCALE")) {
        char* end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end != s && *end == '\0' && v >= 1 && v <= 1000) {
            return static_cast<int>(v);
        }
    }
    return 1;
}

inline std::uint64_t seed_base(std::uint64_t fallback) {
    if (const char* s = std::getenv("ISLHLS_FUZZ_SEED")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end != s && *end == '\0') {
            // Mix rather than replace: distinct harnesses keep distinct
            // streams under the same rotating base.
            return fallback ^ (static_cast<std::uint64_t>(v) *
                               0x9E3779B97F4A7C15ULL);
        }
    }
    return fallback;
}

}  // namespace islhls::fuzz
