// End-to-end flow facade: the whole paper pipeline through the public API.
#include <gtest/gtest.h>

#include "backend/vhdl.hpp"
#include "core/flow.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

Flow_options small_options() {
    Flow_options options;
    options.iterations = 4;
    options.frame_width = 256;
    options.frame_height = 192;
    options.device = "generic_small";
    options.space.max_window = 3;
    options.space.max_depth = 2;
    return options;
}

TEST(Flow, iterations_copied_into_space_options) {
    // Flow_options::iterations is authoritative; a diverging value planted in
    // the nested Space_options must be overwritten, not silently used.
    Flow_options options = small_options();
    options.iterations = 5;
    options.space.iterations = 999;
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), options);
    EXPECT_EQ(flow.options().iterations, 5);
    EXPECT_EQ(flow.options().space.iterations, 5);
    EXPECT_EQ(flow.explorer().space().iterations, 5);
    for (int d = 1; d <= 2; ++d) {
        int sum = 0;
        for (int level : flow.explorer().canonical_partition(d)) sum += level;
        EXPECT_EQ(sum, 5);
    }
}

TEST(Flow, builds_from_builtin_kernel) {
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), small_options());
    EXPECT_EQ(flow.kernel_name(), "jacobi");
    EXPECT_EQ(flow.step().state_fields(), (std::vector<std::string>{"u"}));
    EXPECT_EQ(flow.device().name, "generic_small");
}

TEST(Flow, builds_from_raw_source) {
    const char* src = R"(
void my_kernel(float a_out[H][W], const float a[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            a_out[y][x] = 0.5f * (a[y][x] + a[y][x+1]);
}
)";
    Hls_flow flow = Hls_flow::from_source(src, small_options());
    EXPECT_EQ(flow.kernel_name(), "my_kernel");
    EXPECT_EQ(flow.step().footprint(), (Footprint{0, 1, 0, 0}));
}

TEST(Flow, bad_source_reports_frontend_errors) {
    EXPECT_THROW(Hls_flow::from_source("void f(", small_options()), Parse_error);
    EXPECT_THROW(Hls_flow::from_source(
                     "void f(float a[H][W]) { for(int y=0;y<H;y++) "
                     "for(int x=0;x<W;x++) a[y][x] = 0.0f; }",
                     small_options()),
                 Sema_error);
    EXPECT_THROW(Hls_flow::from_source(
                     "void f(float a_out[H][W], const float a[H][W]) "
                     "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                     "a_out[y][x] = a[0][x]; }",
                     small_options()),
                 Symexec_error);
}

TEST(Flow, generates_vhdl_with_support_package) {
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), small_options());
    const std::string vhdl = flow.generate_vhdl(2, 2);
    EXPECT_NE(vhdl.find("entity islhls_jacobi_w2x2_d2"), std::string::npos);
    const std::string pkg = flow.support_package();
    EXPECT_NE(pkg.find("islhls_fixed_div"), std::string::npos);
}

TEST(Flow, pareto_and_fit_produce_consistent_results) {
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), small_options());
    const auto pareto = flow.pareto();
    EXPECT_GT(pareto.points.size(), 5u);
    EXPECT_FALSE(pareto.front.empty());

    const auto fit = flow.device_fit();
    ASSERT_TRUE(fit.has_best);
    // The device-fit solution obeys the budget...
    EXPECT_LE(fit.best.estimated_area_luts,
              static_cast<double>(flow.device().usable_luts()));
    // ...and no Pareto point strictly dominates it within the same budget.
    for (std::size_t i : pareto.front) {
        const auto& p = pareto.points[i];
        if (p.estimated_area_luts > flow.device().usable_luts()) continue;
        EXPECT_GE(p.throughput.seconds_per_frame * 1.0001,
                  fit.best.throughput.seconds_per_frame)
            << "Pareto point beats the device fit inside the budget";
    }
}

TEST(Flow, area_validation_through_facade) {
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), small_options());
    const auto validation = flow.area_validation();
    EXPECT_FALSE(validation.points.empty());
    EXPECT_LT(validation.avg_rel_error, 0.10);
}

TEST(Flow, describe_summarizes_the_kernel) {
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("chambolle"), small_options());
    const std::string text = flow.describe();
    EXPECT_NE(text.find("chambolle"), std::string::npos);
    EXPECT_NE(text.find("2 state field(s)"), std::string::npos);
    EXPECT_NE(text.find("reuse factor"), std::string::npos);
}

TEST(Flow, iterations_flow_into_the_space) {
    Flow_options options = small_options();
    options.iterations = 6;
    Hls_flow flow = Hls_flow::from_kernel(kernel_by_name("jacobi"), options);
    const auto fit = flow.device_fit();
    ASSERT_TRUE(fit.has_best);
    EXPECT_EQ(fit.best.instance.iterations(), 6);
}

}  // namespace
}  // namespace islhls
