// Whole-frame fixed-point row engine equivalence: the integer row path of
// Exec_engine must produce raw Qm.f words memcmp-identical to a per-pixel
// run_fixed_raw sweep for every kernel x boundary x format x frame shape x
// thread count x tiling mode — the same contract the double engine holds
// against run_ir_reference, transplanted to the integer domain.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "sim/fixed_exec.hpp"
#include "sim/golden.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

// Formats spanning the interesting widths: the Q10.6 default, a narrow
// format whose adds/multiplies genuinely wrap (Q3.2 saturates 0..255 inputs
// at +/-4 and overflows products), an asymmetric pair, and a wide format
// where ops stay in range (the wrap must then be the identity).
const std::vector<Fixed_format>& test_formats() {
    static const std::vector<Fixed_format> formats = {
        {10, 6}, {3, 2}, {4, 4}, {12, 2}, {16, 12}};
    return formats;
}

// The per-pixel reference is the product's own run_ir_fixed_reference
// (sim/golden.hpp) — one source of the scalar sweep, shared with the
// throughput bench; the engine must reproduce its raw words exactly.

void expect_raw_equal(const Fixed_frame_result& expected,
                      const Fixed_frame_result& actual) {
    ASSERT_EQ(expected.names, actual.names);
    for (std::size_t i = 0; i < expected.names.size(); ++i) {
        SCOPED_TRACE(expected.names[i]);
        ASSERT_EQ(expected.raw[i].size(), actual.raw[i].size());
        EXPECT_EQ(0, std::memcmp(expected.raw[i].data(), actual.raw[i].data(),
                                 expected.raw[i].size() * sizeof(std::int64_t)));
    }
}

constexpr Boundary kBoundaries[] = {Boundary::clamp, Boundary::zero,
                                    Boundary::mirror, Boundary::periodic};

TEST(Fixed_row_engine, matches_per_pixel_reference_everywhere) {
    const std::pair<int, int> shapes[] = {{1, 1}, {1, 9}, {9, 1}, {17, 13}};
    constexpr int kIterations = 3;
    std::uint64_t seed = 41;
    for (const Kernel_def& kernel : all_kernels()) {
        SCOPED_TRACE(kernel.name);
        const Stencil_step step = extract_stencil(kernel.c_source);
        const Exec_engine engine(step);
        for (const Boundary b : kBoundaries) {
            SCOPED_TRACE(to_string(b));
            for (const auto& [w, h] : shapes) {
                SCOPED_TRACE(cat(w, "x", h));
                const Frame_set initial =
                    kernel.make_initial(make_noise(w, h, seed++, 0.0, 255.0));
                for (const Fixed_format& fmt : test_formats()) {
                    SCOPED_TRACE(to_string(fmt));
                    const Fixed_frame_result reference = run_ir_fixed_reference(
                        step, initial, kIterations, b, fmt);
                    for (const int threads : {1, 2, 8}) {
                        for (const int depth : {1, 2}) {
                            SCOPED_TRACE(cat(threads, " threads, depth ", depth));
                            // Depth 2 over 3 iterations exercises a full
                            // fused block plus the shorter tail block.
                            const Exec_options options{threads, depth, 3};
                            expect_raw_equal(
                                reference, engine.run_fixed(initial, kIterations, b,
                                                            fmt, options));
                        }
                    }
                }
            }
        }
    }
}

TEST(Fixed_row_engine, run_dispatches_on_fixed_format_and_decodes) {
    const Kernel_def& kernel = kernel_by_name("igf");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_synthetic_scene(19, 14, 5));
    const Fixed_format fmt{12, 6};
    Exec_options options;
    options.fixed_format = fmt;
    const Frame_set via_run = engine.run(initial, 2, kernel.boundary, options);
    const Frame_set decoded =
        engine.run_fixed(initial, 2, kernel.boundary, fmt).to_frame_set();
    ASSERT_EQ(via_run.names(), decoded.names());
    for (const std::string& name : via_run.names()) {
        SCOPED_TRACE(name);
        const Frame& a = via_run.field(name);
        const Frame& d = decoded.field(name);
        EXPECT_EQ(0, std::memcmp(a.data().data(), d.data().data(),
                                 a.element_count() * sizeof(double)));
    }
}

TEST(Fixed_row_engine, zero_iterations_returns_quantized_initial) {
    const Kernel_def& kernel = kernel_by_name("heat");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame_set initial = kernel.make_initial(make_gradient(6, 5));
    const Fixed_format fmt{8, 4};
    const Fixed_frame_result out =
        Exec_engine(step).run_fixed(initial, 0, kernel.boundary, fmt);
    // iterations <= 0 on the reference returns the quantized initial frames.
    expect_raw_equal(run_ir_fixed_reference(step, initial, 0, kernel.boundary, fmt),
                     out);
}

TEST(Fixed_row_engine, external_pool_and_tiling_are_word_identical) {
    // An injected pool plus temporal tiling must change nothing about the
    // raw words — the same determinism contract as the double engine.
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_synthetic_scene(23, 17, 7));
    const Fixed_format fmt{10, 6};
    const Fixed_frame_result serial =
        engine.run_fixed(initial, 5, kernel.boundary, fmt);
    Thread_pool pool(4);
    for (const int depth : {1, 2, 5}) {
        SCOPED_TRACE(depth);
        Exec_options options{8, depth, 2, &pool};
        const Fixed_frame_result pooled =
            engine.run_fixed(initial, 5, kernel.boundary, fmt, options);
        ASSERT_EQ(serial.names, pooled.names);
        for (std::size_t i = 0; i < serial.raw.size(); ++i) {
            EXPECT_EQ(0, std::memcmp(serial.raw[i].data(), pooled.raw[i].data(),
                                     serial.raw[i].size() * sizeof(std::int64_t)))
                << serial.names[i];
        }
    }
}

TEST(Fixed_row_engine, ghost_overload_crops_the_reference_apron) {
    // run_ghost_ir's fixed overload = pad (boundary applied once, in the
    // double domain), iterate the integer engine, crop the raw apron. Verify
    // against the per-pixel reference applied to the padded frames.
    for (const std::string& name : {std::string("heat"), std::string("igf")}) {
        SCOPED_TRACE(name);
        const Kernel_def& kernel = kernel_by_name(name);
        const Stencil_step step = extract_stencil(kernel.c_source);
        const Exec_engine engine(step);
        const Frame_set initial = kernel.make_initial(make_synthetic_scene(11, 9, 3));
        const Fixed_format fmt{12, 6};
        const int iterations = 2;
        const Footprint halo = repeat(step.footprint(), iterations);

        Frame_set padded(initial.width() + halo.width_growth(),
                         initial.height() + halo.height_growth());
        for (const std::string& field : initial.names()) {
            padded.add_field(field,
                             pad_frame(initial.field(field), halo.left, halo.right,
                                       halo.up, halo.down, kernel.boundary));
        }
        const Fixed_frame_result padded_reference = run_ir_fixed_reference(
            step, padded, iterations, kernel.boundary, fmt);

        const Fixed_frame_result ghost =
            run_ghost_ir(step, initial, iterations, kernel.boundary, fmt);
        ASSERT_EQ(ghost.width, initial.width());
        ASSERT_EQ(ghost.height, initial.height());
        ASSERT_EQ(ghost.names, padded_reference.names);
        for (std::size_t i = 0; i < ghost.names.size(); ++i) {
            SCOPED_TRACE(ghost.names[i]);
            const std::vector<std::int64_t>& full =
                padded_reference.raw[i];
            for (int y = 0; y < ghost.height; ++y) {
                const std::int64_t* expected =
                    full.data() +
                    static_cast<std::size_t>(y + halo.up) * padded.width() + halo.left;
                EXPECT_EQ(0, std::memcmp(expected,
                                         ghost.raw[i].data() +
                                             static_cast<std::size_t>(y) * ghost.width,
                                         static_cast<std::size_t>(ghost.width) *
                                             sizeof(std::int64_t)))
                    << "row " << y;
            }
        }
    }
}

}  // namespace
}  // namespace islhls
