// Baselines: the two-frame-buffer architecture, the generic commercial-HLS
// model with its failure modes (paper Sec. 4.3), and the literature table.
#include <gtest/gtest.h>

#include "baseline/frame_buffer.hpp"
#include "baseline/generic_hls.hpp"
#include "baseline/literature.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

class Baseline_fixture : public ::testing::Test {
protected:
    Stencil_step igf = extract_stencil(kernel_by_name("igf").c_source);
    const Fpga_device& v6 = device_by_name("xc6vlx760");
};

TEST_F(Baseline_fixture, large_frames_do_not_fit_onchip) {
    const Frame_buffer_estimate est =
        estimate_frame_buffer(igf, 10, 1024, 768, v6);
    EXPECT_FALSE(est.frame_fits_onchip);
    EXPECT_GT(est.onchip_kbits_needed, static_cast<double>(v6.bram_kbits));
    // Transfer-bound: every element access is external.
    EXPECT_GT(est.cycles_per_element, 10.0);
    EXPECT_LT(est.fps, 5.0);
}

TEST_F(Baseline_fixture, small_frames_fit_and_run_faster) {
    const Frame_buffer_estimate small =
        estimate_frame_buffer(igf, 10, 64, 64, v6);
    EXPECT_TRUE(small.frame_fits_onchip);
    const Frame_buffer_estimate large =
        estimate_frame_buffer(igf, 10, 1024, 768, v6);
    EXPECT_GT(small.fps, large.fps);
    EXPECT_LT(small.cycles_per_element, large.cycles_per_element);
}

TEST_F(Baseline_fixture, loop_merge_rejected_for_isl) {
    const Generic_hls_result r =
        run_generic_hls(igf, 10, 1024, 768, v6, Hls_directive::loop_merge);
    EXPECT_FALSE(r.succeeded);
    EXPECT_NE(r.failure.find("dependency"), std::string::npos);
}

TEST_F(Baseline_fixture, flatten_pipeline_runs_out_of_memory_on_real_frames) {
    const Generic_hls_result r = run_generic_hls(igf, 10, 1024, 768, v6,
                                                 Hls_directive::flatten_and_pipeline);
    EXPECT_FALSE(r.succeeded);
    EXPECT_NE(r.failure.find("out of memory"), std::string::npos);
    // On a toy frame the same directive schedules fine.
    const Generic_hls_result tiny =
        run_generic_hls(igf, 2, 32, 32, v6, Hls_directive::flatten_and_pipeline);
    EXPECT_TRUE(tiny.succeeded);
}

TEST_F(Baseline_fixture, menu_best_is_subrealtime_on_igf) {
    const auto menu = run_generic_hls_menu(igf, 10, 1024, 768, v6);
    EXPECT_EQ(menu.size(), 7u);
    int failures = 0;
    for (const auto& r : menu) {
        if (!r.succeeded) ++failures;
    }
    EXPECT_EQ(failures, 2);  // loop_merge + flatten_and_pipeline
    const Generic_hls_result& best = best_of(menu);
    // The paper reports 0.14 fps for Vivado HLS on this workload; our model
    // must stay in that sub-real-time regime (way below 30 fps).
    EXPECT_LT(best.fps, 3.0);
    EXPECT_GT(best.fps, 0.01);
}

TEST_F(Baseline_fixture, directives_never_beat_partitioned_pipeline) {
    const auto menu = run_generic_hls_menu(igf, 10, 1024, 768, v6);
    double none_fps = 0.0;
    double best_fps = 0.0;
    for (const auto& r : menu) {
        if (r.directive == Hls_directive::none) none_fps = r.fps;
        if (r.succeeded) best_fps = std::max(best_fps, r.fps);
    }
    EXPECT_GT(none_fps, 0.0);
    EXPECT_GE(best_fps, none_fps);
    EXPECT_LT(best_fps / none_fps, 20.0);  // no magic speedups without restructuring
}

TEST(Literature, table_contains_the_papers_references) {
    const auto& points = literature_points();
    EXPECT_GE(points.size(), 6u);
    const auto conv = literature_for("convolution");
    ASSERT_EQ(conv.size(), 2u);
    EXPECT_DOUBLE_EQ(conv[0].fps, 13.5);
    const auto chamb = literature_for("chambolle");
    EXPECT_GE(chamb.size(), 4u);
    bool found_akin = false;
    for (const auto& p : chamb) {
        if (p.citation.find("Akin") != std::string::npos && p.fps == 38.0) {
            found_akin = true;
            EXPECT_TRUE(p.real_time);
        }
    }
    EXPECT_TRUE(found_akin);
}

TEST(Literature, directive_names_round_trip) {
    EXPECT_EQ(to_string(Hls_directive::loop_merge), "loop_merge");
    EXPECT_EQ(to_string(Hls_directive::partition_and_pipeline),
              "partition_and_pipeline");
}

}  // namespace
}  // namespace islhls
