// VHDL emitter: structural invariants checked by parsing the emitted text
// (no VHDL simulator is assumed in the environment; the testbench expected
// values come from the bit-accurate fixed-point executor).
#include <gtest/gtest.h>

#include "backend/vhdl.hpp"
#include "ir/analysis.hpp"
#include "kernels/kernels.hpp"
#include "sim/fixed_exec.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

class Vhdl_fixture : public ::testing::Test {
protected:
    Stencil_step step = extract_stencil(kernel_by_name("igf").c_source);
};

TEST_F(Vhdl_fixture, entity_name_encodes_spec) {
    EXPECT_EQ(cone_entity_name("igf", Cone_spec{4, 4, 2}), "islhls_igf_w4x4_d2");
    Vhdl_options options;
    options.entity_prefix = "acme";
    EXPECT_EQ(cone_entity_name("igf", Cone_spec{1, 1, 1}, options), "acme_igf_w1x1_d1");
}

TEST_F(Vhdl_fixture, register_assignments_equal_register_count) {
    const Cone cone(step, Cone_spec{3, 3, 2});
    const std::string vhdl = emit_cone(cone, "igf");
    const Vhdl_structure s = analyze_vhdl(vhdl);
    EXPECT_EQ(s.register_assignments, cone.program().register_count());
}

TEST_F(Vhdl_fixture, port_widths_match_program) {
    Vhdl_options options;
    const int bits = options.format.total_bits();
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Vhdl_structure s = analyze_vhdl(emit_cone(cone, "igf", options));
    EXPECT_EQ(s.input_bits, cone.program().input_count() * bits);
    EXPECT_EQ(s.output_bits, static_cast<int>(cone.program().outputs().size()) * bits);
}

TEST_F(Vhdl_fixture, div_and_sqrt_instances_match_census) {
    Stencil_step chamb = extract_stencil(kernel_by_name("chambolle").c_source);
    const Cone cone(chamb, Cone_spec{2, 2, 1});
    const std::string vhdl = emit_cone(cone, "chambolle");
    const Vhdl_structure s = analyze_vhdl(vhdl);
    const Op_census census = count_ops(chamb.pool(), cone.outputs());
    EXPECT_EQ(s.divider_instances, census.count(Op_kind::div));
    EXPECT_EQ(s.sqrt_instances, census.count(Op_kind::sqrt_op));
    EXPECT_GT(s.divider_instances, 0);
    EXPECT_GT(s.sqrt_instances, 0);
}

TEST_F(Vhdl_fixture, emitted_text_is_self_consistent) {
    const Cone cone(step, Cone_spec{2, 2, 2});
    const std::string vhdl = emit_cone(cone, "igf");
    // Every referenced r_/i_/k_ signal is declared.
    EXPECT_NE(vhdl.find("entity islhls_igf_w2x2_d2 is"), std::string::npos);
    EXPECT_NE(vhdl.find("architecture rtl of islhls_igf_w2x2_d2 is"), std::string::npos);
    EXPECT_NE(vhdl.find("process(clk)"), std::string::npos);
    EXPECT_NE(vhdl.find("rising_edge(clk)"), std::string::npos);
    // No unresolved placeholders.
    EXPECT_EQ(vhdl.find("???"), std::string::npos);
}

TEST_F(Vhdl_fixture, constants_fold_into_signed_literals) {
    const Cone cone(step, Cone_spec{1, 1, 1});
    Vhdl_options options;  // Q10.6
    const std::string vhdl = emit_cone(cone, "igf", options);
    // 2.0 in Q10.6 is 128; the binomial kernel uses it.
    EXPECT_NE(vhdl.find("to_signed(128, WIDTH)"), std::string::npos);
}

TEST_F(Vhdl_fixture, support_package_defines_both_entities) {
    const std::string pkg = emit_support_package();
    EXPECT_NE(pkg.find("entity islhls_fixed_div is"), std::string::npos);
    EXPECT_NE(pkg.find("entity islhls_fixed_sqrt is"), std::string::npos);
    EXPECT_NE(pkg.find("architecture behavioral of islhls_fixed_div"),
              std::string::npos);
}

TEST_F(Vhdl_fixture, testbench_embeds_stimulus_and_expected) {
    const Cone cone(step, Cone_spec{1, 1, 1});
    const Register_program& prog = cone.program();
    Vhdl_options options;
    Prng rng(7);
    std::vector<double> stimulus;
    for (int i = 0; i < prog.input_count(); ++i) {
        stimulus.push_back(quantize(rng.next_in(0.0, 255.0), options.format));
    }
    const std::vector<double> expected = run_fixed(prog, stimulus, options.format);
    const std::string tb =
        emit_cone_testbench(cone, "igf", stimulus, expected, options);
    EXPECT_NE(tb.find("entity tb_islhls_igf_w1x1_d1"), std::string::npos);
    EXPECT_NE(tb.find("severity failure"), std::string::npos);
    EXPECT_NE(tb.find("report \"testbench passed\""), std::string::npos);
    // The expected raw value appears in an assert.
    const std::string raw = std::to_string(to_raw(expected[0], options.format));
    EXPECT_NE(tb.find("to_signed(" + raw), std::string::npos);
}

TEST_F(Vhdl_fixture, testbench_arity_is_validated) {
    const Cone cone(step, Cone_spec{1, 1, 1});
    const std::vector<double> one_value{1.0};
    EXPECT_THROW(emit_cone_testbench(cone, "igf", one_value, one_value),
                 Internal_error);
}

// Parameterized structural sweep across kernels and specs.
class Vhdl_sweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(Vhdl_sweep, structure_matches_program) {
    const auto [kernel, w, d] = GetParam();
    Stencil_step step = extract_stencil(kernel_by_name(kernel).c_source);
    const Cone cone(step, Cone_spec{w, w, d});
    const Vhdl_structure s = analyze_vhdl(emit_cone(cone, kernel));
    EXPECT_EQ(s.register_assignments, cone.program().register_count());
    Vhdl_options options;
    EXPECT_EQ(s.input_bits,
              cone.program().input_count() * options.format.total_bits());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Vhdl_sweep,
    ::testing::Combine(::testing::Values("igf", "chambolle", "erosion", "shock"),
                       ::testing::Values(1, 2), ::testing::Values(1, 2)),
    [](const auto& info) {
        return std::get<0>(info.param) + "_w" + std::to_string(std::get<1>(info.param)) +
               "_d" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace islhls
