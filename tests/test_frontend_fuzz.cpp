// Frontend robustness: mutated inputs must fail cleanly (library Error with
// a message), never crash, hang or corrupt state. This guards the error
// paths a real user hits constantly.
#include <gtest/gtest.h>

#include "fuzz_env.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

// Runs the full frontend on `source`; success or islhls::Error both count as
// clean outcomes, anything else fails the test.
void expect_clean(const std::string& source) {
    try {
        Symexec_options options;
        options.max_unroll = 512;  // keep mutated loops cheap
        const Stencil_step step = extract_stencil(source, options);
        (void)step;
    } catch (const Error&) {
        // fine: diagnosed
    }
}

class Truncation_fuzz : public ::testing::TestWithParam<std::string> {};

TEST_P(Truncation_fuzz, every_prefix_is_handled) {
    const std::string source = kernel_by_name(GetParam()).c_source;
    // Cutting the source at arbitrary points exercises every "unexpected
    // end of input" path of the lexer and parser.
    for (std::size_t len = 0; len < source.size(); len += 7) {
        SCOPED_TRACE(len);
        expect_clean(source.substr(0, len));
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, Truncation_fuzz,
                         ::testing::Values("igf", "chambolle", "shock", "mean",
                                           "conway", "fdtd"),
                         [](const auto& info) { return info.param; });

class Mutation_fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Mutation_fuzz, random_character_edits_are_handled) {
    Prng rng(fuzz::seed_base(static_cast<std::uint64_t>(GetParam()) * 1299721u));
    const std::vector<std::string> names = kernel_names();
    static const char replacements[] = "()[]{};=+-*/<>!&|?:xy01. ";
    const int trials = 120 * fuzz::scale();
    for (int trial = 0; trial < trials; ++trial) {
        std::string source =
            kernel_by_name(names[static_cast<std::size_t>(
                               rng.next_int(0, static_cast<int>(names.size()) - 1))])
                .c_source;
        const int edits = rng.next_int(1, 4);
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = static_cast<std::size_t>(
                rng.next_int(0, static_cast<int>(source.size()) - 1));
            switch (rng.next_int(0, 2)) {
                case 0:  // replace
                    source[pos] = replacements[rng.next_int(
                        0, static_cast<int>(sizeof(replacements)) - 2)];
                    break;
                case 1:  // delete
                    source.erase(pos, 1);
                    break;
                default:  // insert
                    source.insert(pos, 1,
                                  replacements[rng.next_int(
                                      0, static_cast<int>(sizeof(replacements)) - 2)]);
                    break;
            }
        }
        SCOPED_TRACE(trial);
        expect_clean(source);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mutation_fuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace islhls
