#include <gtest/gtest.h>

#include "grid/tile.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

TEST(Footprint, union_takes_maxima) {
    const Footprint a{1, 0, 2, 0};
    const Footprint b{0, 3, 1, 1};
    EXPECT_EQ(union_of(a, b), (Footprint{1, 3, 2, 1}));
}

TEST(Footprint, compose_is_minkowski_sum) {
    const Footprint a{1, 1, 1, 1};
    const Footprint b{0, 2, 1, 0};
    EXPECT_EQ(compose(a, b), (Footprint{1, 3, 2, 1}));
    // Composition is commutative for extents.
    EXPECT_EQ(compose(a, b), compose(b, a));
}

TEST(Footprint, repeat_scales_linearly) {
    const Footprint f{1, 2, 0, 1};
    EXPECT_EQ(repeat(f, 3), (Footprint{3, 6, 0, 3}));
    EXPECT_EQ(repeat(f, 0), (Footprint{}));
    EXPECT_THROW(repeat(f, -1), Internal_error);
}

// Property: repeat(f, a+b) == compose(repeat(f,a), repeat(f,b)).
class Repeat_property : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Repeat_property, repeat_splits_additively) {
    const auto [a, b] = GetParam();
    const Footprint f{2, 1, 1, 3};
    EXPECT_EQ(repeat(f, a + b), compose(repeat(f, a), repeat(f, b)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Repeat_property,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 0},
                                           std::pair{1, 1}, std::pair{2, 3},
                                           std::pair{5, 5}));

TEST(Footprint, growth_helpers) {
    const Footprint f{1, 2, 3, 4};
    EXPECT_EQ(f.width_growth(), 3);
    EXPECT_EQ(f.height_growth(), 7);
    EXPECT_EQ(to_string(f), "{l:1 r:2 u:3 d:4}");
}

TEST(Window, input_window_grows_by_repeated_footprint) {
    const Window out{10, 20, 4, 4};
    const Footprint f{1, 1, 1, 1};
    const Window in = input_window_for(out, f, 3);
    EXPECT_EQ(in, (Window{7, 17, 10, 10}));
    EXPECT_EQ(in.element_count(), 100);
}

TEST(Window, asymmetric_halo) {
    const Window out{0, 0, 2, 2};
    const Footprint f{1, 0, 0, 2};  // reads left and below only
    const Window in = input_window_for(out, f, 2);
    EXPECT_EQ(in.x0, -2);
    EXPECT_EQ(in.y0, 0);
    EXPECT_EQ(in.width, 4);
    EXPECT_EQ(in.height, 6);
}

TEST(Window, depth_zero_is_identity) {
    const Window out{1, 2, 3, 4};
    EXPECT_EQ(input_window_for(out, Footprint{5, 5, 5, 5}, 0), out);
}

}  // namespace
}  // namespace islhls
