// Frame sets, generators, metrics and PGM round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "grid/frame_io.hpp"
#include "grid/frame_ops.hpp"
#include "grid/frame_set.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

TEST(Frame_set, add_and_lookup) {
    Frame_set fs(4, 3);
    fs.add_field("u");
    fs.add_field("g", Frame(4, 3, 2.0));
    EXPECT_EQ(fs.field_count(), 2u);
    EXPECT_TRUE(fs.has_field("u"));
    EXPECT_FALSE(fs.has_field("v"));
    EXPECT_EQ(fs.field("g").at(0, 0), 2.0);
    EXPECT_EQ(fs.names(), (std::vector<std::string>{"u", "g"}));
}

TEST(Frame_set, rejects_duplicates_and_size_mismatch) {
    Frame_set fs(4, 3);
    fs.add_field("u");
    EXPECT_THROW(fs.add_field("u"), Error);
    EXPECT_THROW(fs.add_field("w", Frame(5, 3)), Error);
    EXPECT_THROW(fs.field("missing"), Error);
}

TEST(Frame_set, interned_ids_are_stable_and_usable) {
    const Field_id u = intern_field("u");
    EXPECT_EQ(u, intern_field("u"));               // same name, same id
    EXPECT_NE(u, intern_field("u_prime"));         // distinct names differ
    EXPECT_EQ(field_name(u), "u");

    Frame_set fs(4, 3);
    fs.add_field("u", Frame(4, 3, 1.5));
    fs.add_field(intern_field("g"), Frame(4, 3, 2.5));
    EXPECT_EQ(fs.ids(), (std::vector<Field_id>{u, intern_field("g")}));
    EXPECT_TRUE(fs.has_field(u));
    EXPECT_EQ(fs.index_of(u), 0);
    EXPECT_EQ(fs.index_of(intern_field("absent")), -1);
    EXPECT_EQ(fs.field(u).at(0, 0), 1.5);
    EXPECT_EQ(fs.id_at(1), intern_field("g"));
    EXPECT_EQ(fs.frame_at(1).at(0, 0), 2.5);
    EXPECT_THROW(fs.field(intern_field("absent")), Error);
    EXPECT_THROW(fs.add_field(u, Frame(4, 3)), Error);  // duplicate by id

    // Negative name queries stay side-effect free: probing never grows the
    // process-wide registry.
    EXPECT_EQ(find_field_id("never_interned_probe"), -1);
    EXPECT_FALSE(fs.has_field("never_interned_probe"));
    EXPECT_THROW(fs.field("never_interned_probe"), Error);
    EXPECT_EQ(find_field_id("never_interned_probe"), -1);
}

TEST(Generators, gradient_endpoints) {
    const Frame g = make_gradient(5, 2, 0.0, 100.0);
    EXPECT_EQ(g.at(0, 0), 0.0);
    EXPECT_EQ(g.at(4, 1), 100.0);
    EXPECT_EQ(g.at(2, 0), 50.0);
}

TEST(Generators, checkerboard_alternates) {
    const Frame c = make_checkerboard(4, 4, 2, 0.0, 1.0);
    EXPECT_EQ(c.at(0, 0), 0.0);
    EXPECT_EQ(c.at(2, 0), 1.0);
    EXPECT_EQ(c.at(0, 2), 1.0);
    EXPECT_EQ(c.at(2, 2), 0.0);
}

TEST(Generators, impulse_single_nonzero) {
    const Frame i = make_impulse(5, 5, 2, 3, 7.0);
    EXPECT_EQ(i.at(2, 3), 7.0);
    EXPECT_EQ(element_sum(i), 7.0);
}

TEST(Generators, noise_is_seed_deterministic) {
    const Frame a = make_noise(8, 8, 42);
    const Frame b = make_noise(8, 8, 42);
    const Frame c = make_noise(8, 8, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Generators, synthetic_scene_in_8bit_range) {
    const Frame s = make_synthetic_scene(32, 24, 1);
    for (double v : s.data()) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 255.0);
    }
}

TEST(Metrics, known_values) {
    Frame a(2, 1);
    Frame b(2, 1);
    a.at(0, 0) = 1.0;
    a.at(1, 0) = 2.0;
    b.at(0, 0) = 1.0;
    b.at(1, 0) = 5.0;
    EXPECT_EQ(max_abs_diff(a, b), 3.0);
    EXPECT_NEAR(rmse(a, b), std::sqrt(4.5), 1e-12);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
    EXPECT_NEAR(psnr(a, b, 255.0), 20.0 * std::log10(255.0 / std::sqrt(4.5)), 1e-9);
}

TEST(Pgm, binary_round_trip) {
    const Frame original = make_noise(17, 9, 5, 0.0, 255.0);
    std::stringstream ss;
    write_pgm(original, ss);
    const Frame loaded = read_pgm(ss);
    ASSERT_EQ(loaded.width(), 17);
    ASSERT_EQ(loaded.height(), 9);
    // Values are rounded to integers on save.
    for (int y = 0; y < 9; ++y) {
        for (int x = 0; x < 17; ++x) {
            EXPECT_NEAR(loaded.at(x, y), original.at(x, y), 0.5 + 1e-9);
        }
    }
}

TEST(Pgm, ascii_p2_parses_with_comments) {
    std::stringstream ss("P2\n# a comment\n2 2\n255\n0 128\n64 255\n");
    const Frame f = read_pgm(ss);
    EXPECT_EQ(f.at(0, 0), 0.0);
    EXPECT_EQ(f.at(1, 0), 128.0);
    EXPECT_EQ(f.at(0, 1), 64.0);
    EXPECT_EQ(f.at(1, 1), 255.0);
}

TEST(Pgm, malformed_inputs_throw) {
    std::stringstream bad_magic("P7\n1 1\n255\n");
    EXPECT_THROW(read_pgm(bad_magic), Io_error);
    std::stringstream truncated("P5\n4 4\n255\nxx");
    EXPECT_THROW(read_pgm(truncated), Io_error);
    std::stringstream nonsense("P5\nwide 4\n255\n");
    EXPECT_THROW(read_pgm(nonsense), Io_error);
    EXPECT_THROW(load_pgm("/nonexistent/path/img.pgm"), Io_error);
}

TEST(Pgm, clipping_on_save) {
    Frame f(2, 1);
    f.at(0, 0) = -10.0;
    f.at(1, 0) = 300.0;
    std::stringstream ss;
    write_pgm(f, ss);
    const Frame loaded = read_pgm(ss);
    EXPECT_EQ(loaded.at(0, 0), 0.0);
    EXPECT_EQ(loaded.at(1, 0), 255.0);
}

}  // namespace
}  // namespace islhls
