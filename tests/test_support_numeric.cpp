#include <gtest/gtest.h>

#include <numeric>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {
namespace {

TEST(Numeric, divisors_of_known_values) {
    EXPECT_EQ(divisors(1), (std::vector<int>{1}));
    EXPECT_EQ(divisors(10), (std::vector<int>{1, 2, 5, 10}));
    EXPECT_EQ(divisors(36), (std::vector<int>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
    EXPECT_EQ(divisors(97), (std::vector<int>{1, 97}));  // prime
}

// Property sweep: every listed divisor divides, count matches brute force.
class Divisors_property : public ::testing::TestWithParam<int> {};

TEST_P(Divisors_property, matches_brute_force) {
    const int n = GetParam();
    const std::vector<int> ds = divisors(n);
    int brute = 0;
    for (int d = 1; d <= n; ++d) {
        if (n % d == 0) brute += 1;
    }
    EXPECT_EQ(static_cast<int>(ds.size()), brute);
    for (int d : ds) EXPECT_EQ(n % d, 0) << "n=" << n << " d=" << d;
    EXPECT_TRUE(std::is_sorted(ds.begin(), ds.end()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Divisors_property,
                         ::testing::Values(1, 2, 3, 4, 6, 10, 12, 16, 24, 30, 49, 60,
                                           97, 100, 144, 210));

TEST(Numeric, gcd_basics) {
    EXPECT_EQ(gcd(12, 18), 6);
    EXPECT_EQ(gcd(7, 13), 1);
    EXPECT_EQ(gcd(0, 5), 5);
    EXPECT_EQ(gcd(5, 0), 5);
}

TEST(Numeric, ceil_div_rounds_up) {
    EXPECT_EQ(ceil_div(10, 3), 4);
    EXPECT_EQ(ceil_div(9, 3), 3);
    EXPECT_EQ(ceil_div(1, 5), 1);
    EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(Numeric, compositions_order_matters) {
    const auto comps = compositions_into(3, {1, 2});
    EXPECT_EQ(comps.size(), 3u);  // 1+1+1, 1+2, 2+1
    for (const auto& c : comps) {
        EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), 3);
    }
}

TEST(Numeric, partitions_are_non_increasing_and_complete) {
    const auto parts = partitions_into(10, {1, 2, 3, 4, 5});
    // p(10) with parts <= 5 is 30.
    EXPECT_EQ(parts.size(), 30u);
    for (const auto& p : parts) {
        EXPECT_EQ(std::accumulate(p.begin(), p.end(), 0), 10);
        EXPECT_TRUE(std::is_sorted(p.rbegin(), p.rend()));
        for (int v : p) {
            EXPECT_GE(v, 1);
            EXPECT_LE(v, 5);
        }
    }
    // No duplicates.
    auto sorted = parts;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Numeric, partitions_respect_part_menu) {
    const auto parts = partitions_into(4, {2});
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], (std::vector<int>{2, 2}));
    EXPECT_TRUE(partitions_into(3, {2}).empty());
}

TEST(Numeric, fit_line_recovers_exact_line) {
    const std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(3.5 * x - 2.0);
    const Linear_fit fit = fit_line(xs, ys);
    EXPECT_NEAR(fit.slope, 3.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Numeric, fit_line_two_points_passes_through_both) {
    const Linear_fit fit = fit_line({1.0, 3.0}, {10.0, 20.0});
    EXPECT_NEAR(fit.slope * 1.0 + fit.intercept, 10.0, 1e-12);
    EXPECT_NEAR(fit.slope * 3.0 + fit.intercept, 20.0, 1e-12);
}

TEST(Numeric, fit_through_origin_matches_ratio) {
    EXPECT_NEAR(fit_through_origin({2.0}, {5.0}), 2.5, 1e-12);
    // Least squares of y = 2x with noise that cancels.
    EXPECT_NEAR(fit_through_origin({1.0, 2.0}, {2.1, 3.9}), (2.1 + 7.8) / 5.0, 1e-12);
}

TEST(Numeric, relative_error_definition) {
    EXPECT_NEAR(relative_error(105.0, 100.0), 0.05, 1e-12);
    EXPECT_NEAR(relative_error(95.0, 100.0), 0.05, 1e-12);
    EXPECT_NEAR(relative_error(3.0, 0.0), 3.0, 1e-12);  // falls back to absolute
}

TEST(Numeric, hash_is_deterministic_and_spreads) {
    EXPECT_EQ(hash_mix(42), hash_mix(42));
    EXPECT_NE(hash_mix(42), hash_mix(43));
    const double u = hash_to_unit(hash_mix(123456789));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
}

TEST(Numeric, hash_to_unit_is_roughly_uniform) {
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) sum += hash_to_unit(hash_mix(static_cast<std::uint64_t>(i)));
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Numeric, guards_throw_internal_error) {
    EXPECT_THROW(divisors(0), Internal_error);
    EXPECT_THROW(fit_line({1.0}, {1.0}), Internal_error);
    EXPECT_THROW(fit_through_origin({0.0}, {1.0}), Internal_error);
}

}  // namespace
}  // namespace islhls
