// Equivalence suite for temporal-tiled execution: fusing iterations over row
// bands (any tile depth, band height and thread count) must produce frames
// memcmp-identical to the classic double-buffered sweep for every built-in
// kernel, every Boundary mode, and degenerate frame shapes — including
// frames smaller than one band and single-row/single-column frames.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "sim/golden.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

void expect_sets_identical(const Frame_set& a, const Frame_set& b) {
    ASSERT_EQ(a.names(), b.names());
    for (std::size_t i = 0; i < a.field_count(); ++i) {
        SCOPED_TRACE(a.names()[i]);
        const Frame& fa = a.frame_at(i);
        const Frame& fb = b.frame_at(i);
        ASSERT_EQ(fa.width(), fb.width());
        ASSERT_EQ(fa.height(), fb.height());
        EXPECT_EQ(0, std::memcmp(fa.data().data(), fb.data().data(),
                                 fa.element_count() * sizeof(double)));
    }
}

constexpr Boundary kBoundaries[] = {Boundary::clamp, Boundary::zero,
                                    Boundary::mirror, Boundary::periodic};
constexpr int kIterations = 6;

TEST(Temporal_tiling, identical_across_depths_boundaries_shapes_and_threads) {
    // 3x3 and 1x1 are smaller than the forced 4-row bands; 1x9 and 9x1
    // exercise single-column and single-row frames; 23x17 spans several
    // bands with trapezoidal halos on both sides.
    const std::pair<int, int> shapes[] = {{23, 17}, {1, 9}, {9, 1}, {3, 3}, {1, 1}};
    std::uint64_t seed = 7;
    for (const Kernel_def& kernel : all_kernels()) {
        SCOPED_TRACE(kernel.name);
        const Stencil_step step = extract_stencil(kernel.c_source);
        const Exec_engine engine(step);
        for (const Boundary b : kBoundaries) {
            SCOPED_TRACE(to_string(b));
            for (const auto& [w, h] : shapes) {
                SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h));
                const Frame_set initial =
                    kernel.make_initial(make_noise(w, h, seed++, 0.0, 255.0));
                const Frame_set untiled =
                    engine.run(initial, kIterations, b, Exec_options{1, 1, 0});
                for (const int depth : {2, 5, kIterations}) {
                    SCOPED_TRACE("depth " + std::to_string(depth));
                    for (const int threads : {1, 2, 8}) {
                        SCOPED_TRACE("threads " + std::to_string(threads));
                        expect_sets_identical(
                            untiled, engine.run(initial, kIterations, b,
                                                Exec_options{threads, depth, 4}));
                    }
                }
            }
        }
    }
}

TEST(Temporal_tiling, band_extremes_and_auto_sizing) {
    const Kernel_def& kernel = kernel_by_name("chambolle");  // multi-field state
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_noise(31, 29, 42, 0.0, 255.0));
    for (const Boundary b : kBoundaries) {
        SCOPED_TRACE(to_string(b));
        const Frame_set untiled = engine.run(initial, kIterations, b, Exec_options{1, 1, 0});
        // One-row bands: maximal trapezoid overlap.
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{2, 3, 1}));
        // Bands taller than the frame: a single band degenerates to
        // whole-frame fusion.
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{1, 2, 512}));
        // Fully automatic tiling decision (small frame: stays untiled).
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{0, 0, 0}));
        // Depth beyond the iteration count clamps to the iteration count.
        expect_sets_identical(untiled, engine.run(initial, kIterations, b,
                                                  Exec_options{1, kIterations + 9, 4}));
    }
}

TEST(Temporal_tiling, matches_reference_interpreter) {
    // Anchor the whole tiled stack against the independent per-pixel
    // interpreter (not just against the untiled engine).
    const Kernel_def& kernel = kernel_by_name("heat");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_noise(19, 15, 3, 0.0, 255.0));
    for (const Boundary b : kBoundaries) {
        SCOPED_TRACE(to_string(b));
        const Frame_set reference = run_ir_reference(step, initial, 5, b);
        expect_sets_identical(reference,
                              engine.run(initial, 5, b, Exec_options{2, 3, 2}));
    }
}

TEST(Temporal_tiling, run_ir_options_overload_agrees) {
    const Kernel_def& kernel = kernel_by_name("jacobi");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame_set initial = kernel.make_initial(make_noise(21, 13, 11, 0.0, 255.0));
    const Frame_set legacy = run_ir(step, initial, 4, kernel.boundary, 1);
    expect_sets_identical(legacy, run_ir(step, initial, 4, kernel.boundary,
                                         Exec_options{2, 4, 3}));
}

TEST(Temporal_tiling, state_halo_from_compiled_extents) {
    // heat reads the advancing field at dy in [-1, 1].
    const Stencil_step step = extract_stencil(kernel_by_name("heat").c_source);
    const Exec_engine heat(step);
    EXPECT_EQ(1, heat.state_halo_up());
    EXPECT_EQ(1, heat.state_halo_down());
    // The halo agrees with the program-wide footprint for a pure-state
    // kernel like heat.
    EXPECT_EQ(-heat.compiled().min_dy(), heat.state_halo_up());
    EXPECT_EQ(heat.compiled().max_dy(), heat.state_halo_down());
}

}  // namespace
}  // namespace islhls
