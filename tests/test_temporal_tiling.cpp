// Equivalence suite for temporal-tiled execution: fusing iterations over row
// bands (any tile depth, band height and thread count) must produce frames
// memcmp-identical to the classic double-buffered sweep for every built-in
// kernel, every Boundary mode, and degenerate frame shapes — including
// frames smaller than one band and single-row/single-column frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "sim/golden.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

void expect_sets_identical(const Frame_set& a, const Frame_set& b) {
    ASSERT_EQ(a.names(), b.names());
    for (std::size_t i = 0; i < a.field_count(); ++i) {
        SCOPED_TRACE(a.names()[i]);
        const Frame& fa = a.frame_at(i);
        const Frame& fb = b.frame_at(i);
        ASSERT_EQ(fa.width(), fb.width());
        ASSERT_EQ(fa.height(), fb.height());
        EXPECT_EQ(0, std::memcmp(fa.data().data(), fb.data().data(),
                                 fa.element_count() * sizeof(double)));
    }
}

constexpr Boundary kBoundaries[] = {Boundary::clamp, Boundary::zero,
                                    Boundary::mirror, Boundary::periodic};
constexpr int kIterations = 6;

TEST(Temporal_tiling, identical_across_depths_boundaries_shapes_and_threads) {
    // 3x3 and 1x1 are smaller than the forced 4-row bands; 1x9 and 9x1
    // exercise single-column and single-row frames; 23x17 spans several
    // bands with trapezoidal halos on both sides.
    const std::pair<int, int> shapes[] = {{23, 17}, {1, 9}, {9, 1}, {3, 3}, {1, 1}};
    std::uint64_t seed = 7;
    for (const Kernel_def& kernel : all_kernels()) {
        SCOPED_TRACE(kernel.name);
        const Stencil_step step = extract_stencil(kernel.c_source);
        const Exec_engine engine(step);
        for (const Boundary b : kBoundaries) {
            SCOPED_TRACE(to_string(b));
            for (const auto& [w, h] : shapes) {
                SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h));
                const Frame_set initial =
                    kernel.make_initial(make_noise(w, h, seed++, 0.0, 255.0));
                const Frame_set untiled =
                    engine.run(initial, kIterations, b, Exec_options{1, 1, 0});
                for (const int depth : {2, 5, kIterations}) {
                    SCOPED_TRACE("depth " + std::to_string(depth));
                    for (const int threads : {1, 2, 8}) {
                        SCOPED_TRACE("threads " + std::to_string(threads));
                        expect_sets_identical(
                            untiled, engine.run(initial, kIterations, b,
                                                Exec_options{threads, depth, 4}));
                    }
                }
            }
        }
    }
}

TEST(Temporal_tiling, band_extremes_and_auto_sizing) {
    const Kernel_def& kernel = kernel_by_name("chambolle");  // multi-field state
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_noise(31, 29, 42, 0.0, 255.0));
    for (const Boundary b : kBoundaries) {
        SCOPED_TRACE(to_string(b));
        const Frame_set untiled = engine.run(initial, kIterations, b, Exec_options{1, 1, 0});
        // One-row bands: maximal trapezoid overlap.
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{2, 3, 1}));
        // Bands taller than the frame: a single band degenerates to
        // whole-frame fusion.
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{1, 2, 512}));
        // Fully automatic tiling decision (small frame: stays untiled).
        expect_sets_identical(untiled,
                              engine.run(initial, kIterations, b, Exec_options{0, 0, 0}));
        // Depth beyond the iteration count clamps to the iteration count.
        expect_sets_identical(untiled, engine.run(initial, kIterations, b,
                                                  Exec_options{1, kIterations + 9, 4}));
    }
}

TEST(Temporal_tiling, matches_reference_interpreter) {
    // Anchor the whole tiled stack against the independent per-pixel
    // interpreter (not just against the untiled engine).
    const Kernel_def& kernel = kernel_by_name("heat");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_noise(19, 15, 3, 0.0, 255.0));
    for (const Boundary b : kBoundaries) {
        SCOPED_TRACE(to_string(b));
        const Frame_set reference = run_ir_reference(step, initial, 5, b);
        expect_sets_identical(reference,
                              engine.run(initial, 5, b, Exec_options{2, 3, 2}));
    }
}

TEST(Temporal_tiling, run_ir_options_overload_agrees) {
    const Kernel_def& kernel = kernel_by_name("jacobi");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame_set initial = kernel.make_initial(make_noise(21, 13, 11, 0.0, 255.0));
    const Frame_set legacy = run_ir(step, initial, 4, kernel.boundary, 1);
    expect_sets_identical(legacy, run_ir(step, initial, 4, kernel.boundary,
                                         Exec_options{2, 4, 3}));
}

TEST(Temporal_tiling, column_panels_identical_at_lane_boundaries) {
    // Frame widths straddling the 64-column lane block and panel widths from
    // degenerate (1) through misaligned (7) to lane-sized (64) and
    // frame-wide: panels only split the x loop, so every width must be
    // byte-identical to the unpaneled run — tiled and untiled, double and
    // fixed domains alike.
    const Kernel_def& kernel = kernel_by_name("heat");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Fixed_format fmt{10, 6};
    std::uint64_t seed = 91;
    for (const int w : {63, 64, 65}) {
        SCOPED_TRACE("width " + std::to_string(w));
        const Frame_set initial =
            kernel.make_initial(make_noise(w, 21, seed++, 0.0, 255.0));
        for (const Boundary b : {Boundary::clamp, Boundary::periodic}) {
            SCOPED_TRACE(to_string(b));
            const Frame_set untiled =
                engine.run(initial, kIterations, b, Exec_options{1, 1, 0});
            const Fixed_frame_result fixed_ref =
                engine.run_fixed(initial, kIterations, b, fmt);
            for (const int panel : {1, 7, 64, w}) {
                SCOPED_TRACE("panel " + std::to_string(panel));
                Exec_options tiled{1, 3, 4};
                tiled.panel_cols = panel;
                expect_sets_identical(untiled,
                                      engine.run(initial, kIterations, b, tiled));
                Exec_options flat{2, 1, 0};
                flat.panel_cols = panel;
                expect_sets_identical(untiled,
                                      engine.run(initial, kIterations, b, flat));
                const Fixed_frame_result fixed_panel =
                    engine.run_fixed(initial, kIterations, b, fmt, tiled);
                ASSERT_EQ(fixed_ref.raw.size(), fixed_panel.raw.size());
                for (std::size_t i = 0; i < fixed_ref.raw.size(); ++i) {
                    EXPECT_EQ(0, std::memcmp(fixed_ref.raw[i].data(),
                                             fixed_panel.raw[i].data(),
                                             fixed_ref.raw[i].size() *
                                                 sizeof(std::int64_t)))
                        << "fixed field " << fixed_ref.names[i];
                }
            }
        }
    }
}

TEST(Temporal_tiling, budgets_steer_schedule_not_values) {
    // Auto decisions sized from pinned budgets at both extremes (tiny: tile,
    // band and panel everything; huge: nothing tiles) against the probed
    // defaults — budgets pick the schedule, never the values.
    const Kernel_def& kernel = kernel_by_name("jacobi");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_noise(97, 43, 5, 0.0, 255.0));
    for (const Boundary b : {Boundary::clamp, Boundary::periodic}) {
        SCOPED_TRACE(to_string(b));
        const Frame_set probed = engine.run(initial, kIterations, b, Exec_options{0, 0, 0});
        Exec_options tiny{0, 0, 0};
        tiny.budgets.tile_bytes = 1;
        tiny.budgets.band_bytes = 4u * 1024;
        tiny.budgets.panel_bytes = 1;
        expect_sets_identical(probed, engine.run(initial, kIterations, b, tiny));
        Exec_options huge{0, 0, 0};
        huge.budgets.tile_bytes = 1u << 30;
        huge.budgets.band_bytes = 1u << 28;
        huge.budgets.panel_bytes = 1u << 30;
        expect_sets_identical(probed, engine.run(initial, kIterations, b, huge));
    }
}

TEST(Temporal_tiling, periodic_interim_bands_stay_band_sized) {
    // Wrapped halos keep periodic interim buffers at the clamp-mode
    // trapezoid height (band rows plus per-level halo growth) instead of
    // widening toward the whole frame at the edges.
    const Stencil_step step = extract_stencil(kernel_by_name("heat").c_source);
    const Exec_engine heat(step);
    const int halo = heat.state_halo_up() + heat.state_halo_down();
    constexpr int kHeight = 4096, kBand = 8;
    for (const int depth : {2, 4, 8}) {
        SCOPED_TRACE("depth " + std::to_string(depth));
        const int clamped = heat.planned_interim_rows(kHeight, kBand, depth,
                                                      Boundary::clamp);
        const int periodic = heat.planned_interim_rows(kHeight, kBand, depth,
                                                       Boundary::periodic);
        EXPECT_EQ(periodic, clamped);
        EXPECT_LE(periodic, kBand + depth * halo);
        EXPECT_LT(periodic, kHeight / 8);
    }
}

TEST(Temporal_tiling, state_halo_from_compiled_extents) {
    // heat reads the advancing field at dy in [-1, 1].
    const Stencil_step step = extract_stencil(kernel_by_name("heat").c_source);
    const Exec_engine heat(step);
    EXPECT_EQ(1, heat.state_halo_up());
    EXPECT_EQ(1, heat.state_halo_down());
    // The halo agrees with the program-wide footprint for a pure-state
    // kernel like heat.
    EXPECT_EQ(-heat.compiled().min_dy(), heat.state_halo_up());
    EXPECT_EQ(heat.compiled().max_dy(), heat.state_halo_down());
}

}  // namespace
}  // namespace islhls
