#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

Kernel_info analyze(const std::string& src) {
    static std::vector<std::unique_ptr<Function_ast>> keep_alive;
    keep_alive.push_back(std::make_unique<Function_ast>(parse_single_function(src)));
    return analyze_kernel(*keep_alive.back());
}

TEST(Sema, classifies_state_and_const_fields) {
    const Kernel_info info = analyze(kernel_by_name("chambolle").c_source);
    EXPECT_EQ(info.kernel_name, "chambolle_step");
    EXPECT_EQ(info.state_field_names(), (std::vector<std::string>{"p1", "p2"}));
    EXPECT_EQ(info.const_field_names(), (std::vector<std::string>{"g"}));
    ASSERT_NE(info.find_field("p1"), nullptr);
    EXPECT_TRUE(info.find_field("p1")->is_state);
    EXPECT_EQ(info.find_field("p1")->out_param, "p1_out");
    EXPECT_FALSE(info.find_field("g")->is_state);
    EXPECT_EQ(info.dim_names, (std::vector<std::string>{"H", "W"}));
}

TEST(Sema, finds_spatial_loop_variables) {
    const Kernel_info info = analyze(kernel_by_name("igf").c_source);
    EXPECT_EQ(info.row_var, "y");
    EXPECT_EQ(info.col_var, "x");
    ASSERT_NE(info.kernel_body, nullptr);
}

TEST(Sema, accepts_preamble_constants) {
    const Kernel_info info = analyze(R"(
void f(float u_out[H][W], const float u[H][W]) {
    const float k = 0.5f;
    for (int y = 0; y < H; y++) {
        const float k2 = k * 2.0f;
        for (int x = 0; x < W; x++) {
            u_out[y][x] = u[y][x] * k2;
        }
    }
}
)");
    EXPECT_EQ(info.preamble.size(), 2u);
}

TEST(Sema, all_builtin_kernels_analyze) {
    for (const Kernel_def& k : all_kernels()) {
        SCOPED_TRACE(k.name);
        const Kernel_info info = analyze(k.c_source);
        EXPECT_EQ(info.state_field_names(), k.state_fields);
        EXPECT_EQ(info.const_field_names(), k.const_fields);
        EXPECT_EQ(info.integer_domain, k.integer_only);
    }
}

TEST(Sema, int_kernel_sets_integer_domain) {
    const Kernel_info info = analyze(R"(
void f(int u_out[H][W], const int u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = u[y][x];
        }
    }
}
)");
    EXPECT_TRUE(info.integer_domain);
    EXPECT_FALSE(analyze(kernel_by_name("igf").c_source).integer_domain);
}

struct Sema_case {
    const char* description;
    const char* source;
};

class Sema_rejects : public ::testing::TestWithParam<Sema_case> {};

TEST_P(Sema_rejects, throws_sema_error) {
    SCOPED_TRACE(GetParam().description);
    EXPECT_THROW(analyze(GetParam().source), Sema_error);
}

INSTANTIATE_TEST_SUITE_P(
    BadKernels, Sema_rejects,
    ::testing::Values(
        Sema_case{"non-void return",
                  "int f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"no outputs",
                  "void f(const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) { float t = u[y][x]; t = t; } }"},
        Sema_case{"output without input pair",
                  "void f(float v_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) v_out[y][x]=u[y][x]; }"},
        Sema_case{"non-const unpaired input",
                  "void f(float u_out[H][W], float u[H][W], float g[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]+g[y][x]; }"},
        Sema_case{"const output",
                  "void f(const float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) { float t=u[y][x]; t=t; } }"},
        Sema_case{"1-D parameter",
                  "void f(float u_out[W], const float u[W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[x]=u[x]; }"},
        Sema_case{"mixed int and float fields",
                  "void f(int u_out[H][W], const int u[H][W], const float g[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"mixed float then int fields",
                  "void f(float u_out[H][W], const float u[H][W], const int g[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"mismatched dims",
                  "void f(float u_out[H][W], const float u[W][H]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"missing inner loop",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) u_out[y][0]=u[y][0]; }"},
        Sema_case{"two loop nests",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; "
                  "  for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"non-unit outer step",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y+=2) for(int x=0;x<W;x++) u_out[y][x]=u[y][x]; }"},
        Sema_case{"same counter twice",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(y=0;y<W;y++) u_out[y][y]=u[y][y]; }"},
        Sema_case{"reads its own output",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) u_out[y][x]=u_out[y][x]; }"},
        Sema_case{"writes an input field",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) { u[y][x] = 1.0f; "
                  "u_out[y][x]=u[y][x]; } }"},
        Sema_case{"non-const preamble variable",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ float k = 0.5f; for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                  "u_out[y][x]=u[y][x]*k; }"},
        Sema_case{"statement between loops",
                  "void f(float u_out[H][W], const float u[H][W]) "
                  "{ for(int y=0;y<H;y++) { u_out[y][0] = 0.0f; for(int x=0;x<W;x++) "
                  "u_out[y][x]=u[y][x]; } }"}));

}  // namespace
}  // namespace islhls
