// Result_cache unit tests: round trips, atomic overwrite, directory
// lifecycle, verify/gc — and the corruption half of the fault contract:
// truncation at EVERY byte boundary and single-bit flips at EVERY bit must
// read back as a miss (quarantined), never as wrong data and never as an
// abort.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>

#include "support/error.hpp"
#include "support/result_cache.hpp"
#include "support/text.hpp"

namespace islhls {
namespace {

namespace fs = std::filesystem;

// Fresh directory per test, removed on teardown.
class Result_cache_test : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = (fs::temp_directory_path() /
                cat("islhls-cache-test-", ::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()))
                   .string();
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

std::string read_raw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_raw(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
}

TEST_F(Result_cache_test, round_trip_and_stats) {
    Result_cache cache(dir_);
    const std::string key = "some key\nwith lines\n";
    const std::string payload = std::string("payload with \0 byte", 19);
    EXPECT_FALSE(cache.load(key).has_value());
    EXPECT_TRUE(cache.store(key, payload));
    const auto loaded = cache.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(*loaded, payload);
    const Result_cache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.stores, 1);
    EXPECT_EQ(stats.store_failures, 0);
    EXPECT_EQ(stats.corrupt_quarantined, 0);
}

TEST_F(Result_cache_test, store_overwrites_and_survives_reopen) {
    {
        Result_cache cache(dir_);
        EXPECT_TRUE(cache.store("k", "old"));
        EXPECT_TRUE(cache.store("k", "new"));
        EXPECT_EQ(cache.load("k").value(), "new");
    }
    // A second process (fresh instance over the same directory) sees it.
    Result_cache reopened(dir_);
    EXPECT_EQ(reopened.load("k").value(), "new");
}

TEST_F(Result_cache_test, empty_key_and_empty_payload) {
    Result_cache cache(dir_);
    EXPECT_TRUE(cache.store("", ""));
    ASSERT_TRUE(cache.load("").has_value());
    EXPECT_EQ(cache.load("").value(), "");
}

TEST_F(Result_cache_test, creates_nested_directory_on_first_use) {
    const std::string nested = dir_ + "/a/b/c";
    Result_cache cache(nested);
    EXPECT_TRUE(cache.store("k", "v"));
    EXPECT_TRUE(fs::is_directory(nested));
}

TEST_F(Result_cache_test, path_is_a_file_is_a_named_io_error) {
    fs::create_directories(dir_);
    write_raw(dir_ + "/blocker", "");
    try {
        Result_cache cache(dir_ + "/blocker");
        FAIL() << "expected Io_error";
    } catch (const Islhls_error& e) {
        EXPECT_EQ(e.kind(), Error_kind::io);
        EXPECT_NE(std::string(e.what()).find("blocker"), std::string::npos);
    }
}

TEST_F(Result_cache_test, unwritable_directory_fails_at_construction) {
    // Tests may run as root (where permission bits do not bind), so
    // unwritability is injected through the hooks seam instead of chmod.
    Env_hooks hooks = real_env_hooks();
    hooks.write_file = [](const std::string&, const std::string&,
                          std::string* error) {
        *error = "No space left on device";
        return false;
    };
    try {
        Result_cache cache(dir_, &hooks);
        FAIL() << "expected Io_error";
    } catch (const Islhls_error& e) {
        EXPECT_EQ(e.kind(), Error_kind::io);
        EXPECT_NE(std::string(e.what()).find("not writable"), std::string::npos);
    }
}

TEST_F(Result_cache_test, enospc_store_is_soft) {
    Env_hooks hooks = real_env_hooks();
    bool fail_writes = false;
    hooks.write_file = [&](const std::string& path, const std::string& data,
                           std::string* error) {
        if (fail_writes) {
            *error = "No space left on device";
            return false;
        }
        return real_env_hooks().write_file(path, data, error);
    };
    Result_cache cache(dir_, &hooks);
    EXPECT_TRUE(cache.store("before", "x"));
    fail_writes = true;
    EXPECT_FALSE(cache.store("during", "y"));
    EXPECT_FALSE(cache.store("during", "y"));
    fail_writes = false;
    // Earlier records are intact, later stores recover.
    EXPECT_EQ(cache.load("before").value(), "x");
    EXPECT_FALSE(cache.load("during").has_value());
    EXPECT_TRUE(cache.store("after", "z"));
    EXPECT_EQ(cache.stats().store_failures, 2);
}

TEST_F(Result_cache_test, truncation_at_every_boundary_is_a_miss) {
    Result_cache cache(dir_);
    const std::string key = "truncation victim";
    const std::string payload = "0123456789 payload body";
    ASSERT_TRUE(cache.store(key, payload));
    const std::string path = cache.record_path(key);
    const std::string intact = read_raw(path);
    ASSERT_GT(intact.size(), 32u);
    for (std::size_t len = 0; len < intact.size(); ++len) {
        write_raw(path, intact.substr(0, len));
        const auto loaded = cache.load(key);
        EXPECT_FALSE(loaded.has_value()) << "truncated to " << len << " bytes";
        // The torn record was quarantined; re-store must succeed cleanly.
        ASSERT_TRUE(cache.store(key, payload));
        EXPECT_EQ(cache.load(key).value(), payload);
    }
    EXPECT_EQ(cache.stats().corrupt_quarantined,
              static_cast<long long>(intact.size()));
}

TEST_F(Result_cache_test, every_single_bit_flip_is_a_miss) {
    Result_cache cache(dir_);
    const std::string key = "bit flip victim";
    const std::string payload = "sensitive payload";
    ASSERT_TRUE(cache.store(key, payload));
    const std::string path = cache.record_path(key);
    const std::string intact = read_raw(path);
    for (std::size_t byte = 0; byte < intact.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string flipped = intact;
            flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
            write_raw(path, flipped);
            const auto loaded = cache.load(key);
            EXPECT_FALSE(loaded.has_value())
                << "bit " << bit << " of byte " << byte;
        }
    }
    write_raw(path, intact);
    EXPECT_EQ(cache.load(key).value(), payload);
}

TEST_F(Result_cache_test, random_garbage_fuzz_never_returns_data) {
    const std::uint64_t seed = std::random_device{}();
    SCOPED_TRACE(cat("seed ", seed));  // printed on failure for replay
    std::mt19937_64 rng(seed);
    Result_cache cache(dir_);
    const std::string key = "garbage victim";
    ASSERT_TRUE(cache.store(key, "real payload"));
    const std::string path = cache.record_path(key);
    for (int round = 0; round < 200; ++round) {
        std::string garbage(rng() % 128, '\0');
        for (char& c : garbage) c = static_cast<char>(rng());
        write_raw(path, garbage);
        const auto loaded = cache.load(key);
        // Either a miss, or — astronomically unlikely — random bytes that
        // form a valid record for this exact key carrying some payload; a
        // wrong payload for a validated record is the one impossible case.
        if (loaded.has_value()) {
            ADD_FAILURE() << "random garbage decoded as a valid record (round "
                          << round << ")";
        }
        ASSERT_TRUE(cache.store(key, "real payload"));
    }
}

TEST_F(Result_cache_test, verify_and_gc) {
    Result_cache cache(dir_);
    ASSERT_TRUE(cache.store("a", "1"));
    ASSERT_TRUE(cache.store("b", "2"));
    ASSERT_TRUE(cache.store("c", "3"));
    // One corrupt record (payload bit flipped, so the checksum catches it),
    // one orphaned temp, one foreign file.
    const std::string victim = cache.record_path("b");
    std::string raw = read_raw(victim);
    raw.back() = static_cast<char>(raw.back() ^ 0x40);
    write_raw(victim, raw);
    write_raw(dir_ + "/0123456789abcdef.rec.tmp7", "torn");
    write_raw(dir_ + "/README", "not a record");

    Result_cache::Verify_report verified = cache.verify(false);
    EXPECT_EQ(verified.records_ok, 2);
    EXPECT_EQ(verified.records_corrupt, 1);
    EXPECT_EQ(verified.temp_files, 1);
    EXPECT_EQ(verified.removed_files, 0);
    ASSERT_EQ(verified.notes.size(), 1u);
    EXPECT_NE(verified.notes[0].find("checksum mismatch"), std::string::npos);

    Result_cache::Verify_report collected = cache.verify(true);
    EXPECT_EQ(collected.records_ok, 2);
    EXPECT_EQ(collected.records_corrupt, 1);
    EXPECT_EQ(collected.removed_files, 2);  // corrupt record + temp orphan

    Result_cache::Verify_report clean = cache.verify(false);
    EXPECT_EQ(clean.records_ok, 2);
    EXPECT_EQ(clean.records_corrupt, 0);
    EXPECT_EQ(clean.temp_files, 0);
    // The foreign file was left alone.
    EXPECT_TRUE(fs::exists(dir_ + "/README"));
    // The survivors still load.
    EXPECT_EQ(cache.load("a").value(), "1");
    EXPECT_EQ(cache.load("c").value(), "3");
    EXPECT_FALSE(cache.load("b").has_value());
}

TEST_F(Result_cache_test, gc_size_budget_evicts_lru_and_keeps_survivors_warm) {
    Result_cache cache(dir_);
    ASSERT_TRUE(cache.store("old", "payload-old"));
    ASSERT_TRUE(cache.store("mid", "payload-mid"));
    ASSERT_TRUE(cache.store("new", "payload-new"));
    // Controlled mtimes so the LRU order is deterministic regardless of the
    // store timestamps' granularity.
    const auto now = fs::last_write_time(cache.record_path("new"));
    using namespace std::chrono_literals;
    fs::last_write_time(cache.record_path("old"), now - 2h);
    fs::last_write_time(cache.record_path("mid"), now - 1h);
    const long long total = cache.verify(false).record_bytes;
    const long long each = total / 3;
    ASSERT_EQ(total, 3 * each);  // equal-size records

    // Without gc the budget is ignored (verify never mutates).
    EXPECT_EQ(cache.verify(false, each).records_evicted, 0);
    EXPECT_EQ(cache.verify(false).records_ok, 3);

    // A budget of two records evicts exactly the oldest.
    Result_cache::Verify_report report = cache.verify(true, 2 * each);
    EXPECT_EQ(report.records_evicted, 1);
    EXPECT_EQ(report.records_ok, 2);
    EXPECT_EQ(report.record_bytes, 2 * each);
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("evicted"), std::string::npos);
    EXPECT_FALSE(fs::exists(cache.record_path("old")));

    // The warm-hit contract holds for the survivors: both still load, and
    // the evicted key degrades to a plain miss.
    EXPECT_EQ(cache.load("mid").value(), "payload-mid");
    EXPECT_EQ(cache.load("new").value(), "payload-new");
    EXPECT_FALSE(cache.load("old").has_value());

    // A budget the records already fit evicts nothing.
    EXPECT_EQ(cache.verify(true, 2 * each).records_evicted, 0);
    // A zero budget clears every valid record.
    EXPECT_EQ(cache.verify(true, 0).records_evicted, 2);
    EXPECT_EQ(cache.verify(false).records_ok, 0);
}

TEST_F(Result_cache_test, quarantine_prevents_rereading_corruption) {
    Result_cache cache(dir_);
    ASSERT_TRUE(cache.store("k", "v"));
    const std::string path = cache.record_path("k");
    write_raw(path, "garbage garbage garbage garbage garbage");
    EXPECT_FALSE(cache.load("k").has_value());
    // The corrupt image was moved aside, not left in place.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_EQ(cache.verify(false).quarantined_files, 1);
    EXPECT_EQ(cache.verify(true).removed_files, 1);
}

TEST_F(Result_cache_test, stale_lock_from_dead_holder_is_taken_over) {
    Env_hooks hooks = real_env_hooks();
    hooks.process_alive = [](std::int64_t) { return false; };  // holder died
    Result_cache cache(dir_, &hooks);
    // A crashed writer's leftover lock file.
    write_raw(cache.lock_path(), "999999 0\n");
    EXPECT_TRUE(cache.store("k", "v"));
    EXPECT_EQ(cache.load("k").value(), "v");
    EXPECT_GE(cache.stats().lock_takeovers, 1);
    EXPECT_EQ(cache.stats().lock_timeouts, 0);
    // The taken-over lock was released after the store.
    EXPECT_FALSE(fs::exists(cache.lock_path()));
}

TEST_F(Result_cache_test, garbage_lock_content_counts_as_stale) {
    Result_cache cache(dir_);
    write_raw(cache.lock_path(), "not a pid stamp\n");
    EXPECT_TRUE(cache.store("k", "v"));
    EXPECT_GE(cache.stats().lock_takeovers, 1);
    EXPECT_FALSE(fs::exists(cache.lock_path()));
}

TEST_F(Result_cache_test, held_lock_times_out_to_an_unlocked_store) {
    // A live, fresh holder that never releases: the contender must give up
    // after the bounded wait and store unlocked rather than wedging. The
    // injected clock advances only through sleep_ms, so the test is instant.
    Env_hooks hooks = real_env_hooks();
    std::int64_t fake_now = 0;
    hooks.now_ms = [&] { return fake_now; };
    hooks.sleep_ms = [&](std::int64_t ms) { fake_now += ms; };
    hooks.process_alive = [](std::int64_t) { return true; };
    Result_cache cache(dir_, &hooks);
    write_raw(cache.lock_path(), "123456 0\n");
    EXPECT_TRUE(cache.store("k", "v"));
    EXPECT_EQ(cache.load("k").value(), "v");
    EXPECT_EQ(cache.stats().lock_timeouts, 1);
    EXPECT_EQ(cache.stats().lock_takeovers, 0);
    // The foreign holder's lock was left untouched.
    EXPECT_EQ(read_raw(cache.lock_path()), "123456 0\n");
}

TEST_F(Result_cache_test, hooks_without_lock_primitives_run_unlocked) {
    Env_hooks hooks = real_env_hooks();
    hooks.create_exclusive = nullptr;
    hooks.process_alive = nullptr;
    Result_cache cache(dir_, &hooks);
    EXPECT_TRUE(cache.store("k", "v"));
    EXPECT_EQ(cache.load("k").value(), "v");
    EXPECT_EQ(cache.verify(true).records_ok, 1);
    EXPECT_FALSE(fs::exists(cache.lock_path()));
}

TEST_F(Result_cache_test, two_processes_store_and_gc_concurrently_without_loss) {
    constexpr int kRecords = 40;
    {
        Result_cache setup(dir_);  // create the directory up front
    }
    std::vector<pid_t> children;
    for (int child = 0; child < 2; ++child) {
        const pid_t pid = ::fork();
        ASSERT_NE(pid, -1);
        if (pid == 0) {
            // Child process: no gtest assertions here — report through the
            // exit status only, and _exit so no parent state unwinds twice.
            int failures = 0;
            try {
                Result_cache cache(dir_);
                for (int i = 0; i < kRecords; ++i) {
                    const std::string key = cat("key-", i);
                    if (!cache.store(key, cat("payload-", child, "-", i))) {
                        ++failures;
                    }
                    // Interleave full gc passes with the other process's
                    // stores: without the directory lock these would sweep
                    // away its in-flight temp files.
                    if (i % 8 == child) cache.verify(true);
                    if (!cache.load(key).has_value()) ++failures;
                }
            } catch (...) {
                failures = 99;
            }
            ::_exit(failures == 0 ? 0 : 1);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0);
    }
    // Every key survives with one of the two writers' payloads, and the
    // directory verifies clean: nothing torn, quarantined or orphaned.
    Result_cache cache(dir_);
    for (int i = 0; i < kRecords; ++i) {
        const auto loaded = cache.load(cat("key-", i));
        ASSERT_TRUE(loaded.has_value()) << "key-" << i << " lost";
        EXPECT_TRUE(*loaded == cat("payload-0-", i) ||
                    *loaded == cat("payload-1-", i))
            << "key-" << i << " holds torn payload '" << *loaded << "'";
    }
    const Result_cache::Verify_report report = cache.verify(false);
    EXPECT_EQ(report.records_ok, kRecords);
    EXPECT_EQ(report.records_corrupt, 0);
    EXPECT_EQ(report.quarantined_files, 0);
    EXPECT_EQ(report.temp_files, 0);
}

TEST_F(Result_cache_test, fnv1a64_reference_values) {
    // Published FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

}  // namespace
}  // namespace islhls
