// Job_queue unit tests: dedup of identical requests, per-attempt deadlines
// on the injected clock, cooperative cancellation, bounded retry with
// backoff for transient faults — and the invariant that drain() never lets
// an exception escape.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "support/error.hpp"
#include "support/job_queue.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"

namespace islhls {
namespace {

// Deterministic clock: now_ms ticks forward by `tick_per_read` on every
// read, sleep_ms advances it by the requested amount (recorded). No real
// time passes anywhere.
struct Fake_clock {
    std::atomic<std::int64_t> now{0};
    std::atomic<std::int64_t> tick_per_read{0};
    std::vector<std::int64_t> sleeps;

    Env_hooks hooks() {
        Env_hooks hooks = real_env_hooks();
        hooks.now_ms = [this] {
            return now.fetch_add(tick_per_read.load()) + tick_per_read.load();
        };
        hooks.sleep_ms = [this](std::int64_t ms) {
            sleeps.push_back(ms);
            now.fetch_add(ms);
        };
        return hooks;
    }
};

TEST(Job_queue, runs_jobs_and_orders_outcomes) {
    Job_queue queue;
    std::vector<std::string> ran;
    queue.submit("a", [&](Job_context&) { ran.push_back("a"); });
    queue.submit("b", [&](Job_context&) { ran.push_back("b"); });
    const std::vector<Job_outcome> outcomes = queue.drain();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].key, "a");
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 1);
    EXPECT_EQ(outcomes[1].key, "b");
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_EQ(ran, (std::vector<std::string>{"a", "b"}));
}

TEST(Job_queue, identical_keys_execute_once) {
    Job_queue queue;
    int executions = 0;
    for (int i = 0; i < 5; ++i) {
        queue.submit("same", [&](Job_context&) { ++executions; });
    }
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_EQ(executions, 1);
    EXPECT_EQ(queue.executed_attempts(), 1);
    ASSERT_EQ(outcomes.size(), 5u);
    EXPECT_FALSE(outcomes[0].deduplicated);
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].ok);
        EXPECT_TRUE(outcomes[i].deduplicated) << i;
    }
}

TEST(Job_queue, transient_failures_retry_with_backoff) {
    Fake_clock clock;
    const Env_hooks hooks = clock.hooks();
    Job_queue_options options;
    options.hooks = &hooks;
    options.retry.max_attempts = 3;
    options.retry.backoff_ms = 100;
    options.retry.backoff_factor = 2.0;
    Job_queue queue(options);
    int attempts_seen = 0;
    queue.submit("flaky", [&](Job_context& job) {
        ++attempts_seen;
        EXPECT_EQ(job.attempt(), attempts_seen);
        if (attempts_seen < 3) throw Io_error("transient fault");
    });
    const std::vector<Job_outcome> outcomes = queue.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 3);
    // Two backoff waits: 100ms, then 200ms.
    ASSERT_EQ(clock.sleeps.size(), 2u);
    EXPECT_EQ(clock.sleeps[0], 100);
    EXPECT_EQ(clock.sleeps[1], 200);
}

TEST(Job_queue, transient_failures_exhaust_into_structured_outcome) {
    Fake_clock clock;
    const Env_hooks hooks = clock.hooks();
    Job_queue_options options;
    options.hooks = &hooks;
    options.retry.max_attempts = 2;
    Job_queue queue(options);
    queue.submit("doomed", [&](Job_context&) { throw Io_error("disk on fire"); });
    const std::vector<Job_outcome> outcomes = queue.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::io);
    EXPECT_EQ(outcomes[0].attempts, 2);
    EXPECT_NE(outcomes[0].message.find("disk on fire"), std::string::npos);
}

TEST(Job_queue, user_errors_never_retry) {
    Job_queue queue;
    int attempts = 0;
    queue.submit("bad", [&](Job_context&) {
        ++attempts;
        throw User_error("bad request");
    });
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_EQ(attempts, 1);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::user);
}

TEST(Job_queue, non_standard_exceptions_are_internal) {
    Job_queue queue;
    queue.submit("weird", [&](Job_context&) { throw 42; });
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::internal);
}

TEST(Job_queue, stuck_job_times_out_at_checkpoint) {
    Fake_clock clock;
    clock.tick_per_read = 50;  // every clock read advances 50ms
    const Env_hooks hooks = clock.hooks();
    Job_queue_options options;
    options.hooks = &hooks;
    options.deadline_ms = 10;
    options.retry.max_attempts = 2;
    Job_queue queue(options);
    int checkpoints_survived = 0;
    queue.submit("stuck", [&](Job_context& job) {
        for (;;) {  // a job that would never finish on its own
            job.checkpoint();
            ++checkpoints_survived;
        }
    });
    const std::vector<Job_outcome> outcomes = queue.drain();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::timeout);
    EXPECT_EQ(outcomes[0].attempts, 2);  // timeouts are transient: retried once
    EXPECT_EQ(checkpoints_survived, 0);
    EXPECT_NE(outcomes[0].message.find("deadline"), std::string::npos);
}

TEST(Job_queue, deadline_leaves_fast_jobs_alone) {
    Fake_clock clock;
    clock.tick_per_read = 1;
    const Env_hooks hooks = clock.hooks();
    Job_queue_options options;
    options.hooks = &hooks;
    options.deadline_ms = 1000;
    Job_queue queue(options);
    queue.submit("fast", [&](Job_context& job) {
        for (int i = 0; i < 10; ++i) job.checkpoint();
    });
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].attempts, 1);
}

TEST(Job_queue, cancel_all_fails_pending_jobs_fast) {
    Job_queue queue;
    int second_ran = 0;
    queue.submit("canceller", [&](Job_context&) { queue.cancel_all(); });
    queue.submit("victim", [&](Job_context&) { ++second_ran; });
    const std::vector<Job_outcome> outcomes = queue.drain();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].ok);  // completed before the flag was checked
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].kind, Error_kind::user);
    EXPECT_EQ(second_ran, 0);
    // The queue resets after drain: new submissions run normally.
    queue.submit("next", [&](Job_context&) { ++second_ran; });
    EXPECT_TRUE(queue.drain()[0].ok);
    EXPECT_EQ(second_ran, 1);
}

TEST(Job_queue, running_job_observes_cancellation_at_checkpoint) {
    Job_queue queue;
    queue.submit("self-cancel", [&](Job_context& job) {
        queue.cancel_all();
        job.checkpoint();  // must throw; the loop below must not run
        ADD_FAILURE() << "checkpoint did not observe cancellation";
    });
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::user);
    EXPECT_NE(outcomes[0].message.find("cancelled"), std::string::npos);
}

TEST(Job_queue, pool_mode_completes_every_job) {
    Thread_pool pool(4);
    Job_queue_options options;
    options.pool = &pool;
    Job_queue queue(options);
    std::atomic<int> ran{0};
    for (int i = 0; i < 32; ++i) {
        queue.submit(cat("job-", i), [&](Job_context&) { ++ran; });
    }
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(outcomes.size(), 32u);
    for (const Job_outcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);
}

TEST(Job_queue, queue_is_reusable_after_drain) {
    Job_queue queue;
    queue.submit("first", [](Job_context&) {});
    EXPECT_EQ(queue.drain().size(), 1u);
    // Same key again: a NEW job (the dedup window is one drain).
    int ran = 0;
    queue.submit("first", [&](Job_context&) { ++ran; });
    const std::vector<Job_outcome> outcomes = queue.drain();
    EXPECT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].deduplicated);
    EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace islhls
