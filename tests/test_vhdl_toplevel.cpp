// Top-level architecture emitter: structural invariants.
#include <gtest/gtest.h>

#include "backend/vhdl_toplevel.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

class Toplevel_fixture : public ::testing::Test {
protected:
    Toplevel_fixture()
        : library(extract_stencil(kernel_by_name("igf").c_source), "igf") {}
    Cone_library library;
};

TEST_F(Toplevel_fixture, entity_name_encodes_geometry) {
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {2, 5};
    EXPECT_EQ(toplevel_entity_name("igf", instance), "islhls_igf_top_w4_l2x5");
}

TEST_F(Toplevel_fixture, one_cone_instance_per_depth_class) {
    Arch_instance instance;
    instance.window = 3;
    instance.level_depths = {3, 3, 3, 1};  // classes {3, 1}
    const std::string vhdl = emit_architecture_toplevel(library, instance);
    const Toplevel_structure s = analyze_toplevel(vhdl);
    EXPECT_EQ(s.cone_instances, 2);
    // Single-class architecture -> one instance.
    Arch_instance uniform;
    uniform.window = 3;
    uniform.level_depths = {2, 2};
    EXPECT_EQ(analyze_toplevel(emit_architecture_toplevel(library, uniform))
                  .cone_instances,
              1);
}

TEST_F(Toplevel_fixture, has_buffers_fsm_and_streams) {
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {2, 2};
    const std::string vhdl = emit_architecture_toplevel(library, instance);
    const Toplevel_structure s = analyze_toplevel(vhdl);
    EXPECT_EQ(s.buffer_declarations, 3);  // current / next / output staging
    EXPECT_EQ(s.fsm_states, 6);           // idle load exec drain store done
    EXPECT_TRUE(s.has_stream_in);
    EXPECT_TRUE(s.has_stream_out);
    // References the cone entity by its canonical name.
    EXPECT_NE(vhdl.find("entity work.islhls_igf_w4x4_d2"), std::string::npos);
    // Documents the level schedule.
    EXPECT_NE(vhdl.find("level 1: depth-2 cone"), std::string::npos);
    EXPECT_NE(vhdl.find("level 2: depth-2 cone"), std::string::npos);
}

TEST_F(Toplevel_fixture, word_counts_match_coverage_geometry) {
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {5, 5};
    const std::string vhdl = emit_architecture_toplevel(library, instance);
    // Input coverage for w=4, N=10, r=1 is 24x24, one field.
    EXPECT_NE(vhdl.find("input coverage 24x24 (576 words"), std::string::npos);
    EXPECT_NE(vhdl.find("output 4x4 (16 words)"), std::string::npos);
    EXPECT_NE(vhdl.find("COV_SIDE   : integer := 24"), std::string::npos);
}

TEST_F(Toplevel_fixture, multifield_kernels_size_fields) {
    Cone_library chamb(extract_stencil(kernel_by_name("chambolle").c_source),
                       "chambolle");
    Arch_instance instance;
    instance.window = 2;
    instance.level_depths = {1};
    const std::string vhdl = emit_architecture_toplevel(chamb, instance);
    EXPECT_NE(vhdl.find("FIELDS     : integer := 3"), std::string::npos);
    // Output words = 2x2 window * 2 state fields.
    EXPECT_NE(vhdl.find("output 2x2 (8 words)"), std::string::npos);
}

TEST_F(Toplevel_fixture, rejects_malformed_instances) {
    Arch_instance bad;
    bad.window = 0;
    bad.level_depths = {1};
    EXPECT_THROW(emit_architecture_toplevel(library, bad), Internal_error);
    bad.window = 2;
    bad.level_depths = {};
    EXPECT_THROW(emit_architecture_toplevel(library, bad), Internal_error);
}

}  // namespace
}  // namespace islhls
