// Fixed-point tape engine equivalence: the integer-lowered tape (Fixed_tape
// scalar path and Fixed_exec batched path) must be byte-identical to the
// run_fixed_raw reference interpreter for every kernel and format — the
// same memcmp contract the double engine holds against run_ir_reference.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cone/cone.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/fixed_exec.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

// Formats spanning the interesting widths: the Q10.6 default, a narrow
// format whose adds/multiplies genuinely wrap (Q3.2 saturates 0..255 inputs
// at +/-4 and overflows products), an asymmetric pair, and a wide format
// where ops stay in range (the wrap must then be the identity).
const std::vector<Fixed_format>& test_formats() {
    static const std::vector<Fixed_format> formats = {
        {10, 6}, {3, 2}, {4, 4}, {12, 2}, {16, 12}};
    return formats;
}

// Raw per-sample input vectors for `count` window origins of the kernel's
// initial frame set, quantized like the production callers quantize them.
std::vector<std::vector<std::int64_t>> gather_raw_inputs(
    const Register_program& program, const Stencil_step& step,
    const Frame_set& content, Boundary boundary, const Fixed_format& fmt,
    int count, std::uint64_t seed) {
    Prng rng(seed);
    const Raw_quantizer quantize(fmt);
    std::vector<std::vector<std::int64_t>> sets;
    for (int s = 0; s < count; ++s) {
        const int ox = rng.next_int(0, content.width() - 1);
        const int oy = rng.next_int(0, content.height() - 1);
        std::vector<std::int64_t> raw;
        raw.reserve(program.input_ports().size());
        for (const auto& port : program.input_ports()) {
            const Frame& f = content.field(step.pool().field_name(port.field));
            raw.push_back(quantize(f.sample(ox + port.dx, oy + port.dy, boundary)));
        }
        sets.push_back(std::move(raw));
    }
    return sets;
}

// Checks both compiled paths against the interpreter on the given samples:
// the Fixed_tape scalar path slot for slot, and the Fixed_exec batch in one
// memcmp over the whole output array.
void expect_tape_matches_interpreter(
    const Register_program& program, const Fixed_format& fmt,
    const std::vector<std::vector<std::int64_t>>& input_sets) {
    const std::size_t in_count = program.input_ports().size();
    const std::size_t out_count = program.outputs().size();
    const std::size_t samples = input_sets.size();

    // Reference: one interpreter run per sample.
    std::vector<std::int64_t> expected;
    expected.reserve(samples * out_count);
    for (const auto& inputs : input_sets) {
        const std::vector<std::int64_t> out = run_fixed_raw(program, inputs, fmt);
        expected.insert(expected.end(), out.begin(), out.end());
    }

    // Scalar tape path.
    const Fixed_tape tape(program.compiled(), fmt);
    std::vector<std::int64_t> slots(
        static_cast<std::size_t>(program.compiled().slot_count()));
    for (std::size_t s = 0; s < samples; ++s) {
        tape.eval_point(input_sets[s].data(), slots.data());
        for (std::size_t o = 0; o < out_count; ++o) {
            ASSERT_EQ(slots[static_cast<std::size_t>(
                          program.compiled().output_slots()[o])],
                      expected[s * out_count + o])
                << to_string(fmt) << " sample " << s << " output " << o;
        }
    }

    // Batched path, whole batch in one pass.
    std::vector<std::int64_t> flat(samples * in_count);
    for (std::size_t s = 0; s < samples; ++s) {
        std::copy(input_sets[s].begin(), input_sets[s].end(),
                  flat.begin() + s * in_count);
    }
    const Fixed_exec exec(program, fmt);
    Fixed_exec::Scratch scratch;
    std::vector<std::int64_t> batched(samples * out_count, -1);
    exec.run_raw_batch(flat.data(), samples, batched.data(), scratch);
    EXPECT_EQ(std::memcmp(batched.data(), expected.data(),
                          expected.size() * sizeof(std::int64_t)),
              0)
        << to_string(fmt);
}

TEST(Fixed_tape, matches_interpreter_on_all_kernels_and_formats) {
    for (const std::string& name : kernel_names()) {
        SCOPED_TRACE(name);
        const Kernel_def& kernel = kernel_by_name(name);
        Stencil_step step = extract_stencil(kernel.c_source);
        const Cone cone(step, Cone_spec{2, 2, 1});
        const Frame_set content =
            kernel.make_initial(make_synthetic_scene(19, 15, 77));
        for (const Fixed_format& fmt : test_formats()) {
            SCOPED_TRACE(to_string(fmt));
            const auto inputs = gather_raw_inputs(cone.program(), step, content,
                                                  kernel.boundary, fmt, 70, 5);
            expect_tape_matches_interpreter(cone.program(), fmt, inputs);
        }
    }
}

TEST(Fixed_tape, matches_interpreter_on_deep_cones) {
    // Deeper cones (chambolle exercises sqrt and the truncating divide, igf
    // the multiply shift) over a larger program.
    for (const std::string& name : {std::string("igf"), std::string("chambolle")}) {
        SCOPED_TRACE(name);
        const Kernel_def& kernel = kernel_by_name(name);
        Stencil_step step = extract_stencil(kernel.c_source);
        const Cone cone(step, Cone_spec{3, 3, 2});
        const Frame_set content =
            kernel.make_initial(make_synthetic_scene(17, 13, 3));
        for (const Fixed_format& fmt : test_formats()) {
            SCOPED_TRACE(to_string(fmt));
            const auto inputs = gather_raw_inputs(cone.program(), step, content,
                                                  kernel.boundary, fmt, 40, 11);
            expect_tape_matches_interpreter(cone.program(), fmt, inputs);
        }
    }
}

TEST(Fixed_tape, negative_divide_sqrt_and_wrap_edge_cases) {
    // A kernel built to hit the nasty operator corners: differences go
    // negative (truncating divide toward zero, abs, neg), the guarded
    // divide's denominator crosses zero, sqrt sees negative arguments, and
    // min/max/compare/select mix in.
    const char* source = R"(
void edges_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float d = u[y][x-1] - u[y][x+1];
            float q = d / (0.5f + fabsf(u[y-1][x]));
            float r = sqrtf(d);
            float m = fminf(u[y][x], -u[y+1][x]) + fmaxf(d, q);
            u_out[y][x] = (d < 0.0f ? r - m : q + m) + (u[y][x] - 127.0f);
        }
    }
}
)";
    Stencil_step step = extract_stencil(source);
    const Cone cone(step, Cone_spec{2, 2, 2});
    Frame_set content(13, 11);
    content.add_field("u", make_noise(13, 11, 0xEDBE, -300.0, 300.0));
    for (const Fixed_format& fmt : test_formats()) {
        SCOPED_TRACE(to_string(fmt));
        const auto inputs = gather_raw_inputs(cone.program(), step, content,
                                              Boundary::mirror, fmt, 60, 23);
        expect_tape_matches_interpreter(cone.program(), fmt, inputs);
    }
}

TEST(Fixed_tape, out_of_range_raw_inputs_wrap_like_the_interpreter) {
    // Both paths must wrap-resize raw input words on load (VHDL resize of a
    // wider bus), not just quantized in-range values.
    const Kernel_def& kernel = kernel_by_name("jacobi");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Fixed_format fmt{6, 2};
    Prng rng(99);
    std::vector<std::vector<std::int64_t>> sets;
    for (int s = 0; s < 40; ++s) {
        std::vector<std::int64_t> raw;
        for (std::size_t i = 0; i < cone.program().input_ports().size(); ++i) {
            // Far outside the 8-bit range, both signs.
            raw.push_back(static_cast<std::int64_t>(rng.next_int(-2000000, 2000000)) *
                          1021);
        }
        sets.push_back(std::move(raw));
    }
    expect_tape_matches_interpreter(cone.program(), fmt, sets);
}

TEST(Fixed_exec, partial_and_multi_block_batches) {
    // Batch sizes around the lane width: 1, kLane - 1, kLane, kLane + 1 and
    // several full blocks plus a remainder.
    const Kernel_def& kernel = kernel_by_name("heat");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Frame_set content = kernel.make_initial(make_synthetic_scene(23, 17, 4));
    const Fixed_format fmt{10, 6};
    for (int samples : {1, Fixed_exec::kLane - 1, Fixed_exec::kLane,
                        Fixed_exec::kLane + 1, 3 * Fixed_exec::kLane + 7}) {
        SCOPED_TRACE(samples);
        const auto inputs = gather_raw_inputs(cone.program(), step, content,
                                              kernel.boundary, fmt, samples, 31);
        expect_tape_matches_interpreter(cone.program(), fmt, inputs);
    }
}

TEST(Fixed_exec, scratch_is_reusable_across_formats_and_programs) {
    // One Scratch object serving programs of different slot counts and
    // formats of different widths must not leak state between runs.
    const Kernel_def& igf = kernel_by_name("igf");
    Stencil_step igf_step = extract_stencil(igf.c_source);
    const Cone big(igf_step, Cone_spec{3, 3, 2});
    const Cone small(igf_step, Cone_spec{1, 1, 1});
    const Frame_set content = igf.make_initial(make_synthetic_scene(19, 15, 6));
    Fixed_exec::Scratch scratch;
    for (const Cone* cone : {&big, &small, &big}) {
        for (const Fixed_format& fmt : test_formats()) {
            const auto inputs = gather_raw_inputs(cone->program(), igf_step, content,
                                                  igf.boundary, fmt, 33, 13);
            const std::size_t in_count = cone->program().input_ports().size();
            const std::size_t out_count = cone->program().outputs().size();
            std::vector<std::int64_t> flat(inputs.size() * in_count);
            for (std::size_t s = 0; s < inputs.size(); ++s) {
                std::copy(inputs[s].begin(), inputs[s].end(),
                          flat.begin() + s * in_count);
            }
            const Fixed_exec exec(cone->program(), fmt);
            std::vector<std::int64_t> batched(inputs.size() * out_count);
            exec.run_raw_batch(flat.data(), inputs.size(), batched.data(), scratch);
            for (std::size_t s = 0; s < inputs.size(); ++s) {
                const std::vector<std::int64_t> expected =
                    run_fixed_raw(cone->program(), inputs[s], fmt);
                ASSERT_EQ(std::memcmp(expected.data(), batched.data() + s * out_count,
                                      out_count * sizeof(std::int64_t)),
                          0)
                    << to_string(cone->spec()) << " " << to_string(fmt);
            }
        }
    }
}

TEST(Fixed_tape, constants_are_prequantized) {
    const Kernel_def& kernel = kernel_by_name("heat");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{1, 1, 1});
    const Fixed_format fmt{8, 4};
    const Fixed_tape tape(cone.program().compiled(), fmt);
    const auto& constants = cone.program().compiled().constants();
    ASSERT_EQ(tape.constant_raw().size(), constants.size());
    for (std::size_t i = 0; i < constants.size(); ++i) {
        EXPECT_EQ(tape.constant_raw()[i], to_raw(constants[i].value, fmt));
    }
    EXPECT_EQ(tape.fixed_one(), to_raw(1.0, fmt));
    EXPECT_EQ(tape.wrap().bits(), fmt.total_bits());
}

}  // namespace
}  // namespace islhls
