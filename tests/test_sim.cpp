// Simulation substrate: golden runners, ghost semantics, the bit-accurate
// fixed-point executor and the full architecture simulator.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "sim/fixed_exec.hpp"
#include "sim/golden.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"
#include "kernels/kernels.hpp"

namespace islhls {
namespace {

TEST(Golden, pad_and_crop_are_inverse) {
    const Frame f = make_noise(7, 5, 3);
    const Frame padded = pad_frame(f, 2, 3, 1, 4, Boundary::clamp);
    EXPECT_EQ(padded.width(), 12);
    EXPECT_EQ(padded.height(), 10);
    EXPECT_EQ(crop_frame(padded, 2, 3, 1, 4), f);
    // Apron values follow the boundary policy.
    EXPECT_EQ(padded.at(0, 1), f.at(0, 0));
}

TEST(Golden, ghost_equals_periteration_on_interior) {
    const Kernel_def& kernel = kernel_by_name("igf");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_synthetic_scene(24, 18, 11);
    const Frame_set initial = kernel.make_initial(content);
    const int iterations = 3;
    const Frame_set ghost = run_ghost_ir(step, initial, iterations, kernel.boundary);
    const Frame_set direct = run_ir(step, initial, iterations, kernel.boundary);
    // Interior elements (further than N*reach from the border) agree exactly.
    const int margin = iterations * step.max_reach();
    const Frame& a = ghost.field("u");
    const Frame& b = direct.field("u");
    for (int y = margin; y < 18 - margin; ++y) {
        for (int x = margin; x < 24 - margin; ++x) {
            EXPECT_EQ(a.at(x, y), b.at(x, y)) << x << "," << y;
        }
    }
}

TEST(Golden, ghost_native_matches_ghost_ir) {
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_noise(16, 12, 21, 0.0, 255.0);
    const Frame_set initial = kernel.make_initial(content);
    const Frame_set a = run_ghost_ir(step, initial, 2, kernel.boundary);
    const Frame_set b = run_ghost_native(kernel, initial, 2);
    for (const std::string& field : kernel.state_fields) {
        EXPECT_EQ(max_abs_diff(a.field(field), b.field(field)), 0.0) << field;
    }
}

// --- fixed-point executor ----------------------------------------------------------

TEST(Fixed_exec, wrap_matches_vhdl_resize) {
    EXPECT_EQ(wrap_to_bits(5, 8), 5);
    EXPECT_EQ(wrap_to_bits(127, 8), 127);
    EXPECT_EQ(wrap_to_bits(128, 8), -128);  // overflow wraps
    EXPECT_EQ(wrap_to_bits(-129, 8), 127);
    EXPECT_EQ(wrap_to_bits(256, 8), 0);
    EXPECT_EQ(wrap_to_bits(-1, 8), -1);
}

TEST(Fixed_exec, isqrt_floor_values) {
    EXPECT_EQ(isqrt_floor(0), 0);
    EXPECT_EQ(isqrt_floor(1), 1);
    EXPECT_EQ(isqrt_floor(3), 1);
    EXPECT_EQ(isqrt_floor(4), 2);
    EXPECT_EQ(isqrt_floor(99), 9);
    EXPECT_EQ(isqrt_floor(100), 10);
    EXPECT_EQ(isqrt_floor(-5), 0);
    EXPECT_EQ(isqrt_floor(1LL << 40), 1LL << 20);
}

// Property: isqrt_floor(v)^2 <= v < (isqrt_floor(v)+1)^2.
class Isqrt_property : public ::testing::TestWithParam<int> {};

TEST_P(Isqrt_property, floor_property_holds) {
    Prng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = static_cast<std::int64_t>(rng.next_u64() % (1ULL << 40));
        const std::int64_t r = isqrt_floor(v);
        EXPECT_LE(r * r, v);
        EXPECT_GT((r + 1) * (r + 1), v);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Isqrt_property, ::testing::Range(1, 5));

TEST(Fixed_exec, tracks_double_execution_within_tolerance) {
    const Kernel_def& kernel = kernel_by_name("igf");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{2, 2, 2});
    const Register_program& prog = cone.program();
    // Guard bits cover the unscaled binomial sums (up to 255*16).
    const Fixed_format fmt{14, 6};
    Prng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> inputs;
        for (int i = 0; i < prog.input_count(); ++i) {
            inputs.push_back(quantize(rng.next_in(0.0, 255.0), fmt));
        }
        const auto exact = prog.run(inputs);
        const auto fixed = run_fixed(prog, inputs, fmt);
        for (std::size_t o = 0; o < exact.size(); ++o) {
            // Binomial filter of depth 2: error accumulates over ~2 levels of
            // truncating multiplies; stay within a generous bound.
            EXPECT_NEAR(fixed[o], exact[o], 0.25) << trial;
        }
    }
}

TEST(Fixed_exec, division_by_zero_yields_zero_like_the_hardware) {
    Expr_pool pool;
    const int u = pool.intern_field("u");
    const Expr_id q = pool.div(pool.input(u, 0, 0), pool.input(u, 1, 0));
    const Register_program prog = build_program(pool, {q});
    const Fixed_format fmt{10, 6};
    const auto out = run_fixed(prog, {5.0, 0.0}, fmt);
    EXPECT_EQ(out[0], 0.0);
}

// --- architecture simulator -----------------------------------------------------------

// The end-to-end property: the architecture computes exactly the ghost golden
// for every kernel and several instances.
struct Arch_case {
    const char* kernel;
    int window;
    std::vector<int> levels;
};

class Arch_equivalence : public ::testing::TestWithParam<Arch_case> {};

TEST_P(Arch_equivalence, architecture_equals_ghost_golden) {
    const Arch_case& c = GetParam();
    const Kernel_def& kernel = kernel_by_name(c.kernel);
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    const int iterations =
        std::accumulate(c.levels.begin(), c.levels.end(), 0);

    const Frame content = make_synthetic_scene(26, 19, 7);
    const Frame_set initial = kernel.make_initial(content);
    const Frame_set golden =
        run_ghost_ir(library.step(), initial, iterations, kernel.boundary);

    Arch_instance instance;
    instance.window = c.window;
    instance.level_depths = c.levels;
    Arch_sim_options options;
    options.boundary = kernel.boundary;
    const Arch_sim_result result =
        simulate_architecture(library, instance, initial, options);

    for (const std::string& field : kernel.state_fields) {
        SCOPED_TRACE(field);
        EXPECT_EQ(max_abs_diff(result.final_state.field(field), golden.field(field)),
                  0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Arch_equivalence,
    ::testing::Values(Arch_case{"igf", 4, {2, 2}}, Arch_case{"igf", 3, {3, 1}},
                      Arch_case{"igf", 5, {1, 1, 1}}, Arch_case{"igf", 7, {4}},
                      Arch_case{"chambolle", 4, {2, 1}},
                      Arch_case{"chambolle", 3, {1, 1, 1}},
                      Arch_case{"jacobi", 6, {3, 2, 1}},
                      Arch_case{"heat", 4, {2, 2, 2}}, Arch_case{"mean", 2, {2}},
                      Arch_case{"erosion", 5, {2, 2}},
                      Arch_case{"perona_malik", 3, {2, 1}},
                      Arch_case{"shock", 4, {1, 2}},
                      Arch_case{"life", 3, {2, 1}}),
    [](const auto& info) {
        std::string name = info.param.kernel;
        name += "_w";
        name += std::to_string(info.param.window);
        for (int d : info.param.levels) {
            name += "_";
            name += std::to_string(d);
        }
        return name;
    });

TEST(Arch_sim, transfer_stats_match_geometry) {
    const Kernel_def& kernel = kernel_by_name("jacobi");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {2};
    const Frame content = make_gradient(16, 8);
    const Frame_set initial = kernel.make_initial(content);
    const Arch_sim_result r = simulate_architecture(library, instance, initial, {});
    // 16x8 frame, 4x4 windows -> 4*2 = 8 windows.
    EXPECT_EQ(r.stats.output_windows, 8);
    // Each window reads its (4+2*2)^2 input coverage once.
    EXPECT_EQ(r.stats.offchip_elements_read, 8 * 8 * 8);
    EXPECT_EQ(r.stats.offchip_elements_written, 16 * 8);
    EXPECT_GT(r.stats.cone_executions, 0);
    EXPECT_GT(r.stats.operations_executed, 0);
    EXPECT_GT(r.stats.ops_per_output_element(16 * 8), 0.0);
}

TEST(Arch_sim, fixed_point_mode_close_to_double) {
    const Kernel_def& kernel = kernel_by_name("igf");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 4;
    instance.level_depths = {2};
    const Frame content = make_synthetic_scene(16, 12, 3);
    const Frame_set initial = kernel.make_initial(content);

    const Arch_sim_result exact = simulate_architecture(library, instance, initial, {});
    Arch_sim_options fx;
    fx.fixed_point = true;
    // The binomial sum reaches 255*16 before the final scaling, so the
    // format needs integer guard bits beyond the 8-bit data range.
    fx.format = Fixed_format{14, 6};
    const Arch_sim_result quantized =
        simulate_architecture(library, instance, initial, fx);
    const double err = max_abs_diff(exact.final_state.field("u"),
                                    quantized.final_state.field("u"));
    EXPECT_GT(err, 0.0);   // quantization is visible...
    EXPECT_LT(err, 1.0);   // ...but bounded (Q10.6 on 8-bit data, depth 2)
    EXPECT_GT(psnr(exact.final_state.field("u"), quantized.final_state.field("u")),
              45.0);
}

TEST(Arch_sim, lane_batched_region_rows_exact_in_both_domains) {
    // Region rows wider than one lane block (kTapeLane = 64 cone origins)
    // force the batched region executor through a full lane block plus a
    // partial tail; both domains must still reproduce their ghost goldens
    // exactly (0 LSB), and the batching must be invisible in the stats-free
    // output either way.
    const Kernel_def& kernel = kernel_by_name("heat");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 72;  // depth-2 coverage is 76 wide -> 72 origins per row
    instance.level_depths = {2};
    const int iterations = 2;
    const Frame content = make_synthetic_scene(96, 20, 5);
    const Frame_set initial = kernel.make_initial(content);

    Arch_sim_options options;
    options.boundary = kernel.boundary;
    const Arch_sim_result dbl =
        simulate_architecture(library, instance, initial, options);
    const Frame_set golden =
        run_ghost_ir(library.step(), initial, iterations, kernel.boundary);
    for (const std::string& field : kernel.state_fields) {
        SCOPED_TRACE(field);
        EXPECT_EQ(
            max_abs_diff(dbl.final_state.field(field), golden.field(field)), 0.0);
    }

    Arch_sim_options fx = options;
    fx.fixed_point = true;
    fx.format = Fixed_format{12, 6};
    const Arch_sim_result fixed =
        simulate_architecture(library, instance, initial, fx);
    const Frame_set fixed_golden =
        run_ghost_ir(library.step(), initial, iterations, kernel.boundary,
                     fx.format)
            .to_frame_set();
    for (const std::string& field : kernel.state_fields) {
        SCOPED_TRACE(field);
        EXPECT_EQ(max_abs_diff(fixed.final_state.field(field),
                               fixed_golden.field(field)),
                  0.0);
    }
}

TEST(Arch_sim, window_larger_than_frame_is_handled) {
    const Kernel_def& kernel = kernel_by_name("jacobi");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 8;
    instance.level_depths = {1};
    const Frame content = make_gradient(5, 3);
    const Frame_set initial = kernel.make_initial(content);
    const Arch_sim_result r = simulate_architecture(library, instance, initial, {});
    const Frame_set golden = run_ghost_ir(library.step(), initial, 1, kernel.boundary);
    EXPECT_EQ(max_abs_diff(r.final_state.field("u"), golden.field("u")), 0.0);
    EXPECT_EQ(r.stats.output_windows, 1);
}

}  // namespace
}  // namespace islhls
