// Format search as a DSE axis: the per-(window, depth) format grid, the
// per-architecture format column of the sweep report, the width-monotone
// area re-pricing, and the fixed-mode golden validation against the integer
// frame engine.
#include <gtest/gtest.h>

#include <string>

#include "core/sweep.hpp"
#include "support/error.hpp"
#include "dse/explorer.hpp"
#include "estimate/format_search.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {
namespace {

TEST(Format_dse, explorer_grid_matches_standalone_search_and_is_thread_invariant) {
    const Kernel_def& kernel = kernel_by_name("igf");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    const Fpga_device& device = device_by_name("xc6vlx760");
    Evaluator_options evaluator_options;
    Space_options space;
    space.iterations = 4;
    space.max_window = 3;
    space.max_depth = 2;
    const Frame_set content = kernel.make_initial(make_synthetic_scene(32, 24, 8));
    Format_search_options options;
    options.target_psnr_db = 45.0;

    Explorer explorer(library, device, evaluator_options, space);
    const Explorer::Format_grid grid =
        explorer.search_formats(content, kernel.boundary, options);
    ASSERT_EQ(grid.cells.size(), 6u);

    // Every cell equals the standalone per-cone search (the grid adds
    // fan-out, never different numerics).
    Format_search_options serial = options;
    serial.threads = 1;
    for (const Explorer::Format_cell& cell : grid.cells) {
        SCOPED_TRACE(cat("w", cell.window, " d", cell.depth));
        const Format_search_result direct = search_fixed_format(
            library.cone(cell.window, cell.depth), content, kernel.boundary, serial);
        EXPECT_EQ(cell.result.format, direct.format);
        EXPECT_EQ(cell.result.psnr_db, direct.psnr_db);
        EXPECT_EQ(cell.result.max_abs_value, direct.max_abs_value);
        EXPECT_EQ(cell.result.formats_tried, direct.formats_tried);
        EXPECT_EQ(cell.result.satisfiable, direct.satisfiable);
        // Deeper cones grow the dynamic range, never shrink it: at fixed
        // window, depth-2 needs at least depth-1's integer bits.
        if (cell.depth == 2) {
            const Explorer::Format_cell& shallower =
                grid.at(cell.window, 1, space.max_depth);
            EXPECT_GE(cell.result.format.integer_bits,
                      shallower.result.format.integer_bits);
        }
    }

    // Thread-count invariance of the whole grid, via the dump serialization.
    Space_options threaded = space;
    threaded.threads = 4;
    Explorer parallel_explorer(library, device, evaluator_options, threaded);
    EXPECT_EQ(dump(grid), dump(parallel_explorer.search_formats(
                              content, kernel.boundary, options)));
}

TEST(Format_dse, estimated_area_is_monotone_in_word_width) {
    // The whole point of the per-architecture format column: narrower words
    // mean cheaper operators everywhere in the area model, so the estimated
    // area must shrink monotonically with the format width.
    const Kernel_def& kernel = kernel_by_name("heat");
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    const Fpga_device& device = device_by_name("xc6vlx760");
    Arch_instance instance;
    instance.window = 3;
    instance.level_depths = {2, 1};
    instance.cores_per_depth[1] = 1;
    instance.cores_per_depth[2] = 1;

    const Fixed_format formats[] = {{20, 12}, {12, 8}, {10, 6}, {6, 2}};
    double previous = 0.0;
    for (std::size_t i = 0; i < std::size(formats); ++i) {
        SCOPED_TRACE(to_string(formats[i]));
        Evaluator_options options;
        options.format = formats[i];
        options.synth.format = formats[i];
        const Arch_evaluator evaluator(library, device, options);
        const double area = evaluator.evaluate(instance).estimated_area_luts;
        ASSERT_GT(area, 0.0);
        if (i > 0) {
            EXPECT_LT(area, previous);
        }
        previous = area;
    }
}

TEST(Format_dse, fps_is_monotone_in_word_width) {
    // The other half of the full per-format evaluation: narrower operators
    // are faster, so f_max — and with it fps — must not drop when the word
    // shrinks, and must strictly rise across a wide-to-narrow span while the
    // design stays below the device clock cap.
    const Fixed_format formats[] = {{24, 16}, {12, 8}, {10, 6}, {6, 2}};
    for (const char* name : {"heat", "jacobi"}) {
        SCOPED_TRACE(name);
        const Kernel_def& kernel = kernel_by_name(name);
        Cone_library library(extract_stencil(kernel.c_source), kernel.name);
        const Fpga_device& device = device_by_name("xc6vlx760");
        Arch_instance instance;
        instance.window = 3;
        instance.level_depths = {2, 1};
        instance.cores_per_depth[1] = 1;
        instance.cores_per_depth[2] = 1;

        double previous_fps = 0.0;
        double previous_f_max = 0.0;
        for (std::size_t i = 0; i < std::size(formats); ++i) {
            SCOPED_TRACE(to_string(formats[i]));
            Evaluator_options options;
            options.format = formats[i];
            options.synth.format = formats[i];
            const Arch_evaluator evaluator(library, device, options);
            const Arch_evaluation eval = evaluator.evaluate(instance);
            ASSERT_GT(eval.throughput.fps, 0.0);
            if (i > 0) {
                EXPECT_GE(eval.throughput.fps, previous_fps);
                EXPECT_GE(eval.f_max_mhz, previous_f_max);
            }
            previous_fps = eval.throughput.fps;
            previous_f_max = eval.f_max_mhz;
        }

        // End to end the shrink buys real throughput, not just a tie at the
        // device clock cap.
        Evaluator_options wide;
        wide.format = formats[0];
        wide.synth.format = formats[0];
        const double wide_fps =
            Arch_evaluator(library, device, wide).evaluate(instance).throughput.fps;
        EXPECT_GT(previous_fps, wide_fps);
    }
}

TEST(Format_dse, sweep_reports_per_architecture_formats_and_exact_fixed_golden) {
    Sweep_config config;
    config.kernels = {"heat", "igf"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {3, 4};
    config.frame_width = 160;
    config.frame_height = 120;
    config.space.max_window = 4;
    config.space.max_depth = 2;
    config.search_formats = true;
    config.validate_fixed = true;
    Sweep_session session(config);
    const Sweep_report report = session.run();
    ASSERT_EQ(report.entries.size(), 4u);

    for (const Sweep_entry& e : report.entries) {
        SCOPED_TRACE(cat(e.kernel, " N=", e.iterations));
        ASSERT_TRUE(e.fits);
        // The format column is present, satisfiable and covering.
        ASSERT_TRUE(e.format_searched);
        EXPECT_TRUE(e.format_satisfiable);
        EXPECT_GE(e.fixed_format.total_bits(), 3);
        EXPECT_LE(e.fixed_format.total_bits(), 32);
        // Exact cells have no finite PSNR; non-exact ones must clear the bar.
        EXPECT_TRUE(e.format_exact ||
                    e.format_psnr_db >= config.format_search.target_psnr_db);
        // The re-priced point equals an independent full evaluation at that
        // width: area, f_max and fps all shifted together.
        Evaluator_options priced;
        priced.frame_width = config.frame_width;
        priced.frame_height = config.frame_height;
        priced.format = e.fixed_format;
        priced.synth.format = e.fixed_format;
        const Arch_evaluator pricer(session.library(e.kernel),
                                    device_by_name(e.device), priced);
        const Arch_evaluation repriced = pricer.evaluate(e.best.instance);
        EXPECT_EQ(e.searched_area_luts, repriced.estimated_area_luts);
        EXPECT_EQ(e.searched_fps, repriced.throughput.fps);
        EXPECT_EQ(e.searched_f_max_mhz, repriced.f_max_mhz);
        EXPECT_GT(e.searched_fps, 0.0);
        // Fixed-mode golden: the simulated architecture reproduces the
        // integer frame engine's raw words exactly.
        ASSERT_TRUE(e.validated_fixed);
        EXPECT_EQ(e.validation_max_raw_err, 0.0);
    }
    // The format grid is computed once per kernel: both N values of a kernel
    // carry the identical covering format.
    EXPECT_EQ(report.entries[0].kernel, report.entries[1].kernel);
    EXPECT_EQ(report.entries[0].fixed_format.integer_bits +
                  report.entries[0].fixed_format.frac_bits,
              report.entries[1].fixed_format.integer_bits +
                  report.entries[1].fixed_format.frac_bits);

    // The rendered report gains the three new columns.
    const std::string text = to_string(report);
    EXPECT_NE(text.find("format"), std::string::npos);
    EXPECT_NE(text.find("kLUTs@fmt"), std::string::npos);
    EXPECT_NE(text.find("golden(fx)"), std::string::npos);
    EXPECT_NE(text.find(to_string(report.entries[0].fixed_format)),
              std::string::npos);
    EXPECT_NE(text.find("exact"), std::string::npos);
}

TEST(Format_dse, fixed_validation_rejects_formats_beyond_double_exactness) {
    // Raw words above 53 bits are not exactly representable in double, so
    // the raw-word comparison would report phantom LSB errors; the session
    // must refuse such configs up front instead.
    Sweep_config config;
    config.kernels = {"heat"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {2};
    config.validate_fixed = true;
    config.format = Fixed_format{30, 28};  // 58 bits
    EXPECT_THROW(Sweep_session{config}, Error);
    config.format = Fixed_format{10, 6};
    config.search_formats = true;
    config.format_search.max_total_bits = 60;
    EXPECT_THROW(Sweep_session{config}, Error);
    config.format_search.max_total_bits = 32;
    EXPECT_NO_THROW(Sweep_session{config});
}

TEST(Format_dse, plain_sweep_report_keeps_the_classic_columns) {
    Sweep_config config;
    config.kernels = {"jacobi"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {2};
    config.space.max_window = 3;
    config.space.max_depth = 2;
    Sweep_session session(config);
    const std::string text = to_string(session.run());
    EXPECT_EQ(text.find("kLUTs@fmt"), std::string::npos);
    EXPECT_EQ(text.find("golden(fx)"), std::string::npos);
}

}  // namespace
}  // namespace islhls
