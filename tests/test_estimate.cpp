// Area model (Eq. 1), throughput model and memory planner.
#include <gtest/gtest.h>

#include "estimate/area_model.hpp"
#include "estimate/memory_model.hpp"
#include "estimate/throughput_model.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

TEST(Area_model, two_samples_reduce_to_direct_ratio) {
    Area_model model(16.0);
    model.add_sample({100, 5000.0});
    model.add_sample({200, 9000.0});
    model.calibrate();
    // alpha = (9000-5000) / ((200-100)*16)
    EXPECT_NEAR(model.alpha(), 4000.0 / 1600.0, 1e-12);
    // Estimation is exact at the calibration points.
    EXPECT_NEAR(model.estimate(100), 5000.0, 1e-9);
    EXPECT_NEAR(model.estimate(200), 9000.0, 1e-9);
    // And linear beyond.
    EXPECT_NEAR(model.estimate(300), 13000.0, 1e-9);
}

TEST(Area_model, perfectly_linear_data_estimated_exactly) {
    Area_model model(8.0);
    for (int regs : {10, 50, 90}) {
        model.add_sample({regs, 500.0 + 3.0 * 8.0 * regs});
    }
    model.calibrate();
    EXPECT_NEAR(model.alpha(), 3.0, 1e-12);
    EXPECT_NEAR(model.estimate(70), 500.0 + 3.0 * 8.0 * 70, 1e-9);
}

TEST(Area_model, requires_two_distinct_samples) {
    Area_model model(16.0);
    EXPECT_THROW(model.calibrate(), Dse_error);
    model.add_sample({100, 5000.0});
    EXPECT_THROW(model.calibrate(), Dse_error);
    model.add_sample({100, 5100.0});
    EXPECT_THROW(model.calibrate(), Dse_error);  // same register count
    model.add_sample({150, 7000.0});
    model.calibrate();
    EXPECT_TRUE(model.calibrated());
}

TEST(Area_model, guards_use_before_calibration) {
    Area_model model(16.0);
    model.add_sample({100, 5000.0});
    EXPECT_THROW(model.estimate(50), Internal_error);
    EXPECT_THROW(model.alpha(), Internal_error);
}

// --- throughput model ---------------------------------------------------------

Level_load make_level(int depth, long long execs, long long inputs) {
    Level_load l;
    l.depth = depth;
    l.executions = execs;
    l.cone_inputs = inputs;
    l.latency_cycles = 10;
    return l;
}

TEST(Throughput, core_bound_scales_with_cores) {
    Throughput_params params;
    params.class_switch_cycles = 0.0;
    const std::vector<Level_load> levels{make_level(2, 8, 64)};
    const auto one = estimate_throughput(levels, {{2, 1}}, 1000, 10.0, 100.0, 8.0,
                                         params);
    const auto four = estimate_throughput(levels, {{2, 4}}, 1000, 10.0, 100.0, 8.0,
                                          params);
    EXPECT_EQ(one.bottleneck, "core");
    EXPECT_NEAR(one.core_bound_cycles / 4.0, four.core_bound_cycles, 1e-9);
    EXPECT_GT(four.fps, one.fps);
}

TEST(Throughput, same_class_levels_share_cores) {
    Throughput_params params;
    params.class_switch_cycles = 0.0;
    const std::vector<Level_load> two_levels{make_level(5, 4, 64), make_level(5, 1, 64)};
    const auto est = estimate_throughput(two_levels, {{5, 1}}, 100, 1.0, 100.0, 8.0,
                                         params);
    // occupancy = 64/8 = 8 cycles per exec; 5 execs on one core = 40.
    EXPECT_NEAR(est.core_bound_cycles, 40.0, 1e-9);
}

TEST(Throughput, class_switch_penalizes_mixed_depths) {
    Throughput_params params;
    params.class_switch_cycles = 50.0;
    const std::vector<Level_load> single{make_level(5, 2, 64)};
    const std::vector<Level_load> mixed{make_level(3, 2, 64), make_level(1, 1, 16)};
    const auto s = estimate_throughput(single, {{5, 1}}, 100, 1.0, 100.0, 8.0, params);
    const auto m = estimate_throughput(mixed, {{3, 1}, {1, 1}}, 100, 1.0, 100.0, 8.0,
                                       params);
    // single: 2*8 = 16; mixed: 2*8 + 1*2 + 50 = 68.
    EXPECT_NEAR(s.core_bound_cycles, 16.0, 1e-9);
    EXPECT_NEAR(m.core_bound_cycles, 68.0, 1e-9);
}

TEST(Throughput, onchip_bandwidth_bound) {
    Throughput_params params;
    params.global_read_ports = 4.0;
    // 10 execs x 100 inputs with plenty of cores: reads dominate.
    const std::vector<Level_load> levels{make_level(1, 10, 100)};
    const auto est =
        estimate_throughput(levels, {{1, 64}}, 100, 1.0, 100.0, 8.0, params);
    EXPECT_EQ(est.bottleneck, "onchip");
    EXPECT_NEAR(est.onchip_bound_cycles, 250.0, 1e-9);
}

TEST(Throughput, offchip_bound_and_fps_arithmetic) {
    Throughput_params params;
    const std::vector<Level_load> levels{make_level(1, 1, 8)};
    const auto est = estimate_throughput(levels, {{1, 8}}, 1000, 800.0, 100.0, 8.0,
                                         params);
    EXPECT_EQ(est.bottleneck, "offchip");
    EXPECT_NEAR(est.offchip_bound_cycles, 100.0, 1e-9);
    // 1000 windows * 100 cycles at 100 MHz = 1 ms.
    EXPECT_NEAR(est.seconds_per_frame, 1e-3, 1e-12);
    EXPECT_NEAR(est.fps, 1000.0, 1e-6);
}

TEST(Throughput, missing_core_allocation_is_an_error) {
    const std::vector<Level_load> levels{make_level(3, 1, 8)};
    EXPECT_THROW(estimate_throughput(levels, {{5, 1}}, 10, 1.0, 100.0, 8.0),
                 Internal_error);
}

// --- memory model ----------------------------------------------------------------

TEST(Memory, window_buffers_tiny_versus_whole_frame) {
    // Coverage chain for a w=4, N=10, r=1 architecture: 24 -> 14 -> 4.
    const Memory_budget b = plan_memory({24, 14, 4}, 1, 1024, 768, 16.0);
    EXPECT_GT(b.total_kbits, 0.0);
    EXPECT_NEAR(b.whole_frame_kbits, 2.0 * 1024 * 768 * 16 / 1024.0, 1e-6);
    // The paper's claim: on-chip needs are independent of frame size and
    // orders of magnitude below the two-frame-buffer approach.
    EXPECT_GT(b.saving_factor, 100.0);
}

TEST(Memory, fields_multiply_buffers) {
    const Memory_budget one = plan_memory({10, 5}, 1, 100, 100, 16.0);
    const Memory_budget three = plan_memory({10, 5}, 3, 100, 100, 16.0);
    EXPECT_NEAR(three.total_kbits, 3.0 * one.total_kbits, 1e-9);
}

TEST(Memory, intermediate_levels_counted_once) {
    const Memory_budget no_mid = plan_memory({8, 4}, 1, 64, 64, 16.0);
    const Memory_budget with_mid = plan_memory({8, 6, 4}, 1, 64, 64, 16.0);
    EXPECT_NEAR(with_mid.intermediate_kbits, 6.0 * 6.0 * 16.0 / 1024.0, 1e-9);
    EXPECT_GT(with_mid.total_kbits, no_mid.total_kbits);
}

}  // namespace
}  // namespace islhls
