#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

const char* minimal_kernel = R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = u[y][x];
        }
    }
}
)";

TEST(Parser, parses_minimal_kernel_structure) {
    const Function_ast fn = parse_single_function(minimal_kernel);
    EXPECT_EQ(fn.return_type, "void");
    EXPECT_EQ(fn.name, "step");
    ASSERT_EQ(fn.params.size(), 2u);
    EXPECT_EQ(fn.params[0].name, "u_out");
    EXPECT_FALSE(fn.params[0].is_const);
    EXPECT_EQ(fn.params[0].dims, (std::vector<std::string>{"H", "W"}));
    EXPECT_TRUE(fn.params[1].is_const);
    ASSERT_EQ(fn.body->kind, Stmt_ast_kind::block);
    ASSERT_EQ(fn.body->stmts.size(), 1u);
    EXPECT_EQ(fn.body->stmts[0]->kind, Stmt_ast_kind::for_loop);
}

TEST(Parser, precedence_mul_over_add) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            u_out[y][x] = u[y][x] + u[y][x-1] * 2.0f;
}
)");
    const Stmt_ast* assign = fn.body->stmts[0]->body->body.get();
    ASSERT_EQ(assign->kind, Stmt_ast_kind::assign);
    const Expr_ast& value = *assign->value;
    ASSERT_EQ(value.kind, Expr_ast_kind::binary);
    EXPECT_EQ(value.op, "+");
    EXPECT_EQ(value.args[1]->kind, Expr_ast_kind::binary);
    EXPECT_EQ(value.args[1]->op, "*");
}

TEST(Parser, ternary_and_comparison) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            u_out[y][x] = u[y][x] > 0.0f ? u[y][x] : -u[y][x];
}
)");
    const Stmt_ast* assign = fn.body->stmts[0]->body->body.get();
    ASSERT_EQ(assign->value->kind, Expr_ast_kind::ternary);
    EXPECT_EQ(assign->value->args[0]->op, ">");
    EXPECT_EQ(assign->value->args[2]->kind, Expr_ast_kind::unary);
}

TEST(Parser, local_declarations_and_calls) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float t = fminf(u[y][x], 1.0f);
            u_out[y][x] = sqrtf(t);
        }
    }
}
)");
    const Stmt_ast* outer_block = fn.body->stmts[0]->body.get();
    ASSERT_EQ(outer_block->kind, Stmt_ast_kind::block);
    const Stmt_ast* body = outer_block->stmts[0]->body.get();
    ASSERT_EQ(body->kind, Stmt_ast_kind::block);
    ASSERT_EQ(body->stmts.size(), 2u);
    EXPECT_EQ(body->stmts[0]->kind, Stmt_ast_kind::decl);
    EXPECT_EQ(body->stmts[0]->type_name, "float");
    ASSERT_EQ(body->stmts[0]->init->kind, Expr_ast_kind::call);
    EXPECT_EQ(body->stmts[0]->init->name, "fminf");
    EXPECT_EQ(body->stmts[0]->init->args.size(), 2u);
}

TEST(Parser, const_array_with_nested_braces) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    const float k[2][2] = {{1.0f, 2.0f}, {3.0f, 4.0f}};
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            u_out[y][x] = u[y][x] * k[0][1];
}
)");
    const Stmt_ast& decl = *fn.body->stmts[0];
    ASSERT_EQ(decl.kind, Stmt_ast_kind::decl);
    EXPECT_TRUE(decl.is_const);
    EXPECT_EQ(decl.array_dims, (std::vector<int>{2, 2}));
    ASSERT_EQ(decl.init_list.size(), 4u);
    EXPECT_DOUBLE_EQ(decl.init_list[3]->number, 4.0);
}

TEST(Parser, increment_forms_normalize_to_compound_assign) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; ++y)
        for (int x = 0; x < W; x += 1)
            u_out[y][x] = u[y][x];
}
)");
    const Stmt_ast& outer = *fn.body->stmts[0];
    EXPECT_EQ(outer.for_step->assign_op, "+=");
    EXPECT_DOUBLE_EQ(outer.for_step->value->number, 1.0);
    EXPECT_EQ(outer.body->for_step->assign_op, "+=");
}

TEST(Parser, if_else_chains) {
    const Function_ast fn = parse_single_function(R"(
void step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++) {
            float v = 0.0f;
            if (u[y][x] > 1.0f) { v = 1.0f; } else if (u[y][x] < -1.0f) { v = -1.0f; }
            u_out[y][x] = v;
        }
}
)");
    const Stmt_ast* body = fn.body->stmts[0]->body->body.get();
    ASSERT_EQ(body->stmts[1]->kind, Stmt_ast_kind::if_stmt);
    ASSERT_NE(body->stmts[1]->else_body, nullptr);
    EXPECT_EQ(body->stmts[1]->else_body->kind, Stmt_ast_kind::if_stmt);
}

TEST(Parser, multiple_functions_in_unit) {
    const Translation_unit_ast unit = parse_translation_unit(R"(
void a(float x_out[H][W], const float x[H][W]) { for(int y=0;y<H;y++) for(int c=0;c<W;c++) x_out[y][c] = x[y][c]; }
void b(float z_out[H][W], const float z[H][W]) { for(int y=0;y<H;y++) for(int c=0;c<W;c++) z_out[y][c] = z[y][c]; }
)");
    ASSERT_EQ(unit.functions.size(), 2u);
    EXPECT_EQ(unit.functions[0].name, "a");
    EXPECT_EQ(unit.functions[1].name, "b");
    EXPECT_THROW(parse_single_function("void a(float x[H][W]) {} void b(float y[H][W]) {}"),
                 Parse_error);
}

// Parameterized rejection sweep: each snippet must fail with Parse_error.
class Parser_rejects : public ::testing::TestWithParam<const char*> {};

TEST_P(Parser_rejects, throws_parse_error) {
    EXPECT_THROW(parse_translation_unit(GetParam()), Parse_error);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, Parser_rejects,
    ::testing::Values(
        "",                                                  // no function
        "void f( { }",                                       // broken params
        "int f(float a[H][W]) { return 1; }",                // return statement
        "void f(float a[H][W]) { while (1) {} }",            // while loop
        "void f(float a[H][W]) { do {} while(1); }",         // do loop
        "void f(float a[H][W]) { for (int i = 0; i < 3; i++) }",  // missing body
        "void f(float a[H][W]) { a[0][0] = ; }",             // missing expr
        "void f(float a[H][W]) { int v[N]; }",               // symbolic local dim
        "void f(void v) {}",                                 // void param
        "void f(float a[H][W]) { 3 = 4; }",                  // bad lvalue
        "void f(float a[H][W]) { a[0][0] == 1.0f; }",        // expr statement
        "void f(float a[H][W]) { float x = (1.0f; }"));      // unbalanced paren

}  // namespace
}  // namespace islhls
