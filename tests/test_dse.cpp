// Architecture geometry, Pareto extraction and the explorer.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/architecture.hpp"
#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "kernels/kernels.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

TEST(Architecture, coverage_chain_walks_back_from_output) {
    const Footprint fp{1, 1, 1, 1};
    const Coverage cov = level_coverages(4, {5, 5}, fp);
    ASSERT_EQ(cov.width.size(), 3u);
    EXPECT_EQ(cov.width[2], 4);   // output window
    EXPECT_EQ(cov.width[1], 14);  // + 2*5 halo of the last level
    EXPECT_EQ(cov.width[0], 24);  // + 2*5 again: the off-chip window
    EXPECT_EQ(cov.height[0], 24);
}

TEST(Architecture, asymmetric_footprint_coverage) {
    const Footprint fp{1, 0, 0, 2};
    const Coverage cov = level_coverages(3, {2}, fp);
    EXPECT_EQ(cov.width[0], 3 + 2);   // left-only growth: 2*1
    EXPECT_EQ(cov.height[0], 3 + 4);  // down-only growth: 2*2
}

TEST(Architecture, executions_tile_the_coverage) {
    const Footprint fp{1, 1, 1, 1};
    const Coverage cov = level_coverages(4, {5, 5}, fp);
    // Level 1 must produce 14x14 with 4x4 cones: ceil(14/4)^2 = 16.
    EXPECT_EQ(executions_for_level(cov, 1, 4), 16);
    // Level 2 produces the 4x4 output: one execution.
    EXPECT_EQ(executions_for_level(cov, 2, 4), 1);
}

TEST(Architecture, instance_helpers) {
    Arch_instance a;
    a.window = 4;
    a.level_depths = {3, 3, 3, 1};
    a.cores_per_depth = {{3, 2}, {1, 1}};
    EXPECT_EQ(a.iterations(), 10);
    EXPECT_EQ(a.depth_classes(), (std::vector<int>{3, 1}));
    const std::string text = to_string(a);
    EXPECT_NE(text.find("w=4"), std::string::npos);
    EXPECT_NE(text.find("d3x2"), std::string::npos);
}

// --- Pareto ---------------------------------------------------------------------

TEST(Pareto, dominance_definition) {
    const Design_point a{10.0, 1.0, 0};
    const Design_point b{20.0, 2.0, 1};
    const Design_point c{10.0, 1.0, 2};
    const Design_point d{5.0, 3.0, 3};
    EXPECT_TRUE(dominates(a, b));
    EXPECT_FALSE(dominates(b, a));
    EXPECT_FALSE(dominates(a, c));  // equal points do not dominate
    EXPECT_FALSE(dominates(a, d));
    EXPECT_FALSE(dominates(d, a));
}

TEST(Pareto, front_of_known_set) {
    const std::vector<Design_point> points{
        {1.0, 10.0, 0}, {2.0, 5.0, 1}, {3.0, 6.0, 2}, {4.0, 1.0, 3}, {2.5, 5.0, 4}};
    const auto front = pareto_front(points);
    EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

// Property: the front is mutually non-dominated and dominates everything else.
class Pareto_property : public ::testing::TestWithParam<int> {};

TEST_P(Pareto_property, front_is_correct_versus_brute_force) {
    Prng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<Design_point> points;
    for (std::size_t i = 0; i < 150; ++i) {
        points.push_back({rng.next_in(0, 100), rng.next_in(0, 100), i});
    }
    const auto front = pareto_front(points);
    ASSERT_FALSE(front.empty());
    // Mutual non-domination.
    for (std::size_t i : front) {
        for (std::size_t j : front) {
            if (i != j) {
                EXPECT_FALSE(dominates(points[i], points[j]));
            }
        }
    }
    // Completeness: every non-front point is dominated by some front point.
    std::vector<bool> on_front(points.size(), false);
    for (std::size_t i : front) on_front[i] = true;
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (on_front[p]) continue;
        bool dominated_or_duplicate = false;
        for (std::size_t f : front) {
            if (dominates(points[f], points[p]) ||
                (points[f].area_luts == points[p].area_luts &&
                 points[f].seconds_per_frame == points[p].seconds_per_frame)) {
                dominated_or_duplicate = true;
                break;
            }
        }
        EXPECT_TRUE(dominated_or_duplicate) << "point " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Pareto_property, ::testing::Range(1, 9));

// --- explorer ---------------------------------------------------------------------

class Explorer_fixture : public ::testing::Test {
protected:
    Explorer_fixture()
        : library(extract_stencil(kernel_by_name("jacobi").c_source), "jacobi") {
        evaluator_options.frame_width = 320;
        evaluator_options.frame_height = 240;
        evaluator_options.class_overhead_luts = 2000.0;
        space.iterations = 6;
        space.max_window = 4;
        space.max_depth = 3;
    }

    Cone_library library;
    Evaluator_options evaluator_options;
    Space_options space;
};

TEST_F(Explorer_fixture, canonical_partition_handles_remainders) {
    Explorer ex(library, device_by_name("xc6vlx760"), evaluator_options, space);
    EXPECT_EQ(ex.canonical_partition(3), (std::vector<int>{3, 3}));
    EXPECT_EQ(ex.canonical_partition(2), (std::vector<int>{2, 2, 2}));
    // 6 = 4 + 2: remainder level of depth 2.
    space.iterations = 6;
    EXPECT_EQ(Explorer(library, device_by_name("xc6vlx760"), evaluator_options, space)
                  .canonical_partition(4),
              (std::vector<int>{4, 2}));
}

TEST_F(Explorer_fixture, partitions_cover_iteration_count) {
    Explorer ex(library, device_by_name("xc6vlx760"), evaluator_options, space);
    const auto parts = ex.depth_partitions();
    EXPECT_FALSE(parts.empty());
    for (const auto& p : parts) {
        int sum = 0;
        for (int d : p) {
            sum += d;
            EXPECT_LE(d, space.max_depth);
        }
        EXPECT_EQ(sum, space.iterations);
    }
}

TEST_F(Explorer_fixture, pareto_front_is_nondominated_and_feasible) {
    Explorer ex(library, device_by_name("xc6vlx760"), evaluator_options, space);
    const auto result = ex.explore_pareto();
    ASSERT_GT(result.points.size(), 10u);
    ASSERT_FALSE(result.front.empty());
    for (std::size_t i : result.front) {
        const auto& p = result.points[i];
        EXPECT_TRUE(p.feasible);
        for (std::size_t j : result.front) {
            if (i == j) continue;
            const auto& q = result.points[j];
            const bool dominated = q.estimated_area_luts <= p.estimated_area_luts &&
                                   q.throughput.seconds_per_frame <=
                                       p.throughput.seconds_per_frame &&
                                   (q.estimated_area_luts < p.estimated_area_luts ||
                                    q.throughput.seconds_per_frame <
                                        p.throughput.seconds_per_frame);
            EXPECT_FALSE(dominated);
        }
    }
}

TEST_F(Explorer_fixture, device_fit_respects_budget) {
    const Fpga_device& device = device_by_name("generic_small");
    Explorer ex(library, device, evaluator_options, space);
    const auto fit = ex.fit_device();
    ASSERT_TRUE(fit.has_best);
    EXPECT_LE(fit.best.estimated_area_luts,
              static_cast<double>(device.usable_luts()));
    EXPECT_GT(fit.best.throughput.fps, 0.0);
    // Grid has one cell per (window, depth) pair.
    EXPECT_EQ(fit.grid.size(),
              static_cast<std::size_t>(space.max_window * space.max_depth));
    // Every valid cell's instance covers all iterations.
    for (const auto& cell : fit.grid) {
        if (!cell.valid) continue;
        EXPECT_EQ(cell.eval.instance.iterations(), space.iterations);
    }
}

TEST_F(Explorer_fixture, more_area_never_hurts_throughput) {
    // The same kernel fitted to a strictly bigger device must reach at least
    // the same frame rate (monotonicity sanity of the greedy allocator).
    Explorer small(library, device_by_name("generic_small"), evaluator_options, space);
    Explorer big(library, device_by_name("xc6vlx760"), evaluator_options, space);
    const auto fit_small = small.fit_device();
    const auto fit_big = big.fit_device();
    ASSERT_TRUE(fit_small.has_best);
    ASSERT_TRUE(fit_big.has_best);
    EXPECT_GE(fit_big.best.throughput.fps, fit_small.best.throughput.fps * 0.99);
}

TEST_F(Explorer_fixture, area_validation_reports_bounded_errors) {
    Explorer ex(library, device_by_name("xc6vlx760"), evaluator_options, space);
    const auto validation = ex.validate_area_model();
    EXPECT_EQ(validation.points.size(),
              static_cast<std::size_t>(space.max_window * space.max_depth));
    // Calibration points are exact; the rest within the noise envelope.
    for (const auto& p : validation.points) {
        if (p.is_calibration) {
            EXPECT_NEAR(p.estimated_luts, p.actual_luts, 1e-9);
        }
    }
    EXPECT_LT(validation.avg_rel_error, 0.08);
    EXPECT_LT(validation.max_rel_error, 0.20);
}

TEST_F(Explorer_fixture, estimated_area_agrees_with_actual_within_band) {
    Explorer ex(library, device_by_name("xc6vlx760"), evaluator_options, space);
    Arch_instance instance;
    instance.window = 3;
    instance.level_depths = {2, 2, 2};
    instance.cores_per_depth = {{2, 2}};
    const Arch_evaluation eval = ex.evaluator().evaluate(instance);
    EXPECT_TRUE(eval.feasible);
    EXPECT_GT(eval.estimated_area_luts, 0.0);
    const double rel = std::fabs(eval.estimated_area_luts - eval.actual_area_luts) /
                       eval.actual_area_luts;
    EXPECT_LT(rel, 0.10);
}

}  // namespace
}  // namespace islhls
