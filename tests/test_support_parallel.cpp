// Thread-pool utility: deterministic parallel-for, exception order, LPT.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/parallel.hpp"

namespace islhls {
namespace {

TEST(Parallel, resolve_thread_count_semantics) {
    EXPECT_GE(resolve_thread_count(0), 1);  // 0 = all hardware threads
    EXPECT_EQ(resolve_thread_count(1), 1);
    EXPECT_EQ(resolve_thread_count(8), 8);
    EXPECT_EQ(resolve_thread_count(-3), 1);
}

TEST(Parallel, every_index_runs_exactly_once) {
    for (int threads : {1, 2, 8}) {
        const std::size_t count = 257;
        std::vector<std::atomic<int>> runs(count);
        for (auto& r : runs) r = 0;
        parallel_for(count, threads, [&](std::size_t i) { runs[i] += 1; });
        for (std::size_t i = 0; i < count; ++i) {
            EXPECT_EQ(runs[i].load(), 1) << "index " << i << " threads " << threads;
        }
    }
}

TEST(Parallel, zero_and_single_counts) {
    int calls = 0;
    parallel_for(0, 8, [&](std::size_t) { calls += 1; });
    EXPECT_EQ(calls, 0);
    parallel_for(1, 8, [&](std::size_t) { calls += 1; });
    EXPECT_EQ(calls, 1);
}

TEST(Parallel, results_identical_across_thread_counts) {
    auto compute = [](int threads) {
        std::vector<double> out(100);
        parallel_for(out.size(), threads, [&](std::size_t i) {
            out[i] = static_cast<double>(i) * 1.5 + 7.0;
        });
        return out;
    };
    const auto serial = compute(1);
    EXPECT_EQ(compute(2), serial);
    EXPECT_EQ(compute(8), serial);
}

TEST(Parallel, lowest_index_exception_wins) {
    for (int threads : {1, 2, 8}) {
        try {
            parallel_for(64, threads, [](std::size_t i) {
                throw std::runtime_error(std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "0") << "threads " << threads;
        }
    }
}

TEST(Parallel, pool_is_reusable_across_jobs) {
    Thread_pool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    std::vector<int> out(50, 0);
    for (int round = 1; round <= 3; ++round) {
        pool.for_each_index(out.size(),
                            [&](std::size_t i) { out[i] += round; });
    }
    for (int v : out) EXPECT_EQ(v, 1 + 2 + 3);
}

TEST(Parallel, lpt_makespan_known_cases) {
    EXPECT_DOUBLE_EQ(lpt_makespan({4.0, 3.0, 3.0, 2.0}, 2), 6.0);
    EXPECT_DOUBLE_EQ(lpt_makespan({4.0, 3.0, 3.0, 2.0}, 1), 12.0);
    EXPECT_DOUBLE_EQ(lpt_makespan({5.0}, 8), 5.0);
    EXPECT_DOUBLE_EQ(lpt_makespan({}, 4), 0.0);
    // One long job bounds the makespan no matter the worker count.
    EXPECT_DOUBLE_EQ(lpt_makespan({10.0, 1.0, 1.0, 1.0}, 8), 10.0);
}

}  // namespace
}  // namespace islhls
