// Equivalence suite for the compiled scanline execution engine: the engine
// must agree bit for bit with the legacy per-pixel interpreter across every
// built-in kernel, every Boundary mode, degenerate frame shapes (1xN, Nx1,
// 1x1) and any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "cone/cone.hpp"
#include "grid/frame_ops.hpp"
#include "ir/compiled.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "sim/golden.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

// Byte-level frame comparison: exact even for -0.0 / NaN payloads.
void expect_bytes_equal(const Frame& a, const Frame& b) {
    ASSERT_EQ(a.width(), b.width());
    ASSERT_EQ(a.height(), b.height());
    EXPECT_EQ(0, std::memcmp(a.data().data(), b.data().data(),
                             a.element_count() * sizeof(double)));
}

void expect_sets_equal(const Frame_set& a, const Frame_set& b) {
    ASSERT_EQ(a.names(), b.names());
    for (const std::string& name : a.names()) {
        SCOPED_TRACE(name);
        expect_bytes_equal(a.field(name), b.field(name));
    }
}

constexpr Boundary kBoundaries[] = {Boundary::clamp, Boundary::zero,
                                    Boundary::mirror, Boundary::periodic};

TEST(Exec_engine, matches_reference_on_all_kernels_boundaries_and_shapes) {
    const std::pair<int, int> shapes[] = {{17, 13}, {1, 9}, {9, 1}, {1, 1}, {4, 4}};
    std::uint64_t seed = 1;
    for (const Kernel_def& kernel : all_kernels()) {
        SCOPED_TRACE(kernel.name);
        const Stencil_step step = extract_stencil(kernel.c_source);
        const Exec_engine engine(step);
        for (const Boundary b : kBoundaries) {
            SCOPED_TRACE(to_string(b));
            for (const auto& [w, h] : shapes) {
                SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h));
                const Frame content = make_noise(w, h, seed++, 0.0, 255.0);
                const Frame_set initial = kernel.make_initial(content);
                const Frame_set reference = run_ir_reference(step, initial, 2, b);
                for (const int threads : {1, 2, 8}) {
                    SCOPED_TRACE(threads);
                    expect_sets_equal(reference, engine.run(initial, 2, b, threads));
                }
            }
        }
    }
}

TEST(Exec_engine, threaded_runs_are_byte_identical_on_larger_frames) {
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_synthetic_scene(67, 41, 3));
    const Frame_set serial = engine.run(initial, 5, kernel.boundary, 1);
    for (const int threads : {2, 8}) {
        SCOPED_TRACE(threads);
        expect_sets_equal(serial, engine.run(initial, 5, kernel.boundary, threads));
    }
}

TEST(Exec_engine, external_pool_runs_are_byte_identical_and_reusable) {
    // An injected pool must supersede Exec_options::threads, survive many
    // runs (and engines), and change nothing about the result — the same
    // determinism contract as the per-run pool it replaces.
    const Kernel_def& kernel = kernel_by_name("igf");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Exec_engine engine(step);
    const Frame_set initial = kernel.make_initial(make_synthetic_scene(33, 21, 9));
    const Frame_set serial = engine.run(initial, 4, kernel.boundary, 1);

    Thread_pool pool(4);
    for (int threads : {1, 8}) {  // superseded by the pool either way
        Exec_options options;
        options.threads = threads;
        options.pool = &pool;
        expect_sets_equal(serial, engine.run(initial, 4, kernel.boundary, options));
    }
    // Tiled bands through the shared pool, then a second engine on the same
    // pool; run_ghost_ir's options overload routes through it too.
    Exec_options tiled;
    tiled.tile_iterations = 2;
    tiled.band_rows = 3;
    tiled.pool = &pool;
    expect_sets_equal(serial, engine.run(initial, 4, kernel.boundary, tiled));

    const Kernel_def& heat = kernel_by_name("heat");
    const Stencil_step heat_step = extract_stencil(heat.c_source);
    const Frame_set heat_initial = heat.make_initial(make_synthetic_scene(19, 14, 2));
    Exec_options ghost_options;
    ghost_options.pool = &pool;
    expect_sets_equal(run_ghost_ir(heat_step, heat_initial, 3, heat.boundary),
                      run_ghost_ir(heat_step, heat_initial, 3, heat.boundary,
                                   ghost_options));
}

TEST(Exec_engine, zero_iterations_returns_initial_untouched) {
    const Kernel_def& kernel = kernel_by_name("heat");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame_set initial = kernel.make_initial(make_gradient(6, 5));
    const Frame_set out = Exec_engine(step).run(initial, 0, kernel.boundary);
    expect_sets_equal(initial, out);
}

TEST(Exec_engine, run_ir_wrapper_matches_reference_and_supports_threads) {
    const Kernel_def& kernel = kernel_by_name("igf");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame_set initial = kernel.make_initial(make_synthetic_scene(23, 17, 9));
    const Frame_set reference = run_ir_reference(step, initial, 3, kernel.boundary);
    expect_sets_equal(reference, run_ir(step, initial, 3, kernel.boundary));
    expect_sets_equal(reference, run_ir(step, initial, 3, kernel.boundary, 8));
    expect_sets_equal(run_step_ir_reference(step, initial, kernel.boundary),
                      run_step_ir(step, initial, kernel.boundary));
}

// The compiled tape's scalar path must reproduce the reference interpreter
// slot for slot (this is what run() and the arch simulator execute).
TEST(Compiled_program, eval_point_reproduces_interpreter_trace) {
    const Kernel_def& kernel = kernel_by_name("perona_malik");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{3, 3, 2});
    const Register_program& program = cone.program();
    const Compiled_program& tape = program.compiled();
    ASSERT_EQ(tape.slot_count(),
              static_cast<int>(program.instructions().size()));

    Prng rng(17);
    std::vector<double> inputs(static_cast<std::size_t>(program.input_count()));
    std::vector<double> slots(static_cast<std::size_t>(tape.slot_count()));
    std::vector<double> regs;
    for (int trial = 0; trial < 20; ++trial) {
        for (double& v : inputs) v = rng.next_in(-4.0, 260.0);
        program.run_trace_into(inputs, regs);
        tape.eval_point(inputs.data(), slots.data());
        ASSERT_EQ(regs.size(), slots.size());
        EXPECT_EQ(0, std::memcmp(regs.data(), slots.data(),
                                 regs.size() * sizeof(double)))
            << trial;
        // run() (the compatibility wrapper) returns exactly the output slots.
        const std::vector<double> outs = program.run(inputs);
        ASSERT_EQ(outs.size(), program.outputs().size());
        for (std::size_t o = 0; o < outs.size(); ++o) {
            EXPECT_EQ(outs[o],
                      regs[static_cast<std::size_t>(program.outputs()[o])]);
        }
    }
}

TEST(Compiled_program, footprint_matches_input_ports) {
    const Kernel_def& kernel = kernel_by_name("shock");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Register_program program = build_program(step.pool(), step.updates());
    const Compiled_program& tape = program.compiled();
    int min_dx = 0, max_dx = 0, min_dy = 0, max_dy = 0;
    for (const auto& port : program.input_ports()) {
        min_dx = std::min(min_dx, port.dx);
        max_dx = std::max(max_dx, port.dx);
        min_dy = std::min(min_dy, port.dy);
        max_dy = std::max(max_dy, port.dy);
    }
    EXPECT_EQ(tape.min_dx(), min_dx);
    EXPECT_EQ(tape.max_dx(), max_dx);
    EXPECT_EQ(tape.min_dy(), min_dy);
    EXPECT_EQ(tape.max_dy(), max_dy);
    EXPECT_EQ(tape.inputs().size(), program.input_ports().size());
    EXPECT_EQ(tape.output_slots(), program.outputs());
}

}  // namespace
}  // namespace islhls
