// Symbolic execution: extracted expressions must agree bit-for-bit with the
// independent native implementations of every built-in kernel, and the
// executor must reject everything outside the synthesizable subset.
#include <gtest/gtest.h>

#include "grid/frame_ops.hpp"
#include "ir/eval.hpp"
#include "ir/print.hpp"
#include "sim/golden.hpp"
#include "support/error.hpp"
#include "symexec/executor.hpp"
#include "kernels/kernels.hpp"

namespace islhls {
namespace {

TEST(Symexec, igf_footprint_and_structure) {
    const Stencil_step step = extract_stencil(kernel_by_name("igf").c_source);
    EXPECT_EQ(step.state_fields(), (std::vector<std::string>{"u"}));
    EXPECT_EQ(step.footprint(), (Footprint{1, 1, 1, 1}));
    EXPECT_EQ(step.max_reach(), 1);
    // 9 distinct reads appear in the expression.
    const std::string text = to_infix(step.pool(), step.update(0));
    EXPECT_NE(text.find("u[-1,-1]"), std::string::npos);
    EXPECT_NE(text.find("u[1,1]"), std::string::npos);
}

TEST(Symexec, chambolle_dual_field_footprints) {
    const Stencil_step step = extract_stencil(kernel_by_name("chambolle").c_source);
    EXPECT_EQ(step.state_fields(), (std::vector<std::string>{"p1", "p2"}));
    EXPECT_EQ(step.const_fields(), (std::vector<std::string>{"g"}));
    const Footprint fp = step.footprint();
    EXPECT_EQ(fp, (Footprint{1, 1, 1, 1}));
    // Both updates exist and are distinct expressions.
    EXPECT_NE(step.update("p1"), step.update("p2"));
}

TEST(Symexec, mean_kernel_unrolls_inner_loops) {
    const Stencil_step step = extract_stencil(kernel_by_name("mean").c_source);
    // After unrolling the 3x3 accumulation, 9 reads must be visible.
    EXPECT_EQ(step.footprint(), (Footprint{1, 1, 1, 1}));
}

TEST(Symexec, shock_kernel_produces_selects) {
    const Stencil_step step = extract_stencil(kernel_by_name("shock").c_source);
    const std::string text = to_infix(step.pool(), step.update(0));
    EXPECT_NE(text.find("?"), std::string::npos);
    EXPECT_NE(text.find("sqrt"), std::string::npos);
}

// The central fidelity property: for every built-in kernel, one IR step over
// a random frame equals the native step exactly (same doubles).
class Kernel_fidelity : public ::testing::TestWithParam<std::string> {};

TEST_P(Kernel_fidelity, ir_step_matches_native_bit_for_bit) {
    const Kernel_def& kernel = kernel_by_name(GetParam());
    const Stencil_step step = extract_stencil(kernel.c_source);

    const Frame content = make_noise(23, 17, 0xC0FFEE, 0.0, 255.0);
    const Frame_set initial = kernel.make_initial(content);
    Frame_set ir_state = initial;
    Frame_set native_state = initial;
    for (int iter = 0; iter < 3; ++iter) {
        ir_state = run_step_ir(step, ir_state, kernel.boundary);
        native_state = kernel.native_step(native_state, kernel.boundary);
        for (const std::string& field : kernel.state_fields) {
            SCOPED_TRACE(kernel.name + "." + field + " iter " + std::to_string(iter));
            EXPECT_EQ(max_abs_diff(ir_state.field(field), native_state.field(field)),
                      0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Kernel_fidelity,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) { return info.param; });

TEST(Symexec, impulse_response_of_igf_is_binomial_kernel) {
    const Kernel_def& kernel = kernel_by_name("igf");
    const Stencil_step step = extract_stencil(kernel.c_source);
    Frame_set state(9, 9);
    state.add_field("u", make_impulse(9, 9, 4, 4, 16.0));
    state = run_step_ir(step, state, Boundary::clamp);
    const Frame& u = state.field("u");
    EXPECT_DOUBLE_EQ(u.at(4, 4), 4.0);  // 16 * 4/16
    EXPECT_DOUBLE_EQ(u.at(3, 4), 2.0);
    EXPECT_DOUBLE_EQ(u.at(3, 3), 1.0);
    EXPECT_DOUBLE_EQ(u.at(6, 4), 0.0);  // outside the 3x3 support
}

TEST(Symexec, column_major_subscripts_are_handled) {
    // Outer loop scans x, inner scans y; subscripts stay [row][col].
    const Stencil_step step = extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    for (int x = 0; x < W; x++) {
        for (int y = 0; y < H; y++) {
            u_out[y][x] = u[y][x-1] + u[y-1][x];
        }
    }
}
)");
    EXPECT_EQ(step.footprint(), (Footprint{1, 0, 1, 0}));
}

TEST(Symexec, static_if_on_constants_folds) {
    const Stencil_step step = extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    const float mode = 1.0f;
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float v = 0.0f;
            if (mode > 0.0f) { v = u[y][x]; } else { v = u[y][x-1]; }
            u_out[y][x] = v;
        }
    }
}
)");
    // The else branch never executes: reach must be 0, not 1.
    EXPECT_EQ(step.footprint(), (Footprint{0, 0, 0, 0}));
}

TEST(Symexec, data_dependent_if_merges_with_select) {
    const Stencil_step step = extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float v = u[y][x];
            if (v < 0.0f) { v = -v; }
            u_out[y][x] = v;
        }
    }
}
)");
    const std::string text = to_infix(step.pool(), step.update(0));
    EXPECT_NE(text.find("?"), std::string::npos);
}

struct Reject_case {
    const char* description;
    const char* source;
};

class Symexec_rejects : public ::testing::TestWithParam<Reject_case> {};

TEST_P(Symexec_rejects, throws_symexec_error) {
    SCOPED_TRACE(GetParam().description);
    EXPECT_THROW(extract_stencil(GetParam().source), Symexec_error);
}

INSTANTIATE_TEST_SUITE_P(
    Unsupported, Symexec_rejects,
    ::testing::Values(
        Reject_case{"absolute subscript breaks invariance",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]=u[0][x]; }"},
        Reject_case{"scaled subscript",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]=u[y][2*x]; }"},
        Reject_case{"loop index as value",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]=u[y][x]+x; }"},
        Reject_case{"offset output write",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x+1]=u[y][x]; }"},
        Reject_case{"compound output write",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]+=u[y][x]; }"},
        Reject_case{"missing output on a field",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "{ float t = u[y][x]; t = t; } }"},
        Reject_case{"inner loop with frame-dependent bound",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "{ float a = 0.0f; for (int k = 0; k < x; k++) a += 1.0f; "
                    "u_out[y][x]=a; } }"},
        Reject_case{"if on spatial index",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "{ float v = 0.0f; if (x == 0) { v = 1.0f; } else { v = 2.0f; } "
                    "u_out[y][x]=v; } }"},
        Reject_case{"unsupported function",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]=sinf(u[y][x]); }"},
        Reject_case{"partial output on data branch",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "{ if (u[y][x] > 0.0f) { u_out[y][x] = 1.0f; } } }"},
        Reject_case{"adding two loop variables",
                    "void f(float u_out[H][W], const float u[H][W]) "
                    "{ for(int y=0;y<H;y++) for(int x=0;x<W;x++) "
                    "u_out[y][x]=u[y+x][x]; }"}));

TEST(Symexec, domain_narrowness_bound_enforced) {
    Symexec_options options;
    options.max_reach = 1;
    EXPECT_THROW(extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            u_out[y][x] = u[y][x-2];
}
)",
                                 options),
                 Symexec_error);
}

TEST(Symexec, unroll_budget_enforced) {
    Symexec_options options;
    options.max_unroll = 10;
    EXPECT_THROW(extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++) {
            float a = 0.0f;
            for (int k = 0; k < 100; k++) a += u[y][x];
            u_out[y][x] = a;
        }
}
)",
                                 options),
                 Symexec_error);
}

TEST(Symexec, local_const_array_lookup) {
    const Stencil_step step = extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    const float k[3] = {0.25f, 0.5f, 0.25f};
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float acc = 0.0f;
            for (int i = 0; i < 3; i++) acc += k[i] * u[y][x+i-1];
            u_out[y][x] = acc;
        }
    }
}
)");
    EXPECT_EQ(step.footprint(), (Footprint{1, 1, 0, 0}));
    // Evaluate at a point: k convolution of (1, 2, 3) = 0.25 + 1.0 + 0.75.
    const double v = evaluate(step.pool(), step.update(0), [](int, int dx, int) {
        return static_cast<double>(dx + 2);  // u[-1]=1, u[0]=2, u[1]=3
    });
    EXPECT_DOUBLE_EQ(v, 2.0);
}

}  // namespace
}  // namespace islhls
