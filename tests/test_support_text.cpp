#include <gtest/gtest.h>

#include "support/text.hpp"

namespace islhls {
namespace {

TEST(Text, cat_concatenates_mixed_types) {
    EXPECT_EQ(cat("w=", 4, " d=", 2.5), "w=4 d=2.5");
    EXPECT_EQ(cat(), "");
    EXPECT_EQ(cat("only"), "only");
}

TEST(Text, format_fixed_rounds) {
    EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(format_fixed(2.675, 0), "3");
    EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
}

TEST(Text, format_sci_uses_exponent) {
    EXPECT_EQ(format_sci(12345.678, 2), "1.23e+04");
}

TEST(Text, format_grouped_inserts_separators) {
    EXPECT_EQ(format_grouped(0), "0");
    EXPECT_EQ(format_grouped(999), "999");
    EXPECT_EQ(format_grouped(1000), "1,000");
    EXPECT_EQ(format_grouped(1234567), "1,234,567");
    EXPECT_EQ(format_grouped(-1234567), "-1,234,567");
}

TEST(Text, split_keeps_empty_fields) {
    EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Text, join_is_inverse_of_split) {
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
    EXPECT_EQ(join({}, ","), "");
}

TEST(Text, trim_strips_both_ends) {
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("nothing"), "nothing");
    EXPECT_EQ(trim(" \t "), "");
}

TEST(Text, starts_ends_with) {
    EXPECT_TRUE(starts_with("islhls_cone", "islhls"));
    EXPECT_FALSE(starts_with("is", "islhls"));
    EXPECT_TRUE(ends_with("u_out", "_out"));
    EXPECT_FALSE(ends_with("out", "_out"));
}

TEST(Text, padding_aligns) {
    EXPECT_EQ(pad_left("7", 3), "  7");
    EXPECT_EQ(pad_right("7", 3), "7  ");
    EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Text, replace_all_handles_overlaps) {
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
    EXPECT_EQ(replace_all("x", "", "y"), "x");
    EXPECT_EQ(replace_all("WIDTH-1 WIDTH", "WIDTH", "16"), "16-1 16");
}

TEST(Text, identifier_validation) {
    EXPECT_TRUE(is_identifier("u_out"));
    EXPECT_TRUE(is_identifier("_tmp1"));
    EXPECT_FALSE(is_identifier("1abc"));
    EXPECT_FALSE(is_identifier(""));
    EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Text, to_lower_ascii) {
    EXPECT_EQ(to_lower("Virtex-6 LX760"), "virtex-6 lx760");
}

}  // namespace
}  // namespace islhls
