#include <gtest/gtest.h>

#include "grid/frame.hpp"
#include "support/error.hpp"

namespace islhls {
namespace {

TEST(Frame, construction_and_access) {
    Frame f(4, 3, 1.5);
    EXPECT_EQ(f.width(), 4);
    EXPECT_EQ(f.height(), 3);
    EXPECT_EQ(f.element_count(), 12u);
    EXPECT_EQ(f.at(0, 0), 1.5);
    f.at(3, 2) = 9.0;
    EXPECT_EQ(f.at(3, 2), 9.0);
    EXPECT_THROW(f.at(4, 0), Internal_error);
    EXPECT_THROW(f.at(0, 3), Internal_error);
    EXPECT_THROW(f.at(-1, 0), Internal_error);
}

TEST(Frame, equality_is_elementwise) {
    Frame a(2, 2, 0.0);
    Frame b(2, 2, 0.0);
    EXPECT_EQ(a, b);
    b.at(1, 1) = 1.0;
    EXPECT_NE(a, b);
}

// --- boundary policy behaviour ------------------------------------------------

class Boundary_cases
    : public ::testing::TestWithParam<std::tuple<Boundary, int, int>> {};

TEST_P(Boundary_cases, resolve_stays_in_range_or_flags_zero) {
    const auto [policy, v, n] = GetParam();
    const int r = resolve_coordinate(v, n, policy);
    if (policy == Boundary::zero && (v < 0 || v >= n)) {
        EXPECT_EQ(r, -1);
    } else {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, n);
    }
    if (v >= 0 && v < n) {
        EXPECT_EQ(r, v);  // interior must be identity
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Boundary_cases,
    ::testing::Combine(::testing::Values(Boundary::clamp, Boundary::zero,
                                         Boundary::mirror, Boundary::periodic),
                       ::testing::Values(-7, -1, 0, 3, 4, 5, 11),
                       ::testing::Values(1, 4, 5)));

TEST(Frame, clamp_replicates_edges) {
    EXPECT_EQ(resolve_coordinate(-3, 5, Boundary::clamp), 0);
    EXPECT_EQ(resolve_coordinate(7, 5, Boundary::clamp), 4);
}

TEST(Frame, mirror_reflects_without_repeating_edge) {
    // Sequence for n=4: ... 2 1 | 0 1 2 3 | 2 1 0 1 ...
    EXPECT_EQ(resolve_coordinate(-1, 4, Boundary::mirror), 1);
    EXPECT_EQ(resolve_coordinate(-2, 4, Boundary::mirror), 2);
    EXPECT_EQ(resolve_coordinate(4, 4, Boundary::mirror), 2);
    EXPECT_EQ(resolve_coordinate(5, 4, Boundary::mirror), 1);
    EXPECT_EQ(resolve_coordinate(6, 4, Boundary::mirror), 0);
    EXPECT_EQ(resolve_coordinate(0, 1, Boundary::mirror), 0);
    EXPECT_EQ(resolve_coordinate(-5, 1, Boundary::mirror), 0);
}

TEST(Frame, periodic_wraps_both_directions) {
    EXPECT_EQ(resolve_coordinate(5, 5, Boundary::periodic), 0);
    EXPECT_EQ(resolve_coordinate(-1, 5, Boundary::periodic), 4);
    EXPECT_EQ(resolve_coordinate(-6, 5, Boundary::periodic), 4);
}

TEST(Frame, sample_uses_policy) {
    Frame f(3, 1);
    f.at(0, 0) = 1.0;
    f.at(1, 0) = 2.0;
    f.at(2, 0) = 3.0;
    EXPECT_EQ(f.sample(-1, 0, Boundary::clamp), 1.0);
    EXPECT_EQ(f.sample(-1, 0, Boundary::zero), 0.0);
    EXPECT_EQ(f.sample(-1, 0, Boundary::periodic), 3.0);
    EXPECT_EQ(f.sample(3, 0, Boundary::mirror), 2.0);
    EXPECT_EQ(f.sample(1, 0, Boundary::zero), 2.0);  // interior untouched
}

TEST(Frame, boundary_names) {
    EXPECT_EQ(to_string(Boundary::clamp), "clamp");
    EXPECT_EQ(to_string(Boundary::periodic), "periodic");
}

}  // namespace
}  // namespace islhls
