// Fault-injection harness for the sweep service: every fault the Env_hooks
// seam can produce — ENOSPC, torn writes, orphaned temp files, bit-flipped
// records, stuck jobs on a frozen clock — is driven through a REAL sweep,
// and the contract is always the same: the run completes with a
// byte-identical report table and zero aborts; the cache degrades to
// recompute instead of failing the request.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "core/service.hpp"
#include "core/sweep.hpp"
#include "support/error.hpp"
#include "support/result_cache.hpp"
#include "support/text.hpp"

namespace islhls {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
    const std::string dir =
        (fs::temp_directory_path() / cat("islhls-fault-test-", name)).string();
    fs::remove_all(dir);
    return dir;
}

Sweep_config small_config() {
    Sweep_config config;
    config.kernels = {"igf"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {2};
    config.frame_width = 64;
    config.frame_height = 48;
    config.space.max_window = 3;
    config.space.max_depth = 2;
    config.validate = true;
    config.search_formats = true;
    config.format_search.target_psnr_db = 45.0;
    return config;
}

std::string read_raw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_raw(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << data;
}

std::vector<std::string> record_files(const std::string& dir) {
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".rec") {
            files.push_back(entry.path().string());
        }
    }
    return files;
}

// The reference table every faulted run must reproduce byte for byte.
std::string reference_table() {
    static const std::string table =
        report_table(Sweep_session(small_config()).run());
    return table;
}

TEST(Fault_injection, enospc_during_sweep_degrades_to_uncached) {
    const std::string dir = fresh_dir("enospc");
    // The directory exists and passes the construction probe; the disk
    // "fills up" before the first record is stored.
    std::atomic<bool> fail_writes{false};
    Env_hooks hooks = real_env_hooks();
    hooks.write_file = [&](const std::string& path, const std::string& data,
                           std::string* error) {
        if (fail_writes.load()) {
            *error = "No space left on device";
            return false;
        }
        return real_env_hooks().write_file(path, data, error);
    };
    Service_options options;
    options.cache_dir = dir;
    options.hooks = &hooks;
    Sweep_service service(options);
    fail_writes = true;

    const Sweep_report report = service.run(small_config());
    EXPECT_EQ(report_table(report), reference_table());
    EXPECT_EQ(report.entry_stores, 0);  // nothing could be persisted...
    EXPECT_GT(service.cache()->stats().store_failures, 0);
    EXPECT_TRUE(record_files(dir).empty());

    // ...and once space frees up, the same service stores on the next run.
    fail_writes = false;
    const Sweep_report recovered = service.run(small_config());
    EXPECT_EQ(report_table(recovered), reference_table());
    EXPECT_GT(recovered.entry_stores, 0);
    EXPECT_FALSE(record_files(dir).empty());
    fs::remove_all(dir);
}

TEST(Fault_injection, torn_writes_are_quarantined_not_trusted) {
    const std::string dir = fresh_dir("torn");
    // Every write persists only the first half of its data — the classic
    // power-cut-mid-write image. The rename still happens, so the cache
    // directory fills with plausible-looking torn records.
    std::atomic<bool> tear{false};
    Env_hooks hooks = real_env_hooks();
    hooks.write_file = [&](const std::string& path, const std::string& data,
                           std::string* error) {
        const std::string written =
            tear.load() ? data.substr(0, data.size() / 2) : data;
        return real_env_hooks().write_file(path, written, error);
    };
    {
        Service_options options;
        options.cache_dir = dir;
        options.hooks = &hooks;
        Sweep_service service(options);
        tear = true;
        const Sweep_report report = service.run(small_config());
        EXPECT_EQ(report_table(report), reference_table());
        ASSERT_FALSE(record_files(dir).empty());
    }
    // The "next process" reads the torn directory with healthy hooks: every
    // record fails validation, is quarantined, and the sweep recomputes —
    // byte-identically, without a single abort.
    Service_options options;
    options.cache_dir = dir;
    Sweep_service service(options);
    const Sweep_report report = service.run(small_config());
    EXPECT_EQ(report_table(report), reference_table());
    EXPECT_EQ(report.entry_hits, 0);
    EXPECT_EQ(report.entry_misses, 1);
    EXPECT_GT(service.cache()->stats().corrupt_quarantined, 0);
    // The recomputed records replaced the torn ones: a third run is warm.
    Sweep_service warm(options);
    const Sweep_report rewarmed = warm.run(small_config());
    EXPECT_EQ(report_table(rewarmed), reference_table());
    EXPECT_EQ(rewarmed.entry_hits, 1);
    EXPECT_EQ(rewarmed.synthesis_runs, 0);
    fs::remove_all(dir);
}

TEST(Fault_injection, orphaned_temps_from_failed_renames_are_collected) {
    const std::string dir = fresh_dir("orphans");
    // Renames fail and the cleanup unlink "fails" too (crash between write
    // and rename): temp files pile up as orphans.
    std::atomic<bool> fault{false};
    Env_hooks hooks = real_env_hooks();
    hooks.rename_file = [&](const std::string& from, const std::string& to,
                            std::string* error) {
        if (fault.load()) {
            *error = "Input/output error";
            return false;
        }
        return real_env_hooks().rename_file(from, to, error);
    };
    hooks.remove_file = [&](const std::string& path) {
        if (fault.load()) return false;
        return real_env_hooks().remove_file(path);
    };
    Service_options options;
    options.cache_dir = dir;
    options.hooks = &hooks;
    Sweep_service service(options);
    fault = true;
    const Sweep_report report = service.run(small_config());
    EXPECT_EQ(report_table(report), reference_table());
    EXPECT_EQ(report.entry_stores, 0);
    EXPECT_GT(service.cache()->stats().store_failures, 0);
    fault = false;

    // Only temp orphans in the directory: no record ever landed.
    Result_cache inspector(dir);
    Result_cache::Verify_report verified = inspector.verify(false);
    EXPECT_EQ(verified.records_ok, 0);
    EXPECT_GT(verified.temp_files, 0);
    // gc sweeps them; the next run stores cleanly into the emptied dir.
    EXPECT_EQ(inspector.verify(true).removed_files, verified.temp_files);
    const Sweep_report clean = service.run(small_config());
    EXPECT_EQ(report_table(clean), reference_table());
    EXPECT_GT(clean.entry_stores, 0);
    fs::remove_all(dir);
}

TEST(Fault_injection, bit_flips_in_every_record_fall_back_to_recompute) {
    const std::string dir = fresh_dir("bitflips");
    Service_options options;
    options.cache_dir = dir;
    {
        Sweep_service service(options);
        service.run(small_config());
    }
    const std::vector<std::string> files = record_files(dir);
    ASSERT_FALSE(files.empty());
    // Flip one random bit in EVERY record under a printed seed.
    const std::uint64_t seed = std::random_device{}();
    SCOPED_TRACE(cat("seed ", seed));  // printed on failure for replay
    std::mt19937_64 rng(seed);
    for (const std::string& file : files) {
        std::string raw = read_raw(file);
        ASSERT_FALSE(raw.empty());
        const std::size_t byte = rng() % raw.size();
        raw[byte] = static_cast<char>(raw[byte] ^ (1 << (rng() % 8)));
        write_raw(file, raw);
    }
    // The warm run sees only corruption — and still reproduces the report
    // byte for byte with zero aborts, quarantining as it goes.
    Sweep_service service(options);
    const Sweep_report report = service.run(small_config());
    EXPECT_EQ(report_table(report), reference_table());
    EXPECT_EQ(report.entry_hits, 0);
    EXPECT_EQ(report.synthesis_loads, 0);
    EXPECT_GT(service.cache()->stats().corrupt_quarantined, 0);
    // verify+gc clears the quarantine debris left beside the fresh records.
    Result_cache inspector(dir);
    inspector.verify(true);
    Result_cache::Verify_report clean = inspector.verify(false);
    EXPECT_GT(clean.records_ok, 0);
    EXPECT_EQ(clean.records_corrupt, 0);
    EXPECT_EQ(clean.quarantined_files, 0);
    fs::remove_all(dir);
}

TEST(Fault_injection, stuck_request_times_out_then_service_recovers) {
    // A controllable clock: each now_ms read advances `tick` ms, so a job
    // whose work loop reads the clock at checkpoints "takes" as long as we
    // say it does — no real waiting anywhere.
    struct Clock {
        std::atomic<std::int64_t> now{0};
        std::atomic<std::int64_t> tick{0};
        std::atomic<int> sleeps{0};
    } clock;
    Env_hooks hooks = real_env_hooks();
    hooks.now_ms = [&clock] {
        return clock.now.fetch_add(clock.tick.load()) + clock.tick.load();
    };
    hooks.sleep_ms = [&clock](std::int64_t ms) {
        ++clock.sleeps;
        clock.now.fetch_add(ms);
    };
    Service_options options;
    options.hooks = &hooks;
    options.deadline_ms = 10;
    options.retry.max_attempts = 2;
    Sweep_service service(options);

    clock.tick = 50;  // every clock read blows the 10ms deadline
    std::vector<Request_outcome> outcomes =
        service.run_requests({small_config()});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_EQ(outcomes[0].kind, Error_kind::timeout);
    EXPECT_EQ(outcomes[0].attempts, 2);  // timeouts are transient: retried
    EXPECT_GT(clock.sleeps.load(), 0);   // backoff between the attempts

    // The clock unfreezes; the SAME service serves the request fine.
    clock.tick = 0;
    outcomes = service.run_requests({small_config()});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(report_table(outcomes[0].report), reference_table());
}

TEST(Fault_injection, batch_survives_mixed_faults_and_bad_requests) {
    const std::string dir = fresh_dir("mixed");
    // Reads fail hard (not "missing" — an actual I/O error) while a batch
    // with a bad request in the middle drains: good requests recompute and
    // succeed, the bad one fails with its own taxonomy kind.
    Env_hooks hooks = real_env_hooks();
    hooks.read_file = [](const std::string&, std::string*, std::string* error) {
        *error = "Input/output error";
        return Env_hooks::Read_result::error;
    };
    Service_options options;
    options.cache_dir = dir;
    options.hooks = &hooks;
    Sweep_service service(options);

    Sweep_config bad = small_config();
    bad.iteration_counts = {-3};
    const std::vector<Request_outcome> outcomes =
        service.run_requests({small_config(), bad, small_config()});
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_EQ(report_table(outcomes[0].report), reference_table());
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_EQ(outcomes[1].kind, Error_kind::user);
    EXPECT_TRUE(outcomes[2].ok);
    EXPECT_TRUE(outcomes[2].deduplicated);
    fs::remove_all(dir);
}

}  // namespace
}  // namespace islhls
