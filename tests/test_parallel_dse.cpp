// Parallel exploration engine: byte-identical determinism across thread
// counts, concurrent cone-library access, and the batch sweep session.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "dse/explorer.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {
namespace {

Evaluator_options small_evaluator_options() {
    Evaluator_options options;
    options.frame_width = 320;
    options.frame_height = 240;
    options.class_overhead_luts = 2000.0;
    return options;
}

Space_options small_space(int threads) {
    Space_options space;
    space.iterations = 6;
    space.max_window = 4;
    space.max_depth = 3;
    space.threads = threads;
    return space;
}

// Each run gets a cold cache so the serial baseline and the parallel runs
// exercise the same build/synthesis paths, not just cache lookups.
struct Run_dumps {
    std::string pareto;
    std::string fit;
    std::string validation;
};

Run_dumps run_explorer(int threads, const std::string& device) {
    Cone_library library(extract_stencil(kernel_by_name("jacobi").c_source),
                         "jacobi");
    Explorer explorer(library, device_by_name(device), small_evaluator_options(),
                      small_space(threads));
    Run_dumps dumps;
    dumps.pareto = dump(explorer.explore_pareto());
    dumps.fit = dump(explorer.fit_device());
    dumps.validation = dump(explorer.validate_area_model());
    return dumps;
}

TEST(Parallel_dse, results_byte_identical_across_thread_counts) {
    const Run_dumps serial = run_explorer(1, "generic_small");
    EXPECT_FALSE(serial.pareto.empty());
    for (int threads : {2, 8}) {
        const Run_dumps parallel = run_explorer(threads, "generic_small");
        EXPECT_EQ(parallel.pareto, serial.pareto) << "threads " << threads;
        EXPECT_EQ(parallel.fit, serial.fit) << "threads " << threads;
        EXPECT_EQ(parallel.validation, serial.validation) << "threads " << threads;
    }
}

TEST(Parallel_dse, evaluator_pure_after_calibration) {
    Cone_library library(extract_stencil(kernel_by_name("jacobi").c_source),
                         "jacobi");
    Arch_evaluator evaluator(library, device_by_name("generic_small"),
                             small_evaluator_options());
    EXPECT_FALSE(evaluator.is_calibrated(2));
    // Calibrate the whole (window, depth) grid the instance below reaches:
    // evaluations after this are pure (no model fits, no pool growth).
    evaluator.calibrate(4, 3);
    for (int d = 1; d <= 3; ++d) EXPECT_TRUE(evaluator.is_calibrated(d));

    // Concurrent evaluations of the same instance agree exactly.
    Arch_instance instance;
    instance.window = 3;
    instance.level_depths = {2, 2, 2};
    instance.cores_per_depth = {{2, 2}};
    const std::string reference = dump(evaluator.evaluate(instance));
    std::vector<std::string> seen(16);
    parallel_for(seen.size(), 8, [&](std::size_t i) {
        seen[i] = dump(evaluator.evaluate(instance));
    });
    for (const std::string& s : seen) EXPECT_EQ(s, reference);
}

TEST(Parallel_dse, cone_library_survives_concurrent_hammering) {
    Cone_library library(extract_stencil(kernel_by_name("jacobi").c_source),
                         "jacobi");
    const Fpga_device& device = device_by_name("generic_small");
    const Synth_options synth;
    const int max_window = 4;
    const int max_depth = 3;

    // 8 threads race over the whole grid several times; every (w, d) cone and
    // synthesis must be built exactly once and stay stable.
    std::vector<const Cone*> first_pass(
        static_cast<std::size_t>(max_window * max_depth), nullptr);
    std::atomic<long long> checksum{0};
    parallel_for(static_cast<std::size_t>(max_window * max_depth) * 8, 8,
                 [&](std::size_t i) {
                     const std::size_t cell = i % (max_window * max_depth);
                     const int w = static_cast<int>(cell) / max_depth + 1;
                     const int d = static_cast<int>(cell) % max_depth + 1;
                     const Cone& cone = library.cone(w, d);
                     checksum.fetch_add(library.stats(w, d).register_count);
                     const Synthesis_report& report =
                         library.synthesis(w, d, device, synth);
                     EXPECT_GT(report.lut_count, 0.0);
                     // The first writer records the address; later readers of
                     // the same cell must see the same object.
                     const Cone* expected = nullptr;
                     if (!std::atomic_ref<const Cone*>(first_pass[cell])
                              .compare_exchange_strong(expected, &cone)) {
                         EXPECT_EQ(expected, &cone);
                     }
                 });

    EXPECT_EQ(library.cone_builds(), max_window * max_depth);
    EXPECT_EQ(library.synthesis_runs(), max_window * max_depth);
    // Two direct lookups per body run; synthesis misses add a few more via
    // their internal cone() call, so this is a lower bound.
    EXPECT_GE(library.cone_lookups(),
              static_cast<long long>(max_window * max_depth) * 8 * 2);
    // The meter equals the key-ordered sum of the cached costs regardless of
    // the schedule that filled the cache.
    double total = 0.0;
    for (double c : library.synthesis_costs()) total += c;
    EXPECT_DOUBLE_EQ(library.synthesis_cpu_seconds(), total);
}

TEST(Parallel_dse, sweep_session_matches_standalone_explorers) {
    Sweep_config config;
    config.kernels = {"jacobi", "igf"};
    config.devices = {"generic_small", "xc6vlx760"};
    config.iteration_counts = {4, 6};
    config.frame_width = 320;
    config.frame_height = 240;
    config.space = small_space(2);

    Sweep_session session(config);
    const Sweep_report report = session.run();
    ASSERT_EQ(report.entries.size(), 8u);

    // Entries come back kernel-major, then device, then N.
    EXPECT_EQ(report.entries[0].kernel, "jacobi");
    EXPECT_EQ(report.entries[0].device, "generic_small");
    EXPECT_EQ(report.entries[0].iterations, 4);
    EXPECT_EQ(report.entries[7].kernel, "igf");
    EXPECT_EQ(report.entries[7].device, "xc6vlx760");
    EXPECT_EQ(report.entries[7].iterations, 6);

    // Each entry equals what a standalone explorer finds for that combo.
    for (const Sweep_entry& entry : report.entries) {
        Cone_library library(
            extract_stencil(kernel_by_name(entry.kernel).c_source), entry.kernel);
        Evaluator_options evaluator_options;
        evaluator_options.frame_width = config.frame_width;
        evaluator_options.frame_height = config.frame_height;
        Space_options space = config.space;
        space.iterations = entry.iterations;
        Explorer explorer(library, device_by_name(entry.device),
                          evaluator_options, space);
        const Explorer::Fit_result fit = explorer.fit_device();
        ASSERT_EQ(entry.fits, fit.has_best);
        if (entry.fits) {
            EXPECT_EQ(dump(entry.best), dump(fit.best));
        }
    }

    // The shared cache builds each kernel's cone grid once, not once per
    // device x iteration-count combination.
    const int grid = config.space.max_window * config.space.max_depth;
    EXPECT_EQ(report.cone_builds, 2 * grid);
    // Syntheses are shared across iteration counts (keyed by device only).
    EXPECT_EQ(report.synthesis_runs,
              2 * grid * static_cast<int>(config.devices.size()));
    EXPECT_GT(report.synthesis_lookups, report.synthesis_runs);
}

TEST(Parallel_dse, sweep_validation_is_exact_and_changes_nothing_else) {
    Sweep_config config;
    config.kernels = {"jacobi", "life"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {3};
    config.frame_width = 320;
    config.frame_height = 240;
    config.space = small_space(2);
    config.validation_frame_width = 20;
    config.validation_frame_height = 14;

    Sweep_session plain_session(config);
    const Sweep_report plain = plain_session.run();

    config.validate = true;
    Sweep_session validated_session(config);
    const Sweep_report validated = validated_session.run();

    ASSERT_EQ(plain.entries.size(), validated.entries.size());
    for (std::size_t i = 0; i < plain.entries.size(); ++i) {
        const Sweep_entry& p = plain.entries[i];
        const Sweep_entry& v = validated.entries[i];
        SCOPED_TRACE(p.kernel);
        // Validation is additive: the exploration results are untouched.
        EXPECT_FALSE(p.validated);
        EXPECT_EQ(p.fits, v.fits);
        if (p.fits) {
            EXPECT_EQ(dump(p.best), dump(v.best));
            // Double-mode architecture simulation must reproduce the ghost
            // golden exactly — any deviation is a flow bug.
            EXPECT_TRUE(v.validated);
            EXPECT_EQ(v.validation_max_abs_err, 0.0);
        } else {
            EXPECT_FALSE(v.validated);
        }
    }
    // The report renders the golden column.
    EXPECT_NE(to_string(validated).find("exact"), std::string::npos);
}

TEST(Parallel_dse, explorer_shared_pool_results_are_byte_identical) {
    // An explorer on an injected pool must produce the dumps of a serial
    // explorer; the same pool serves several explorers in sequence (the
    // sweep session's usage pattern).
    const Kernel_def& kernel = kernel_by_name("igf");
    Thread_pool pool(4);
    for (const std::string device : {"generic_small", "xc6vlx760"}) {
        SCOPED_TRACE(device);
        Cone_library serial_lib(extract_stencil(kernel.c_source), kernel.name);
        Explorer serial(serial_lib, device_by_name(device),
                        small_evaluator_options(), small_space(1));
        Cone_library pooled_lib(extract_stencil(kernel.c_source), kernel.name);
        Explorer pooled(pooled_lib, device_by_name(device),
                        small_evaluator_options(), small_space(1), &pool);
        EXPECT_EQ(dump(serial.explore_pareto()), dump(pooled.explore_pareto()));
        EXPECT_EQ(dump(serial.fit_device()), dump(pooled.fit_device()));
    }
}

TEST(Parallel_dse, sweep_rejects_bad_config) {
    Sweep_config config;
    EXPECT_THROW(Sweep_session{config}, Error);
    config.kernels = {"jacobi"};
    config.devices = {"generic_small"};
    config.iteration_counts = {4, 0};
    EXPECT_THROW(Sweep_session{config}, Error);
}

}  // namespace
}  // namespace islhls
