#include <gtest/gtest.h>

#include <cmath>

#include "estimate/format_search.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

class Format_search_fixture : public ::testing::Test {
protected:
    Format_search_fixture()
        : step(extract_stencil(kernel_by_name("igf").c_source)),
          cone(step, Cone_spec{3, 3, 2}) {
        content = Frame_set(32, 24);
        content.add_field("u", make_synthetic_scene(32, 24, 8));
    }
    Stencil_step step;
    Cone cone;
    Frame_set content;
};

TEST_F(Format_search_fixture, integer_bits_cover_the_dynamic_range) {
    const Format_search_result r =
        search_fixed_format(cone, content, Boundary::clamp);
    ASSERT_TRUE(r.satisfiable);
    // IGF intermediates reach data*16 before scaling: max_abs in the
    // thousands, so at least 13 integer bits (sign + magnitude + guard).
    EXPECT_GT(r.max_abs_value, 255.0);
    EXPECT_GE(r.format.integer_bits,
              2 + static_cast<int>(std::ceil(std::log2(r.max_abs_value))));
    // The returned format really achieves the target.
    EXPECT_GE(r.psnr_db, 50.0);
}

TEST_F(Format_search_fixture, tighter_target_needs_more_fraction_bits) {
    Format_search_options relaxed;
    relaxed.target_psnr_db = 30.0;
    Format_search_options strict;
    strict.target_psnr_db = 95.0;
    const auto fmt_relaxed = search_fixed_format(cone, content, Boundary::clamp,
                                                 relaxed);
    const auto fmt_strict = search_fixed_format(cone, content, Boundary::clamp,
                                                strict);
    ASSERT_TRUE(fmt_relaxed.satisfiable);
    ASSERT_TRUE(fmt_strict.satisfiable);
    EXPECT_GT(fmt_strict.format.frac_bits, fmt_relaxed.format.frac_bits);
    EXPECT_LE(fmt_relaxed.format.total_bits(), fmt_strict.format.total_bits());
}

TEST_F(Format_search_fixture, unreachable_target_reports_unsatisfiable) {
    Format_search_options impossible;
    impossible.target_psnr_db = 300.0;  // beyond any fixed point within 32 bits
    impossible.max_total_bits = 20;
    const auto r = search_fixed_format(cone, content, Boundary::clamp, impossible);
    EXPECT_FALSE(r.satisfiable);
    EXPECT_GT(r.formats_tried, 1);
}

TEST(Format_search, boolean_kernel_needs_almost_no_fraction) {
    // Game of Life values are exactly 0/1: a couple of fraction bits give a
    // bit-exact result, so the search should stop immediately.
    Stencil_step step = extract_stencil(kernel_by_name("life").c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    Frame_set content(24, 24);
    content.add_field("u", make_checkerboard(24, 24, 1, 0.0, 1.0));
    Format_search_options options;
    options.target_psnr_db = 80.0;
    options.peak_value = 1.0;
    const auto r = search_fixed_format(cone, content, Boundary::zero, options);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_LE(r.format.frac_bits, 2);
    EXPECT_LE(r.max_abs_value, 16.0);
}

TEST(Format_search, chambolle_small_range_small_integer_bits) {
    // Dual fields live in [-1, 1]; with g scaled by 1/8 the intermediates
    // stay small, so the integer bits must be far below IGF's.
    Stencil_step step = extract_stencil(kernel_by_name("chambolle").c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Frame_set content = kernel.make_initial(make_synthetic_scene(24, 24, 9));
    Format_search_options options;
    options.target_psnr_db = 45.0;
    const auto r = search_fixed_format(cone, content, kernel.boundary, options);
    ASSERT_TRUE(r.satisfiable);
    // The input registers hold g (up to 255), so 10 integer bits; still far
    // below IGF's ~14 (whose intermediates reach data*16).
    EXPECT_LE(r.format.integer_bits, 10);
}

}  // namespace
}  // namespace islhls
