#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "estimate/format_search.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/fixed_exec.hpp"
#include "support/prng.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

// The pre-batching search, preserved verbatim as the reference the batched
// implementation must reproduce field for field: per-sample interpreter
// runs (run_fixed) inside the PSNR loop, the same window sampling, range
// analysis and bit-growth schedule.
Format_search_result search_fixed_format_reference(
    const Cone& cone, const Frame_set& content, Boundary boundary,
    const Format_search_options& options) {
    const Register_program& program = cone.program();
    const Stencil_step& step = cone.step();

    Prng rng(options.seed);
    std::vector<std::pair<int, int>> origins;
    for (int i = 0; i < options.sample_windows; ++i) {
        origins.push_back({rng.next_int(0, std::max(0, content.width() - 1)),
                           rng.next_int(0, std::max(0, content.height() - 1))});
    }

    std::vector<std::vector<double>> input_sets;
    std::vector<std::vector<double>> references;
    std::vector<double> trace;
    double max_abs = 0.0;
    for (const auto& [ox, oy] : origins) {
        std::vector<double> inputs;
        for (const auto& port : program.input_ports()) {
            const Frame& f = content.field(step.pool().field_name(port.field));
            inputs.push_back(f.sample(ox + port.dx, oy + port.dy, boundary));
        }
        program.run_trace_into(inputs, trace);
        for (double v : trace) max_abs = std::max(max_abs, std::fabs(v));
        std::vector<double> reference;
        for (const std::int32_t r : program.outputs()) {
            reference.push_back(trace[static_cast<std::size_t>(r)]);
        }
        references.push_back(std::move(reference));
        input_sets.push_back(std::move(inputs));
    }

    Format_search_result result;
    result.max_abs_value = max_abs;
    const int integer_bits =
        2 + static_cast<int>(std::ceil(std::log2(std::max(1.0, max_abs))));
    result.range_integer_bits = integer_bits;

    struct Accuracy {
        bool exact = false;
        double psnr_db = 0.0;
    };
    auto measure = [&](const Fixed_format& fmt) -> Accuracy {
        // The fold-order contract of the batched search: partial squared-
        // error sums over at most 16 fixed contiguous sample ranges, never
        // smaller than one lane block (a function of the sample count
        // alone), combined in range order.
        const std::size_t samples = input_sets.size();
        const std::size_t lane = static_cast<std::size_t>(Fixed_exec::kLane);
        const std::size_t jobs = std::max<std::size_t>(
            1, std::min<std::size_t>(16, (samples + lane - 1) / lane));
        double se = 0.0;
        long long count = 0;
        for (std::size_t j = 0; j < jobs; ++j) {
            const std::size_t s0 = j * samples / jobs;
            const std::size_t s1 = (j + 1) * samples / jobs;
            double partial = 0.0;
            for (std::size_t s = s0; s < s1; ++s) {
                const std::vector<double> fixed =
                    run_fixed(program, input_sets[s], fmt);
                for (std::size_t o = 0; o < fixed.size(); ++o) {
                    const double d = fixed[o] - references[s][o];
                    partial += d * d;
                    count += 1;
                }
            }
            se += partial;
        }
        const double mse = se / static_cast<double>(count);
        if (mse == 0.0) return {true, 0.0};
        return {false,
                10.0 * std::log10(options.peak_value * options.peak_value / mse)};
    };
    auto accepts = [&](const Accuracy& acc) {
        if (step.integer_native()) return acc.exact;
        return acc.exact || acc.psnr_db >= options.target_psnr_db;
    };
    // The reference shrink walks the per-sample raw interpreter (the batched
    // search compares its own batch buffers — byte-identical by the Fixed_exec
    // contract), accepting while every output word matches the accepted
    // format's.
    auto raw_outputs_of = [&](const Fixed_format& fmt) {
        const Raw_quantizer quantize(fmt);
        std::vector<std::int64_t> flat;
        std::vector<std::int64_t> raw;
        for (const std::vector<double>& inputs : input_sets) {
            raw.clear();
            for (double v : inputs) raw.push_back(quantize(v));
            for (std::int64_t word : run_fixed_raw(program, raw, fmt)) {
                flat.push_back(word);
            }
        }
        return flat;
    };
    auto shrink = [&]() {
        if (!options.shrink_integer_bits) return;
        const std::vector<std::int64_t> accepted = raw_outputs_of(result.format);
        const int frac = result.format.frac_bits;
        for (int m = result.format.integer_bits - 1; m >= 1 && m + frac >= 2; --m) {
            result.formats_tried += 1;
            if (raw_outputs_of(Fixed_format{m, frac}) != accepted) break;
            result.format.integer_bits = m;
        }
    };

    // Mirrors the production rule: integer-native programs start the
    // candidate ladder at zero fractional bits (Q m.0 is already exact).
    const int first_frac = step.integer_native() ? 0 : 1;
    for (int frac = first_frac; integer_bits + frac <= options.max_total_bits; ++frac) {
        const Fixed_format fmt{integer_bits, frac};
        result.formats_tried += 1;
        const Accuracy acc = measure(fmt);
        result.format = fmt;
        result.psnr_db = acc.psnr_db;
        result.exact = acc.exact;
        if (accepts(acc)) {
            shrink();
            return result;
        }
    }
    result.satisfiable = false;
    return result;
}

void expect_same_result(const Format_search_result& a, const Format_search_result& b) {
    EXPECT_EQ(a.format, b.format);
    EXPECT_EQ(a.psnr_db, b.psnr_db);
    EXPECT_EQ(a.exact, b.exact);
    EXPECT_EQ(a.max_abs_value, b.max_abs_value);
    EXPECT_EQ(a.range_integer_bits, b.range_integer_bits);
    EXPECT_EQ(a.formats_tried, b.formats_tried);
    EXPECT_EQ(a.satisfiable, b.satisfiable);
}

class Format_search_fixture : public ::testing::Test {
protected:
    Format_search_fixture()
        : step(extract_stencil(kernel_by_name("igf").c_source)),
          cone(step, Cone_spec{3, 3, 2}) {
        content = Frame_set(32, 24);
        content.add_field("u", make_synthetic_scene(32, 24, 8));
    }
    Stencil_step step;
    Cone cone;
    Frame_set content;
};

TEST_F(Format_search_fixture, integer_bits_cover_the_dynamic_range) {
    const Format_search_result r =
        search_fixed_format(cone, content, Boundary::clamp);
    ASSERT_TRUE(r.satisfiable);
    // IGF intermediates reach data*16 before scaling: max_abs in the
    // thousands, so at least 13 integer bits (sign + magnitude + guard) in
    // the range-derived floor. The chosen format may sit below the floor
    // (shrink phase), never above it.
    EXPECT_GT(r.max_abs_value, 255.0);
    EXPECT_GE(r.range_integer_bits,
              2 + static_cast<int>(std::ceil(std::log2(r.max_abs_value))));
    EXPECT_LE(r.format.integer_bits, r.range_integer_bits);
    EXPECT_GE(r.format.integer_bits, 1);
    // The returned format really achieves the target.
    EXPECT_TRUE(r.exact || r.psnr_db >= 50.0);
}

TEST_F(Format_search_fixture, tighter_target_needs_more_fraction_bits) {
    Format_search_options relaxed;
    relaxed.target_psnr_db = 30.0;
    Format_search_options strict;
    strict.target_psnr_db = 95.0;
    const auto fmt_relaxed = search_fixed_format(cone, content, Boundary::clamp,
                                                 relaxed);
    const auto fmt_strict = search_fixed_format(cone, content, Boundary::clamp,
                                                strict);
    ASSERT_TRUE(fmt_relaxed.satisfiable);
    ASSERT_TRUE(fmt_strict.satisfiable);
    EXPECT_GT(fmt_strict.format.frac_bits, fmt_relaxed.format.frac_bits);
    EXPECT_LE(fmt_relaxed.format.total_bits(), fmt_strict.format.total_bits());
}

TEST_F(Format_search_fixture, unreachable_target_reports_unsatisfiable) {
    Format_search_options impossible;
    impossible.target_psnr_db = 300.0;  // beyond any fixed point within 32 bits
    impossible.max_total_bits = 20;
    const auto r = search_fixed_format(cone, content, Boundary::clamp, impossible);
    EXPECT_FALSE(r.satisfiable);
    EXPECT_GT(r.formats_tried, 1);
}

TEST(Format_search, boolean_kernel_needs_almost_no_fraction) {
    // Game of Life values are exactly 0/1: a couple of fraction bits give a
    // bit-exact result, so the search should stop immediately.
    Stencil_step step = extract_stencil(kernel_by_name("life").c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    Frame_set content(24, 24);
    content.add_field("u", make_checkerboard(24, 24, 1, 0.0, 1.0));
    Format_search_options options;
    options.target_psnr_db = 80.0;
    options.peak_value = 1.0;
    const auto r = search_fixed_format(cone, content, Boundary::zero, options);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_LE(r.format.frac_bits, 2);
    EXPECT_LE(r.max_abs_value, 16.0);
}

TEST_F(Format_search_fixture, batched_search_identical_to_interpreter_reference) {
    // The batched tape search must return the exact result of the
    // per-sample interpreter search — format, PSNR, range, formats tried —
    // under targets that stop early, stop late, and fail entirely.
    for (double target : {30.0, 50.0, 95.0, 300.0}) {
        SCOPED_TRACE(target);
        Format_search_options options;
        options.target_psnr_db = target;
        if (target == 300.0) options.max_total_bits = 20;
        expect_same_result(
            search_fixed_format_reference(cone, content, Boundary::clamp, options),
            search_fixed_format(cone, content, Boundary::clamp, options));
    }
}

TEST_F(Format_search_fixture, result_is_thread_count_invariant) {
    // The partial-sum fold must be a function of the sample set alone:
    // 1/2/8 threads (and all-hardware 0) return the bit-identical
    // Format_search_result, for window counts below, at and well above the
    // fixed fold-job count (16) — including ranges that do not divide evenly.
    for (int sample_windows : {5, 16, 70, 131}) {
        SCOPED_TRACE(sample_windows);
        Format_search_options base;
        base.sample_windows = sample_windows;
        const Format_search_result serial =
            search_fixed_format(cone, content, Boundary::clamp, base);
        for (int threads : {2, 8, 0}) {
            SCOPED_TRACE(threads);
            Format_search_options options = base;
            options.threads = threads;
            expect_same_result(
                serial, search_fixed_format(cone, content, Boundary::clamp, options));
        }
    }
}

TEST(Format_search, batched_matches_reference_across_kernels) {
    // Sweep every built-in kernel (sqrt, divide, compare and select paths
    // included) at a mid target; the batched and reference searches must
    // agree exactly under each kernel's own boundary.
    for (const std::string& name : kernel_names()) {
        SCOPED_TRACE(name);
        const Kernel_def& kernel = kernel_by_name(name);
        Stencil_step step = extract_stencil(kernel.c_source);
        const Cone cone(step, Cone_spec{2, 2, 1});
        const Frame_set content =
            kernel.make_initial(make_synthetic_scene(21, 16, 42));
        Format_search_options options;
        options.target_psnr_db = 40.0;
        options.sample_windows = 24;
        expect_same_result(
            search_fixed_format_reference(cone, content, kernel.boundary, options),
            search_fixed_format(cone, content, kernel.boundary, options));
    }
}

TEST(Format_search, chambolle_small_range_small_integer_bits) {
    // Dual fields live in [-1, 1]; with g scaled by 1/8 the intermediates
    // stay small, so the integer bits must be far below IGF's.
    Stencil_step step = extract_stencil(kernel_by_name("chambolle").c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Frame_set content = kernel.make_initial(make_synthetic_scene(24, 24, 9));
    Format_search_options options;
    options.target_psnr_db = 45.0;
    const auto r = search_fixed_format(cone, content, kernel.boundary, options);
    ASSERT_TRUE(r.satisfiable);
    // The input registers hold g (up to 255), so a range floor of 10 integer
    // bits; still far below IGF's ~14 (whose intermediates reach data*16).
    EXPECT_LE(r.range_integer_bits, 10);
    EXPECT_LE(r.format.integer_bits, r.range_integer_bits);
}

TEST(Format_search, chambolle_shrink_drops_below_the_range_floor_and_stays_exact) {
    // The range analysis sees g up to 255 and fixes a 10-bit floor, but the
    // head bit is a guard that the observed computation never exercises: the
    // shrink phase must land strictly below the floor, and the shrunk format
    // must reproduce the unshrunk outputs word for word (same fraction bits,
    // no wrap fired — the search already proved it, this re-proves it with
    // the independent per-sample interpreter).
    Stencil_step step = extract_stencil(kernel_by_name("chambolle").c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Kernel_def& kernel = kernel_by_name("chambolle");
    const Frame_set content = kernel.make_initial(make_synthetic_scene(24, 24, 9));
    Format_search_options options;
    options.target_psnr_db = 45.0;
    options.shrink_integer_bits = false;
    const auto wide = search_fixed_format(cone, content, kernel.boundary, options);
    options.shrink_integer_bits = true;
    const auto shrunk = search_fixed_format(cone, content, kernel.boundary, options);
    ASSERT_TRUE(wide.satisfiable);
    ASSERT_TRUE(shrunk.satisfiable);
    // Shrink-off reproduces the classic two-phase result at the floor.
    EXPECT_EQ(wide.format.integer_bits, wide.range_integer_bits);
    // Shrink-on lands strictly below it, at the same fraction width and the
    // same achieved accuracy (the outputs did not change).
    EXPECT_LT(shrunk.format.integer_bits, shrunk.range_integer_bits);
    EXPECT_EQ(shrunk.range_integer_bits, wide.range_integer_bits);
    EXPECT_EQ(shrunk.format.frac_bits, wide.format.frac_bits);
    EXPECT_EQ(shrunk.psnr_db, wide.psnr_db);
    EXPECT_EQ(shrunk.exact, wide.exact);
    EXPECT_GT(shrunk.formats_tried, wide.formats_tried);

    // Independent word-for-word check across a fresh window sample.
    const Register_program& program = cone.program();
    const Raw_quantizer q_wide(wide.format);
    const Raw_quantizer q_shrunk(shrunk.format);
    Prng rng(7);
    for (int s = 0; s < 16; ++s) {
        const int ox = rng.next_int(0, content.width() - 1);
        const int oy = rng.next_int(0, content.height() - 1);
        std::vector<std::int64_t> raw_wide;
        std::vector<std::int64_t> raw_shrunk;
        for (const auto& port : program.input_ports()) {
            const Frame& f = content.field(step.pool().field_name(port.field));
            const double v = f.sample(ox + port.dx, oy + port.dy, kernel.boundary);
            raw_wide.push_back(q_wide(v));
            raw_shrunk.push_back(q_shrunk(v));
        }
        EXPECT_EQ(run_fixed_raw(program, raw_wide, wide.format),
                  run_fixed_raw(program, raw_shrunk, shrunk.format));
    }
}

}  // namespace
}  // namespace islhls
