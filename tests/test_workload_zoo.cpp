// Differential suite for the workload-zoo kernels (hotspot, fdtd,
// convection, conway): the compiled engine against the per-pixel reference
// interpreter across every boundary policy, tiled and untiled, at several
// thread counts; the integer-native conway kernel's raw-word identity
// between the fixed-point and double domains; and an end-to-end sweep with
// both DSE backends, format search and exact golden validation in both
// value domains.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/fixed_point.hpp"
#include "core/sweep.hpp"
#include "estimate/format_search.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/golden.hpp"
#include "support/text.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

const std::vector<std::string>& zoo_kernels() {
    static const std::vector<std::string> names = {"hotspot", "fdtd", "convection",
                                                   "conway"};
    return names;
}

const std::vector<Boundary>& all_boundaries() {
    static const std::vector<Boundary> boundaries = {
        Boundary::clamp, Boundary::zero, Boundary::mirror, Boundary::periodic};
    return boundaries;
}

// --- registry metadata: the zoo is wired through the standard registry ---------

TEST(Workload_zoo, kernels_are_registered_with_expected_metadata) {
    const std::vector<std::string> names = kernel_names();
    for (const std::string& name : zoo_kernels()) {
        SCOPED_TRACE(name);
        EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
    }
    EXPECT_EQ(kernel_by_name("fdtd").state_fields,
              (std::vector<std::string>{"ez", "hx", "hy"}));
    EXPECT_EQ(kernel_by_name("hotspot").const_fields, (std::vector<std::string>{"p"}));
    EXPECT_EQ(kernel_by_name("convection").const_fields,
              (std::vector<std::string>{"vx", "vy"}));
    EXPECT_FALSE(kernel_by_name("hotspot").integer_only);
    EXPECT_FALSE(kernel_by_name("fdtd").integer_only);
    EXPECT_FALSE(kernel_by_name("convection").integer_only);
    EXPECT_TRUE(kernel_by_name("conway").integer_only);
}

TEST(Workload_zoo, conway_step_is_integer_native) {
    EXPECT_TRUE(extract_stencil(kernel_by_name("conway").c_source).integer_native());
    EXPECT_FALSE(extract_stencil(kernel_by_name("hotspot").c_source).integer_native());
    EXPECT_FALSE(extract_stencil(kernel_by_name("life").c_source).integer_native());
}

TEST(Workload_zoo, convection_has_the_widest_footprint) {
    const Stencil_step step = extract_stencil(kernel_by_name("convection").c_source);
    EXPECT_EQ(step.max_reach(), 2);
}

// --- engine vs reference interpreter: every boundary x tiling x threads --------

class Zoo_differential : public ::testing::TestWithParam<std::string> {};

TEST_P(Zoo_differential, engine_matches_reference_across_schedules) {
    const Kernel_def& kernel = kernel_by_name(GetParam());
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_noise(23, 17, 0x200CAFE, 0.0, 255.0);
    const Frame_set initial = kernel.make_initial(content);
    const int iterations = 4;
    for (Boundary b : all_boundaries()) {
        SCOPED_TRACE(to_string(b));
        const Frame_set reference = run_ir_reference(step, initial, iterations, b);
        for (int tile : {1, 2}) {
            for (int threads : {1, 2, 8}) {
                SCOPED_TRACE(cat("tile=", tile, " threads=", threads));
                const Frame_set engine = run_ir(step, initial, iterations, b,
                                                Exec_options{threads, tile});
                for (const std::string& field : kernel.state_fields) {
                    EXPECT_EQ(max_abs_diff(engine.field(field),
                                           reference.field(field)), 0.0)
                        << field;
                }
            }
        }
    }
}

TEST_P(Zoo_differential, native_step_matches_ir_exactly) {
    const Kernel_def& kernel = kernel_by_name(GetParam());
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_synthetic_scene(19, 15, 77);
    Frame_set ir = kernel.make_initial(content);
    Frame_set native = ir;
    for (int i = 0; i < 3; ++i) {
        ir = run_step_ir(step, ir, kernel.boundary);
        native = kernel.native_step(native, kernel.boundary);
    }
    for (const std::string& field : kernel.state_fields) {
        EXPECT_EQ(max_abs_diff(ir.field(field), native.field(field)), 0.0) << field;
    }
}

INSTANTIATE_TEST_SUITE_P(Zoo, Zoo_differential, ::testing::ValuesIn(zoo_kernels()),
                         [](const auto& info) { return info.param; });

// --- conway: the fixed-point domain is the native one --------------------------

TEST(Workload_zoo, conway_fixed_raw_words_match_reference_everywhere) {
    const Kernel_def& kernel = kernel_by_name("conway");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_noise(21, 18, 0xC0117AE, 0.0, 255.0);
    const Frame_set initial = kernel.make_initial(content);
    const Fixed_format fmt{8, 0};  // Q8.0: whole numbers only
    const int iterations = 4;
    for (Boundary b : all_boundaries()) {
        SCOPED_TRACE(to_string(b));
        const Fixed_frame_result reference =
            run_ir_fixed_reference(step, initial, iterations, b, fmt);
        for (int tile : {1, 2}) {
            for (int threads : {1, 2, 8}) {
                SCOPED_TRACE(cat("tile=", tile, " threads=", threads));
                const Fixed_frame_result engine = run_ir(
                    step, initial, iterations, b, fmt, Exec_options{threads, tile});
                EXPECT_EQ(engine.raw, reference.raw);
            }
        }
    }
}

TEST(Workload_zoo, conway_fixed_point_reproduces_double_exactly) {
    // Every conway value (cells, neighbour counts, compare results) is an
    // exact small integer, so decoding the Q8.0 raw words must give the
    // double engine's frames bit for bit — the fixed domain loses nothing.
    const Kernel_def& kernel = kernel_by_name("conway");
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_noise(24, 20, 0x5EED, 0.0, 255.0);
    const Frame_set initial = kernel.make_initial(content);
    const Fixed_format fmt{8, 0};
    for (int iterations : {1, 4}) {
        SCOPED_TRACE(iterations);
        const Frame_set doubles =
            run_ir(step, initial, iterations, kernel.boundary, 1);
        const Fixed_frame_result fixed =
            run_ir(step, initial, iterations, kernel.boundary, fmt);
        const Frame_set decoded = fixed.to_frame_set();
        EXPECT_EQ(max_abs_diff(decoded.field("u"), doubles.field("u")), 0.0);
    }
}

TEST(Workload_zoo, conway_format_search_lands_on_zero_fraction_bits) {
    // The integer-native flag starts the scan at Q m.0, which is already
    // exact — the accepted candidate keeps zero fraction bits and the
    // result models exactness explicitly (mse == 0, no PSNR involved).
    // Any further formats tried come from the integer-bit shrink phase,
    // which may only ever narrow below the range-derived floor.
    const Kernel_def& kernel = kernel_by_name("conway");
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Frame_set content = kernel.make_initial(make_noise(24, 18, 3, 0.0, 255.0));
    Format_search_options options;
    options.target_psnr_db = 80.0;
    options.peak_value = 1.0;
    const Format_search_result r =
        search_fixed_format(cone, content, kernel.boundary, options);
    ASSERT_TRUE(r.satisfiable);
    EXPECT_EQ(r.format.frac_bits, 0);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.psnr_db, 0.0);
    EXPECT_GE(r.formats_tried, 1);
    EXPECT_LE(r.format.integer_bits, r.range_integer_bits);
}

// --- end-to-end: sweep with both backends, exact in both value domains ---------

TEST(Workload_zoo, sweep_validates_exactly_across_backends) {
    Sweep_config config;
    config.kernels = zoo_kernels();
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {4};
    config.frame_width = 320;
    config.frame_height = 240;
    config.space.iterations = 4;
    config.space.max_window = 3;
    config.space.max_depth = 2;
    config.space.threads = 2;
    config.backends = {"paper", "streaming"};
    config.with_pareto = true;
    config.validate = true;
    config.search_formats = true;
    config.validate_fixed = true;
    Sweep_session session(config);
    const Sweep_report report = session.run();
    ASSERT_EQ(report.entries.size(), zoo_kernels().size() * 2);
    for (const Sweep_entry& entry : report.entries) {
        SCOPED_TRACE(cat(entry.kernel, " via ", entry.backend));
        EXPECT_TRUE(entry.fits);
        if (entry.backend != "paper") continue;
        // Double-domain golden: the fitted architecture must reproduce the
        // ghost golden bit for bit.
        EXPECT_TRUE(entry.validated);
        EXPECT_EQ(entry.validation_max_abs_err, 0.0);
        // The searched format must satisfy the target, and the fixed-domain
        // golden must agree word for word.
        EXPECT_TRUE(entry.format_searched);
        EXPECT_TRUE(entry.format_satisfiable);
        EXPECT_TRUE(entry.validated_fixed);
        EXPECT_EQ(entry.validation_max_raw_err, 0.0);
        if (entry.kernel == "conway") {
            EXPECT_EQ(entry.fixed_format.frac_bits, 0);
        }
    }
    // Both backends contributed Pareto points, so each combination has a
    // merged cross-backend front.
    EXPECT_EQ(report.merged_fronts.size(), zoo_kernels().size());
}

}  // namespace
}  // namespace islhls
