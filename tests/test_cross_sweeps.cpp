// Cross-product integration sweeps: every kernel under every boundary
// policy, and the explorer across kernels and devices. These catch
// interactions the single-module tests cannot (e.g. a kernel whose
// asymmetric footprint breaks a boundary path, or a device whose limits make
// the allocator misbehave for some op mix).
#include <gtest/gtest.h>

#include "dse/explorer.hpp"
#include "grid/frame_ops.hpp"
#include "sim/arch_sim.hpp"
#include "sim/golden.hpp"
#include "symexec/executor.hpp"
#include "kernels/kernels.hpp"

namespace islhls {
namespace {

// --- kernel x boundary: the IR step must track the native step under any
// boundary policy (both use the same policy, so they must agree exactly). ---

class Kernel_boundary
    : public ::testing::TestWithParam<std::tuple<std::string, Boundary>> {};

TEST_P(Kernel_boundary, ir_matches_native_under_policy) {
    const auto [kernel_name, boundary] = GetParam();
    const Kernel_def& kernel = kernel_by_name(kernel_name);
    const Stencil_step step = extract_stencil(kernel.c_source);
    const Frame content = make_noise(14, 11, 0xB0B, 0.0, 255.0);
    Frame_set state = kernel.make_initial(content);
    Frame_set native = state;
    for (int i = 0; i < 2; ++i) {
        state = run_step_ir(step, state, boundary);
        native = kernel.native_step(native, boundary);
    }
    for (const std::string& field : kernel.state_fields) {
        EXPECT_EQ(max_abs_diff(state.field(field), native.field(field)), 0.0)
            << field << " under " << to_string(boundary);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Kernel_boundary,
    ::testing::Combine(::testing::ValuesIn(kernel_names()),
                       ::testing::Values(Boundary::clamp, Boundary::zero,
                                         Boundary::mirror, Boundary::periodic)),
    [](const auto& info) {
        return std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
    });

// --- kernel x architecture: the simulator equals the ghost golden under the
// kernel's own boundary for a mixed-depth instance. -----------------------------

class Kernel_arch : public ::testing::TestWithParam<std::string> {};

TEST_P(Kernel_arch, mixed_depth_architecture_is_exact) {
    const Kernel_def& kernel = kernel_by_name(GetParam());
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Arch_instance instance;
    instance.window = 3;
    instance.level_depths = {2, 1, 1};  // mixed classes, uneven coverage
    const Frame content = make_synthetic_scene(17, 13, 123);
    const Frame_set initial = kernel.make_initial(content);
    Arch_sim_options options;
    options.boundary = kernel.boundary;
    const Arch_sim_result sim =
        simulate_architecture(library, instance, initial, options);
    const Frame_set golden = run_ghost_ir(library.step(), initial, 4, kernel.boundary);
    for (const std::string& field : kernel.state_fields) {
        EXPECT_EQ(max_abs_diff(sim.final_state.field(field), golden.field(field)), 0.0)
            << field;
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, Kernel_arch, ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) { return info.param; });

// --- kernel x device: the explorer always finds a feasible fit on every
// device large enough, and the result respects the budget. ----------------------

class Kernel_device
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(Kernel_device, fit_is_feasible_and_within_budget) {
    const auto [kernel_name, device_name] = GetParam();
    const Kernel_def& kernel = kernel_by_name(kernel_name);
    Cone_library library(extract_stencil(kernel.c_source), kernel.name);
    Evaluator_options evaluator_options;
    evaluator_options.frame_width = 320;
    evaluator_options.frame_height = 240;
    Space_options space;
    space.iterations = 4;
    space.max_window = 4;
    space.max_depth = 2;
    const Fpga_device& device = device_by_name(device_name);
    Explorer explorer(library, device, evaluator_options, space);
    const auto fit = explorer.fit_device();
    ASSERT_TRUE(fit.has_best) << kernel_name << " on " << device_name;
    EXPECT_LE(fit.best.estimated_area_luts, static_cast<double>(device.usable_luts()));
    EXPECT_GT(fit.best.throughput.fps, 0.0);
    EXPECT_TRUE(fit.best.feasible);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Kernel_device,
    ::testing::Combine(::testing::Values("igf", "chambolle", "erosion", "shock",
                                         "life"),
                       ::testing::Values("xc6vlx760", "xc7vx485t", "generic_small")),
    [](const auto& info) {
        return std::get<0>(info.param) + "_on_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace islhls
