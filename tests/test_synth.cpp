// Virtual synthesis substrate: device database, cost model behaviour and the
// properties the paper's estimation flow relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "dse/cone_library.hpp"
#include "kernels/kernels.hpp"
#include "support/error.hpp"
#include "symexec/executor.hpp"
#include "synth/cost_model.hpp"
#include "synth/device.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {
namespace {

TEST(Device, registry_contains_paper_parts) {
    EXPECT_EQ(device_by_name("xc6vlx760").family, "Virtex-6");
    EXPECT_EQ(device_by_name("xc2vp30").family, "Virtex-II Pro");
    EXPECT_GT(device_by_name("xc6vlx760").lut_count,
              device_by_name("xc2vp30").lut_count);
    EXPECT_THROW(device_by_name("xc9000"), Error);
    EXPECT_GE(all_devices().size(), 4u);
    for (const Fpga_device& d : all_devices()) {
        EXPECT_GT(d.lut_count, 0);
        EXPECT_GT(d.usable_luts(), 0);
        EXPECT_LE(d.usable_luts(), d.lut_count);
    }
}

class Synth_fixture : public ::testing::Test {
protected:
    Stencil_step step = extract_stencil(kernel_by_name("igf").c_source);
    const Fpga_device& v6 = device_by_name("xc6vlx760");
};

TEST_F(Synth_fixture, cost_model_charges_every_operation) {
    const Cone cone(step, Cone_spec{2, 2, 1});
    Cost_options options;
    const Program_cost cost = cost_of_program(cone.program(), options);
    EXPECT_GT(cost.luts, 0.0);
    EXPECT_GT(cost.ff_bits, 0.0);
    EXPECT_GT(cost.max_stage_delay_ns, 0.0);
    EXPECT_GE(cost.latency_stages, 1);
}

TEST_F(Synth_fixture, constant_multiplier_cheaper_than_variable) {
    // igf multiplies by constants only -> no DSP blocks.
    const Cone cone(step, Cone_spec{2, 2, 1});
    const Synthesis_report r = synthesize_cone(cone, "igf", v6);
    EXPECT_EQ(r.dsp_count, 0);
}

TEST_F(Synth_fixture, synthesis_is_deterministic) {
    const Cone cone(step, Cone_spec{3, 3, 2});
    const Synthesis_report a = synthesize_cone(cone, "igf", v6);
    const Synthesis_report b = synthesize_cone(cone, "igf", v6);
    EXPECT_EQ(a.lut_count, b.lut_count);
    EXPECT_EQ(a.f_max_mhz, b.f_max_mhz);
}

TEST_F(Synth_fixture, perturbation_differs_per_design_but_stays_small) {
    const Cone c1(step, Cone_spec{3, 3, 2});
    const Cone c2(step, Cone_spec{3, 3, 2});
    const Synthesis_report r1 = synthesize_cone(c1, "igf", v6);
    const Synthesis_report under_other_name =
        synthesize_program(c2.program(), "igf_w3x3_d2_alt", v6, {});
    // Same netlist, different design name -> only the perturbation differs.
    const double rel = std::fabs(r1.lut_count - under_other_name.lut_count) /
                       r1.lut_count;
    EXPECT_GT(rel, 0.0);
    EXPECT_LT(rel, 0.08);
}

TEST_F(Synth_fixture, area_tracks_register_count) {
    // The observation behind Eq. 1: more registers -> proportionally more
    // LUTs, up to the logic-sharing discount.
    std::vector<double> luts;
    std::vector<int> regs;
    for (int w : {1, 2, 3, 4, 5}) {
        const Cone cone(step, Cone_spec{w, w, 2});
        const Synthesis_report r = synthesize_cone(cone, "igf", v6);
        luts.push_back(r.lut_count);
        regs.push_back(r.register_count);
    }
    for (std::size_t i = 1; i < luts.size(); ++i) {
        EXPECT_GT(luts[i], luts[i - 1]);
        EXPECT_GT(regs[i], regs[i - 1]);
        // LUTs per register stay within a narrow band (the alpha the paper fits).
        const double ratio_i = luts[i] / regs[i];
        const double ratio_0 = luts[0] / regs[0];
        EXPECT_LT(std::fabs(ratio_i - ratio_0) / ratio_0, 0.35);
    }
}

TEST_F(Synth_fixture, fmax_degrades_gently_with_size) {
    const Cone small(step, Cone_spec{1, 1, 1});
    const Cone big(step, Cone_spec{6, 6, 4});
    const Synthesis_report rs = synthesize_cone(small, "igf", v6);
    const Synthesis_report rb = synthesize_cone(big, "igf", v6);
    EXPECT_GE(rs.f_max_mhz, rb.f_max_mhz);
    EXPECT_GT(rb.f_max_mhz, rs.f_max_mhz * 0.5);
}

TEST_F(Synth_fixture, slower_device_slower_clock) {
    const Cone cone(step, Cone_spec{3, 3, 2});
    const Synthesis_report v6_r = synthesize_cone(cone, "igf", v6);
    const Synthesis_report v2p_r =
        synthesize_cone(cone, "igf", device_by_name("xc2vp30"));
    EXPECT_GT(v6_r.f_max_mhz, v2p_r.f_max_mhz);
}

TEST_F(Synth_fixture, synthesis_runtime_motivates_estimation) {
    const Cone small(step, Cone_spec{1, 1, 1});
    const Cone big(step, Cone_spec{8, 8, 5});
    const Synthesis_report rs = synthesize_cone(small, "igf", v6);
    const Synthesis_report rb = synthesize_cone(big, "igf", v6);
    EXPECT_GT(rb.synthesis_cpu_seconds, 50.0 * rs.synthesis_cpu_seconds);
}

TEST_F(Synth_fixture, dsp_spill_to_luts_on_small_device) {
    // Shock filter has variable*variable products (gx*gx) that want DSPs.
    Stencil_step shock = extract_stencil(kernel_by_name("shock").c_source);
    const Cone cone(shock, Cone_spec{4, 4, 3});
    Synth_options options;
    options.use_dsp = true;
    const Synthesis_report on_v6 = synthesize_cone(cone, "shock", v6, options);
    const Fpga_device& tiny = device_by_name("generic_small");
    const Synthesis_report on_tiny = synthesize_cone(cone, "shock", tiny, options);
    EXPECT_GT(on_v6.dsp_count, 0);
    // generic_small has 40 DSPs; the deep cone needs more and spills.
    EXPECT_EQ(on_tiny.dsp_count, 0);
    EXPECT_GT(on_tiny.raw_lut_count, on_v6.raw_lut_count);
}

TEST_F(Synth_fixture, fits_flag_reflects_capacity) {
    const Cone big(step, Cone_spec{9, 9, 5});
    const Synthesis_report on_tiny =
        synthesize_cone(big, "igf", device_by_name("generic_small"));
    EXPECT_FALSE(on_tiny.fits);
    const Cone small(step, Cone_spec{1, 1, 1});
    EXPECT_TRUE(synthesize_cone(small, "igf", v6).fits);
}

TEST(Cone_library_cache, memoizes_cones_and_syntheses) {
    Stencil_step step = extract_stencil(kernel_by_name("jacobi").c_source);
    Cone_library lib(std::move(step), "jacobi");
    const Cone& c1 = lib.cone(3, 2);
    const Cone& c2 = lib.cone(3, 2);
    EXPECT_EQ(&c1, &c2);
    const Fpga_device& v6 = device_by_name("xc6vlx760");
    EXPECT_EQ(lib.synthesis_runs(), 0);
    lib.synthesis(3, 2, v6, {});
    lib.synthesis(3, 2, v6, {});
    EXPECT_EQ(lib.synthesis_runs(), 1);
    lib.synthesis(4, 2, v6, {});
    EXPECT_EQ(lib.synthesis_runs(), 2);
    EXPECT_GT(lib.synthesis_cpu_seconds(), 0.0);
}

}  // namespace
}  // namespace islhls
