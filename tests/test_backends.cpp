// Backend-seam tests: the Arch_backend interface must be a pure refactor of
// the paper datapath (byte-identical dumps across every kernel and thread
// count), the streaming backend's analytic model must track its
// cycle-approximate walk on every kernel, and the cross-backend merged front
// must obey the front-of-fronts identity.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "dse/explorer.hpp"
#include "dse/pareto.hpp"
#include "dse/streaming_backend.hpp"
#include "kernels/kernels.hpp"
#include "sim/arch_sim.hpp"
#include "symexec/executor.hpp"
#include "synth/device.hpp"

namespace islhls {
namespace {

Evaluator_options small_evaluator_options() {
    Evaluator_options options;
    options.frame_width = 128;
    options.frame_height = 96;
    return options;
}

Space_options small_space(int threads = 1) {
    Space_options space;
    space.iterations = 4;
    space.max_window = 3;
    space.max_depth = 2;
    space.threads = threads;
    return space;
}

Cone_library make_library(const std::string& kernel) {
    return Cone_library(extract_stencil(kernel_by_name(kernel).c_source), kernel);
}

// The tentpole's refactor guarantee: routing the paper datapath through the
// Arch_backend seam changes no bytes. For every kernel, the legacy
// explore_pareto dump (at any thread count) must equal the generic backend
// dump over the serial candidate walk.
TEST(Backends, paper_dump_identical_across_kernels_and_threads) {
    const std::vector<std::string> kernels = kernel_names();
    ASSERT_GE(kernels.size(), 9u);
    for (const std::string& kernel : kernels) {
        // Serial reference through the generic seam.
        Cone_library reference_library = make_library(kernel);
        Explorer reference(reference_library, device_by_name("generic_small"),
                           small_evaluator_options(), small_space());
        Paper_backend& paper = reference.paper_backend();
        paper.calibrate();
        EXPECT_EQ(paper.name(), "paper");
        const std::string seam_dump = paper.dump(evaluate_all_candidates(paper));
        for (int threads : {1, 2, 8}) {
            Cone_library library = make_library(kernel);
            Explorer explorer(library, device_by_name("generic_small"),
                              small_evaluator_options(), small_space(threads));
            const Pareto_result result = explorer.explore_pareto();
            EXPECT_EQ(result.backend, "paper");
            EXPECT_EQ(dump(result), seam_dump)
                << kernel << " at " << threads << " threads";
        }
    }
}

// explore_backends over the paper backend alone must match the legacy path
// byte for byte too (dump(Backend_pareto) shares the layout).
TEST(Backends, single_backend_exploration_matches_legacy_dump) {
    Cone_library library = make_library("heat");
    Explorer explorer(library, device_by_name("generic_small"),
                      small_evaluator_options(), small_space());
    const std::string legacy = dump(explorer.explore_pareto());
    Cone_library library2 = make_library("heat");
    Explorer explorer2(library2, device_by_name("generic_small"),
                       small_evaluator_options(), small_space());
    const Backend_pareto merged =
        explorer2.explore_backends({&explorer2.paper_backend()});
    EXPECT_EQ(dump(merged), legacy);
}

// More channel bandwidth at a fixed (depth, vector, PE) shape can only ever
// shrink the transfer term: seconds_per_frame is monotone non-increasing and
// memory cycles strictly decreasing in `channels`.
TEST(Backends, streaming_front_monotone_in_channel_bandwidth) {
    Cone_library library = make_library("heat");
    Streaming_backend backend(library, device_by_name("xc6vlx760"),
                              small_evaluator_options(), small_space());
    backend.calibrate();
    std::map<std::tuple<int, int, int>, Streaming_evaluation> previous;
    int compared = 0;
    for (const Streaming_config& config : backend.configs()) {
        const Streaming_evaluation eval = backend.evaluate(config);
        if (!eval.feasible) continue;
        const auto shape = std::make_tuple(config.depth, config.vector_width,
                                           config.pe_count);
        const auto it = previous.find(shape);
        if (it != previous.end()) {
            // configs() enumerates channels in ascending order per shape.
            ASSERT_GT(config.channels, it->second.config.channels);
            EXPECT_LT(eval.memory_cycles, it->second.memory_cycles)
                << to_string(config);
            EXPECT_LE(eval.seconds_per_frame, it->second.seconds_per_frame)
                << to_string(config);
            ++compared;
        }
        previous[shape] = eval;
    }
    EXPECT_GT(compared, 0);
}

// The merged cross-backend front is front(paper points + streaming points):
// every merged-front member lies on its own backend's front, and the front
// indices are exactly the Pareto set of the tagged union.
TEST(Backends, cross_backend_front_contains_each_backends_own_front) {
    Cone_library library = make_library("heat");
    Explorer explorer(library, device_by_name("xc6vlx760"),
                      small_evaluator_options(), small_space());
    Streaming_backend streaming(library, device_by_name("xc6vlx760"),
                                small_evaluator_options(), small_space());
    const Backend_pareto merged =
        explorer.explore_backends({&explorer.paper_backend(), &streaming});
    ASSERT_FALSE(merged.points.empty());
    ASSERT_FALSE(merged.front.empty());

    // Both backends contribute evaluated points.
    std::map<std::string, int> contributed;
    for (const Backend_pareto::Tagged& t : merged.points) ++contributed[t.backend];
    EXPECT_GT(contributed["paper"], 0);
    EXPECT_GT(contributed["streaming"], 0);

    // The front really is the Pareto set of the union...
    std::vector<Design_point> all;
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
        all.push_back({merged.points[i].point.area_luts,
                       merged.points[i].point.seconds_per_frame, i});
    }
    EXPECT_EQ(merged.front, pareto_front(all));

    // ...and each member survives the front of its own backend alone
    // (front(A + B) can only thin a backend's own front, never add to it).
    for (const std::string& backend : {"paper", "streaming"}) {
        std::vector<Design_point> own;
        for (std::size_t i = 0; i < merged.points.size(); ++i) {
            if (merged.points[i].backend != backend) continue;
            own.push_back({merged.points[i].point.area_luts,
                           merged.points[i].point.seconds_per_frame, i});
        }
        std::vector<bool> on_own_front(merged.points.size(), false);
        for (std::size_t i : pareto_front(own)) on_own_front[own[i].tag] = true;
        for (std::size_t i : merged.front) {
            if (merged.points[i].backend != backend) continue;
            EXPECT_TRUE(on_own_front[i])
                << backend << " point " << merged.points[i].point.config
                << " is on the merged front but not its backend's own front";
        }
    }
}

// Cross-backend exploration stays byte-identical across thread counts, like
// every other exploration.
TEST(Backends, cross_backend_dump_identical_across_thread_counts) {
    std::string serial;
    for (int threads : {1, 2, 8}) {
        Cone_library library = make_library("jacobi");
        Explorer explorer(library, device_by_name("xc6vlx760"),
                          small_evaluator_options(), small_space(threads));
        Streaming_backend streaming(library, device_by_name("xc6vlx760"),
                                    small_evaluator_options(),
                                    small_space(threads));
        const std::string text = dump(
            explorer.explore_backends({&explorer.paper_backend(), &streaming}));
        if (threads == 1) {
            serial = text;
            EXPECT_FALSE(serial.empty());
        } else {
            EXPECT_EQ(text, serial) << "threads " << threads;
        }
    }
}

// The analytic streaming model against the cycle-approximate walk: on every
// kernel, for every feasible configuration, total modeled cycles stay within
// 10% of the walk (f_max cancels, so cycles compare directly).
TEST(Backends, streaming_model_tracks_cycle_walk_on_all_kernels) {
    const std::vector<std::string> kernels = kernel_names();
    ASSERT_GE(kernels.size(), 9u);
    const Fpga_device& device = device_by_name("xc6vlx760");
    const Evaluator_options evaluator_options = small_evaluator_options();
    const Space_options space = small_space();
    for (const std::string& kernel : kernels) {
        Cone_library library = make_library(kernel);
        Streaming_backend backend(library, device, evaluator_options, space);
        backend.calibrate();
        int checked = 0;
        for (const Streaming_config& config : backend.configs()) {
            const Streaming_evaluation eval = backend.evaluate(config);
            if (!eval.feasible) continue;
            Streaming_sim_options sim_options;
            sim_options.iterations = space.iterations;
            sim_options.fields_in = library.step().pool().field_count();
            sim_options.fields_out = library.step().state_field_count();
            sim_options.elems_per_cycle =
                config.channels * device.offchip_elems_per_cycle;
            const Streaming_sim_result sim = simulate_streaming_cycles(
                library, config, evaluator_options.frame_width,
                evaluator_options.frame_height, sim_options);
            ASSERT_EQ(sim.passes, eval.passes) << kernel << " " << to_string(config);
            const double model_cycles = eval.passes * eval.cycles_per_pass;
            const double walk_cycles = static_cast<double>(sim.total_cycles);
            ASSERT_GT(walk_cycles, 0.0) << kernel << " " << to_string(config);
            const double rel =
                std::abs(model_cycles - walk_cycles) / walk_cycles;
            EXPECT_LE(rel, 0.10)
                << kernel << " " << to_string(config) << ": model "
                << model_cycles << " vs walk " << walk_cycles;
            ++checked;
        }
        EXPECT_GT(checked, 0) << kernel;
    }
}

}  // namespace
}  // namespace islhls
