// Sweep service tests: exact round-trip identity for every cached payload
// type, cache-key discipline, and the headline service contract — a warm
// cache re-serves a request byte-identically while running zero syntheses,
// zero cone builds and zero format searches; batch mode dedups identical
// requests and reports structured per-request failures.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>

#include "core/service.hpp"
#include "core/sweep.hpp"
#include "core/sweep_records.hpp"
#include "support/text.hpp"

namespace islhls {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
    const std::string dir =
        (fs::temp_directory_path() / cat("islhls-service-test-", name)).string();
    fs::remove_all(dir);
    return dir;
}

// A small but fully populated sweep config exercising every cached payload
// type (entries, format grids, syntheses) in well under a second.
Sweep_config small_config() {
    Sweep_config config;
    config.kernels = {"igf"};
    config.devices = {"xc6vlx760"};
    config.iteration_counts = {2};
    config.frame_width = 64;
    config.frame_height = 48;
    config.space.max_window = 3;
    config.space.max_depth = 2;
    config.validate = true;
    config.search_formats = true;
    config.format_search.target_psnr_db = 45.0;
    return config;
}

// --- payload round trips ----------------------------------------------------------

Sweep_entry make_full_entry() {
    Sweep_entry entry;
    entry.kernel = "igf";
    entry.device = "xc6vlx760";
    entry.iterations = 7;
    entry.fits = true;
    entry.best.instance.window = 3;
    entry.best.instance.level_depths = {2, 2, 2, 1};
    entry.best.instance.cores_per_depth = {{1, 3}, {2, 5}};
    entry.best.feasible = true;
    entry.best.infeasible_reason = "";
    entry.best.estimated_area_luts = 1.0 / 3.0;  // not exactly representable
    entry.best.actual_area_luts = -0.0;          // signed zero must survive
    entry.best.f_max_mhz = 212.0390625;
    entry.best.windows_per_frame = 123456789012LL;
    entry.best.throughput.cycles_per_window = 17.25;
    entry.best.throughput.core_bound_cycles = std::numeric_limits<double>::infinity();
    entry.best.throughput.onchip_bound_cycles = 5e-324;  // smallest denormal
    entry.best.throughput.offchip_bound_cycles = 0.1;
    entry.best.throughput.bottleneck = "core compute";
    entry.best.throughput.seconds_per_frame = 0.0042;
    entry.best.throughput.fps = 238.095238095238;
    entry.best.throughput.class_cycles = {{1, 2.5}, {2, 1.0 / 7.0}};
    entry.best.memory.input_buffer_kbits = 12.5;
    entry.best.memory.intermediate_kbits = 0.0;
    entry.best.memory.output_buffer_kbits = 99.0;
    entry.best.memory.total_kbits = 111.5;
    entry.best.memory.whole_frame_kbits = 4096.0;
    entry.best.memory.saving_factor = 36.735426008968610;
    entry.pareto_points = 421;
    entry.pareto_front_size = 17;
    entry.front_points.push_back(
        {"w=3 levels=[2 2 2 1] cores={1:3 2:5}", 12345.5, 0.0042, 238.095});
    entry.front_points.push_back({"w=5 levels=[7]", 1.0 / 3.0, -0.0, 3.0});
    entry.validated = true;
    entry.validation_max_abs_err = 0.0;
    entry.format_searched = true;
    entry.format_satisfiable = true;
    entry.fixed_format.integer_bits = 11;
    entry.fixed_format.frac_bits = 9;
    entry.format_exact = true;
    entry.format_psnr_db = 51.03125;
    entry.searched_area_luts = 54321.0;
    entry.searched_fps = 2.0 / 7.0;  // not exactly representable
    entry.searched_f_max_mhz = 187.59375;
    entry.validated_fixed = true;
    entry.validation_max_raw_err = 1.0;
    return entry;
}

TEST(Sweep_records, sweep_entry_round_trip_is_exact) {
    const Sweep_entry entry = make_full_entry();
    const std::string text = serialize_record(entry);
    Sweep_entry parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    // serialize(parse(s)) == s pins every field bit for bit (doubles travel
    // as their IEEE-754 bit patterns, so 1/3, -0.0, inf, denormals all
    // survive exactly).
    EXPECT_EQ(serialize_record(parsed), text);
    EXPECT_EQ(parsed.kernel, entry.kernel);
    EXPECT_EQ(parsed.iterations, entry.iterations);
    EXPECT_EQ(parsed.best.instance.level_depths, entry.best.instance.level_depths);
    EXPECT_EQ(parsed.best.instance.cores_per_depth,
              entry.best.instance.cores_per_depth);
    EXPECT_EQ(parsed.best.estimated_area_luts, entry.best.estimated_area_luts);
    EXPECT_TRUE(std::signbit(parsed.best.actual_area_luts));
    EXPECT_EQ(parsed.best.throughput.core_bound_cycles,
              std::numeric_limits<double>::infinity());
    EXPECT_EQ(parsed.best.throughput.onchip_bound_cycles, 5e-324);
    EXPECT_EQ(parsed.best.throughput.class_cycles, entry.best.throughput.class_cycles);
    EXPECT_EQ(parsed.best.throughput.bottleneck, entry.best.throughput.bottleneck);
    EXPECT_EQ(parsed.pareto_points, entry.pareto_points);
    EXPECT_EQ(parsed.backend, "paper");
    ASSERT_EQ(parsed.front_points.size(), 2u);
    // Configs with internal spaces survive (they are the line's tail).
    EXPECT_EQ(parsed.front_points[0].config, entry.front_points[0].config);
    EXPECT_EQ(parsed.front_points[0].area_luts, entry.front_points[0].area_luts);
    EXPECT_TRUE(std::signbit(parsed.front_points[1].seconds_per_frame));
    EXPECT_EQ(parsed.fixed_format.integer_bits, 11);
    EXPECT_EQ(parsed.fixed_format.frac_bits, 9);
    EXPECT_TRUE(parsed.format_exact);
    EXPECT_EQ(parsed.searched_fps, entry.searched_fps);
    EXPECT_EQ(parsed.searched_f_max_mhz, entry.searched_f_max_mhz);
}

TEST(Sweep_records, streaming_entry_round_trip_is_exact) {
    Sweep_entry entry;
    entry.kernel = "heat";
    entry.device = "xc6vlx760";
    entry.iterations = 8;
    entry.backend = "streaming";
    entry.fits = true;
    entry.streaming_best.config = {2, 4, 2, 1};
    entry.streaming_best.feasible = true;
    entry.streaming_best.area_luts = 123456.75;
    entry.streaming_best.datapath_luts = 100000.0;
    entry.streaming_best.line_buffer_luts = 1.0 / 7.0;
    entry.streaming_best.line_buffer_kbits = 36.5;
    entry.streaming_best.f_max_mhz = 212.0390625;
    entry.streaming_best.passes = 4;
    entry.streaming_best.compute_cycles = 98304.0;
    entry.streaming_best.memory_cycles = 24576.0;
    entry.streaming_best.cycles_per_pass = 98304.0;
    entry.streaming_best.bottleneck = "compute";
    entry.streaming_best.seconds_per_frame = 0.00196;
    entry.streaming_best.fps = 510.2040816326531;
    entry.pareto_points = 12;
    entry.pareto_front_size = 3;
    entry.front_points.push_back({"stream(d=2,v=4,pe=2,ch=1)", 123456.75,
                                  0.00196, 510.2040816326531});
    const std::string text = serialize_record(entry);
    // A streaming entry carries the stream block, not the paper eval block.
    EXPECT_NE(text.find("stream."), std::string::npos);
    EXPECT_EQ(text.find("eval."), std::string::npos);
    Sweep_entry parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize_record(parsed), text);
    EXPECT_EQ(parsed.backend, "streaming");
    EXPECT_EQ(parsed.streaming_best.config.vector_width, 4);
    EXPECT_EQ(parsed.streaming_best.config.channels, 1);
    EXPECT_EQ(parsed.streaming_best.line_buffer_luts, 1.0 / 7.0);
    EXPECT_EQ(parsed.streaming_best.bottleneck, "compute");
    ASSERT_EQ(parsed.front_points.size(), 1u);
    EXPECT_EQ(parsed.front_points[0].config, "stream(d=2,v=4,pe=2,ch=1)");
}

TEST(Sweep_records, nan_survives_the_round_trip) {
    Sweep_entry entry = make_full_entry();
    entry.best.f_max_mhz = std::numeric_limits<double>::quiet_NaN();
    const std::string text = serialize_record(entry);
    Sweep_entry parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    EXPECT_TRUE(std::isnan(parsed.best.f_max_mhz));
    EXPECT_EQ(serialize_record(parsed), text);
}

TEST(Sweep_records, unfit_entry_skips_the_evaluation_block) {
    Sweep_entry entry;
    entry.kernel = "k";
    entry.device = "d";
    entry.iterations = 1;
    entry.fits = false;
    const std::string text = serialize_record(entry);
    EXPECT_EQ(text.find("eval."), std::string::npos);
    Sweep_entry parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize_record(parsed), text);
    EXPECT_FALSE(parsed.fits);
}

TEST(Sweep_records, format_grid_round_trip_is_exact) {
    Explorer::Format_grid grid;
    for (int w = 1; w <= 2; ++w) {
        for (int d = 1; d <= 2; ++d) {
            Explorer::Format_cell cell;
            cell.window = w;
            cell.depth = d;
            cell.result.format.integer_bits = 8 + w;
            cell.result.format.frac_bits = 4 + d;
            cell.result.psnr_db = 50.0 + 1.0 / (w + d);
            cell.result.exact = (w == 2 && d == 1);
            cell.result.max_abs_value = 255.96875 * w;
            cell.result.range_integer_bits = 9 + w;
            cell.result.formats_tried = w * 10 + d;
            cell.result.satisfiable = (w + d) % 2 == 0;
            // Satisfiable cells carry the full evaluation of their canonical
            // design point; the unsatisfiable ones stay unevaluated.
            cell.evaluated = cell.result.satisfiable;
            if (cell.evaluated) {
                cell.area_luts = 1000.0 * w + 1.0 / d;
                cell.f_max_mhz = 180.0 + 0.125 * d;
                cell.fps = 30.0 * w / 7.0;
            }
            grid.cells.push_back(cell);
        }
    }
    const std::string text = serialize_record(grid);
    Explorer::Format_grid parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize_record(parsed), text);
    ASSERT_EQ(parsed.cells.size(), grid.cells.size());
    EXPECT_EQ(parsed.cells[3].result.psnr_db, grid.cells[3].result.psnr_db);
    EXPECT_EQ(parsed.cells[3].result.satisfiable, grid.cells[3].result.satisfiable);
    EXPECT_EQ(parsed.cells[2].result.exact, grid.cells[2].result.exact);
    EXPECT_EQ(parsed.cells[3].result.range_integer_bits,
              grid.cells[3].result.range_integer_bits);
    EXPECT_EQ(parsed.cells[3].evaluated, grid.cells[3].evaluated);
    EXPECT_EQ(parsed.cells[3].area_luts, grid.cells[3].area_luts);
    EXPECT_EQ(parsed.cells[3].f_max_mhz, grid.cells[3].f_max_mhz);
    EXPECT_EQ(parsed.cells[3].fps, grid.cells[3].fps);
}

TEST(Sweep_records, synthesis_report_round_trip_is_exact) {
    Synthesis_report report;
    report.design_name = "igf cone w3 d2";
    report.lut_count = 1234.567;
    report.raw_lut_count = 1300.0;
    report.ff_count = 999.0;
    report.dsp_count = 12;
    report.bram_kbits = 36.125;
    report.f_max_mhz = 201.5;
    report.latency_cycles = 17;
    report.register_count = 421;
    report.synthesis_cpu_seconds = 3600.25;
    report.fits = true;
    const std::string text = serialize_record(report);
    Synthesis_report parsed;
    std::string error;
    ASSERT_TRUE(parse_record(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize_record(parsed), text);
    EXPECT_EQ(parsed.design_name, report.design_name);
    EXPECT_EQ(parsed.lut_count, report.lut_count);
    EXPECT_EQ(parsed.dsp_count, report.dsp_count);
}

TEST(Sweep_records, strict_parsers_reject_mutations) {
    const std::string text = serialize_record(make_full_entry());
    Sweep_entry parsed;
    std::string error;
    // Truncated: drop the trailing "end\n".
    EXPECT_FALSE(parse_record(text.substr(0, text.size() - 4), &parsed, &error));
    // Trailing garbage after "end".
    EXPECT_FALSE(parse_record(text + "extra\n", &parsed, &error));
    // Renamed field.
    std::string renamed = text;
    renamed.replace(renamed.find("kernel "), 7, "kernle ");
    EXPECT_FALSE(parse_record(renamed, &parsed, &error));
    EXPECT_NE(error.find("expected"), std::string::npos);
    // Wrong version token (a stale v2-era record must degrade to a miss).
    std::string reversioned = text;
    ASSERT_NE(reversioned.find("v3"), std::string::npos);
    reversioned.replace(reversioned.find("v3"), 2, "v2");
    EXPECT_FALSE(parse_record(reversioned, &parsed, &error));
    // Malformed double (hex digits replaced).
    std::string bad_double = text;
    const auto pos = bad_double.find("validation_max_abs_err ");
    bad_double.replace(pos + 23, 4, "zzzz");
    EXPECT_FALSE(parse_record(bad_double, &parsed, &error));
    // Wrong record type entirely.
    Explorer::Format_grid grid;
    EXPECT_FALSE(parse_record(text, &grid, &error));
}

TEST(Sweep_records, double_bits_codec_is_exact_and_strict) {
    for (double v : {0.0, -0.0, 1.0 / 3.0, 5e-324,
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::max()}) {
        double decoded = 1.0;
        ASSERT_TRUE(decode_double_bits(encode_double_bits(v), &decoded));
        EXPECT_EQ(encode_double_bits(decoded), encode_double_bits(v));
    }
    double out;
    EXPECT_FALSE(decode_double_bits("", &out));
    EXPECT_FALSE(decode_double_bits("123", &out));                  // short
    EXPECT_FALSE(decode_double_bits("00000000000000000", &out));    // long
    EXPECT_FALSE(decode_double_bits("000000000000000G", &out));     // bad digit
    EXPECT_FALSE(decode_double_bits("3FF000000000000A", &out));     // upper case
}

// --- cache keys -------------------------------------------------------------------

TEST(Sweep_records, keys_track_results_not_thread_counts) {
    const Sweep_config base = small_config();
    const std::string ir = "kernel igf\n";
    const std::string key = sweep_entry_key(ir, base, "xc6vlx760", 2, "paper");
    // Result-affecting knobs change the key...
    Sweep_config changed = base;
    changed.format.frac_bits += 1;
    EXPECT_NE(sweep_entry_key(ir, changed, "xc6vlx760", 2, "paper"), key);
    changed = base;
    changed.frame_width = 128;
    EXPECT_NE(sweep_entry_key(ir, changed, "xc6vlx760", 2, "paper"), key);
    changed = base;
    changed.validate = false;
    EXPECT_NE(sweep_entry_key(ir, changed, "xc6vlx760", 2, "paper"), key);
    EXPECT_NE(sweep_entry_key(ir, base, "xc7vx485t", 2, "paper"), key);
    EXPECT_NE(sweep_entry_key(ir, base, "xc6vlx760", 3, "paper"), key);
    // ...as does the backend: paper and streaming entries never alias.
    EXPECT_NE(sweep_entry_key(ir, base, "xc6vlx760", 2, "streaming"), key);
    // The backend *list* lives in the request key, not the entry key: a
    // multi-backend request re-serves the single-backend run's paper entries.
    changed = base;
    changed.backends = {"paper", "streaming"};
    EXPECT_EQ(sweep_entry_key(ir, changed, "xc6vlx760", 2, "paper"), key);
    EXPECT_NE(sweep_request_key(changed), sweep_request_key(base));
    // ...thread counts do not (results are thread-invariant by contract).
    changed = base;
    changed.space.threads = 16;
    changed.format_search.threads = 8;
    EXPECT_EQ(sweep_entry_key(ir, changed, "xc6vlx760", 2, "paper"), key);
    EXPECT_EQ(sweep_request_key(changed), sweep_request_key(base));
    EXPECT_EQ(format_grid_key(ir, changed, "xc6vlx760"),
              format_grid_key(ir, base, "xc6vlx760"));
    // The grid's per-cell evaluations are priced on a device, so grids from
    // different devices never alias; neither do shrink-on and shrink-off
    // searches.
    EXPECT_NE(format_grid_key(ir, base, "xc7vx485t"),
              format_grid_key(ir, base, "xc6vlx760"));
    changed = base;
    changed.format_search.shrink_integer_bits = false;
    EXPECT_NE(format_grid_key(ir, changed, "xc6vlx760"),
              format_grid_key(ir, base, "xc6vlx760"));
}

// --- the service ------------------------------------------------------------------

TEST(Sweep_service, warm_cache_is_byte_identical_and_runs_nothing) {
    const std::string dir = fresh_dir("warm");
    const Sweep_config config = small_config();

    // Reference: a plain uncached session.
    const Sweep_report reference = Sweep_session(config).run();

    Service_options options;
    options.cache_dir = dir;
    std::string cold_table;
    {
        Sweep_service service(options);
        const Sweep_report cold = service.run(config);
        cold_table = report_table(cold);
        EXPECT_EQ(cold_table, report_table(reference));
        EXPECT_EQ(cold.entry_hits, 0);
        EXPECT_EQ(cold.entry_misses, 1);
        EXPECT_EQ(cold.entry_stores, 1);
        EXPECT_EQ(cold.grid_misses, 1);
        EXPECT_GT(cold.synthesis_runs, 0);
    }
    // A fresh service over the same directory (a new process, effectively).
    Sweep_service warm_service(options);
    const Sweep_report warm = warm_service.run(config);
    EXPECT_EQ(report_table(warm), cold_table);
    EXPECT_EQ(warm.entry_hits, static_cast<int>(warm.entries.size()));
    EXPECT_EQ(warm.entry_misses, 0);
    // The hit counters prove nothing was recomputed.
    EXPECT_EQ(warm.cone_builds, 0);
    EXPECT_EQ(warm.synthesis_runs, 0);
    EXPECT_EQ(warm.synthesis_loads, 0);  // entry hits short-circuit synthesis
    EXPECT_EQ(warm.synthesis_cpu_seconds, 0.0);
    fs::remove_all(dir);
}

TEST(Sweep_service, mixed_backend_cache_never_crosses_backends) {
    const std::string dir = fresh_dir("mixed");
    Sweep_config paper_only = small_config();
    paper_only.validate = false;
    paper_only.search_formats = false;
    paper_only.with_pareto = true;

    Service_options options;
    options.cache_dir = dir;
    {
        // A cold paper-only run seeds the cache.
        Sweep_service service(options);
        const Sweep_report cold = service.run(paper_only);
        EXPECT_EQ(cold.entry_hits, 0);
        EXPECT_EQ(cold.entry_stores, 1);
    }
    Sweep_config both = paper_only;
    both.backends = {"paper", "streaming"};
    std::string mixed_table;
    {
        // The multi-backend request re-serves the paper entry from the warm
        // cache but must compute the streaming one: the backend name is part
        // of the entry key, so a paper record can never answer a streaming
        // lookup.
        Sweep_service service(options);
        const Sweep_report mixed = service.run(both);
        ASSERT_EQ(mixed.entries.size(), 2u);
        EXPECT_EQ(mixed.entry_hits, 1);
        EXPECT_EQ(mixed.entry_misses, 1);
        EXPECT_EQ(mixed.entry_stores, 1);
        EXPECT_EQ(mixed.entries[0].backend, "paper");
        EXPECT_EQ(mixed.entries[1].backend, "streaming");
        ASSERT_EQ(mixed.merged_fronts.size(), 1u);
        EXPECT_GE(mixed.merged_fronts[0].points.size(), 1u);
        mixed_table = report_table(mixed);
    }
    // A fully warm mixed run serves both entries and rebuilds the merged
    // front from the cached front_points with zero recomputation.
    Sweep_service warm_service(options);
    const Sweep_report warm = warm_service.run(both);
    EXPECT_EQ(warm.entry_hits, 2);
    EXPECT_EQ(warm.entry_misses, 0);
    EXPECT_EQ(warm.cone_builds, 0);
    EXPECT_EQ(warm.synthesis_runs, 0);
    ASSERT_EQ(warm.merged_fronts.size(), 1u);
    EXPECT_EQ(report_table(warm), mixed_table);
    fs::remove_all(dir);
}

TEST(Sweep_service, same_service_memoizes_repeat_requests) {
    Sweep_service service;  // no persistent cache: in-memory only
    const Sweep_config config = small_config();
    const Sweep_report first = service.run(config);
    const Sweep_report second = service.run(config);
    EXPECT_EQ(report_table(first), report_table(second));
    // The resident libraries served the repeat: no new cones or syntheses.
    EXPECT_EQ(second.cone_builds, 0);
    EXPECT_EQ(second.synthesis_runs, 0);
}

TEST(Sweep_service, batch_dedups_and_isolates_failures) {
    Sweep_service service;
    std::vector<Sweep_config> requests;
    requests.push_back(small_config());
    requests.push_back(small_config());  // identical: must dedup
    Sweep_config bad = small_config();
    bad.kernels = {"no_such_kernel"};
    requests.push_back(bad);
    Sweep_config invalid = small_config();
    invalid.iteration_counts = {0};
    requests.push_back(invalid);

    const std::vector<Request_outcome> outcomes = service.run_requests(requests);
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_TRUE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].deduplicated);
    EXPECT_TRUE(outcomes[1].ok);
    EXPECT_TRUE(outcomes[1].deduplicated);
    EXPECT_EQ(report_table(outcomes[0].report), report_table(outcomes[1].report));
    EXPECT_FALSE(outcomes[2].ok);
    EXPECT_EQ(outcomes[2].kind, Error_kind::user);
    EXPECT_NE(outcomes[2].message.find("no_such_kernel"), std::string::npos);
    EXPECT_FALSE(outcomes[3].ok);
    EXPECT_EQ(outcomes[3].kind, Error_kind::user);
    EXPECT_NE(outcomes[3].message.find(">= 1"), std::string::npos);
}

TEST(Sweep_service, session_wrapper_still_validates_at_construction) {
    Sweep_config config;  // empty: no kernels
    EXPECT_THROW(Sweep_session{config}, Error);
    try {
        Sweep_session session{config};
        FAIL();
    } catch (const Islhls_error& e) {
        EXPECT_EQ(e.kind(), Error_kind::user);
    }
}

}  // namespace
}  // namespace islhls
