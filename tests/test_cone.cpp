// Cone construction: halo geometry, register accounting, reuse, and the
// central correctness property — a depth-d cone computes exactly d native
// iterations (ghost semantics) for every built-in kernel.
#include <gtest/gtest.h>

#include "cone/cone.hpp"
#include "grid/frame_ops.hpp"
#include "kernels/kernels.hpp"
#include "sim/golden.hpp"
#include "support/error.hpp"
#include "symexec/executor.hpp"

namespace islhls {
namespace {

Stencil_step step_of(const std::string& kernel) {
    return extract_stencil(kernel_by_name(kernel).c_source);
}

TEST(Cone, input_window_grows_with_depth) {
    Stencil_step step = step_of("igf");
    for (int d = 1; d <= 4; ++d) {
        const Cone cone(step, Cone_spec{3, 3, d});
        const Window in = cone.input_window();
        EXPECT_EQ(in.width, 3 + 2 * d);
        EXPECT_EQ(in.height, 3 + 2 * d);
        EXPECT_EQ(in.x0, -d);
        EXPECT_EQ(in.y0, -d);
        // Every input the program reads lies inside the reported window.
        EXPECT_EQ(cone.stats().input_count,
                  static_cast<int>(cone.program().input_ports().size()));
        for (const auto& port : cone.program().input_ports()) {
            EXPECT_GE(port.dx, in.x0);
            EXPECT_LT(port.dx, in.x0 + in.width);
            EXPECT_GE(port.dy, in.y0);
            EXPECT_LT(port.dy, in.y0 + in.height);
        }
    }
}

TEST(Cone, asymmetric_footprint_asymmetric_halo) {
    Stencil_step step = extract_stencil(R"(
void f(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++)
        for (int x = 0; x < W; x++)
            u_out[y][x] = u[y][x-1] + u[y-1][x];
}
)");
    const Cone cone(step, Cone_spec{2, 2, 3});
    const Window in = cone.input_window();
    EXPECT_EQ(in.x0, -3);
    EXPECT_EQ(in.y0, -3);
    EXPECT_EQ(in.width, 5);   // left growth only
    EXPECT_EQ(in.height, 5);  // up growth only
}

TEST(Cone, register_count_grows_with_window_and_depth) {
    Stencil_step step = step_of("igf");
    int prev_w = 0;
    for (int w = 1; w <= 5; ++w) {
        const Cone cone(step, Cone_spec{w, w, 2});
        EXPECT_GT(cone.stats().register_count, prev_w);
        prev_w = cone.stats().register_count;
    }
    int prev_d = 0;
    for (int d = 1; d <= 5; ++d) {
        const Cone cone(step, Cone_spec{3, 3, d});
        EXPECT_GT(cone.stats().register_count, prev_d);
        prev_d = cone.stats().register_count;
    }
}

TEST(Cone, reuse_factor_exceeds_one_for_overlapping_windows) {
    Stencil_step step = step_of("igf");
    // A deep multi-element window re-reads many shared sub-results (Fig. 4
    // of the paper); naive tree expansion must be far bigger than the DAG.
    const Cone cone(step, Cone_spec{4, 4, 3});
    EXPECT_GT(cone.stats().reuse_factor(), 3.0);
    // Even a 1x1 depth-2 cone shares diagonal reads for the Gaussian.
    const Cone small(step, Cone_spec{1, 1, 2});
    EXPECT_GT(small.stats().reuse_factor(), 1.0);
}

TEST(Cone, depth1_single_element_is_the_step_itself) {
    Stencil_step step = step_of("jacobi");
    const Cone cone(step, Cone_spec{1, 1, 1});
    EXPECT_EQ(cone.outputs().size(), 1u);
    EXPECT_EQ(cone.outputs()[0], step.update(0));
}

TEST(Cone, output_index_layout) {
    Stencil_step step = step_of("chambolle");
    const Cone cone(step, Cone_spec{3, 2, 1});
    EXPECT_EQ(cone.stats().output_count, 2 * 3 * 2);
    EXPECT_EQ(cone.output_index(0, 0, 0), 0);
    EXPECT_EQ(cone.output_index(0, 2, 1), 5);
    EXPECT_EQ(cone.output_index(1, 0, 0), 6);
    EXPECT_THROW(cone.output_index(2, 0, 0), Internal_error);
    EXPECT_THROW(cone.output_index(0, 3, 0), Internal_error);
}

TEST(Cone, pipeline_depth_scales_with_cone_depth) {
    Stencil_step step = step_of("jacobi");
    const Cone d1(step, Cone_spec{2, 2, 1});
    const Cone d3(step, Cone_spec{2, 2, 3});
    EXPECT_GT(d3.stats().pipeline_depth, d1.stats().pipeline_depth);
    EXPECT_EQ(d3.stats().pipeline_depth, 3 * d1.stats().pipeline_depth);
}

TEST(Cone, rejects_degenerate_specs) {
    Stencil_step step = step_of("jacobi");
    EXPECT_THROW(Cone(step, Cone_spec{0, 1, 1}), Internal_error);
    EXPECT_THROW(Cone(step, Cone_spec{1, 1, 0}), Internal_error);
}

// The core property (paper Sec. 3.1): evaluating the cone at window origin
// (ox, oy) with inputs read from the frame equals d ghost-golden iterations.
class Cone_equivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(Cone_equivalence, cone_computes_d_iterations) {
    const auto [kernel_name, window, depth] = GetParam();
    const Kernel_def& kernel = kernel_by_name(kernel_name);
    Stencil_step step = extract_stencil(kernel.c_source);
    const Cone cone(step, Cone_spec{window, window, depth});

    const Frame content = make_synthetic_scene(20, 14, 99);
    const Frame_set initial = kernel.make_initial(content);
    const Frame_set golden = run_ghost_ir(step, initial, depth, kernel.boundary);

    const Register_program& prog = cone.program();
    for (const auto& [ox, oy] : {std::pair{5, 4}, std::pair{0, 0}, std::pair{14, 9}}) {
        std::vector<double> inputs;
        inputs.reserve(prog.input_ports().size());
        for (const auto& port : prog.input_ports()) {
            const Frame& f = initial.field(step.pool().field_name(port.field));
            inputs.push_back(f.sample(ox + port.dx, oy + port.dy, kernel.boundary));
        }
        const std::vector<double> outs = prog.run(inputs);
        for (int s = 0; s < step.state_field_count(); ++s) {
            const Frame& gold =
                golden.field(step.state_fields()[static_cast<std::size_t>(s)]);
            for (int yy = 0; yy < window && oy + yy < 14; ++yy) {
                for (int xx = 0; xx < window && ox + xx < 20; ++xx) {
                    EXPECT_EQ(outs[static_cast<std::size_t>(
                                  cone.output_index(s, xx, yy))],
                              gold.at(ox + xx, oy + yy))
                        << kernel_name << " w" << window << " d" << depth << " at ("
                        << ox + xx << "," << oy + yy << ")";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Cone_equivalence,
    ::testing::Combine(::testing::Values("igf", "chambolle", "jacobi", "heat",
                                         "erosion", "shock", "perona_malik", "mean"),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
        return std::get<0>(info.param) + "_w" + std::to_string(std::get<1>(info.param)) +
               "_d" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace islhls
