// Built-in ISL kernels: the paper's two case studies plus a suite of
// classical stencil algorithms used by tests, examples and benches.
//
// Each kernel carries (a) its C source in the canonical ISL form consumed by
// the frontend, and (b) an independent native C++ implementation of one
// step. Tests cross-validate the whole frontend+symexec+cone chain against
// the native implementation, so the two must agree bit-for-bit in double
// arithmetic.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "grid/frame.hpp"
#include "grid/frame_set.hpp"

namespace islhls {

struct Kernel_def {
    std::string name;          // registry key, e.g. "igf"
    std::string display_name;  // e.g. "Iterative Gaussian Filter"
    std::string description;
    std::string c_source;      // canonical ISL C form
    std::vector<std::string> state_fields;
    std::vector<std::string> const_fields;
    int default_iterations = 10;
    Boundary boundary = Boundary::clamp;

    // Native single step: consumes the current state (and const fields),
    // returns the next state (const fields copied through unchanged).
    std::function<Frame_set(const Frame_set&, Boundary)> native_step;

    // Builds the initial Frame_set from a content frame (e.g. Chambolle
    // starts with zero dual fields and the image as constant field g).
    std::function<Frame_set(const Frame&)> make_initial;

    // The field to inspect as "the result" after iterating.
    std::string result_field;

    // True for kernels whose fields are declared `int`: every value is an
    // exact small integer, so the fixed-point engine reproduces the double
    // engine word for word with a Q m.0 format (see Stencil_step::
    // integer_native()).
    bool integer_only = false;
};

// All registered kernels, in a stable order.
const std::vector<Kernel_def>& all_kernels();

// Lookup by registry key; throws Error when unknown.
const Kernel_def& kernel_by_name(const std::string& name);

// Registry keys in order.
std::vector<std::string> kernel_names();

// Runs `iterations` native steps.
Frame_set run_native(const Kernel_def& kernel, const Frame_set& initial,
                     int iterations);

}  // namespace islhls
