#include "kernels/kernels.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

// Shorthand for single-field kernels: build the initial set with field "u".
Frame_set single_field_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    fs.add_field("u", content);
    return fs;
}

// Applies `update(x, y)` to every element of a new frame named `u`.
template <typename Update>
Frame_set map_single_field(const Frame_set& in, Update&& update) {
    Frame_set out(in.width(), in.height());
    Frame& u = out.add_field("u");
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) u.at(x, y) = update(x, y);
    }
    return out;
}

// --- Iterative Gaussian Filter (paper case study 1) ---------------------------

const char* igf_source = R"(
// Iterative Gaussian filter: repeated 3x3 binomial convolution.
// Iterating n times approximates a single Gaussian blur of larger sigma
// (the paper's IGF case study, after Jamro et al. [13]).
void igf_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = (u[y-1][x-1] + 2.0f*u[y-1][x] + u[y-1][x+1]
                         + 2.0f*u[y][x-1] + 4.0f*u[y][x] + 2.0f*u[y][x+1]
                         + u[y+1][x-1] + 2.0f*u[y+1][x] + u[y+1][x+1]) * 0.0625f;
        }
    }
}
)";

Frame_set igf_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        return (u.sample(x - 1, y - 1, b) + 2.0 * u.sample(x, y - 1, b) +
                u.sample(x + 1, y - 1, b) + 2.0 * u.sample(x - 1, y, b) +
                4.0 * u.sample(x, y, b) + 2.0 * u.sample(x + 1, y, b) +
                u.sample(x - 1, y + 1, b) + 2.0 * u.sample(x, y + 1, b) +
                u.sample(x + 1, y + 1, b)) *
               0.0625;
    });
}

// --- Chambolle total-variation minimization (paper case study 2) -----------------

const char* chambolle_source = R"(
// One fixed-point iteration of Chambolle's dual algorithm for total
// variation minimization (Chambolle 2004, the paper's second case study).
// The dual field p = (p1, p2) evolves; g is the (constant) input image.
//   u    = div p - g / lambda          (lambda = 8)
//   p'   = (p + tau * grad u) / (1 + tau * |grad u|)   (tau = 1/8)
void chambolle_step(float p1_out[H][W], float p2_out[H][W],
                    const float p1[H][W], const float p2[H][W],
                    const float g[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float u00 = p1[y][x] - p1[y][x-1] + p2[y][x] - p2[y-1][x]
                      - g[y][x] * 0.125f;
            float u10 = p1[y][x+1] - p1[y][x] + p2[y][x+1] - p2[y-1][x+1]
                      - g[y][x+1] * 0.125f;
            float u01 = p1[y+1][x] - p1[y+1][x-1] + p2[y+1][x] - p2[y][x]
                      - g[y+1][x] * 0.125f;
            float gx = u10 - u00;
            float gy = u01 - u00;
            float den = 1.0f + 0.125f * sqrtf(gx*gx + gy*gy);
            p1_out[y][x] = (p1[y][x] + 0.125f * gx) / den;
            p2_out[y][x] = (p2[y][x] + 0.125f * gy) / den;
        }
    }
}
)";

Frame_set chambolle_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    fs.add_field("p1");
    fs.add_field("p2");
    fs.add_field("g", content);
    return fs;
}

Frame_set chambolle_native(const Frame_set& in, Boundary b) {
    const Frame& p1 = in.field("p1");
    const Frame& p2 = in.field("p2");
    const Frame& g = in.field("g");
    Frame_set out(in.width(), in.height());
    Frame& p1n = out.add_field("p1");
    Frame& p2n = out.add_field("p2");
    auto u_at = [&](int x, int y) {
        return p1.sample(x, y, b) - p1.sample(x - 1, y, b) + p2.sample(x, y, b) -
               p2.sample(x, y - 1, b) - g.sample(x, y, b) * 0.125;
    };
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            const double u00 = u_at(x, y);
            const double u10 = u_at(x + 1, y);
            const double u01 = u_at(x, y + 1);
            const double gx = u10 - u00;
            const double gy = u01 - u00;
            const double den = 1.0 + 0.125 * std::sqrt(gx * gx + gy * gy);
            p1n.at(x, y) = (p1.sample(x, y, b) + 0.125 * gx) / den;
            p2n.at(x, y) = (p2.sample(x, y, b) + 0.125 * gy) / den;
        }
    }
    out.add_field("g", g);
    return out;
}

// --- Jacobi 5-point relaxation -------------------------------------------------

const char* jacobi_source = R"(
// Jacobi relaxation for the 2-D Laplace equation: each element becomes the
// average of its four neighbours (scientific-computing ISL, cf. the paper's
// reference to Jacobi iterative eigenvalue methods).
void jacobi_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = 0.25f * (u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1]);
        }
    }
}
)";

Frame_set jacobi_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        return 0.25 * (u.sample(x, y - 1, b) + u.sample(x, y + 1, b) +
                       u.sample(x - 1, y, b) + u.sample(x + 1, y, b));
    });
}

// --- Explicit heat diffusion -----------------------------------------------------

const char* heat_source = R"(
// Explicit Euler step of the 2-D heat equation, diffusion number 0.2
// (stable: < 0.25).
void heat_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            u_out[y][x] = u[y][x] + 0.2f * (u[y-1][x] + u[y+1][x] + u[y][x-1]
                                          + u[y][x+1] - 4.0f*u[y][x]);
        }
    }
}
)";

Frame_set heat_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        return u.sample(x, y, b) +
               0.2 * (u.sample(x, y - 1, b) + u.sample(x, y + 1, b) +
                      u.sample(x - 1, y, b) + u.sample(x + 1, y, b) -
                      4.0 * u.sample(x, y, b));
    });
}

// --- 3x3 mean (box) filter --------------------------------------------------------

const char* mean_source = R"(
// Iterated 3x3 box blur, written with an unrolled accumulation loop to
// exercise the frontend's inner-loop unrolling and local-array support.
void mean_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float acc = 0.0f;
            for (int ky = -1; ky <= 1; ky++) {
                for (int kx = -1; kx <= 1; kx++) {
                    acc += u[y+ky][x+kx];
                }
            }
            u_out[y][x] = acc / 9.0f;
        }
    }
}
)";

Frame_set mean_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        double acc = 0.0;
        for (int ky = -1; ky <= 1; ++ky) {
            for (int kx = -1; kx <= 1; ++kx) acc += u.sample(x + kx, y + ky, b);
        }
        return acc / 9.0;
    });
}

// --- Grayscale erosion --------------------------------------------------------------

const char* erosion_source = R"(
// Morphological erosion with a 3x3 structuring element (pure min network —
// no multipliers; exercises the comparator cost model).
void erosion_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float m = fminf(fminf(fminf(u[y-1][x-1], u[y-1][x]), fminf(u[y-1][x+1],
                      u[y][x-1])), fminf(fminf(u[y][x], u[y][x+1]),
                      fminf(u[y+1][x-1], fminf(u[y+1][x], u[y+1][x+1]))));
            u_out[y][x] = m;
        }
    }
}
)";

Frame_set erosion_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        const double m = std::fmin(
            std::fmin(std::fmin(u.sample(x - 1, y - 1, b), u.sample(x, y - 1, b)),
                      std::fmin(u.sample(x + 1, y - 1, b), u.sample(x - 1, y, b))),
            std::fmin(std::fmin(u.sample(x, y, b), u.sample(x + 1, y, b)),
                      std::fmin(u.sample(x - 1, y + 1, b),
                                std::fmin(u.sample(x, y + 1, b),
                                          u.sample(x + 1, y + 1, b)))));
        return m;
    });
}

// --- Perona-Malik anisotropic diffusion ----------------------------------------------

const char* perona_malik_source = R"(
// Perona-Malik edge-preserving diffusion with rational conductance
// w(d) = 1 / (1 + |d|/16); exercises full dividers and fabs.
void perona_malik_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float dn = u[y-1][x] - u[y][x];
            float ds = u[y+1][x] - u[y][x];
            float de = u[y][x+1] - u[y][x];
            float dw = u[y][x-1] - u[y][x];
            float wn = 1.0f / (1.0f + fabsf(dn) * 0.0625f);
            float ws = 1.0f / (1.0f + fabsf(ds) * 0.0625f);
            float we = 1.0f / (1.0f + fabsf(de) * 0.0625f);
            float ww = 1.0f / (1.0f + fabsf(dw) * 0.0625f);
            u_out[y][x] = u[y][x] + 0.125f * (wn*dn + ws*ds + we*de + ww*dw);
        }
    }
}
)";

Frame_set perona_malik_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        const double c = u.sample(x, y, b);
        const double dn = u.sample(x, y - 1, b) - c;
        const double ds = u.sample(x, y + 1, b) - c;
        const double de = u.sample(x + 1, y, b) - c;
        const double dw = u.sample(x - 1, y, b) - c;
        const double wn = 1.0 / (1.0 + std::fabs(dn) * 0.0625);
        const double ws = 1.0 / (1.0 + std::fabs(ds) * 0.0625);
        const double we = 1.0 / (1.0 + std::fabs(de) * 0.0625);
        const double ww = 1.0 / (1.0 + std::fabs(dw) * 0.0625);
        return c + 0.125 * (wn * dn + ws * ds + we * de + ww * dw);
    });
}

// --- Shock filter ----------------------------------------------------------------------

const char* shock_source = R"(
// Osher-Rudin shock filter: sharpens edges by advecting against the
// Laplacian sign. Exercises data-dependent ternaries (select hardware).
void shock_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float lap = u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1]
                      - 4.0f*u[y][x];
            float gx = (u[y][x+1] - u[y][x-1]) * 0.5f;
            float gy = (u[y+1][x] - u[y-1][x]) * 0.5f;
            float mag = sqrtf(gx*gx + gy*gy);
            u_out[y][x] = lap > 0.0f ? u[y][x] - 0.1f*mag
                         : (lap < 0.0f ? u[y][x] + 0.1f*mag : u[y][x]);
        }
    }
}
)";

Frame_set shock_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        const double lap = u.sample(x, y - 1, b) + u.sample(x, y + 1, b) +
                           u.sample(x - 1, y, b) + u.sample(x + 1, y, b) -
                           4.0 * u.sample(x, y, b);
        const double gx = (u.sample(x + 1, y, b) - u.sample(x - 1, y, b)) * 0.5;
        const double gy = (u.sample(x, y + 1, b) - u.sample(x, y - 1, b)) * 0.5;
        const double mag = std::sqrt(gx * gx + gy * gy);
        const double c = u.sample(x, y, b);
        return lap > 0.0 ? c - 0.1 * mag : (lap < 0.0 ? c + 0.1 * mag : c);
    });
}

// --- Conway's Game of Life -----------------------------------------------------

const char* life_source = R"(
// Conway's Game of Life on a float grid (alive = value > 0.5). A pure
// boolean ISL: exercises comparisons, &&/|| lowering and select chains.
// Cells outside the frame are dead (zero boundary).
void life_step(float u_out[H][W], const float u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float n = 0.0f;
            for (int ky = -1; ky <= 1; ky++) {
                for (int kx = -1; kx <= 1; kx++) {
                    n += u[y+ky][x+kx] > 0.5f ? 1.0f : 0.0f;
                }
            }
            float self = u[y][x] > 0.5f ? 1.0f : 0.0f;
            n = n - self;
            u_out[y][x] = (n == 3.0f || (self > 0.5f && n == 2.0f)) ? 1.0f : 0.0f;
        }
    }
}
)";

Frame_set life_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        double n = 0.0;
        for (int ky = -1; ky <= 1; ++ky) {
            for (int kx = -1; kx <= 1; ++kx) {
                n += u.sample(x + kx, y + ky, b) > 0.5 ? 1.0 : 0.0;
            }
        }
        const double self = u.sample(x, y, b) > 0.5 ? 1.0 : 0.0;
        n = n - self;
        return (n == 3.0 || (self > 0.5 && n == 2.0)) ? 1.0 : 0.0;
    });
}

// --- HotSpot thermal simulation -------------------------------------------------

const char* hotspot_source = R"(
// HotSpot-style thermal relaxation: a temperature field conducts heat to
// its four neighbours, gains heat from a constant per-cell power map and
// leaks towards the 80-degree ambient. All rate constants are exact binary
// fractions so the double IR matches the native step bit for bit.
void hotspot_step(float t_out[H][W], const float t[H][W], const float p[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float conduct = 0.0625f * (t[y-1][x] + t[y+1][x] + t[y][x-1]
                                     + t[y][x+1] - 4.0f*t[y][x]);
            t_out[y][x] = t[y][x] + conduct + 0.25f*p[y][x]
                        + 0.03125f*(80.0f - t[y][x]);
        }
    }
}
)";

Frame_set hotspot_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    fs.add_field("t", content);
    Frame& p = fs.add_field("p");
    for (int y = 0; y < content.height(); ++y) {
        for (int x = 0; x < content.width(); ++x) {
            p.at(x, y) = content.at(x, y) * 0.00390625;  // power map from content
        }
    }
    return fs;
}

Frame_set hotspot_native(const Frame_set& in, Boundary b) {
    const Frame& t = in.field("t");
    const Frame& p = in.field("p");
    Frame_set out(in.width(), in.height());
    Frame& tn = out.add_field("t");
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            const double conduct =
                0.0625 * (t.sample(x, y - 1, b) + t.sample(x, y + 1, b) +
                          t.sample(x - 1, y, b) + t.sample(x + 1, y, b) -
                          4.0 * t.sample(x, y, b));
            tn.at(x, y) = t.sample(x, y, b) + conduct + 0.25 * p.sample(x, y, b) +
                          0.03125 * (80.0 - t.sample(x, y, b));
        }
    }
    out.add_field("p", p);
    return out;
}

// --- FDTD electromagnetic update -------------------------------------------------

const char* fdtd_source = R"(
// 2-D FDTD (TMz) leapfrog step: the electric field ez and the two magnetic
// fields hx/hy advance together, each update reading the others — a coupled
// three-state-field ISL with asymmetric one-sided differences.
void fdtd_step(float ez_out[H][W], float hx_out[H][W], float hy_out[H][W],
               const float ez[H][W], const float hx[H][W],
               const float hy[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            ez_out[y][x] = ez[y][x] + 0.5f*((hy[y][x] - hy[y][x-1])
                                          - (hx[y][x] - hx[y-1][x]));
            hx_out[y][x] = hx[y][x] - 0.5f*(ez[y+1][x] - ez[y][x]);
            hy_out[y][x] = hy[y][x] + 0.5f*(ez[y][x+1] - ez[y][x]);
        }
    }
}
)";

Frame_set fdtd_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    fs.add_field("ez", content);
    fs.add_field("hx");
    fs.add_field("hy");
    return fs;
}

Frame_set fdtd_native(const Frame_set& in, Boundary b) {
    const Frame& ez = in.field("ez");
    const Frame& hx = in.field("hx");
    const Frame& hy = in.field("hy");
    Frame_set out(in.width(), in.height());
    Frame& ezn = out.add_field("ez");
    Frame& hxn = out.add_field("hx");
    Frame& hyn = out.add_field("hy");
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            ezn.at(x, y) = ez.sample(x, y, b) +
                           0.5 * ((hy.sample(x, y, b) - hy.sample(x - 1, y, b)) -
                                  (hx.sample(x, y, b) - hx.sample(x, y - 1, b)));
            hxn.at(x, y) = hx.sample(x, y, b) -
                           0.5 * (ez.sample(x, y + 1, b) - ez.sample(x, y, b));
            hyn.at(x, y) = hy.sample(x, y, b) +
                           0.5 * (ez.sample(x + 1, y, b) - ez.sample(x, y, b));
        }
    }
    return out;
}

// --- Upwind convection-diffusion -------------------------------------------------

const char* convection_source = R"(
// Convection-diffusion of a scalar field in a constant velocity field:
// first-order upwind advection (data-dependent on the velocity sign) plus a
// fourth-order radius-2 diffusion stencil — the widest window in the zoo.
void convection_step(float t_out[H][W], const float t[H][W],
                     const float vx[H][W], const float vy[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float ax = vx[y][x] > 0.0f ? t[y][x] - t[y][x-1]
                                       : t[y][x+1] - t[y][x];
            float ay = vy[y][x] > 0.0f ? t[y][x] - t[y-1][x]
                                       : t[y+1][x] - t[y][x];
            float dx2 = 16.0f*(t[y][x-1] + t[y][x+1]) - t[y][x-2] - t[y][x+2]
                      - 30.0f*t[y][x];
            float dy2 = 16.0f*(t[y-1][x] + t[y+1][x]) - t[y-2][x] - t[y+2][x]
                      - 30.0f*t[y][x];
            t_out[y][x] = t[y][x] - 0.25f*(vx[y][x]*ax + vy[y][x]*ay)
                        + 0.001953125f*(dx2 + dy2);
        }
    }
}
)";

Frame_set convection_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    fs.add_field("t", content);
    Frame& vx = fs.add_field("vx");
    Frame& vy = fs.add_field("vy");
    for (int y = 0; y < content.height(); ++y) {
        for (int x = 0; x < content.width(); ++x) {
            // Velocities in [-1, 1] derived from the content so both upwind
            // branches are exercised.
            vx.at(x, y) = content.at(x, y) * 0.0078125 - 1.0;
            vy.at(x, y) = 1.0 - content.at(x, y) * 0.0078125;
        }
    }
    return fs;
}

Frame_set convection_native(const Frame_set& in, Boundary b) {
    const Frame& t = in.field("t");
    const Frame& vx = in.field("vx");
    const Frame& vy = in.field("vy");
    Frame_set out(in.width(), in.height());
    Frame& tn = out.add_field("t");
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            const double c = t.sample(x, y, b);
            const double ax = vx.sample(x, y, b) > 0.0
                                  ? c - t.sample(x - 1, y, b)
                                  : t.sample(x + 1, y, b) - c;
            const double ay = vy.sample(x, y, b) > 0.0
                                  ? c - t.sample(x, y - 1, b)
                                  : t.sample(x, y + 1, b) - c;
            const double dx2 =
                16.0 * (t.sample(x - 1, y, b) + t.sample(x + 1, y, b)) -
                t.sample(x - 2, y, b) - t.sample(x + 2, y, b) - 30.0 * c;
            const double dy2 =
                16.0 * (t.sample(x, y - 1, b) + t.sample(x, y + 1, b)) -
                t.sample(x, y - 2, b) - t.sample(x, y + 2, b) - 30.0 * c;
            tn.at(x, y) = c - 0.25 * (vx.sample(x, y, b) * ax +
                                      vy.sample(x, y, b) * ay) +
                          0.001953125 * (dx2 + dy2);
        }
    }
    out.add_field("vx", vx);
    out.add_field("vy", vy);
    return out;
}

// --- Conway's Game of Life, integer-native ---------------------------------------

const char* conway_source = R"(
// Conway's Game of Life on an int grid (alive = 1, dead = 0). The
// integer-native sibling of `life`: the neighbour count is an int local
// computed from field reads, and the whole program stays in Q m.0 fixed
// point with zero error (compare/select tape, no multipliers).
// Cells outside the frame are dead (zero boundary).
void conway_step(int u_out[H][W], const int u[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            int n = u[y-1][x-1] + u[y-1][x] + u[y-1][x+1]
                  + u[y][x-1] + u[y][x+1]
                  + u[y+1][x-1] + u[y+1][x] + u[y+1][x+1];
            u_out[y][x] = (n == 3 || (u[y][x] != 0 && n == 2)) ? 1 : 0;
        }
    }
}
)";

Frame_set conway_initial(const Frame& content) {
    Frame_set fs(content.width(), content.height());
    Frame& u = fs.add_field("u");
    for (int y = 0; y < content.height(); ++y) {
        for (int x = 0; x < content.width(); ++x) {
            u.at(x, y) = content.at(x, y) > 127.0 ? 1.0 : 0.0;
        }
    }
    return fs;
}

Frame_set conway_native(const Frame_set& in, Boundary b) {
    const Frame& u = in.field("u");
    return map_single_field(in, [&](int x, int y) {
        const double n = u.sample(x - 1, y - 1, b) + u.sample(x, y - 1, b) +
                         u.sample(x + 1, y - 1, b) + u.sample(x - 1, y, b) +
                         u.sample(x + 1, y, b) + u.sample(x - 1, y + 1, b) +
                         u.sample(x, y + 1, b) + u.sample(x + 1, y + 1, b);
        const bool alive = n == 3.0 || (u.sample(x, y, b) != 0.0 && n == 2.0);
        return alive ? 1.0 : 0.0;
    });
}

std::vector<Kernel_def> build_registry() {
    std::vector<Kernel_def> kernels;

    kernels.push_back({"igf", "Iterative Gaussian Filter",
                       "3x3 binomial convolution applied iteratively (paper case "
                       "study, Sec. 4.1)",
                       igf_source, {"u"}, {}, 10, Boundary::clamp, igf_native,
                       single_field_initial, "u"});

    kernels.push_back({"chambolle", "Chambolle TV minimization",
                       "dual-field total variation fixed point (paper case study, "
                       "Sec. 4.2)",
                       chambolle_source, {"p1", "p2"}, {"g"}, 10, Boundary::clamp,
                       chambolle_native, chambolle_initial, "p1"});

    kernels.push_back({"jacobi", "Jacobi relaxation",
                       "5-point Laplace relaxation", jacobi_source, {"u"}, {}, 10,
                       Boundary::clamp, jacobi_native, single_field_initial, "u"});

    kernels.push_back({"heat", "Heat diffusion",
                       "explicit 2-D heat equation step", heat_source, {"u"}, {}, 10,
                       Boundary::clamp, heat_native, single_field_initial, "u"});

    kernels.push_back({"mean", "Iterated box blur",
                       "3x3 mean filter written with inner kernel loops",
                       mean_source, {"u"}, {}, 10, Boundary::clamp, mean_native,
                       single_field_initial, "u"});

    kernels.push_back({"erosion", "Grayscale erosion",
                       "3x3 morphological erosion (min network)", erosion_source,
                       {"u"}, {}, 10, Boundary::clamp, erosion_native,
                       single_field_initial, "u"});

    kernels.push_back({"perona_malik", "Perona-Malik diffusion",
                       "edge-preserving anisotropic diffusion", perona_malik_source,
                       {"u"}, {}, 10, Boundary::clamp, perona_malik_native,
                       single_field_initial, "u"});

    kernels.push_back({"shock", "Shock filter",
                       "Osher-Rudin shock filter with data-dependent branches",
                       shock_source, {"u"}, {}, 10, Boundary::clamp, shock_native,
                       single_field_initial, "u"});

    kernels.push_back({"life", "Game of Life",
                       "Conway's Game of Life (boolean ISL, dead outside)",
                       life_source, {"u"}, {}, 10, Boundary::zero, life_native,
                       single_field_initial, "u"});

    kernels.push_back({"hotspot", "HotSpot thermal relaxation",
                       "temperature field with constant power map and ambient leak",
                       hotspot_source, {"t"}, {"p"}, 10, Boundary::clamp,
                       hotspot_native, hotspot_initial, "t"});

    kernels.push_back({"fdtd", "FDTD electromagnetic step",
                       "coupled ez/hx/hy leapfrog update (2-D TMz)", fdtd_source,
                       {"ez", "hx", "hy"}, {}, 10, Boundary::clamp, fdtd_native,
                       fdtd_initial, "ez"});

    kernels.push_back({"convection", "Upwind convection-diffusion",
                       "radius-2 diffusion plus sign-dependent upwind advection",
                       convection_source, {"t"}, {"vx", "vy"}, 10, Boundary::clamp,
                       convection_native, convection_initial, "t"});

    kernels.push_back({"conway", "Game of Life (integer)",
                       "integer-native Life: int fields, exact Q m.0 fixed point",
                       conway_source, {"u"}, {}, 10, Boundary::zero, conway_native,
                       conway_initial, "u", true});

    return kernels;
}

}  // namespace

const std::vector<Kernel_def>& all_kernels() {
    static const std::vector<Kernel_def> registry = build_registry();
    return registry;
}

const Kernel_def& kernel_by_name(const std::string& name) {
    for (const Kernel_def& k : all_kernels()) {
        if (k.name == name) return k;
    }
    throw Error(cat("unknown kernel '", name, "'"));
}

std::vector<std::string> kernel_names() {
    std::vector<std::string> names;
    for (const Kernel_def& k : all_kernels()) names.push_back(k.name);
    return names;
}

Frame_set run_native(const Kernel_def& kernel, const Frame_set& initial,
                     int iterations) {
    check_internal(iterations >= 0, "run_native requires iterations >= 0");
    Frame_set current = initial;
    for (int i = 0; i < iterations; ++i) {
        current = kernel.native_step(current, kernel.boundary);
    }
    return current;
}

}  // namespace islhls
