// Golden reference execution of ISL algorithms.
//
// Two semantics exist and tests use both:
//   - run_step_ir / run_native: apply one step over the frame, resolving
//     out-of-range reads with the boundary policy *at every iteration* (what
//     a software implementation does);
//   - ghost semantics (run_ghost_*): extend the initial frame once by the
//     total halo, then iterate without further boundary involvement. This is
//     what the cone architecture computes (every intermediate value derives
//     from the initial window), so the architecture simulator is compared
//     against the ghost golden — and the two goldens agree on the interior.
#pragma once

#include "grid/frame_set.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

// One step, evaluating the stencil's extracted IR at every point. This is
// also the reference for user kernels that have no native implementation.
// Executed by the compiled scanline engine (sim/exec_engine.hpp).
Frame_set run_step_ir(const Stencil_step& step, const Frame_set& current, Boundary b);

// `iterations` IR steps with per-iteration boundary resolution through the
// compiled engine. The options control the thread fan-out and the temporal
// tile depth (sim/exec_engine.hpp); every combination yields byte-identical
// frames. The threads-only overload keeps tile_iterations in auto mode, so
// large-frame callers inherit temporal tiling transparently.
Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, const Exec_options& options);
Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, int threads = 1);

// Legacy per-pixel interpreter path: field lookups by name, a boundary-
// resolved sample per read, and an interpreted, trace-allocating program
// execution per element — independent of the compiled tape. Kept as the
// reference the engine equivalence suite and the throughput bench compare
// against; not a production path.
Frame_set run_step_ir_reference(const Stencil_step& step, const Frame_set& current,
                                Boundary b);
Frame_set run_ir_reference(const Stencil_step& step, const Frame_set& initial,
                           int iterations, Boundary b);

// Pads `frame` by the margins, filling the apron via the boundary policy.
Frame pad_frame(const Frame& frame, int left, int right, int up, int down, Boundary b);

// Removes the apron again.
Frame crop_frame(const Frame& frame, int left, int right, int up, int down);

// Ghost-zone golden using the extracted IR step. The options overload
// forwards the engine knobs (thread fan-out / shared pool / tiling) to the
// padded run; DSE validation sweeps use it to route many golden checks
// through one shared Thread_pool.
Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b, const Exec_options& options);
Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b);

// Ghost-zone golden using a kernel's native step.
Frame_set run_ghost_native(const Kernel_def& kernel, const Frame_set& initial,
                           int iterations);

}  // namespace islhls
