// Golden reference execution of ISL algorithms.
//
// Two semantics exist and tests use both:
//   - run_step_ir / run_native: apply one step over the frame, resolving
//     out-of-range reads with the boundary policy *at every iteration* (what
//     a software implementation does);
//   - ghost semantics (run_ghost_*): extend the initial frame once by the
//     total halo, then iterate without further boundary involvement. This is
//     what the cone architecture computes (every intermediate value derives
//     from the initial window), so the architecture simulator is compared
//     against the ghost golden — and the two goldens agree on the interior.
#pragma once

#include "grid/frame_set.hpp"
#include "kernels/kernels.hpp"
#include "sim/exec_engine.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

// One step, evaluating the stencil's extracted IR at every point. This is
// also the reference for user kernels that have no native implementation.
// Executed by the compiled scanline engine (sim/exec_engine.hpp).
Frame_set run_step_ir(const Stencil_step& step, const Frame_set& current, Boundary b);

// `iterations` IR steps with per-iteration boundary resolution through the
// compiled engine. The options control the thread fan-out and the temporal
// tile depth (sim/exec_engine.hpp); every combination yields byte-identical
// frames. The threads-only overload keeps tile_iterations in auto mode, so
// large-frame callers inherit temporal tiling transparently.
Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, const Exec_options& options);
Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, int threads = 1);

// Fixed-point overload: quantizes `initial` once and iterates the integer
// row engine under `format`, returning the raw Qm.f words of every field
// (sim/exec_engine.hpp). Byte-identical to a per-pixel run_fixed_raw sweep
// for every boundary, thread count and tile depth — this is the whole-frame
// fixed-point golden the DSE's fixed-mode validation compares against.
Fixed_frame_result run_ir(const Stencil_step& step, const Frame_set& initial,
                          int iterations, Boundary b, const Fixed_format& format,
                          const Exec_options& options = {});

// Legacy per-pixel interpreter path: field lookups by name, a boundary-
// resolved sample per read, and an interpreted, trace-allocating program
// execution per element — independent of the compiled tape. Kept as the
// reference the engine equivalence suite and the throughput bench compare
// against; not a production path.
Frame_set run_step_ir_reference(const Stencil_step& step, const Frame_set& current,
                                Boundary b);
Frame_set run_ir_reference(const Stencil_step& step, const Frame_set& initial,
                           int iterations, Boundary b);

// Per-pixel fixed-point reference: quantizes `initial` once (Raw_quantizer
// semantics), then advances raw words by interpreting run_fixed_raw at
// every pixel with boundary-resolved gathers (raw 0 backs Boundary::zero).
// The one source of the frame-scale scalar sweep the integer row engine's
// memcmp suite and the throughput bench both compare against; not a
// production path. iterations <= 0 returns the quantized initial frames.
Fixed_frame_result run_ir_fixed_reference(const Stencil_step& step,
                                          const Frame_set& initial, int iterations,
                                          Boundary b, const Fixed_format& format);

// Pads `frame` by the margins, filling the apron via the boundary policy.
Frame pad_frame(const Frame& frame, int left, int right, int up, int down, Boundary b);

// Removes the apron again.
Frame crop_frame(const Frame& frame, int left, int right, int up, int down);

// Ghost-zone golden using the extracted IR step. The options overload
// forwards the engine knobs (thread fan-out / shared pool / tiling) to the
// padded run; DSE validation sweeps use it to route many golden checks
// through one shared Thread_pool.
Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b, const Exec_options& options);
Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b);

// Fixed-point ghost golden: pads the initial frames by the N-iteration halo
// (boundary applied once, in the double domain — exactly the off-chip
// coverage the cone architecture loads), quantizes, iterates the integer row
// engine, and crops the apron off the raw words again. The architecture
// simulator's fixed mode must reproduce these raw words exactly.
Fixed_frame_result run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                                int iterations, Boundary b, const Fixed_format& format,
                                const Exec_options& options = {});

// Ghost-zone golden using a kernel's native step.
Frame_set run_ghost_native(const Kernel_def& kernel, const Frame_set& initial,
                           int iterations);

}  // namespace islhls
