#include "sim/arch_sim.hpp"

#include <algorithm>
#include <memory>

#include "ir/compiled.hpp"
#include "sim/fixed_exec.hpp"
#include "support/error.hpp"

namespace islhls {

namespace {

// A dense per-field buffer over an absolute-coordinate rectangle. The
// element type is the simulation's value domain: doubles in double mode, raw
// Qm.f words in fixed mode (the whole on-chip pipeline then stays in the
// integer domain — the off-chip load quantizes once and nothing re-quantizes
// per cone origin).
template <typename T>
class Region_buffer {
public:
    Region_buffer(const Window& window, int fields)
        : window_(window),
          data_(static_cast<std::size_t>(fields) * window.element_count(), T{}) {}

    const Window& window() const { return window_; }

    bool contains(int x, int y) const {
        return x >= window_.x0 && x < window_.x0 + window_.width && y >= window_.y0 &&
               y < window_.y0 + window_.height;
    }

    T get(int field, int x, int y) const { return data_[index(field, x, y)]; }
    void set(int field, int x, int y, T v) { data_[index(field, x, y)] = v; }

private:
    std::size_t index(int field, int x, int y) const {
        // Static message: building a formatted string here would run on
        // every on-chip element access, the simulator's innermost loop.
        check_internal(contains(x, y), "Region_buffer access outside its window");
        return (static_cast<std::size_t>(field) * window_.height +
                static_cast<std::size_t>(y - window_.y0)) *
                   window_.width +
               static_cast<std::size_t>(x - window_.x0);
    }

    Window window_;
    std::vector<T> data_;
};

// Flush tile origins covering `extent` with stride `w`: 0, w, 2w, ...,
// with the last tile pulled back flush to the end (origins may overlap).
std::vector<int> flush_origins(int extent, int w) {
    std::vector<int> origins;
    if (extent <= w) {
        origins.push_back(0);
        return origins;
    }
    for (int o = 0;; o += w) {
        if (o + w >= extent) {
            origins.push_back(extent - w);
            break;
        }
        origins.push_back(o);
    }
    return origins;
}

// --- value domains ----------------------------------------------------------------
//
// One domain per arithmetic mode; the simulation loop below is templated on
// it, so both modes run the identical tiling/coverage machinery and only the
// element type, the off-chip conversions and the cone execution differ.

// IEEE doubles over the compiled tape's scalar path.
struct Double_domain {
    using Value = double;

    struct Level {
        const Cone* cone = nullptr;
        const Compiled_program* tape = nullptr;
        std::vector<double> slots;
        std::vector<double> inputs;

        void execute() { tape->eval_point(inputs.data(), slots.data()); }
        double output(std::size_t o) const {
            return slots[static_cast<std::size_t>(tape->output_slots()[o])];
        }
    };

    void bind(Level& level, const Cone& cone) const {
        level.cone = &cone;
        level.tape = &cone.program().compiled();
        level.slots.resize(static_cast<std::size_t>(level.tape->slot_count()));
        level.inputs.resize(level.tape->inputs().size());
    }
    Value load(const Frame& f, int x, int y, Boundary b) const {
        return f.sample(x, y, b);
    }
    double store(Value v) const { return v; }
};

// Raw Qm.f words over the integer-lowered tape (allocation-free Fixed_exec,
// byte-identical to the run_fixed_raw reference interpreter). The off-chip
// load quantizes every element exactly once; levels hand raw words to each
// other directly, matching the fixed frame engine word for word.
struct Fixed_domain {
    using Value = std::int64_t;
    Fixed_format format;
    Raw_quantizer quantize;

    explicit Fixed_domain(const Fixed_format& fmt) : format(fmt), quantize(fmt) {}

    struct Level {
        const Cone* cone = nullptr;
        const Compiled_program* tape = nullptr;
        std::unique_ptr<Fixed_exec> exec;
        Fixed_exec::Scratch scratch;
        std::vector<std::int64_t> inputs;
        std::vector<std::int64_t> outputs;

        void execute() { exec->eval_into(inputs.data(), outputs.data(), scratch); }
        std::int64_t output(std::size_t o) const { return outputs[o]; }
    };

    void bind(Level& level, const Cone& cone) const {
        level.cone = &cone;
        level.tape = &cone.program().compiled();
        level.exec = std::make_unique<Fixed_exec>(cone.program(), format);
        level.inputs.resize(level.tape->inputs().size());
        level.outputs.resize(level.tape->output_slots().size());
    }
    Value load(const Frame& f, int x, int y, Boundary b) const {
        return quantize(f.sample(x, y, b));
    }
    double store(Value v) const { return from_raw(v, format); }
};

template <class Domain>
Arch_sim_result simulate_impl(Cone_library& library, const Arch_instance& instance,
                              const Frame_set& initial, const Arch_sim_options& options,
                              const Domain& domain) {
    using Value = typename Domain::Value;
    const Stencil_step& step = library.step();
    const Footprint fp = step.footprint();
    const int w = instance.window;
    check_internal(w >= 1 && !instance.level_depths.empty(),
                   "simulate_architecture: malformed instance");

    const int frame_w = initial.width();
    const int frame_h = initial.height();
    const int fields_total = step.pool().field_count();
    const int state_count = step.state_field_count();

    // Per-field index mapping: buffer slot == pool field index.
    std::vector<const Frame*> field_frames;
    for (int f = 0; f < fields_total; ++f) {
        field_frames.push_back(&initial.field(step.pool().field_name(f)));
    }

    Arch_sim_result result;
    result.final_state = Frame_set(frame_w, frame_h);
    std::vector<Frame*> out_frames;
    for (const std::string& name : step.state_fields()) {
        out_frames.push_back(&result.final_state.add_field(name));
    }

    const std::size_t level_count = instance.level_depths.size();
    // Suffix halo after each level k (0-based level index; suffix excludes
    // the level itself for its OUTPUT coverage).
    std::vector<Footprint> suffix(level_count + 1);
    suffix[level_count] = Footprint{};
    for (std::size_t k = level_count; k-- > 0;) {
        suffix[k] = compose(repeat(fp, instance.level_depths[k]), suffix[k + 1]);
    }

    // Per-level cone execution state, resolved once: the memoized cone, its
    // compiled tape and the domain's executor (double: a slot buffer for
    // eval_point; fixed: the integer-lowered Fixed_exec). Cone executions
    // below are then allocation-free in both modes.
    std::vector<typename Domain::Level> level_exec(level_count);
    for (std::size_t k = 0; k < level_count; ++k) {
        domain.bind(level_exec[k], library.cone(w, instance.level_depths[k]));
    }
    // Output coverage of level k (1-based like the architecture module):
    // the output window grown by suffix[k].

    const std::vector<int> tx_origins = flush_origins(frame_w, w);
    const std::vector<int> ty_origins = flush_origins(frame_h, w);

    for (int ty : ty_origins) {
        for (int tx : tx_origins) {
            result.stats.output_windows += 1;

            // --- load the initial coverage from "off-chip" -----------------------
            const Footprint total_halo = suffix[0];
            Window input_region{tx - total_halo.left, ty - total_halo.up,
                                w + total_halo.width_growth(),
                                w + total_halo.height_growth()};
            Region_buffer<Value> current(input_region, fields_total);
            for (int f = 0; f < fields_total; ++f) {
                for (int y = input_region.y0; y < input_region.y0 + input_region.height;
                     ++y) {
                    for (int x = input_region.x0;
                         x < input_region.x0 + input_region.width; ++x) {
                        current.set(f, x, y,
                                    domain.load(*field_frames[static_cast<std::size_t>(f)],
                                                x, y, options.boundary));
                    }
                }
            }
            result.stats.offchip_elements_read +=
                input_region.element_count() * fields_total;

            // --- run the levels deep-first ---------------------------------------
            for (std::size_t k = 0; k < level_count; ++k) {
                typename Domain::Level& le = level_exec[k];
                const Cone& cone = *le.cone;
                const Register_program& program = cone.program();
                const Footprint out_halo = suffix[k + 1];
                Window out_region{tx - out_halo.left, ty - out_halo.up,
                                  w + out_halo.width_growth(),
                                  w + out_halo.height_growth()};
                Region_buffer<Value> next(out_region, fields_total);

                // Constant fields survive level transitions: copy the slice
                // the next levels may still read.
                for (int f = 0; f < fields_total; ++f) {
                    if (step.is_state_index(f)) continue;
                    for (int y = out_region.y0; y < out_region.y0 + out_region.height;
                         ++y) {
                        for (int x = out_region.x0;
                             x < out_region.x0 + out_region.width; ++x) {
                            next.set(f, x, y, current.get(f, x, y));
                        }
                    }
                }

                const std::vector<int> sub_x = flush_origins(out_region.width, w);
                const std::vector<int> sub_y = flush_origins(out_region.height, w);
                const std::vector<Tape_input>& ports = le.tape->inputs();
                for (int oy : sub_y) {
                    for (int ox : sub_x) {
                        const int origin_x = out_region.x0 + ox;
                        const int origin_y = out_region.y0 + oy;
                        result.stats.onchip_elements_read +=
                            static_cast<long long>(ports.size());
                        result.stats.cone_executions += 1;
                        result.stats.operations_executed += program.register_count();

                        for (std::size_t i = 0; i < ports.size(); ++i) {
                            le.inputs[i] = current.get(ports[i].field,
                                                       origin_x + ports[i].dx,
                                                       origin_y + ports[i].dy);
                        }
                        le.execute();
                        for (int s = 0; s < state_count; ++s) {
                            const int field =
                                step.pool().find_field(step.state_fields()[static_cast<std::size_t>(s)]);
                            for (int yy = 0; yy < w; ++yy) {
                                for (int xx = 0; xx < w; ++xx) {
                                    const auto o = static_cast<std::size_t>(
                                        cone.output_index(s, xx, yy));
                                    next.set(field, origin_x + xx, origin_y + yy,
                                             le.output(o));
                                }
                            }
                        }
                    }
                }
                current = std::move(next);
            }

            // --- write the output window ---------------------------------------------
            for (int s = 0; s < state_count; ++s) {
                const int field = step.pool().find_field(
                    step.state_fields()[static_cast<std::size_t>(s)]);
                for (int yy = 0; yy < w && ty + yy < frame_h; ++yy) {
                    for (int xx = 0; xx < w && tx + xx < frame_w; ++xx) {
                        out_frames[static_cast<std::size_t>(s)]->at(tx + xx, ty + yy) =
                            domain.store(current.get(field, tx + xx, ty + yy));
                    }
                }
            }
            result.stats.offchip_elements_written +=
                static_cast<long long>(std::min(w, frame_w - tx)) *
                std::min(w, frame_h - ty) * state_count;
        }
    }
    return result;
}

}  // namespace

Arch_sim_result simulate_architecture(Cone_library& library,
                                      const Arch_instance& instance,
                                      const Frame_set& initial,
                                      const Arch_sim_options& options) {
    if (options.fixed_point) {
        return simulate_impl(library, instance, initial, options,
                             Fixed_domain(options.format));
    }
    return simulate_impl(library, instance, initial, options, Double_domain{});
}

}  // namespace islhls
