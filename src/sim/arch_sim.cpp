#include "sim/arch_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ir/compiled.hpp"
#include "sim/tape_lanes.hpp"
#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {

namespace {

// A dense per-field buffer over an absolute-coordinate rectangle. The
// element type is the simulation's value domain: doubles in double mode, raw
// Qm.f words in fixed mode (the whole on-chip pipeline then stays in the
// integer domain — the off-chip load quantizes once and nothing re-quantizes
// per cone origin).
template <typename T>
class Region_buffer {
public:
    Region_buffer(const Window& window, int fields)
        : window_(window),
          data_(static_cast<std::size_t>(fields) * window.element_count(), T{}) {}

    const Window& window() const { return window_; }

    bool contains(int x, int y) const {
        return x >= window_.x0 && x < window_.x0 + window_.width && y >= window_.y0 &&
               y < window_.y0 + window_.height;
    }

    T get(int field, int x, int y) const { return data_[index(field, x, y)]; }
    void set(int field, int x, int y, T v) { data_[index(field, x, y)] = v; }

private:
    std::size_t index(int field, int x, int y) const {
        // Static message: building a formatted string here would run on
        // every on-chip element access, the simulator's innermost loop.
        check_internal(contains(x, y), "Region_buffer access outside its window");
        return (static_cast<std::size_t>(field) * window_.height +
                static_cast<std::size_t>(y - window_.y0)) *
                   window_.width +
               static_cast<std::size_t>(x - window_.x0);
    }

    Window window_;
    std::vector<T> data_;
};

// Flush tile origins covering `extent` with stride `w`: 0, w, 2w, ...,
// with the last tile pulled back flush to the end (origins may overlap).
std::vector<int> flush_origins(int extent, int w) {
    std::vector<int> origins;
    if (extent <= w) {
        origins.push_back(0);
        return origins;
    }
    for (int o = 0;; o += w) {
        if (o + w >= extent) {
            origins.push_back(extent - w);
            break;
        }
        origins.push_back(o);
    }
    return origins;
}

// --- value domains ----------------------------------------------------------------
//
// One domain per arithmetic mode; the simulation loop below is templated on
// it, so both modes run the identical tiling/coverage machinery and only the
// element type, the off-chip conversions and the per-op lane arithmetic
// differ. Cone execution is lane-blocked in both domains: up to kTapeLane
// cone origins of one region row advance together through the shared
// per-ISA lane kernels (sim/tape_lanes.hpp), one kernel call per tape
// operation — there is no per-origin scalar gather/execute/scatter loop.
// The kernels match the scalar references case for case (apply_op /
// apply_op_fixed), so the batched path is exact against run_ghost_ir: 0 LSB
// in the fixed domain, 0.0 max abs error in the double domain.

// IEEE doubles over the compiled tape.
struct Double_domain {
    using Value = double;
    Double_lane_fn kernel = double_lane_kernel();

    struct Level {
        const Cone* cone = nullptr;
        const Compiled_program* tape = nullptr;
        // kTapeLane contiguous origins per tape slot; constant lanes are
        // single-assignment, filled at bind time.
        std::vector<double> lanes;
        // (s * w + yy) * w + xx -> producing tape slot, precomputed so the
        // scatter loop never calls output_index.
        std::vector<std::int32_t> scatter;
    };

    void bind(Level& level, const Cone& cone) const {
        level.cone = &cone;
        level.tape = &cone.program().compiled();
        level.lanes.assign(static_cast<std::size_t>(level.tape->slot_count()) *
                               static_cast<std::size_t>(kTapeLane),
                           0.0);
        const std::vector<Tape_constant>& constants = level.tape->constants();
        for (const Tape_constant& k : constants) {
            double* dst =
                level.lanes.data() + static_cast<std::size_t>(k.slot) * kTapeLane;
            std::fill(dst, dst + kTapeLane, k.value);
        }
    }
    Value load(const Frame& f, int x, int y, Boundary b) const {
        return f.sample(x, y, b);
    }
    double store(Value v) const { return v; }
    // The frame values feed the tape unmodified, like eval_point.
    Value wrap_input(const Level&, Value v) const { return v; }
    void run_ops(Level& level, int n) const {
        for (const Tape_op& op : level.tape->ops()) {
            kernel(op, level.lanes.data(), n);
        }
    }
};

// Raw Qm.f words over the integer-lowered tape, byte-identical to the
// run_fixed_raw reference interpreter. The off-chip load quantizes every
// element exactly once; levels hand raw words to each other directly,
// matching the fixed frame engine word for word.
struct Fixed_domain {
    using Value = std::int64_t;
    Fixed_format format;
    Raw_quantizer quantize;
    Fixed_lane_fn kernel = fixed_lane_kernel();

    explicit Fixed_domain(const Fixed_format& fmt) : format(fmt), quantize(fmt) {}

    struct Level {
        const Cone* cone = nullptr;
        const Compiled_program* tape = nullptr;
        // Integer lowering of this cone's tape: wrap/shift parameters and
        // the raw constant words.
        std::unique_ptr<Fixed_tape> fixed;
        std::vector<std::int64_t> lanes;
        std::vector<std::int32_t> scatter;
    };

    void bind(Level& level, const Cone& cone) const {
        level.cone = &cone;
        level.tape = &cone.program().compiled();
        level.fixed = std::make_unique<Fixed_tape>(cone.program().compiled(), format);
        level.lanes.assign(static_cast<std::size_t>(level.tape->slot_count()) *
                               static_cast<std::size_t>(kTapeLane),
                           0);
        const std::vector<Tape_constant>& constants = level.tape->constants();
        for (std::size_t i = 0; i < constants.size(); ++i) {
            std::int64_t* dst = level.lanes.data() +
                                static_cast<std::size_t>(constants[i].slot) * kTapeLane;
            std::fill(dst, dst + kTapeLane, level.fixed->constant_raw()[i]);
        }
    }
    Value load(const Frame& f, int x, int y, Boundary b) const {
        return quantize(f.sample(x, y, b));
    }
    double store(Value v) const { return from_raw(v, format); }
    // Fixed_tape::eval_point wraps every input word on load; the lane path
    // mirrors that (a no-op for the in-range words the region holds, but it
    // keeps the two paths textually equivalent).
    Value wrap_input(const Level& level, Value v) const {
        return level.fixed->wrap()(v);
    }
    void run_ops(Level& level, int n) const {
        const Bit_wrap& wrap = level.fixed->wrap();
        const int frac = level.fixed->frac_bits();
        const std::int64_t one = level.fixed->fixed_one();
        for (const Tape_op& op : level.tape->ops()) {
            kernel(op, level.lanes.data(), n, wrap, frac, one);
        }
    }
};

template <class Domain>
Arch_sim_result simulate_impl(Cone_library& library, const Arch_instance& instance,
                              const Frame_set& initial, const Arch_sim_options& options,
                              const Domain& domain) {
    using Value = typename Domain::Value;
    const Stencil_step& step = library.step();
    const Footprint fp = step.footprint();
    const int w = instance.window;
    check_internal(w >= 1 && !instance.level_depths.empty(),
                   "simulate_architecture: malformed instance");

    const int frame_w = initial.width();
    const int frame_h = initial.height();
    const int fields_total = step.pool().field_count();
    const int state_count = step.state_field_count();

    // Per-field index mapping: buffer slot == pool field index.
    std::vector<const Frame*> field_frames;
    for (int f = 0; f < fields_total; ++f) {
        field_frames.push_back(&initial.field(step.pool().field_name(f)));
    }

    Arch_sim_result result;
    result.final_state = Frame_set(frame_w, frame_h);
    std::vector<Frame*> out_frames;
    for (const std::string& name : step.state_fields()) {
        out_frames.push_back(&result.final_state.add_field(name));
    }

    const std::size_t level_count = instance.level_depths.size();
    // Suffix halo after each level k (0-based level index; suffix excludes
    // the level itself for its OUTPUT coverage).
    std::vector<Footprint> suffix(level_count + 1);
    suffix[level_count] = Footprint{};
    for (std::size_t k = level_count; k-- > 0;) {
        suffix[k] = compose(repeat(fp, instance.level_depths[k]), suffix[k + 1]);
    }

    // State-field pool indices in declaration order, resolved once (the
    // scatter loop must not do per-origin string lookups).
    std::vector<int> state_field(static_cast<std::size_t>(state_count));
    for (int s = 0; s < state_count; ++s) {
        state_field[static_cast<std::size_t>(s)] =
            step.pool().find_field(step.state_fields()[static_cast<std::size_t>(s)]);
    }

    // Per-level cone execution state, resolved once: the memoized cone, its
    // compiled tape, the domain's lane block (constants prefilled) and the
    // output scatter map (s * w + yy) * w + xx -> producing tape slot. Cone
    // executions below are then allocation-free in both modes.
    std::vector<typename Domain::Level> level_exec(level_count);
    for (std::size_t k = 0; k < level_count; ++k) {
        const Cone& cone = library.cone(w, instance.level_depths[k]);
        typename Domain::Level& le = level_exec[k];
        domain.bind(le, cone);
        const std::vector<std::int32_t>& out_slots = le.tape->output_slots();
        le.scatter.assign(static_cast<std::size_t>(state_count) *
                              static_cast<std::size_t>(w) * static_cast<std::size_t>(w),
                          0);
        for (int s = 0; s < state_count; ++s) {
            for (int yy = 0; yy < w; ++yy) {
                for (int xx = 0; xx < w; ++xx) {
                    le.scatter[(static_cast<std::size_t>(s) * w +
                                static_cast<std::size_t>(yy)) *
                                   w +
                               static_cast<std::size_t>(xx)] =
                        out_slots[static_cast<std::size_t>(cone.output_index(s, xx, yy))];
                }
            }
        }
    }
    // Output coverage of level k (1-based like the architecture module):
    // the output window grown by suffix[k].

    const std::vector<int> tx_origins = flush_origins(frame_w, w);
    const std::vector<int> ty_origins = flush_origins(frame_h, w);

    for (int ty : ty_origins) {
        for (int tx : tx_origins) {
            result.stats.output_windows += 1;

            // --- load the initial coverage from "off-chip" -----------------------
            const Footprint total_halo = suffix[0];
            Window input_region{tx - total_halo.left, ty - total_halo.up,
                                w + total_halo.width_growth(),
                                w + total_halo.height_growth()};
            Region_buffer<Value> current(input_region, fields_total);
            for (int f = 0; f < fields_total; ++f) {
                for (int y = input_region.y0; y < input_region.y0 + input_region.height;
                     ++y) {
                    for (int x = input_region.x0;
                         x < input_region.x0 + input_region.width; ++x) {
                        current.set(f, x, y,
                                    domain.load(*field_frames[static_cast<std::size_t>(f)],
                                                x, y, options.boundary));
                    }
                }
            }
            result.stats.offchip_elements_read +=
                input_region.element_count() * fields_total;

            // --- run the levels deep-first ---------------------------------------
            for (std::size_t k = 0; k < level_count; ++k) {
                typename Domain::Level& le = level_exec[k];
                const Cone& cone = *le.cone;
                const Register_program& program = cone.program();
                const Footprint out_halo = suffix[k + 1];
                Window out_region{tx - out_halo.left, ty - out_halo.up,
                                  w + out_halo.width_growth(),
                                  w + out_halo.height_growth()};
                Region_buffer<Value> next(out_region, fields_total);

                // Constant fields survive level transitions: copy the slice
                // the next levels may still read.
                for (int f = 0; f < fields_total; ++f) {
                    if (step.is_state_index(f)) continue;
                    for (int y = out_region.y0; y < out_region.y0 + out_region.height;
                         ++y) {
                        for (int x = out_region.x0;
                             x < out_region.x0 + out_region.width; ++x) {
                            next.set(f, x, y, current.get(f, x, y));
                        }
                    }
                }

                // Lane-batched cone execution: up to kTapeLane origins of
                // one region row advance together — per port one gather
                // into the lane block, per tape operation one kernel call
                // over the live lanes, per output element one scatter
                // across the lanes. Overlapping flush origins write
                // identical words (every covered output equals the ghost
                // value), so the batched write order matches the scalar
                // path bit for bit.
                const std::vector<int> sub_x = flush_origins(out_region.width, w);
                const std::vector<int> sub_y = flush_origins(out_region.height, w);
                const std::vector<Tape_input>& ports = le.tape->inputs();
                Value* lanes = le.lanes.data();
                for (int oy : sub_y) {
                    const int origin_y = out_region.y0 + oy;
                    for (std::size_t c0 = 0; c0 < sub_x.size(); c0 += kTapeLane) {
                        const int n = static_cast<int>(std::min<std::size_t>(
                            kTapeLane, sub_x.size() - c0));
                        result.stats.onchip_elements_read +=
                            static_cast<long long>(ports.size()) * n;
                        result.stats.cone_executions += n;
                        result.stats.operations_executed +=
                            static_cast<long long>(program.register_count()) * n;

                        for (const Tape_input& port : ports) {
                            Value* dst =
                                lanes + static_cast<std::size_t>(port.slot) * kTapeLane;
                            const int py = origin_y + port.dy;
                            for (int l = 0; l < n; ++l) {
                                dst[l] = domain.wrap_input(
                                    le, current.get(port.field,
                                                    out_region.x0 + sub_x[c0 + l] +
                                                        port.dx,
                                                    py));
                            }
                        }
                        domain.run_ops(le, n);
                        for (int s = 0; s < state_count; ++s) {
                            const int field = state_field[static_cast<std::size_t>(s)];
                            for (int yy = 0; yy < w; ++yy) {
                                const int py = origin_y + yy;
                                for (int xx = 0; xx < w; ++xx) {
                                    const Value* src =
                                        lanes +
                                        static_cast<std::size_t>(
                                            le.scatter[(static_cast<std::size_t>(s) * w +
                                                        static_cast<std::size_t>(yy)) *
                                                           w +
                                                       static_cast<std::size_t>(xx)]) *
                                            kTapeLane;
                                    for (int l = 0; l < n; ++l) {
                                        next.set(field,
                                                 out_region.x0 + sub_x[c0 + l] + xx, py,
                                                 src[l]);
                                    }
                                }
                            }
                        }
                    }
                }
                current = std::move(next);
            }

            // --- write the output window ---------------------------------------------
            for (int s = 0; s < state_count; ++s) {
                const int field = step.pool().find_field(
                    step.state_fields()[static_cast<std::size_t>(s)]);
                for (int yy = 0; yy < w && ty + yy < frame_h; ++yy) {
                    for (int xx = 0; xx < w && tx + xx < frame_w; ++xx) {
                        out_frames[static_cast<std::size_t>(s)]->at(tx + xx, ty + yy) =
                            domain.store(current.get(field, tx + xx, ty + yy));
                    }
                }
            }
            result.stats.offchip_elements_written +=
                static_cast<long long>(std::min(w, frame_w - tx)) *
                std::min(w, frame_h - ty) * state_count;
        }
    }
    return result;
}

}  // namespace

Arch_sim_result simulate_architecture(Cone_library& library,
                                      const Arch_instance& instance,
                                      const Frame_set& initial,
                                      const Arch_sim_options& options) {
    if (options.fixed_point) {
        return simulate_impl(library, instance, initial, options,
                             Fixed_domain(options.format));
    }
    return simulate_impl(library, instance, initial, options, Double_domain{});
}

Streaming_sim_result simulate_streaming_cycles(
    Cone_library& library, const Streaming_config& config, int frame_width,
    int frame_height, const Streaming_sim_options& options) {
    check_internal(config.depth >= 1 && config.vector_width >= 1 &&
                       config.pe_count >= 1 && config.channels >= 1,
                   "malformed streaming config");
    check_internal(frame_width >= 1 && frame_height >= 1 &&
                       options.iterations >= 1 && options.elems_per_cycle > 0.0,
                   "malformed streaming sim options");

    // The PE datapath is the fused depth-`depth` cone over one output column;
    // its levelized depth is the pipeline fill the walk charges per band.
    const Cone_stats& stats = library.stats(1, config.depth);
    const Footprint footprint = library.step().footprint();
    const int halo_up = footprint.up * config.depth;
    const int halo_down = footprint.down * config.depth;

    Streaming_sim_result result;
    result.passes = ceil_div(options.iterations, config.depth);
    const int nominal_band = ceil_div(frame_height, config.pe_count);

    for (int pass = 0; pass < result.passes; ++pass) {
        long long slowest_band = 0;
        long long elements_read = 0;
        for (int band = 0; band < config.pe_count; ++band) {
            const int row_start = band * nominal_band;
            const int row_end = std::min(frame_height, row_start + nominal_band);
            if (row_start >= row_end) continue;
            // Halos clamp exactly at the frame boundary — edge bands stream
            // fewer extra rows than interior ones.
            const int halo_above = std::min(row_start, halo_up);
            const int halo_below = std::min(frame_height - row_end, halo_down);
            const int streamed_rows = (row_end - row_start) + halo_above + halo_below;
            // Each row enters the PE in vector groups, one group per cycle;
            // the band drains after the pipeline fill.
            long long band_cycles = 0;
            for (int row = 0; row < streamed_rows; ++row) {
                band_cycles += ceil_div(frame_width, config.vector_width);
            }
            band_cycles += stats.pipeline_depth;
            slowest_band = std::max(slowest_band, band_cycles);
            elements_read += static_cast<long long>(streamed_rows) * frame_width *
                             options.fields_in;
            result.stats.cone_executions +=
                static_cast<long long>(streamed_rows) *
                ceil_div(frame_width, config.vector_width);
        }
        const long long elements_written =
            static_cast<long long>(frame_height) * frame_width * options.fields_out;
        const long long transfer_cycles = static_cast<long long>(
            std::ceil(static_cast<double>(elements_read + elements_written) /
                      options.elems_per_cycle));
        result.compute_cycles += slowest_band;
        result.memory_cycles += transfer_cycles;
        result.total_cycles += std::max(slowest_band, transfer_cycles);
        result.stats.offchip_elements_read += elements_read;
        result.stats.offchip_elements_written += elements_written;
        result.stats.output_windows += 1;
    }
    result.stats.operations_executed =
        result.stats.cone_executions *
        static_cast<long long>(stats.register_count) * config.vector_width;
    return result;
}

}  // namespace islhls
