#include "sim/arch_sim.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "ir/compiled.hpp"
#include "sim/fixed_exec.hpp"
#include "support/error.hpp"

namespace islhls {

namespace {

// A dense per-field buffer over an absolute-coordinate rectangle.
class Region_buffer {
public:
    Region_buffer(const Window& window, int fields)
        : window_(window),
          data_(static_cast<std::size_t>(fields) * window.element_count(), 0.0) {}

    const Window& window() const { return window_; }

    bool contains(int x, int y) const {
        return x >= window_.x0 && x < window_.x0 + window_.width && y >= window_.y0 &&
               y < window_.y0 + window_.height;
    }

    double get(int field, int x, int y) const {
        return data_[index(field, x, y)];
    }
    void set(int field, int x, int y, double v) { data_[index(field, x, y)] = v; }

private:
    std::size_t index(int field, int x, int y) const {
        // Static message: building a formatted string here would run on
        // every on-chip element access, the simulator's innermost loop.
        check_internal(contains(x, y), "Region_buffer access outside its window");
        return (static_cast<std::size_t>(field) * window_.height +
                static_cast<std::size_t>(y - window_.y0)) *
                   window_.width +
               static_cast<std::size_t>(x - window_.x0);
    }

    Window window_;
    std::vector<double> data_;
};

// Flush tile origins covering `extent` with stride `w`: 0, w, 2w, ...,
// with the last tile pulled back flush to the end (origins may overlap).
std::vector<int> flush_origins(int extent, int w) {
    std::vector<int> origins;
    if (extent <= w) {
        origins.push_back(0);
        return origins;
    }
    for (int o = 0;; o += w) {
        if (o + w >= extent) {
            origins.push_back(extent - w);
            break;
        }
        origins.push_back(o);
    }
    return origins;
}

}  // namespace

Arch_sim_result simulate_architecture(Cone_library& library,
                                      const Arch_instance& instance,
                                      const Frame_set& initial,
                                      const Arch_sim_options& options) {
    const Stencil_step& step = library.step();
    const Footprint fp = step.footprint();
    const int w = instance.window;
    check_internal(w >= 1 && !instance.level_depths.empty(),
                   "simulate_architecture: malformed instance");

    const int frame_w = initial.width();
    const int frame_h = initial.height();
    const int fields_total = step.pool().field_count();
    const int state_count = step.state_field_count();

    // Per-field index mapping: buffer slot == pool field index.
    std::vector<const Frame*> field_frames;
    for (int f = 0; f < fields_total; ++f) {
        field_frames.push_back(&initial.field(step.pool().field_name(f)));
    }

    Arch_sim_result result;
    result.final_state = Frame_set(frame_w, frame_h);
    std::vector<Frame*> out_frames;
    for (const std::string& name : step.state_fields()) {
        out_frames.push_back(&result.final_state.add_field(name));
    }

    const std::size_t level_count = instance.level_depths.size();
    // Suffix halo after each level k (0-based level index; suffix excludes
    // the level itself for its OUTPUT coverage).
    std::vector<Footprint> suffix(level_count + 1);
    suffix[level_count] = Footprint{};
    for (std::size_t k = level_count; k-- > 0;) {
        suffix[k] = compose(repeat(fp, instance.level_depths[k]), suffix[k + 1]);
    }

    // Per-level cone execution state, resolved once: the memoized cone, its
    // compiled tape and a dedicated slot buffer (constants rebound per
    // point by eval_point). Fixed mode carries the integer-lowered tape and
    // raw-word buffers instead of the double slots. Cone executions below
    // are then allocation-free in both modes.
    struct Level_exec {
        const Cone* cone = nullptr;
        const Compiled_program* tape = nullptr;
        std::vector<double> slots;
        std::vector<double> inputs;
        std::unique_ptr<Fixed_exec> fixed;
        Fixed_exec::Scratch fixed_scratch;
        std::vector<std::int64_t> fixed_inputs;
        std::vector<std::int64_t> fixed_outputs;
    };
    std::vector<Level_exec> level_exec(level_count);
    // One quantizer serves every level (they share the instance format).
    std::optional<Raw_quantizer> quantize;
    if (options.fixed_point) quantize.emplace(options.format);
    for (std::size_t k = 0; k < level_count; ++k) {
        Level_exec& le = level_exec[k];
        le.cone = &library.cone(w, instance.level_depths[k]);
        le.tape = &le.cone->program().compiled();
        if (options.fixed_point) {
            le.fixed = std::make_unique<Fixed_exec>(le.cone->program(), options.format);
            le.fixed_inputs.resize(le.tape->inputs().size());
            le.fixed_outputs.resize(le.tape->output_slots().size());
        } else {
            le.slots.resize(static_cast<std::size_t>(le.tape->slot_count()));
            le.inputs.resize(le.tape->inputs().size());
        }
    }
    // Output coverage of level k (1-based like the architecture module):
    // the output window grown by suffix[k].

    const std::vector<int> tx_origins = flush_origins(frame_w, w);
    const std::vector<int> ty_origins = flush_origins(frame_h, w);

    for (int ty : ty_origins) {
        for (int tx : tx_origins) {
            result.stats.output_windows += 1;

            // --- load the initial coverage from "off-chip" -----------------------
            const Footprint total_halo = suffix[0];
            Window input_region{tx - total_halo.left, ty - total_halo.up,
                                w + total_halo.width_growth(),
                                w + total_halo.height_growth()};
            Region_buffer current(input_region, fields_total);
            for (int f = 0; f < fields_total; ++f) {
                for (int y = input_region.y0; y < input_region.y0 + input_region.height;
                     ++y) {
                    for (int x = input_region.x0;
                         x < input_region.x0 + input_region.width; ++x) {
                        current.set(f, x, y,
                                    field_frames[static_cast<std::size_t>(f)]->sample(
                                        x, y, options.boundary));
                    }
                }
            }
            result.stats.offchip_elements_read +=
                input_region.element_count() * fields_total;

            // --- run the levels deep-first ---------------------------------------
            for (std::size_t k = 0; k < level_count; ++k) {
                Level_exec& le = level_exec[k];
                const Cone& cone = *le.cone;
                const Register_program& program = cone.program();
                const Footprint out_halo = suffix[k + 1];
                Window out_region{tx - out_halo.left, ty - out_halo.up,
                                  w + out_halo.width_growth(),
                                  w + out_halo.height_growth()};
                Region_buffer next(out_region, fields_total);

                // Constant fields survive level transitions: copy the slice
                // the next levels may still read.
                for (int f = 0; f < fields_total; ++f) {
                    if (step.is_state_index(f)) continue;
                    for (int y = out_region.y0; y < out_region.y0 + out_region.height;
                         ++y) {
                        for (int x = out_region.x0;
                             x < out_region.x0 + out_region.width; ++x) {
                            next.set(f, x, y, current.get(f, x, y));
                        }
                    }
                }

                const std::vector<int> sub_x = flush_origins(out_region.width, w);
                const std::vector<int> sub_y = flush_origins(out_region.height, w);
                const std::vector<Tape_input>& ports = le.tape->inputs();
                const std::vector<std::int32_t>& out_slots = le.tape->output_slots();
                for (int oy : sub_y) {
                    for (int ox : sub_x) {
                        const int origin_x = out_region.x0 + ox;
                        const int origin_y = out_region.y0 + oy;
                        result.stats.onchip_elements_read +=
                            static_cast<long long>(ports.size());
                        result.stats.cone_executions += 1;
                        result.stats.operations_executed += program.register_count();

                        if (options.fixed_point) {
                            // Bit-accurate execution over the integer-lowered
                            // tape: quantize the gathered inputs exactly like
                            // run_fixed did, evaluate allocation-free, and
                            // hand the raw outputs back as values (from_raw
                            // round-trips exactly through the next level's
                            // to_raw).
                            for (std::size_t i = 0; i < ports.size(); ++i) {
                                le.fixed_inputs[i] =
                                    (*quantize)(current.get(ports[i].field,
                                                            origin_x + ports[i].dx,
                                                            origin_y + ports[i].dy));
                            }
                            le.fixed->eval_into(le.fixed_inputs.data(),
                                                le.fixed_outputs.data(),
                                                le.fixed_scratch);
                        } else {
                            for (std::size_t i = 0; i < ports.size(); ++i) {
                                le.inputs[i] = current.get(ports[i].field,
                                                           origin_x + ports[i].dx,
                                                           origin_y + ports[i].dy);
                            }
                            le.tape->eval_point(le.inputs.data(), le.slots.data());
                        }
                        for (int s = 0; s < state_count; ++s) {
                            const int field =
                                step.pool().find_field(step.state_fields()[static_cast<std::size_t>(s)]);
                            for (int yy = 0; yy < w; ++yy) {
                                for (int xx = 0; xx < w; ++xx) {
                                    const auto o = static_cast<std::size_t>(
                                        cone.output_index(s, xx, yy));
                                    next.set(field, origin_x + xx, origin_y + yy,
                                             options.fixed_point
                                                 ? from_raw(le.fixed_outputs[o],
                                                            options.format)
                                                 : le.slots[static_cast<std::size_t>(
                                                       out_slots[o])]);
                                }
                            }
                        }
                    }
                }
                current = std::move(next);
            }

            // --- write the output window ---------------------------------------------
            for (int s = 0; s < state_count; ++s) {
                const int field = step.pool().find_field(
                    step.state_fields()[static_cast<std::size_t>(s)]);
                for (int yy = 0; yy < w && ty + yy < frame_h; ++yy) {
                    for (int xx = 0; xx < w && tx + xx < frame_w; ++xx) {
                        out_frames[static_cast<std::size_t>(s)]->at(tx + xx, ty + yy) =
                            current.get(field, tx + xx, ty + yy);
                    }
                }
            }
            result.stats.offchip_elements_written +=
                static_cast<long long>(std::min(w, frame_w - tx)) *
                std::min(w, frame_h - ty) * state_count;
        }
    }
    return result;
}

}  // namespace islhls
