// Vectorized, allocation-free execution engine for stencil steps.
//
// The legacy golden path interpreted the step program per pixel: for every
// element it looked fields up by name, resolved every read through the
// boundary policy, and heap-allocated a full instruction trace (see
// run_ir_reference in sim/golden.hpp). This engine executes the
// scanline-compiled tape (ir/compiled.hpp) structure-of-arrays over whole
// frame rows instead:
//
//   - field base pointers and strides are resolved once per step, not once
//     per pixel;
//   - the interior of each row (where no read crosses the frame edge) runs
//     with unclamped pointer arithmetic — each tape operation is one tight,
//     auto-vectorizable loop over the row;
//   - the border columns fall back to a scalar pass that resolves reads with
//     the Boundary policy, bit-identical to the reference interpreter;
//   - per-thread scratch rows are reused across rows and iterations (no
//     allocation inside the pixel loop), and iteration double-buffers two
//     frame sets instead of copy-constructing one per timestep.
//
// Temporal tiling (Exec_options::tile_iterations > 1) additionally fuses T
// iterations into one sweep over row bands, a la combined spatial/temporal
// blocking on FPGAs (Zohouri et al.): each band carries its rows through all
// T fused steps in a pair of small band buffers before moving on, so a large
// frame crosses memory once per T iterations instead of once per iteration.
// Band edges grow trapezoidally — level k of a band recomputes the halo rows
// level k+1 needs, sized from the per-field read extents the compiled tape
// records — and every row at every level is computed by exactly the same
// row code as the untiled sweep (interior fast path + scalar border pass),
// so the result is byte-identical to the double-buffered path for every
// boundary mode, tile depth, band height and thread count. Under
// Boundary::periodic the interim levels of a band keep UNCLAMPED row
// intervals: a band touching a frame edge carries a wrapped halo — its
// buffer rows extend past the frame edge and hold the opposite edge's
// content (on a torus, row r and row r mod h are the same row at every
// fused level), reads between interim levels index the band buffer
// directly, and only level-1 reads resolve against the frame. Band buffers
// therefore stay band-sized at every boundary mode instead of widening to
// the whole frame at the edges, and auto tiling applies to toroidal runs
// too.
//
// Within a band (or any row sweep) the interior columns can additionally be
// processed in column panels (Exec_options::panel_cols): each panel runs
// the whole tape before moving right, so per-operation traffic stays in L1
// on very wide frames. Panels only split the x loop — each element sees the
// identical arithmetic — so every panel width is byte-identical. The fixed
// domain goes one step further and always executes its interior in
// kTapeLane-wide lane blocks through the shared per-ISA lane kernels
// (sim/tape_lanes.hpp), the same kernels the format-search batch executor
// uses.
//
// The auto-tiling heuristics (tile depth, band height, panel width) are
// sized from the probed cache topology (support/cache_info.hpp);
// Exec_options::budgets pins them for deterministic cross-host behavior.
// Budgets only steer the schedule, never the values: every budget choice is
// byte-identical.
//
// Work (row blocks untiled, whole bands tiled) is fanned across a
// support/parallel.hpp Thread_pool; every row is computed identically
// regardless of the schedule, so results are byte-identical to a serial run
// at any thread count (the same determinism contract the DSE engine holds).
//
// The engine runs in two value domains over the SAME row machinery (one
// templated implementation, so the paths cannot diverge structurally):
//
//   - double (run): the tape's IEEE semantics, the classic golden engine;
//   - fixed point (run_fixed / Exec_options::fixed_format): the program is
//     lowered once per run into a Fixed_tape (ir/compiled.hpp) and executed
//     over raw int64 Qm.f row buffers — the initial frames are quantized
//     once, every iteration reads and writes raw words (no per-level
//     re-quantization), the interior fast path runs one integer loop per
//     tape op and the border pass goes through Fixed_tape::eval_point. The
//     raw words are memcmp-identical to a per-pixel run_fixed_raw sweep for
//     every kernel, boundary, format, thread count and tile depth.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "grid/frame_set.hpp"
#include "ir/compiled.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

class Thread_pool;

// Cache budgets steering the auto-tiling heuristics. Zero fields resolve
// from the probed cache topology (support/cache_info.hpp): tile_bytes from
// the last-level cache, band_bytes from a quarter of it, panel_bytes from
// half the L1 data cache. When probing fails the fallbacks reproduce the
// engine's historical fixed budgets (32 MiB / 8 MiB / 16 KiB). Budgets only
// pick the schedule — results are byte-identical at every setting — so
// tests pin them to make auto decisions deterministic across hosts.
struct Exec_budgets {
    std::size_t tile_bytes = 0;   // working set above which auto mode tiles
    std::size_t band_bytes = 0;   // target working set of one band
    std::size_t panel_bytes = 0;  // target per-row op working set of a panel
};

// Execution knobs. The defaults reproduce the classic engine behavior
// (serial, one full-frame sweep per iteration). The positional constructor
// keeps the pre-fixed_format brace call sites (threads, depth, band_rows
// [, pool]) valid without partial-aggregate warnings.
struct Exec_options {
    Exec_options() = default;
    Exec_options(int threads_, int tile_iterations_, int band_rows_ = 0,
                 Thread_pool* pool_ = nullptr)
        : threads(threads_),
          tile_iterations(tile_iterations_),
          band_rows(band_rows_),
          pool(pool_) {}

    // Total parallelism, following resolve_thread_count (0 = all hardware
    // threads). Any thread count produces byte-identical frames.
    int threads = 1;
    // Fused iterations per band sweep: 1 = untiled double-buffered sweeps,
    // n > 1 = carry n iterations through each row band, 0 = auto (tile only
    // when the double-buffered working set overflows the tile budget —
    // Boundary::periodic included, edge bands carry wrapped halos). Every
    // depth produces byte-identical frames.
    int tile_iterations = 1;
    // Output rows per band when tiling; 0 = auto (sized so a band's working
    // set stays cache-resident and the halo recompute overhead stays small).
    int band_rows = 0;
    // Interior column-panel width: 0 = auto (panel banded sweeps whose
    // per-row op working set spills the panel budget; untiled sweeps stay
    // unpaneled), n > 0 = force n-column panels everywhere. Every width
    // produces byte-identical frames.
    int panel_cols = 0;
    // Cache budgets for the auto heuristics above; zero fields resolve from
    // the probed topology.
    Exec_budgets budgets;
    // External thread pool to fan row blocks / bands across. When set, the
    // engine reuses it instead of constructing a pool per run() call and
    // the pool's thread count supersedes `threads`; callers batching many
    // runs (DSE validation sweeps, golden checks) share one fan-out this
    // way. The pool must not be running another job concurrently. Results
    // stay byte-identical to a serial run either way.
    Thread_pool* pool = nullptr;
    // When set, run() executes the integer row path under this Qm.f format
    // and returns the from_raw-decoded frames (run_fixed exposes the raw
    // words). All other knobs apply unchanged.
    std::optional<Fixed_format> fixed_format;
};

// Result of a whole-frame fixed-point run: the raw two's-complement Qm.f
// words of every field after the final iteration, state fields first
// (declaration order) then const fields — the same canonical order as the
// double engine's Frame_set. The raw words are the ground truth the
// architecture-simulator validation compares against; to_frame_set() decodes
// them for callers that want values.
struct Fixed_frame_result {
    int width = 0;
    int height = 0;
    Fixed_format format;
    std::vector<std::string> names;                   // canonical field order
    std::vector<std::vector<std::int64_t>> raw;       // per field, row-major
    Frame_set to_frame_set() const;
};

class Exec_engine {
public:
    // Builds (and compiles) the step's register program once. `step` must
    // outlive the engine.
    explicit Exec_engine(const Stencil_step& step);

    const Stencil_step& step() const { return *step_; }
    const Register_program& program() const { return program_; }
    const Compiled_program& compiled() const { return program_.compiled(); }

    // Per-iteration halo growth of the advancing fields (rows above/below a
    // band that each fused step consumes), derived from the compiled
    // per-field extents.
    int state_halo_up() const { return state_up_; }
    int state_halo_down() const { return state_down_; }

    // Planning introspection for tests: the tallest interim band buffer (in
    // rows) the tiled path would allocate for this geometry. Under
    // Boundary::periodic this stays band-sized (band_rows plus the
    // trapezoid's halo growth) instead of widening toward `height` at the
    // frame edges.
    int planned_interim_rows(int height, int band_rows, int depth, Boundary b) const;

    // Runs `iterations` steps with per-iteration boundary resolution.
    // `initial` must contain every field of the step; the result holds the
    // state fields first (declaration order) and then the const fields,
    // matching the legacy golden runner. With iterations <= 0 the initial
    // set is returned unchanged.
    Frame_set run(const Frame_set& initial, int iterations, Boundary b,
                  const Exec_options& options) const;
    Frame_set run(const Frame_set& initial, int iterations, Boundary b,
                  int threads = 1) const {
        return run(initial, iterations, b, Exec_options{threads, 1, 0});
    }

    // Whole-frame fixed-point run: quantizes `initial` once (Raw_quantizer
    // semantics, like every production caller), lowers the program into a
    // Fixed_tape for `format`, and carries raw int64 words through all
    // iterations — byte-identical to a per-pixel run_fixed_raw sweep at any
    // thread count and tile depth. With iterations <= 0 the result holds the
    // quantized initial frames. `options.fixed_format` is ignored here (the
    // explicit `format` parameter wins).
    Fixed_frame_result run_fixed(const Frame_set& initial, int iterations, Boundary b,
                                 const Fixed_format& format,
                                 const Exec_options& options = {}) const;

private:
    const Stencil_step* step_;
    Register_program program_;
    // Scratch-row index per tape slot (-1 for input slots, which read the
    // frames directly); operation and constant slots each own one row.
    std::vector<int> scratch_index_;
    int scratch_rows_ = 0;
    // Interior span margins: columns [left, width - right) read in-range for
    // every input offset.
    int left_margin_ = 0;
    int right_margin_ = 0;
    // Per-iteration band halo growth (state-field reads only; const fields
    // are read from the full frame at every level).
    int state_up_ = 0;
    int state_down_ = 0;
};

}  // namespace islhls
