// Vectorized, allocation-free execution engine for stencil steps.
//
// The legacy golden path interpreted the step program per pixel: for every
// element it looked fields up by name, resolved every read through the
// boundary policy, and heap-allocated a full instruction trace (see
// run_ir_reference in sim/golden.hpp). This engine executes the
// scanline-compiled tape (ir/compiled.hpp) structure-of-arrays over whole
// frame rows instead:
//
//   - field base pointers and strides are resolved once per step, not once
//     per pixel;
//   - the interior of each row (where no read crosses the frame edge) runs
//     with unclamped pointer arithmetic — each tape operation is one tight,
//     auto-vectorizable loop over the row;
//   - the border columns fall back to a scalar pass that resolves reads with
//     the Boundary policy, bit-identical to the reference interpreter;
//   - per-thread scratch rows are reused across rows and iterations (no
//     allocation inside the pixel loop), and iteration double-buffers two
//     frame sets instead of copy-constructing one per timestep.
//
// Row blocks are fanned across a support/parallel.hpp Thread_pool; every row
// is computed identically regardless of the schedule, so results are
// byte-identical to a serial run at any thread count (the same determinism
// contract the DSE engine holds).
#pragma once

#include "grid/frame_set.hpp"
#include "ir/compiled.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

class Exec_engine {
public:
    // Builds (and compiles) the step's register program once. `step` must
    // outlive the engine.
    explicit Exec_engine(const Stencil_step& step);

    const Stencil_step& step() const { return *step_; }
    const Register_program& program() const { return program_; }
    const Compiled_program& compiled() const { return program_.compiled(); }

    // Runs `iterations` steps with per-iteration boundary resolution.
    // `initial` must contain every field of the step; the result holds the
    // state fields first (declaration order) and then the const fields,
    // matching the legacy golden runner. With iterations <= 0 the initial
    // set is returned unchanged. `threads` follows resolve_thread_count
    // (0 = all hardware threads); any thread count produces byte-identical
    // frames.
    Frame_set run(const Frame_set& initial, int iterations, Boundary b,
                  int threads = 1) const;

private:
    const Stencil_step* step_;
    Register_program program_;
    // Scratch-row index per tape slot (-1 for input slots, which read the
    // frames directly); operation and constant slots each own one row.
    std::vector<int> scratch_index_;
    int scratch_rows_ = 0;
    // Interior span margins: columns [left, width - right) read in-range for
    // every input offset.
    int left_margin_ = 0;
    int right_margin_ = 0;
};

}  // namespace islhls
