#include "sim/tape_lanes.hpp"

#include <cmath>

#include "support/error.hpp"

// Multi-ISA lane bodies: on x86-64 under gcc/clang the bodies are compiled
// three times (baseline, AVX2, AVX-512) via function target attributes and
// resolved once per process with __builtin_cpu_supports. This is plain
// function-pointer dispatch — no ifunc, so it stays friendly to sanitizers
// and static initialization order. Everywhere else the baseline body is the
// only clone and the resolver is a constant.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ISLHLS_LANE_MULTIARCH 1
#endif

namespace islhls {

namespace lanes_base {
#define ISLHLS_LANE_ATTR
#include "sim/tape_lanes_body.inc"
#undef ISLHLS_LANE_ATTR
}  // namespace lanes_base

#if defined(ISLHLS_LANE_MULTIARCH)
namespace lanes_avx2 {
#define ISLHLS_LANE_ATTR __attribute__((target("avx2")))
#include "sim/tape_lanes_body.inc"
#undef ISLHLS_LANE_ATTR
}  // namespace lanes_avx2

namespace lanes_avx512 {
// DQ provides the vector 64-bit multiply (vpmullq), VL the 128/256-bit
// forms of the EVEX ops the tail loops want.
#define ISLHLS_LANE_ATTR \
    __attribute__((target("avx512f,avx512dq,avx512vl,avx512bw")))
#include "sim/tape_lanes_body.inc"
#undef ISLHLS_LANE_ATTR
}  // namespace lanes_avx512
#endif  // ISLHLS_LANE_MULTIARCH

namespace {

struct Lane_dispatch {
    Fixed_lane_fn fixed;
    Double_lane_fn dbl;
    const char* isa;
};

Lane_dispatch resolve_lane_dispatch() {
#if defined(ISLHLS_LANE_MULTIARCH)
    if (__builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512bw")) {
        return {&lanes_avx512::fixed_op_lanes, &lanes_avx512::double_op_lanes,
                "avx512"};
    }
    if (__builtin_cpu_supports("avx2")) {
        return {&lanes_avx2::fixed_op_lanes, &lanes_avx2::double_op_lanes, "avx2"};
    }
#endif
    return {&lanes_base::fixed_op_lanes, &lanes_base::double_op_lanes, "default"};
}

const Lane_dispatch& lane_dispatch() {
    // Magic statics: resolved exactly once, thread-safe.
    static const Lane_dispatch dispatch = resolve_lane_dispatch();
    return dispatch;
}

}  // namespace

Fixed_lane_fn fixed_lane_kernel() { return lane_dispatch().fixed; }
Double_lane_fn double_lane_kernel() { return lane_dispatch().dbl; }
const char* tape_lane_isa() { return lane_dispatch().isa; }

}  // namespace islhls
