#include "sim/golden.hpp"

#include "ir/program.hpp"
#include "sim/exec_engine.hpp"
#include "sim/fixed_exec.hpp"
#include "support/error.hpp"

namespace islhls {

Frame_set run_step_ir_reference(const Stencil_step& step, const Frame_set& current,
                                Boundary b) {
    const Register_program program = build_program(step.pool(), step.updates());
    Frame_set next(current.width(), current.height());
    std::vector<Frame*> out_fields;
    for (const std::string& name : step.state_fields()) {
        out_fields.push_back(&next.add_field(name));
    }
    std::vector<double> inputs(static_cast<std::size_t>(program.input_count()));
    for (int y = 0; y < current.height(); ++y) {
        for (int x = 0; x < current.width(); ++x) {
            const auto& ports = program.input_ports();
            for (std::size_t i = 0; i < ports.size(); ++i) {
                const Frame& f = current.field(step.pool().field_name(ports[i].field));
                inputs[i] = f.sample(x + ports[i].dx, y + ports[i].dy, b);
            }
            // Deliberately the interpreter path (not the compiled tape), so
            // this stays an independent reference; the per-pixel trace
            // allocation is the legacy behavior being benchmarked against.
            const std::vector<double> regs = program.run_trace(inputs);
            for (std::size_t s = 0; s < out_fields.size(); ++s) {
                out_fields[s]->at(x, y) =
                    regs[static_cast<std::size_t>(program.outputs()[s])];
            }
        }
    }
    // Constant fields pass through unchanged.
    for (const std::string& name : step.const_fields()) {
        next.add_field(name, current.field(name));
    }
    return next;
}

Frame_set run_ir_reference(const Stencil_step& step, const Frame_set& initial,
                           int iterations, Boundary b) {
    Frame_set current = initial;
    for (int i = 0; i < iterations; ++i) {
        current = run_step_ir_reference(step, current, b);
    }
    return current;
}

Frame_set run_step_ir(const Stencil_step& step, const Frame_set& current, Boundary b) {
    return Exec_engine(step).run(current, 1, b);
}

Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, const Exec_options& options) {
    if (iterations <= 0) return initial;
    return Exec_engine(step).run(initial, iterations, b, options);
}

Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, int threads) {
    // tile_iterations 0 = auto: callers of the legacy signature get temporal
    // tiling whenever the frame outgrows the cache budget (results are
    // byte-identical either way).
    return run_ir(step, initial, iterations, b, Exec_options{threads, 0, 0});
}

Fixed_frame_result run_ir(const Stencil_step& step, const Frame_set& initial,
                          int iterations, Boundary b, const Fixed_format& format,
                          const Exec_options& options) {
    return Exec_engine(step).run_fixed(initial, iterations, b, format, options);
}

Fixed_frame_result run_ir_fixed_reference(const Stencil_step& step,
                                          const Frame_set& initial, int iterations,
                                          Boundary b, const Fixed_format& format) {
    const Register_program program = build_program(step.pool(), step.updates());
    const int w = initial.width();
    const int h = initial.height();
    const Raw_quantizer quantize(format);

    Fixed_frame_result frames;
    frames.width = w;
    frames.height = h;
    frames.format = format;
    // Canonical field order (state first), plus the pool-field -> raw-buffer
    // mapping the per-pixel gathers resolve through.
    std::vector<int> field_index(static_cast<std::size_t>(step.pool().field_count()),
                                 -1);
    auto add = [&](const std::string& name) {
        const Frame& f = initial.field(name);
        std::vector<std::int64_t> raw(f.element_count());
        for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = quantize(f.data()[i]);
        field_index[static_cast<std::size_t>(step.pool().find_field(name))] =
            static_cast<int>(frames.raw.size());
        frames.names.push_back(name);
        frames.raw.push_back(std::move(raw));
    };
    for (const std::string& name : step.state_fields()) add(name);
    for (const std::string& name : step.const_fields()) add(name);

    const std::size_t states = step.state_fields().size();
    const auto& ports = program.input_ports();
    std::vector<std::int64_t> inputs(ports.size());
    for (int it = 0; it < iterations; ++it) {
        std::vector<std::vector<std::int64_t>> next(states);
        for (std::size_t s = 0; s < states; ++s) {
            next[s].assign(static_cast<std::size_t>(w) * h, 0);
        }
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                for (std::size_t i = 0; i < ports.size(); ++i) {
                    const int rx = resolve_coordinate(x + ports[i].dx, w, b);
                    const int ry = resolve_coordinate(y + ports[i].dy, h, b);
                    const int fi =
                        field_index[static_cast<std::size_t>(ports[i].field)];
                    inputs[i] = (rx < 0 || ry < 0)
                                    ? 0
                                    : frames.raw[static_cast<std::size_t>(fi)]
                                               [static_cast<std::size_t>(ry) * w + rx];
                }
                const std::vector<std::int64_t> out =
                    run_fixed_raw(program, inputs, format);
                for (std::size_t s = 0; s < states; ++s) {
                    next[s][static_cast<std::size_t>(y) * w + x] = out[s];
                }
            }
        }
        for (std::size_t s = 0; s < states; ++s) frames.raw[s] = std::move(next[s]);
    }
    return frames;
}

Frame pad_frame(const Frame& frame, int left, int right, int up, int down, Boundary b) {
    Frame padded(frame.width() + left + right, frame.height() + up + down);
    for (int y = 0; y < padded.height(); ++y) {
        for (int x = 0; x < padded.width(); ++x) {
            padded.at(x, y) = frame.sample(x - left, y - up, b);
        }
    }
    return padded;
}

Frame crop_frame(const Frame& frame, int left, int right, int up, int down) {
    check_internal(frame.width() > left + right && frame.height() > up + down,
                   "crop_frame margins exceed frame");
    Frame cropped(frame.width() - left - right, frame.height() - up - down);
    for (int y = 0; y < cropped.height(); ++y) {
        for (int x = 0; x < cropped.width(); ++x) {
            cropped.at(x, y) = frame.at(x + left, y + up);
        }
    }
    return cropped;
}

namespace {

// Pads every field of the set by the N-iteration halo. Positional iteration
// plus interned-id insertion: no per-field name scan.
Frame_set pad_set(const Frame_set& fs, const Footprint& halo, Boundary b) {
    Frame_set padded(fs.width() + halo.width_growth(), fs.height() + halo.height_growth());
    for (std::size_t i = 0; i < fs.field_count(); ++i) {
        padded.add_field(fs.id_at(i), pad_frame(fs.frame_at(i), halo.left, halo.right,
                                                halo.up, halo.down, b));
    }
    return padded;
}

Frame_set crop_set(const Frame_set& fs, const Footprint& halo,
                   const std::vector<std::string>& keep) {
    Frame_set cropped(fs.width() - halo.width_growth(),
                      fs.height() - halo.height_growth());
    for (const std::string& name : keep) {
        const Field_id id = intern_field(name);
        cropped.add_field(id, crop_frame(fs.field(id), halo.left, halo.right,
                                         halo.up, halo.down));
    }
    return cropped;
}

}  // namespace

Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b, const Exec_options& options) {
    const Footprint halo = repeat(step.footprint(), iterations);
    Frame_set padded = pad_set(initial, halo, b);
    padded = run_ir(step, padded, iterations, b, options);
    std::vector<std::string> keep = step.state_fields();
    for (const std::string& c : step.const_fields()) keep.push_back(c);
    return crop_set(padded, halo, keep);
}

Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b) {
    // Auto tiling, serial — matching the legacy run_ir signature.
    return run_ghost_ir(step, initial, iterations, b, Exec_options{1, 0, 0});
}

Fixed_frame_result run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                                int iterations, Boundary b, const Fixed_format& format,
                                const Exec_options& options) {
    const Footprint halo = repeat(step.footprint(), iterations);
    const Frame_set padded = pad_set(initial, halo, b);
    Fixed_frame_result run =
        Exec_engine(step).run_fixed(padded, iterations, b, format, options);
    // Crop the apron off the raw words (the raw-domain twin of crop_set).
    Fixed_frame_result cropped;
    cropped.width = run.width - halo.width_growth();
    cropped.height = run.height - halo.height_growth();
    cropped.format = run.format;
    cropped.names = run.names;
    cropped.raw.reserve(run.raw.size());
    for (const std::vector<std::int64_t>& field : run.raw) {
        std::vector<std::int64_t> inner(static_cast<std::size_t>(cropped.width) *
                                        static_cast<std::size_t>(cropped.height));
        for (int y = 0; y < cropped.height; ++y) {
            const std::int64_t* src =
                field.data() +
                static_cast<std::size_t>(y + halo.up) * run.width + halo.left;
            std::copy(src, src + cropped.width,
                      inner.begin() + static_cast<std::size_t>(y) * cropped.width);
        }
        cropped.raw.push_back(std::move(inner));
    }
    return cropped;
}

Frame_set run_ghost_native(const Kernel_def& kernel, const Frame_set& initial,
                           int iterations) {
    // The native step's footprint is not directly known; conservatively use
    // reach 2 per iteration and direction (all built-in kernels are within).
    const Footprint halo{2 * iterations, 2 * iterations, 2 * iterations,
                         2 * iterations};
    Frame_set padded = pad_set(initial, halo, kernel.boundary);
    for (int i = 0; i < iterations; ++i) {
        padded = kernel.native_step(padded, kernel.boundary);
    }
    return crop_set(padded, halo, initial.names());
}

}  // namespace islhls
