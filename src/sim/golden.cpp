#include "sim/golden.hpp"

#include "ir/program.hpp"
#include "sim/exec_engine.hpp"
#include "support/error.hpp"

namespace islhls {

Frame_set run_step_ir_reference(const Stencil_step& step, const Frame_set& current,
                                Boundary b) {
    const Register_program program = build_program(step.pool(), step.updates());
    Frame_set next(current.width(), current.height());
    std::vector<Frame*> out_fields;
    for (const std::string& name : step.state_fields()) {
        out_fields.push_back(&next.add_field(name));
    }
    std::vector<double> inputs(static_cast<std::size_t>(program.input_count()));
    for (int y = 0; y < current.height(); ++y) {
        for (int x = 0; x < current.width(); ++x) {
            const auto& ports = program.input_ports();
            for (std::size_t i = 0; i < ports.size(); ++i) {
                const Frame& f = current.field(step.pool().field_name(ports[i].field));
                inputs[i] = f.sample(x + ports[i].dx, y + ports[i].dy, b);
            }
            // Deliberately the interpreter path (not the compiled tape), so
            // this stays an independent reference; the per-pixel trace
            // allocation is the legacy behavior being benchmarked against.
            const std::vector<double> regs = program.run_trace(inputs);
            for (std::size_t s = 0; s < out_fields.size(); ++s) {
                out_fields[s]->at(x, y) =
                    regs[static_cast<std::size_t>(program.outputs()[s])];
            }
        }
    }
    // Constant fields pass through unchanged.
    for (const std::string& name : step.const_fields()) {
        next.add_field(name, current.field(name));
    }
    return next;
}

Frame_set run_ir_reference(const Stencil_step& step, const Frame_set& initial,
                           int iterations, Boundary b) {
    Frame_set current = initial;
    for (int i = 0; i < iterations; ++i) {
        current = run_step_ir_reference(step, current, b);
    }
    return current;
}

Frame_set run_step_ir(const Stencil_step& step, const Frame_set& current, Boundary b) {
    return Exec_engine(step).run(current, 1, b);
}

Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, const Exec_options& options) {
    if (iterations <= 0) return initial;
    return Exec_engine(step).run(initial, iterations, b, options);
}

Frame_set run_ir(const Stencil_step& step, const Frame_set& initial, int iterations,
                 Boundary b, int threads) {
    // tile_iterations 0 = auto: callers of the legacy signature get temporal
    // tiling whenever the frame outgrows the cache budget (results are
    // byte-identical either way).
    return run_ir(step, initial, iterations, b, Exec_options{threads, 0, 0});
}

Frame pad_frame(const Frame& frame, int left, int right, int up, int down, Boundary b) {
    Frame padded(frame.width() + left + right, frame.height() + up + down);
    for (int y = 0; y < padded.height(); ++y) {
        for (int x = 0; x < padded.width(); ++x) {
            padded.at(x, y) = frame.sample(x - left, y - up, b);
        }
    }
    return padded;
}

Frame crop_frame(const Frame& frame, int left, int right, int up, int down) {
    check_internal(frame.width() > left + right && frame.height() > up + down,
                   "crop_frame margins exceed frame");
    Frame cropped(frame.width() - left - right, frame.height() - up - down);
    for (int y = 0; y < cropped.height(); ++y) {
        for (int x = 0; x < cropped.width(); ++x) {
            cropped.at(x, y) = frame.at(x + left, y + up);
        }
    }
    return cropped;
}

namespace {

// Pads every field of the set by the N-iteration halo. Positional iteration
// plus interned-id insertion: no per-field name scan.
Frame_set pad_set(const Frame_set& fs, const Footprint& halo, Boundary b) {
    Frame_set padded(fs.width() + halo.width_growth(), fs.height() + halo.height_growth());
    for (std::size_t i = 0; i < fs.field_count(); ++i) {
        padded.add_field(fs.id_at(i), pad_frame(fs.frame_at(i), halo.left, halo.right,
                                                halo.up, halo.down, b));
    }
    return padded;
}

Frame_set crop_set(const Frame_set& fs, const Footprint& halo,
                   const std::vector<std::string>& keep) {
    Frame_set cropped(fs.width() - halo.width_growth(),
                      fs.height() - halo.height_growth());
    for (const std::string& name : keep) {
        const Field_id id = intern_field(name);
        cropped.add_field(id, crop_frame(fs.field(id), halo.left, halo.right,
                                         halo.up, halo.down));
    }
    return cropped;
}

}  // namespace

Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b, const Exec_options& options) {
    const Footprint halo = repeat(step.footprint(), iterations);
    Frame_set padded = pad_set(initial, halo, b);
    padded = run_ir(step, padded, iterations, b, options);
    std::vector<std::string> keep = step.state_fields();
    for (const std::string& c : step.const_fields()) keep.push_back(c);
    return crop_set(padded, halo, keep);
}

Frame_set run_ghost_ir(const Stencil_step& step, const Frame_set& initial,
                       int iterations, Boundary b) {
    // Auto tiling, serial — matching the legacy run_ir signature.
    return run_ghost_ir(step, initial, iterations, b, Exec_options{1, 0, 0});
}

Frame_set run_ghost_native(const Kernel_def& kernel, const Frame_set& initial,
                           int iterations) {
    // The native step's footprint is not directly known; conservatively use
    // reach 2 per iteration and direction (all built-in kernels are within).
    const Footprint halo{2 * iterations, 2 * iterations, 2 * iterations,
                         2 * iterations};
    Frame_set padded = pad_set(initial, halo, kernel.boundary);
    for (int i = 0; i < iterations; ++i) {
        padded = kernel.native_step(padded, kernel.boundary);
    }
    return crop_set(padded, halo, initial.names());
}

}  // namespace islhls
