// Bit-accurate fixed-point execution of register programs.
//
// Mirrors the generated VHDL operator for operator (wrap-around resize,
// truncating multiply shift, VHDL '/' truncation toward zero, floor integer
// square root), so an expected-output vector computed here is exactly what
// the emitted entity produces — the self-checking testbenches rely on it.
//
// Three execution styles share the same integer semantics (apply_op_fixed
// in ir/compiled.hpp):
//
//   - run_fixed_raw / run_fixed interpret the instruction vector one sample
//     at a time, allocating a fresh register file per call. Kept as the
//     scalar reference the compiled paths are validated against
//     byte-for-byte; not a production path.
//   - Fixed_exec (here) executes the integer-lowered tape (Fixed_tape)
//     structure-of-arrays over sample lanes: many samples advance through
//     each tape operation in one tight loop over a reusable lane buffer, so
//     evaluating thousands of sample windows (fixed-point format search,
//     fixed-mode architecture simulation) performs no per-sample allocation
//     and amortizes the per-operation dispatch across a whole lane block.
//   - Exec_engine::run_fixed (sim/exec_engine.hpp) executes the same tape
//     structure-of-arrays over whole frame ROWS — the frame-scale twin of
//     Fixed_exec, memcmp-identical to a per-pixel run_fixed_raw sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/fixed_point.hpp"
#include "ir/compiled.hpp"
#include "ir/program.hpp"

namespace islhls {

// Runs the program on raw two's-complement words (already in Qm.f).
std::vector<std::int64_t> run_fixed_raw(const Register_program& program,
                                        const std::vector<std::int64_t>& inputs,
                                        const Fixed_format& fmt);

// Convenience: quantizes `inputs`, runs, returns real-valued outputs.
std::vector<double> run_fixed(const Register_program& program,
                              const std::vector<double>& inputs,
                              const Fixed_format& fmt);

// Allocation-free batched executor over the integer-lowered tape. One
// instance binds a program to one Qm.f format; the caller provides a
// Scratch that is reused across any number of batches (and across
// executors of the same program — it is resized on first use).
class Fixed_exec {
public:
    // Samples evaluated per tape pass: each tape operation becomes one loop
    // of kLane integer operations over contiguous lanes, which is the form
    // the compiler auto-vectorizes; a block of this width keeps the whole
    // slot buffer cache-resident for typical cone programs.
    static constexpr int kLane = 64;

    // `program` must outlive the executor.
    Fixed_exec(const Register_program& program, const Fixed_format& format);

    const Register_program& program() const { return *program_; }
    const Fixed_tape& tape() const { return fixed_; }
    const Fixed_format& format() const { return fixed_.format(); }
    int input_count() const { return static_cast<int>(fixed_.tape().inputs().size()); }
    int output_count() const {
        return static_cast<int>(fixed_.tape().output_slots().size());
    }

    // Reusable per-thread scratch: `lanes` holds kLane samples per tape
    // slot, `point` one sample (the scalar path). Both grow on first use and
    // are never shrunk, so a thread evaluating many batches allocates once.
    struct Scratch {
        std::vector<std::int64_t> lanes;
        std::vector<std::int64_t> point;
    };

    // Scalar: evaluates one sample of raw input words into `outputs`
    // (output_count() words). Byte-identical to run_fixed_raw.
    void eval_into(const std::int64_t* inputs, std::int64_t* outputs,
                   Scratch& scratch) const;

    // Batch: evaluates `samples` input vectors, row-major
    // [samples][input_count()] raw words, into row-major
    // [samples][output_count()] raw outputs, kLane samples per tape pass.
    // Byte-identical to run_fixed_raw on every sample.
    void run_raw_batch(const std::int64_t* inputs, std::size_t samples,
                       std::int64_t* outputs, Scratch& scratch) const;

private:
    const Register_program* program_;
    Fixed_tape fixed_;
};

}  // namespace islhls
