// Bit-accurate fixed-point execution of register programs.
//
// Mirrors the generated VHDL operator for operator (wrap-around resize,
// truncating multiply shift, VHDL '/' truncation toward zero, floor integer
// square root), so an expected-output vector computed here is exactly what
// the emitted entity produces — the self-checking testbenches rely on it.
#pragma once

#include <cstdint>
#include <vector>

#include "backend/fixed_point.hpp"
#include "ir/program.hpp"

namespace islhls {

// Runs the program on raw two's-complement words (already in Qm.f).
std::vector<std::int64_t> run_fixed_raw(const Register_program& program,
                                        const std::vector<std::int64_t>& inputs,
                                        const Fixed_format& fmt);

// Convenience: quantizes `inputs`, runs, returns real-valued outputs.
std::vector<double> run_fixed(const Register_program& program,
                              const std::vector<double>& inputs,
                              const Fixed_format& fmt);

// Wraps `v` into the two's-complement range of `bits` (VHDL resize semantics).
std::int64_t wrap_to_bits(std::int64_t v, int bits);

// Floor integer square root of a non-negative value.
std::int64_t isqrt_floor(std::int64_t v);

}  // namespace islhls
