// Explicit SIMD lane kernels for the compiled tape.
//
// Every batched executor in the simulator family advances kTapeLane samples
// through one tape operation per call: the format-search batch executor
// (sim/fixed_exec.hpp), the lane-blocked fixed-point frame interior
// (sim/exec_engine.cpp) and the region-row-tiled architecture simulator
// (sim/arch_sim.cpp). This header is the one home of those per-op lane
// bodies, in both value domains:
//
//   - run_fixed_op_lanes: raw Qm.f words, case-for-case identical to
//     apply_op_fixed (ir/compiled.hpp) and therefore to the run_fixed_raw
//     reference interpreter;
//   - run_double_op_lanes: IEEE doubles, case-for-case identical to
//     apply_op (ir/eval.hpp). Each case is a single elementwise operation,
//     so vectorization cannot reassociate or contract anything — results
//     are bit-identical to the scalar path on every ISA.
//
// The bodies are compiled once per instruction-set level (baseline,
// AVX2, AVX-512 on x86-64) and resolved once per process against what the
// host actually supports — explicit, portable SIMD instead of hoping the
// baseline auto-vectorizer covers 64-bit integer arithmetic (it does not:
// plain x86-64 has no vector 64-bit multiply or arithmetic right shift,
// which is exactly where the fixed-point interior used to trail the double
// engine). Non-x86 hosts transparently get the single baseline body.
//
// Lane layout: `lanes` holds kTapeLane contiguous samples per tape slot,
// indexed lanes[slot * kTapeLane + lane]; `n <= kTapeLane` samples are
// live. Constants and inputs are bound by the caller; one call executes one
// operation over the live lanes.
#pragma once

#include <cstdint>

#include "ir/compiled.hpp"

namespace islhls {

inline constexpr int kTapeLane = 64;

using Fixed_lane_fn = void (*)(const Tape_op& op, std::int64_t* lanes, int n,
                               const Bit_wrap& wrap, int frac,
                               std::int64_t fixed_one);
using Double_lane_fn = void (*)(const Tape_op& op, double* lanes, int n);

// The resolved kernels for this host (widest supported ISA level). Hot
// loops hoist the pointer once and call it per (operation, lane block);
// the resolution itself happens once per process.
Fixed_lane_fn fixed_lane_kernel();
Double_lane_fn double_lane_kernel();

// Convenience forwarders through the resolved kernels.
inline void run_fixed_op_lanes(const Tape_op& op, std::int64_t* lanes, int n,
                               const Bit_wrap& wrap, int frac,
                               std::int64_t fixed_one) {
    fixed_lane_kernel()(op, lanes, n, wrap, frac, fixed_one);
}
inline void run_double_op_lanes(const Tape_op& op, double* lanes, int n) {
    double_lane_kernel()(op, lanes, n);
}

// "avx512" / "avx2" / "default" — which clone the host resolved to, for
// bench and CI logs (cross-host ratio drift is diagnosable from the log).
const char* tape_lane_isa();

}  // namespace islhls
