#include "sim/fixed_exec.hpp"

#include <algorithm>

#include "sim/tape_lanes.hpp"
#include "support/error.hpp"

namespace islhls {

std::vector<std::int64_t> run_fixed_raw(const Register_program& program,
                                        const std::vector<std::int64_t>& inputs,
                                        const Fixed_format& fmt) {
    check_internal(inputs.size() == static_cast<std::size_t>(program.input_count()),
                   "run_fixed_raw input arity mismatch");
    const int bits = fmt.total_bits();
    const int frac = fmt.frac_bits;
    const std::int64_t fixed_one = to_raw(1.0, fmt);

    const auto& instrs = program.instructions();
    std::vector<std::int64_t> regs(instrs.size(), 0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& in = instrs[i];
        auto op = [&](int k) {
            return regs[static_cast<std::size_t>(in.operands[static_cast<std::size_t>(k)])];
        };
        std::int64_t v = 0;
        switch (in.kind) {
            case Op_kind::constant:
                v = to_raw(in.value, fmt);
                break;
            case Op_kind::input:
                v = wrap_to_bits(inputs[next_input++], bits);
                break;
            case Op_kind::add:
                v = wrap_to_bits(op(0) + op(1), bits);
                break;
            case Op_kind::sub:
                v = wrap_to_bits(op(0) - op(1), bits);
                break;
            case Op_kind::mul: {
                // Full product then arithmetic right shift (floor), as in the
                // emitted shift_right(a*b, FRAC).
                const std::int64_t prod = op(0) * op(1);
                v = wrap_to_bits(prod >> frac, bits);
                break;
            }
            case Op_kind::div: {
                const std::int64_t b = op(1);
                if (b == 0) {
                    v = 0;
                } else {
                    // VHDL '/': truncation toward zero, matching C++.
                    v = wrap_to_bits((op(0) << frac) / b, bits);
                }
                break;
            }
            case Op_kind::sqrt_op: {
                const std::int64_t a = op(0);
                v = a <= 0 ? 0 : wrap_to_bits(isqrt_floor(a << frac), bits);
                break;
            }
            case Op_kind::min_op:
                v = op(0) < op(1) ? op(0) : op(1);
                break;
            case Op_kind::max_op:
                v = op(0) > op(1) ? op(0) : op(1);
                break;
            case Op_kind::neg:
                v = wrap_to_bits(-op(0), bits);
                break;
            case Op_kind::abs_op:
                v = wrap_to_bits(op(0) < 0 ? -op(0) : op(0), bits);
                break;
            case Op_kind::lt:
                v = op(0) < op(1) ? fixed_one : 0;
                break;
            case Op_kind::le:
                v = op(0) <= op(1) ? fixed_one : 0;
                break;
            case Op_kind::eq:
                v = op(0) == op(1) ? fixed_one : 0;
                break;
            case Op_kind::select:
                v = op(0) != 0 ? op(1) : op(2);
                break;
        }
        regs[i] = v;
    }
    std::vector<std::int64_t> out;
    out.reserve(program.outputs().size());
    for (std::int32_t r : program.outputs()) {
        out.push_back(regs[static_cast<std::size_t>(r)]);
    }
    return out;
}

std::vector<double> run_fixed(const Register_program& program,
                              const std::vector<double>& inputs,
                              const Fixed_format& fmt) {
    std::vector<std::int64_t> raw;
    raw.reserve(inputs.size());
    for (double v : inputs) raw.push_back(to_raw(v, fmt));
    const std::vector<std::int64_t> out_raw = run_fixed_raw(program, raw, fmt);
    std::vector<double> out;
    out.reserve(out_raw.size());
    for (std::int64_t r : out_raw) out.push_back(from_raw(r, fmt));
    return out;
}

// The per-op lane bodies moved to sim/tape_lanes.hpp (shared with the
// lane-blocked frame interior and the region-tiled architecture simulator,
// and compiled per ISA level there); the batch driver below binds lanes and
// walks the tape.
static_assert(Fixed_exec::kLane == kTapeLane,
              "Fixed_exec lane width must match the shared lane kernels");

Fixed_exec::Fixed_exec(const Register_program& program, const Fixed_format& format)
    : program_(&program), fixed_(program.compiled(), format) {}

void Fixed_exec::eval_into(const std::int64_t* inputs, std::int64_t* outputs,
                           Scratch& scratch) const {
    const Compiled_program& cp = fixed_.tape();
    const auto slots = static_cast<std::size_t>(cp.slot_count());
    if (scratch.point.size() < slots) scratch.point.resize(slots);
    fixed_.eval_point(inputs, scratch.point.data());
    const std::vector<std::int32_t>& out_slots = cp.output_slots();
    for (std::size_t o = 0; o < out_slots.size(); ++o) {
        outputs[o] = scratch.point[static_cast<std::size_t>(out_slots[o])];
    }
}

void Fixed_exec::run_raw_batch(const std::int64_t* inputs, std::size_t samples,
                               std::int64_t* outputs, Scratch& scratch) const {
    const Compiled_program& cp = fixed_.tape();
    const std::size_t lane_words =
        static_cast<std::size_t>(cp.slot_count()) * static_cast<std::size_t>(kLane);
    if (scratch.lanes.size() < lane_words) scratch.lanes.resize(lane_words);
    std::int64_t* lanes = scratch.lanes.data();

    const std::vector<Tape_constant>& constants = cp.constants();
    const std::vector<std::int64_t>& constant_raw = fixed_.constant_raw();
    const std::vector<Tape_input>& ins = cp.inputs();
    const std::vector<Tape_op>& ops = cp.ops();
    const std::vector<std::int32_t>& out_slots = cp.output_slots();
    const std::size_t in_count = ins.size();
    const std::size_t out_count = out_slots.size();
    const Bit_wrap& wrap = fixed_.wrap();
    const int frac = fixed_.frac_bits();
    const std::int64_t fixed_one = fixed_.fixed_one();

    for (std::size_t s0 = 0; s0 < samples; s0 += kLane) {
        const int n = static_cast<int>(std::min<std::size_t>(kLane, samples - s0));
        for (std::size_t c = 0; c < constants.size(); ++c) {
            std::int64_t* dst =
                lanes + static_cast<std::size_t>(constants[c].slot) * kLane;
            std::fill(dst, dst + n, constant_raw[c]);
        }
        for (std::size_t i = 0; i < in_count; ++i) {
            std::int64_t* dst = lanes + static_cast<std::size_t>(ins[i].slot) * kLane;
            const std::int64_t* src = inputs + s0 * in_count + i;
            for (int l = 0; l < n; ++l) {
                dst[l] = wrap(src[static_cast<std::size_t>(l) * in_count]);
            }
        }
        for (const Tape_op& op : ops) {
            run_fixed_op_lanes(op, lanes, n, wrap, frac, fixed_one);
        }
        for (std::size_t o = 0; o < out_count; ++o) {
            const std::int64_t* src =
                lanes + static_cast<std::size_t>(out_slots[o]) * kLane;
            std::int64_t* dst = outputs + s0 * out_count + o;
            for (int l = 0; l < n; ++l) {
                dst[static_cast<std::size_t>(l) * out_count] = src[l];
            }
        }
    }
}

}  // namespace islhls
