#include "sim/fixed_exec.hpp"

#include "support/error.hpp"

namespace islhls {

std::int64_t wrap_to_bits(std::int64_t v, int bits) {
    check_internal(bits >= 2 && bits <= 62, "wrap_to_bits supports 2..62 bits");
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
    if (u & sign) u |= ~mask;  // sign-extend
    return static_cast<std::int64_t>(u);
}

std::int64_t isqrt_floor(std::int64_t v) {
    if (v <= 0) return 0;
    std::int64_t x = v;
    std::int64_t y = (x + 1) / 2;
    while (y < x) {
        x = y;
        y = (x + v / x) / 2;
    }
    return x;
}

std::vector<std::int64_t> run_fixed_raw(const Register_program& program,
                                        const std::vector<std::int64_t>& inputs,
                                        const Fixed_format& fmt) {
    check_internal(inputs.size() == static_cast<std::size_t>(program.input_count()),
                   "run_fixed_raw input arity mismatch");
    const int bits = fmt.total_bits();
    const int frac = fmt.frac_bits;
    const std::int64_t fixed_one = to_raw(1.0, fmt);

    const auto& instrs = program.instructions();
    std::vector<std::int64_t> regs(instrs.size(), 0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& in = instrs[i];
        auto op = [&](int k) {
            return regs[static_cast<std::size_t>(in.operands[static_cast<std::size_t>(k)])];
        };
        std::int64_t v = 0;
        switch (in.kind) {
            case Op_kind::constant:
                v = to_raw(in.value, fmt);
                break;
            case Op_kind::input:
                v = wrap_to_bits(inputs[next_input++], bits);
                break;
            case Op_kind::add:
                v = wrap_to_bits(op(0) + op(1), bits);
                break;
            case Op_kind::sub:
                v = wrap_to_bits(op(0) - op(1), bits);
                break;
            case Op_kind::mul: {
                // Full product then arithmetic right shift (floor), as in the
                // emitted shift_right(a*b, FRAC).
                const std::int64_t prod = op(0) * op(1);
                v = wrap_to_bits(prod >> frac, bits);
                break;
            }
            case Op_kind::div: {
                const std::int64_t b = op(1);
                if (b == 0) {
                    v = 0;
                } else {
                    // VHDL '/': truncation toward zero, matching C++.
                    v = wrap_to_bits((op(0) << frac) / b, bits);
                }
                break;
            }
            case Op_kind::sqrt_op: {
                const std::int64_t a = op(0);
                v = a <= 0 ? 0 : wrap_to_bits(isqrt_floor(a << frac), bits);
                break;
            }
            case Op_kind::min_op:
                v = op(0) < op(1) ? op(0) : op(1);
                break;
            case Op_kind::max_op:
                v = op(0) > op(1) ? op(0) : op(1);
                break;
            case Op_kind::neg:
                v = wrap_to_bits(-op(0), bits);
                break;
            case Op_kind::abs_op:
                v = wrap_to_bits(op(0) < 0 ? -op(0) : op(0), bits);
                break;
            case Op_kind::lt:
                v = op(0) < op(1) ? fixed_one : 0;
                break;
            case Op_kind::le:
                v = op(0) <= op(1) ? fixed_one : 0;
                break;
            case Op_kind::eq:
                v = op(0) == op(1) ? fixed_one : 0;
                break;
            case Op_kind::select:
                v = op(0) != 0 ? op(1) : op(2);
                break;
        }
        regs[i] = v;
    }
    std::vector<std::int64_t> out;
    out.reserve(program.outputs().size());
    for (std::int32_t r : program.outputs()) {
        out.push_back(regs[static_cast<std::size_t>(r)]);
    }
    return out;
}

std::vector<double> run_fixed(const Register_program& program,
                              const std::vector<double>& inputs,
                              const Fixed_format& fmt) {
    std::vector<std::int64_t> raw;
    raw.reserve(inputs.size());
    for (double v : inputs) raw.push_back(to_raw(v, fmt));
    const std::vector<std::int64_t> out_raw = run_fixed_raw(program, raw, fmt);
    std::vector<double> out;
    out.reserve(out_raw.size());
    for (std::int64_t r : out_raw) out.push_back(from_raw(r, fmt));
    return out;
}

}  // namespace islhls
