// Functional simulation of a full cone architecture (the template of
// Sec. 3.1 / Fig. 3 of the paper).
//
// For every output window of the frame, the simulator materializes the
// initial input coverage (the window plus its N-iteration halo, read from
// the frame through the boundary policy — the off-chip transfer), then runs
// the levels deep-first: each level tiles its required coverage with cone
// executions whose inputs come from the previous level's buffer, exactly as
// the hardware sequencer would. The final level's window is written to the
// output frame. Transfer statistics are collected so benches can compare
// measured traffic against the throughput model's assumptions.
//
// The simulator validates the whole flow end to end: its output must equal
// the ghost-zone golden bit for bit in double mode, and the fixed-point mode
// measures quantization error of a format choice. Both modes execute cones
// over the same compiled tape — double mode through eval_point, fixed mode
// through the integer-lowered Fixed_tape (allocation-free, byte-identical
// to the run_fixed_raw reference interpreter). Fixed mode keeps the whole
// on-chip pipeline in raw Qm.f words: the off-chip load quantizes each
// element exactly once and the level regions hand raw words to each other
// directly, so the result matches the fixed frame engine's ghost golden
// (sim/golden.hpp run_ghost_ir fixed overload) word for word.
#pragma once

#include "backend/fixed_point.hpp"
#include "dse/architecture.hpp"
#include "dse/cone_library.hpp"
#include "dse/streaming_backend.hpp"
#include "grid/frame_set.hpp"

namespace islhls {

struct Arch_sim_options {
    Boundary boundary = Boundary::clamp;
    bool fixed_point = false;  // run cones under Qm.f quantization
    Fixed_format format;
};

struct Transfer_stats {
    long long offchip_elements_read = 0;
    long long offchip_elements_written = 0;
    long long onchip_elements_read = 0;  // cone input fetches
    long long cone_executions = 0;
    long long operations_executed = 0;   // register ops across all executions
    long long output_windows = 0;

    // Redundancy of the tiling: how many ops ran per useful output element,
    // relative to a hypothetical zero-redundancy machine.
    double ops_per_output_element(long long frame_elements) const {
        return frame_elements > 0
                   ? static_cast<double>(operations_executed) / frame_elements
                   : 0.0;
    }
};

struct Arch_sim_result {
    Frame_set final_state;  // state fields after all iterations
    Transfer_stats stats;
};

// Simulates `instance` (its level structure; core counts are irrelevant to
// the functional result) on `initial`. Throws on malformed instances.
Arch_sim_result simulate_architecture(Cone_library& library,
                                      const Arch_instance& instance,
                                      const Frame_set& initial,
                                      const Arch_sim_options& options = {});

// --- cycle-approximate streaming mode ---------------------------------------------
//
// Validates the Streaming_backend's analytic throughput model: walks the
// passes and row bands of a streaming multi-PE configuration cycle by cycle
// (rows stream through each PE in vector groups, halos clamp exactly at the
// frame edges, off-chip transfers cost ceil(elements / bandwidth)), without
// executing any arithmetic. The analytic model must stay within a gated
// tolerance of this walk on every kernel (tests/test_backends.cpp).

struct Streaming_sim_options {
    int iterations = 1;   // N; the walk runs ceil(N / depth) passes
    int fields_in = 1;    // fields streamed in per element
    int fields_out = 1;   // state fields streamed back out
    // Total off-chip bandwidth of the configuration, elements per cycle
    // (device channel rate x Streaming_config::channels).
    double elems_per_cycle = 8.0;
};

struct Streaming_sim_result {
    int passes = 0;
    long long compute_cycles = 0;  // sum over passes of the slowest band
    long long memory_cycles = 0;   // sum over passes of the channel transfer
    long long total_cycles = 0;    // sum over passes of max(compute, memory)
    Transfer_stats stats;          // off-chip traffic of the walk
};

Streaming_sim_result simulate_streaming_cycles(
    Cone_library& library, const Streaming_config& config, int frame_width,
    int frame_height, const Streaming_sim_options& options);

}  // namespace islhls
