#include "sim/exec_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>

#include "sim/tape_lanes.hpp"
#include "support/cache_info.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace islhls {

namespace {

// --- value-domain policies --------------------------------------------------------
//
// One policy per arithmetic domain; everything below (contexts, workspaces,
// row execution, banding, the double-buffered driver) is templated on it, so
// the double and fixed-point engines are the same machine over different
// element types and op semantics — they cannot diverge structurally.

// IEEE double over the compiled tape (the classic golden engine).
struct Double_policy {
    using Value = double;
    // Interior style: full-width scratch rows, one op-span per operation.
    static constexpr bool lane_interior = false;
    const Compiled_program* cp;

    explicit Double_policy(const Compiled_program& tape) : cp(&tape) {}

    Value constant(std::size_t i) const { return cp->constants()[i].value; }
    void eval_point(const Value* inputs, Value* slots) const {
        cp->eval_point(inputs, slots);
    }
};

// Raw Qm.f words over the integer-lowered tape. Carries the format-derived
// operator parameters (wrap, fraction shift, raw 1.0) resolved once per run,
// exactly like Fixed_exec's lane loops.
struct Fixed_policy {
    using Value = std::int64_t;
    // Interior style: compact kTapeLane-wide lane blocks through the shared
    // per-ISA lane kernels (sim/tape_lanes.hpp) — the intermediates of the
    // whole tape fit in L1 regardless of frame width, and the int64
    // arithmetic runs the widest vector body the host supports.
    static constexpr bool lane_interior = true;
    const Compiled_program* cp;
    const Fixed_tape* tape;
    Bit_wrap wrap;
    int frac;
    std::int64_t one;
    Fixed_lane_fn lane_fn;

    explicit Fixed_policy(const Fixed_tape& t)
        : cp(&t.tape()),
          tape(&t),
          wrap(t.wrap()),
          frac(t.frac_bits()),
          one(t.fixed_one()),
          lane_fn(fixed_lane_kernel()) {}

    Value constant(std::size_t i) const { return tape->constant_raw()[i]; }
    void eval_point(const Value* inputs, Value* slots) const {
        tape->eval_point(inputs, slots);
    }
};

// Everything one step execution needs, fixed before the row loops start.
// The banded path copies this per band and retargets the field bindings at
// every fused level; `field_row_off` / `out_row_off` translate full-frame
// row coordinates into band-buffer rows (zero when a binding points at a
// whole frame).
template <class Policy>
struct Step_context {
    using Value = typename Policy::Value;
    const Policy* policy = nullptr;
    const Compiled_program* cp = nullptr;
    const std::vector<int>* scratch_index = nullptr;
    int scratch_rows = 0;
    int left_margin = 0;
    int right_margin = 0;
    int width = 0;
    int height = 0;
    // Interior column-panel width; <= 0 runs the whole interior as one
    // panel. Panels only split the x loop, so every width is byte-identical.
    int panel_cols = 0;
    Boundary boundary = Boundary::clamp;
    std::vector<const Value*> field_base;  // per pool field index
    std::vector<int> field_row_off;        // per pool field index
    // Per pool field: nonzero when row reads index the binding directly at
    // the unclamped row (y + dy - row_off) with no boundary resolution —
    // the wrapped-halo band buffers of Boundary::periodic, whose rows past
    // the frame edge hold the opposite edge's content.
    std::vector<std::uint8_t> field_direct_rows;
    std::vector<Value*> out_base;          // per state field
    int out_row_off = 0;
    // Banded execution: pool field index of every state field (declaration
    // order), so levels can rebind just the advancing fields.
    std::vector<int> state_pool_field;
};

// Per-thread scratch bound to one frame width: one row per operation and
// constant slot, a zero row backing Boundary::zero reads of out-of-range
// rows, and the scalar buffers the border columns use. Constant rows are
// filled once at bind time — slots are single-assignment, so they survive
// every later row execution. The two `band` buffers ping-pong the interim
// levels of temporal tiling; they are sized lazily per band (edge bands
// under Boundary::periodic can need more rows than interior bands).
template <class Policy>
struct Workspace {
    using Value = typename Policy::Value;
    std::vector<Value> scratch;
    std::vector<const Value*> row;  // per slot: operand row base pointer;
                                    // the value at column x is row[slot][x + col_off[slot]]
    std::vector<int> col_off;       // per slot: static dx (inputs) or 0
    std::vector<Value> zero_row;
    std::vector<Value> point_slots;
    std::vector<Value> point_inputs;
    // Lane-interior policies: kTapeLane contiguous samples per tape slot
    // (lanes[slot * kTapeLane + lane]), constant lanes filled at bind time.
    std::vector<Value> lanes;
    std::array<std::vector<Value>, 2> band;
};

template <class Policy>
void bind_workspace(Workspace<Policy>& ws, const Step_context<Policy>& c) {
    using Value = typename Policy::Value;
    const auto w = static_cast<std::size_t>(c.width);
    const auto slots = static_cast<std::size_t>(c.cp->slot_count());
    ws.row.assign(slots, nullptr);
    ws.col_off.assign(slots, 0);
    for (const Tape_input& in : c.cp->inputs()) {
        ws.col_off[static_cast<std::size_t>(in.slot)] = in.dx;
    }
    ws.zero_row.assign(w, Value{});
    ws.point_slots.assign(slots, Value{});
    ws.point_inputs.assign(c.cp->inputs().size(), Value{});
    const std::vector<Tape_constant>& constants = c.cp->constants();
    if constexpr (Policy::lane_interior) {
        // Lane interior: the compact lane block replaces the full-width
        // scratch rows; constant lanes are single-assignment, filled once.
        ws.lanes.assign(slots * static_cast<std::size_t>(kTapeLane), Value{});
        for (std::size_t i = 0; i < constants.size(); ++i) {
            Value* r = ws.lanes.data() +
                       static_cast<std::size_t>(constants[i].slot) * kTapeLane;
            std::fill(r, r + kTapeLane, c.policy->constant(i));
        }
    } else {
        ws.scratch.assign(static_cast<std::size_t>(c.scratch_rows) * w, Value{});
        for (std::size_t slot = 0; slot < slots; ++slot) {
            const int idx = (*c.scratch_index)[slot];
            if (idx >= 0) {
                ws.row[slot] = ws.scratch.data() + static_cast<std::size_t>(idx) * w;
            }
        }
        for (std::size_t i = 0; i < constants.size(); ++i) {
            Value* r =
                ws.scratch.data() +
                static_cast<std::size_t>((*c.scratch_index)[constants[i].slot]) * w;
            std::fill(r, r + w, c.policy->constant(i));
        }
    }
}

// Reusable workspaces for the parallel row blocks; scratch contents never
// influence results, so which worker gets which workspace is irrelevant to
// the determinism contract.
template <class Policy>
class Workspace_pool {
public:
    explicit Workspace_pool(const Step_context<Policy>& context) : context_(&context) {}

    std::unique_ptr<Workspace<Policy>> acquire() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                std::unique_ptr<Workspace<Policy>> ws = std::move(free_.back());
                free_.pop_back();
                return ws;
            }
        }
        auto ws = std::make_unique<Workspace<Policy>>();
        bind_workspace(*ws, *context_);
        return ws;
    }

    void release(std::unique_ptr<Workspace<Policy>> ws) {
        const std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(ws));
    }

private:
    const Step_context<Policy>* context_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<Workspace<Policy>>> free_;
};

// Scalar fallback for one border column: every read goes through the
// Boundary policy, exactly like the reference interpreter (raw 0 backs
// Boundary::zero in the fixed domain, like run_fixed_raw's gathered zeros).
template <class Policy>
void eval_border_column(const Step_context<Policy>& c, Workspace<Policy>& ws, int x,
                        int y) {
    using Value = typename Policy::Value;
    const std::vector<Tape_input>& inputs = c.cp->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Tape_input& in = inputs[i];
        const auto f = static_cast<std::size_t>(in.field);
        const int rx = resolve_coordinate(x + in.dx, c.width, c.boundary);
        Value v{};
        if (c.field_direct_rows[f]) {
            // Wrapped-halo band buffer: the read row sits at its unclamped
            // coordinate (possibly negative) — no boundary resolution, the
            // buffer row already holds the torus content.
            const int ry = y + in.dy;
            if (rx >= 0) {
                v = c.field_base[f][static_cast<std::size_t>(ry - c.field_row_off[f]) *
                                        c.width +
                                    rx];
            }
        } else {
            const int ry = resolve_coordinate(y + in.dy, c.height, c.boundary);
            if (rx >= 0 && ry >= 0) {
                v = c.field_base[f][static_cast<std::size_t>(ry - c.field_row_off[f]) *
                                        c.width +
                                    rx];
            }
        }
        ws.point_inputs[i] = v;
    }
    c.policy->eval_point(ws.point_inputs.data(), ws.point_slots.data());
    const std::vector<std::int32_t>& out_slots = c.cp->output_slots();
    for (std::size_t s = 0; s < c.out_base.size(); ++s) {
        c.out_base[s][static_cast<std::size_t>(y - c.out_row_off) * c.width + x] =
            ws.point_slots[static_cast<std::size_t>(out_slots[s])];
    }
}

// One tape operation over the interior span [x0, x1) of the current row.
// Each case is a single loop of one arithmetic operation over contiguous
// data — the form the compiler auto-vectorizes. The arithmetic matches
// apply_op() case for case, so results are bit-identical to the scalar path.
//
// Operands are addressed as base[x + col_off]: the per-slot column offset
// (dx for input slots, 0 otherwise) is applied at the indexing site, never
// folded into the base pointer — x + col_off is in [0, width) for every
// interior x, so no pointer outside its allocation is ever formed.
void run_op_span(const Double_policy&, const Tape_op& op,
                 const Workspace<Double_policy>& ws, double* __restrict dst, int x0,
                 int x1) {
    const double* a = ws.row[static_cast<std::size_t>(op.src[0])];
    const int oa = ws.col_off[static_cast<std::size_t>(op.src[0])];
    const double* b = nullptr;
    int ob = 0;
    if (op.src_count > 1) {
        b = ws.row[static_cast<std::size_t>(op.src[1])];
        ob = ws.col_off[static_cast<std::size_t>(op.src[1])];
    }
    switch (op.kind) {
        case Op_kind::add:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] + b[x + ob];
            break;
        case Op_kind::sub:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] - b[x + ob];
            break;
        case Op_kind::mul:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] * b[x + ob];
            break;
        case Op_kind::div:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] / b[x + ob];
            break;
        case Op_kind::min_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fmin(a[x + oa], b[x + ob]);
            break;
        case Op_kind::max_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fmax(a[x + oa], b[x + ob]);
            break;
        case Op_kind::neg:
            for (int x = x0; x < x1; ++x) dst[x] = -a[x + oa];
            break;
        case Op_kind::abs_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fabs(a[x + oa]);
            break;
        case Op_kind::sqrt_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::sqrt(a[x + oa]);
            break;
        case Op_kind::lt:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] < b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::le:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] <= b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::eq:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] == b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::select: {
            const double* t = ws.row[static_cast<std::size_t>(op.src[1])];
            const int ot = ws.col_off[static_cast<std::size_t>(op.src[1])];
            const double* f = ws.row[static_cast<std::size_t>(op.src[2])];
            const int of = ws.col_off[static_cast<std::size_t>(op.src[2])];
            for (int x = x0; x < x1; ++x) {
                dst[x] = a[x + oa] != 0.0 ? t[x + ot] : f[x + of];
            }
            break;
        }
        case Op_kind::constant:
        case Op_kind::input:
            throw Internal_error("leaf kind on the operation tape");
    }
}

// Interior panel [p0, p1) of one row, scratch-row style (double domain):
// one op-span per tape operation into the full-width scratch rows, then the
// panel's output sub-spans are copied out of the producing rows.
void exec_interior(const Step_context<Double_policy>& c, Workspace<Double_policy>& ws,
                   int y, int p0, int p1) {
    const int w = c.width;
    const std::vector<Tape_op>& ops = c.cp->ops();
    const std::vector<std::int32_t>& out_slots = c.cp->output_slots();
    for (const Tape_op& op : ops) {
        double* dst = ws.scratch.data() +
                      static_cast<std::size_t>(
                          (*c.scratch_index)[static_cast<std::size_t>(op.dest)]) *
                          w;
        run_op_span(*c.policy, op, ws, dst, p0, p1);
    }
    for (std::size_t s = 0; s < c.out_base.size(); ++s) {
        const std::size_t slot = static_cast<std::size_t>(out_slots[s]);
        const double* r = ws.row[slot] + (p0 + ws.col_off[slot]);
        std::memcpy(c.out_base[s] + static_cast<std::size_t>(y - c.out_row_off) * w + p0,
                    r, static_cast<std::size_t>(p1 - p0) * sizeof(double));
    }
}

// Interior panel [p0, p1) of one row, lane-block style (fixed domain): the
// panel advances in kTapeLane-wide chunks through the shared per-ISA lane
// kernels. Per chunk the input slots are copied (contiguously — the static
// dx offset makes the source span contiguous) into the compact lane block,
// one kernel call executes each tape operation over the live lanes, and the
// output lanes are copied to the destination rows. The kernel cases match
// apply_op_fixed() one for one (like Fixed_exec's batch path), so the raw
// words stay bit-identical to the run_fixed_raw reference at every chunk
// and panel width. Frame words are already wrapped (quantization and every
// producing op wrap), so the gather needs no re-wrap, exactly like the old
// full-width span path.
void exec_interior(const Step_context<Fixed_policy>& c, Workspace<Fixed_policy>& ws,
                   int y, int p0, int p1) {
    const int w = c.width;
    const std::vector<Tape_input>& inputs = c.cp->inputs();
    const std::vector<Tape_op>& ops = c.cp->ops();
    const std::vector<std::int32_t>& out_slots = c.cp->output_slots();
    const Fixed_lane_fn kernel = c.policy->lane_fn;
    const Bit_wrap wrap = c.policy->wrap;
    const int frac = c.policy->frac;
    const std::int64_t one = c.policy->one;
    std::int64_t* lanes = ws.lanes.data();
    const std::size_t out_row =
        static_cast<std::size_t>(y - c.out_row_off) * static_cast<std::size_t>(w);
    for (int xb = p0; xb < p1; xb += kTapeLane) {
        const int n = std::min(kTapeLane, p1 - xb);
        for (const Tape_input& in : inputs) {
            const std::size_t slot = static_cast<std::size_t>(in.slot);
            std::memcpy(lanes + slot * kTapeLane, ws.row[slot] + (xb + ws.col_off[slot]),
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
        }
        for (const Tape_op& op : ops) kernel(op, lanes, n, wrap, frac, one);
        for (std::size_t s = 0; s < c.out_base.size(); ++s) {
            const std::size_t slot = static_cast<std::size_t>(out_slots[s]);
            std::memcpy(c.out_base[s] + out_row + xb, lanes + slot * kTapeLane,
                        static_cast<std::size_t>(n) * sizeof(std::int64_t));
        }
    }
}

template <class Policy>
void exec_rows(const Step_context<Policy>& c, Workspace<Policy>& ws, int y0, int y1) {
    using Value = typename Policy::Value;
    const int w = c.width;
    const int h = c.height;
    const std::vector<Tape_input>& inputs = c.cp->inputs();
    // Interior columns: [x0, x1) reads in-range for every input offset.
    const int x0 = std::min(c.left_margin, w);
    const int x1 = std::max(x0, w - c.right_margin);
    const int panel = c.panel_cols > 0 ? c.panel_cols : std::max(x1 - x0, 1);

    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < x0; ++x) eval_border_column(c, ws, x, y);
        if (x1 > x0) {
            // Resolve the input row bases once per row; the static column
            // offsets bound in the workspace complete the addressing.
            // Direct-row bindings (wrapped-halo band buffers) skip the
            // boundary policy — they hold the unclamped row itself.
            for (const Tape_input& in : inputs) {
                const auto f = static_cast<std::size_t>(in.field);
                const Value* base;
                if (c.field_direct_rows[f]) {
                    base = c.field_base[f] +
                           static_cast<std::size_t>(y + in.dy - c.field_row_off[f]) * w;
                } else {
                    const int ry = resolve_coordinate(y + in.dy, h, c.boundary);
                    base = ry < 0
                               ? ws.zero_row.data()
                               : c.field_base[f] +
                                     static_cast<std::size_t>(ry - c.field_row_off[f]) *
                                         w;
                }
                ws.row[static_cast<std::size_t>(in.slot)] = base;
            }
            // Column panels: each panel runs the whole tape before moving
            // right, bounding the per-operation working set; the split only
            // partitions the x loop, so results are byte-identical at any
            // panel width.
            for (int p0 = x0; p0 < x1; p0 += panel) {
                exec_interior(c, ws, y, p0, std::min(x1, p0 + panel));
            }
        }
        for (int x = x1; x < w; ++x) eval_border_column(c, ws, x, y);
    }
}

// --- temporal tiling --------------------------------------------------------------

// Rows [lo, hi) at one fused level of a band (frame coordinates).
struct Band_level {
    int lo = 0;
    int hi = 0;
};

// The trapezoid of one band: level[k] holds the rows computed k fused steps
// into the block, for k in [1, depth]; level[depth] is the band's output
// rows, level[0] the rows the band reads from the block's input frame
// (kept for sizing/diagnostics, nothing is computed at level 0).
struct Band_plan {
    std::vector<Band_level> level;
    // Tallest interim level (k in [1, depth)); sizes the band buffers.
    int interim_rows = 0;
};

// Minimal in-frame interval covering every boundary-resolved read of the
// unclamped rows [lo, hi), for the non-periodic boundaries: out-of-range
// overhang rows resolve to edge-adjacent rows (clamp/mirror) or drop out
// entirely (zero). Periodic bands never come here — their interim levels
// keep the unclamped interval itself and carry wrapped halo rows.
Band_level resolve_row_interval(int lo, int hi, int h, Boundary b) {
    int a = std::max(lo, 0);
    int z = std::min(hi, h) - 1;  // inclusive
    check_internal(a <= z, "resolve_row_interval: empty in-range span");
    for (int y = lo; y < 0; ++y) {
        const int ry = resolve_coordinate(y, h, b);
        if (ry >= 0) {
            a = std::min(a, ry);
            z = std::max(z, ry);
        }
    }
    for (int y = h; y < hi; ++y) {
        const int ry = resolve_coordinate(y, h, b);
        if (ry >= 0) {
            a = std::min(a, ry);
            z = std::max(z, ry);
        }
    }
    return {a, z + 1};
}

// Plans the bands of one fused block: output rows are split into bands of
// `band_rows`, and each band's interim levels grow by the per-step state
// halo (up rows above, down rows below). Non-periodic boundaries resolve
// each level into the frame; under Boundary::periodic the levels keep their
// unclamped intervals — on a torus row r and row r mod h are the same row
// at every fused level, so a band buffer can carry its out-of-frame halo
// rows directly (computed like any other row, reading level 1 through the
// wrapping boundary policy) and the interim intervals stay band-sized at
// the frame edges instead of widening toward the whole frame.
std::vector<Band_plan> plan_bands(int h, int band_rows, int depth, int up, int down,
                                  Boundary b) {
    std::vector<Band_plan> plans;
    plans.reserve(static_cast<std::size_t>((h + band_rows - 1) / band_rows));
    for (int b0 = 0; b0 < h; b0 += band_rows) {
        Band_plan plan;
        plan.level.assign(static_cast<std::size_t>(depth) + 1, Band_level{});
        plan.level[static_cast<std::size_t>(depth)] = {b0,
                                                       std::min(b0 + band_rows, h)};
        for (int k = depth - 1; k >= 0; --k) {
            const Band_level& next = plan.level[static_cast<std::size_t>(k) + 1];
            plan.level[static_cast<std::size_t>(k)] =
                b == Boundary::periodic
                    ? Band_level{next.lo - up, next.hi + down}
                    : resolve_row_interval(next.lo - up, next.hi + down, h, b);
        }
        for (int k = 1; k < depth; ++k) {
            const Band_level& lv = plan.level[static_cast<std::size_t>(k)];
            plan.interim_rows = std::max(plan.interim_rows, lv.hi - lv.lo);
        }
        plans.push_back(std::move(plan));
    }
    return plans;
}

// Carries one band through every fused level of its block. The shared
// context `c` holds the block's input-frame and output-frame bindings; the
// local copy retargets the state fields at each level:
//
//   level 1        reads the input frame, writes band buffer 1;
//   level k (1<k<T) reads band buffer (k-1)&1, writes band buffer k&1;
//   level T        reads the last band buffer, writes the output frame
//                  (only the band's own rows — bands never overlap there).
//
// Const fields always read the full input frame, and every level runs the
// same exec_rows code as the untiled sweep, so each cell value is computed
// by the identical instruction sequence as in the double-buffered path.
// Under Boundary::periodic the band-buffer bindings are marked direct-row:
// the buffers hold unclamped (wrapped-halo) intervals, so reads between
// interim levels index them at the unclamped row with no boundary
// resolution, while level-1 reads and const-field reads still wrap against
// the frame.
template <class Policy>
void exec_band(const Step_context<Policy>& c, Workspace<Policy>& ws,
               const Band_plan& plan) {
    using Value = typename Policy::Value;
    const int depth = static_cast<int>(plan.level.size()) - 1;
    const auto w = static_cast<std::size_t>(c.width);
    const std::size_t stride = static_cast<std::size_t>(plan.interim_rows) * w;
    const std::size_t states = c.state_pool_field.size();
    if (depth > 1) {
        for (std::vector<Value>& buf : ws.band) {
            if (buf.size() < stride * states) buf.resize(stride * states);
        }
    }

    Step_context<Policy> local = c;
    const bool direct = c.boundary == Boundary::periodic;
    for (int k = 1; k <= depth; ++k) {
        const Band_level out = plan.level[static_cast<std::size_t>(k)];
        if (k > 1) {
            const Band_level in = plan.level[static_cast<std::size_t>(k) - 1];
            const Value* base = ws.band[static_cast<std::size_t>((k - 1) & 1)].data();
            for (std::size_t s = 0; s < states; ++s) {
                const auto f = static_cast<std::size_t>(c.state_pool_field[s]);
                local.field_base[f] = base + s * stride;
                local.field_row_off[f] = in.lo;
                if (direct) local.field_direct_rows[f] = 1;
            }
        }
        if (k == depth) {
            local.out_base = c.out_base;
            local.out_row_off = c.out_row_off;
        } else {
            Value* base = ws.band[static_cast<std::size_t>(k & 1)].data();
            for (std::size_t s = 0; s < states; ++s) {
                local.out_base[s] = base + s * stride;
            }
            local.out_row_off = out.lo;
        }
        exec_rows(local, ws, out.lo, out.hi);
    }
}

// Resolved auto-tiling budgets: explicit (pinned) fields win, zero fields
// come from the probed cache topology. The probe's own fallbacks reproduce
// the engine's historical fixed budgets (LLC fallback 32 MiB = the old tile
// constant, /4 = the old 8 MiB band constant).
struct Resolved_budgets {
    std::size_t tile_bytes;
    std::size_t band_bytes;
    std::size_t panel_bytes;
};

Resolved_budgets resolve_budgets(const Exec_budgets& pinned) {
    const Cache_topology& cache = cache_topology();
    Resolved_budgets r;
    r.tile_bytes = pinned.tile_bytes ? pinned.tile_bytes : cache.llc_bytes;
    r.band_bytes = pinned.band_bytes ? pinned.band_bytes : cache.llc_bytes / 4;
    r.panel_bytes = pinned.panel_bytes ? pinned.panel_bytes : cache.l1d_bytes / 2;
    return r;
}

// Auto tile depth: fusing is pure overhead while both frame buffers sit in
// cache, so stay untiled below the tile budget; above it, eight fused steps
// capture most of the traffic reduction (1/8th of the memory round trips)
// while keeping the trapezoid recompute low.
int auto_tile_depth(std::size_t state_bytes, int iterations, std::size_t tile_budget) {
    if (iterations <= 1 || 2 * state_bytes <= tile_budget) return 1;
    return std::min(iterations, 8);
}

// Auto band height: size a band so its working set (two interim buffers of
// every state field) stays inside the band budget, keep the halo recompute
// overhead bounded (band at least 4x the total halo growth), and leave at
// least two bands per thread for load balance.
int auto_band_rows(int width, int h, int depth, int states, int growth, int threads,
                   std::size_t band_budget) {
    const std::size_t level_row_bytes = 2 * static_cast<std::size_t>(states) *
                                        static_cast<std::size_t>(width) *
                                        sizeof(double);
    long rows = static_cast<long>(band_budget / std::max<std::size_t>(level_row_bytes, 1));
    rows -= static_cast<long>(depth - 1) * growth;
    rows = std::max(rows, 4L * (depth - 1) * growth);
    rows = std::max(rows, 16L);
    if (threads > 1) {
        rows = std::min(rows, static_cast<long>((h + 2 * threads - 1) / (2 * threads)));
    }
    return static_cast<int>(std::clamp(rows, 1L, static_cast<long>(h)));
}

// Auto panel width for scratch-row interiors: when one interior sweep's op
// working set (every scratch row across the panel) would spill the panel
// budget, split the interior into panels sized to fit, rounded down to a
// multiple of the lane width. Returns 0 (unpaneled) while the whole width
// fits. Lane-interior policies never need this — their working set is the
// lane block itself.
int auto_panel_cols(int width, int scratch_rows, std::size_t value_bytes,
                    std::size_t panel_budget) {
    const std::size_t col_bytes =
        std::max<std::size_t>(static_cast<std::size_t>(scratch_rows), 1) * value_bytes;
    if (static_cast<std::size_t>(width) * col_bytes <= panel_budget) return 0;
    long cols = static_cast<long>(panel_budget / col_bytes);
    cols -= cols % kTapeLane;
    return static_cast<int>(std::max(cols, static_cast<long>(kTapeLane)));
}

// --- double-buffered driver -------------------------------------------------------

// Runs `iterations` steps over a pair of pre-bound frame buffers. `bases[p]`
// holds the per-pool-field base pointers of buffer parity p, `outs[p]` the
// state-field output pointers written while parity p is current (i.e. into
// the other buffer); const fields point at the same storage in both
// parities when the caller shares it. Returns the parity holding the final
// frames. `context` carries everything else (the policy, margins, scratch
// layout) and is identical for the whole run apart from the per-block
// pointer rebinding done here.
template <class Policy>
int run_buffers(Step_context<Policy>& context, int iterations, Boundary b,
                const Exec_options& options, int state_up, int state_down,
                const std::array<std::vector<const typename Policy::Value*>, 2>& bases,
                const std::array<std::vector<typename Policy::Value*>, 2>& outs) {
    using Value = typename Policy::Value;
    const int w = context.width;
    const int h = context.height;

    const int total_threads = options.pool ? options.pool->thread_count()
                                           : resolve_thread_count(options.threads);

    // Resolve the tiling: fused depth first, band height second, panel
    // width last. Budgets come pinned from the options or from the probed
    // cache topology; either way they only pick the schedule — every
    // (depth, band, panel) choice is byte-identical.
    const Resolved_budgets budgets = resolve_budgets(options.budgets);
    const std::size_t state_bytes =
        static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * sizeof(Value) *
        std::max<std::size_t>(context.state_pool_field.size(), 1);
    int depth = options.tile_iterations;
    if (depth == 0) {
        depth = auto_tile_depth(state_bytes, iterations, budgets.tile_bytes);
    }
    depth = std::clamp(depth, 1, iterations);
    const int growth = state_up + state_down;
    int band_rows = options.band_rows;
    if (depth > 1) {
        if (band_rows <= 0) {
            band_rows = auto_band_rows(
                w, h, depth, static_cast<int>(context.state_pool_field.size()), growth,
                total_threads, budgets.band_bytes);
        }
        band_rows = std::clamp(band_rows, 1, h);
    }
    int panel = options.panel_cols;
    if (panel <= 0 && depth > 1 && !Policy::lane_interior) {
        panel = auto_panel_cols(w, context.scratch_rows, sizeof(Value),
                                budgets.panel_bytes);
    }
    context.panel_cols = panel;

    // A run has at most two distinct fused depths: the full blocks and one
    // shorter tail block. Plan both up front; the plans are reused across
    // every block of that depth.
    const int tail_depth = depth > 1 ? iterations % depth : 0;
    std::vector<Band_plan> full_plans;
    std::vector<Band_plan> tail_plans;
    if (depth > 1) full_plans = plan_bands(h, band_rows, depth, state_up, state_down, b);
    if (tail_depth > 1) {
        tail_plans = plan_bands(h, band_rows, tail_depth, state_up, state_down, b);
    }

    // The row/band fan-out: an external pool when the caller shares one,
    // otherwise a pool owned by this run.
    std::optional<Thread_pool> own_pool;
    Thread_pool* thread_pool = nullptr;
    if (total_threads > 1 && h > 1) {
        if (options.pool) {
            thread_pool = options.pool;
        } else {
            own_pool.emplace(total_threads);
            thread_pool = &*own_pool;
        }
    }

    Workspace<Policy> serial_ws;
    if (!thread_pool) bind_workspace(serial_ws, context);
    Workspace_pool<Policy> workspaces(context);

    int cur = 0;
    int it = 0;
    while (it < iterations) {
        const int block = std::min(depth, iterations - it);
        context.field_base = bases[static_cast<std::size_t>(cur)];
        context.out_base = outs[static_cast<std::size_t>(cur)];
        if (block <= 1) {
            // Classic untiled sweep: one pass over the frame, row blocks
            // fanned across the pool.
            if (!thread_pool) {
                exec_rows(context, serial_ws, 0, h);
            } else {
                const std::size_t blocks = static_cast<std::size_t>(
                    std::min(h, thread_pool->thread_count() * 4));
                thread_pool->for_each_index(blocks, [&](std::size_t i) {
                    std::unique_ptr<Workspace<Policy>> ws = workspaces.acquire();
                    const int b0 =
                        static_cast<int>(i * static_cast<std::size_t>(h) / blocks);
                    const int b1 = static_cast<int>((i + 1) *
                                                    static_cast<std::size_t>(h) / blocks);
                    exec_rows(context, *ws, b0, b1);
                    workspaces.release(std::move(ws));
                });
            }
        } else {
            const std::vector<Band_plan>& plans =
                block == depth ? full_plans : tail_plans;
            if (!thread_pool) {
                for (const Band_plan& plan : plans) {
                    exec_band(context, serial_ws, plan);
                }
            } else {
                thread_pool->for_each_index(plans.size(), [&](std::size_t i) {
                    std::unique_ptr<Workspace<Policy>> ws = workspaces.acquire();
                    exec_band(context, *ws, plans[i]);
                    workspaces.release(std::move(ws));
                });
            }
        }
        cur ^= 1;
        it += block;
    }
    return cur;
}

}  // namespace

Exec_engine::Exec_engine(const Stencil_step& step)
    : step_(&step), program_(build_program(step.pool(), step.updates())) {
    const Compiled_program& cp = program_.compiled();
    scratch_index_.assign(static_cast<std::size_t>(cp.slot_count()), -1);
    for (const Tape_op& op : cp.ops()) {
        scratch_index_[static_cast<std::size_t>(op.dest)] = scratch_rows_++;
    }
    for (const Tape_constant& k : cp.constants()) {
        scratch_index_[static_cast<std::size_t>(k.slot)] = scratch_rows_++;
    }
    left_margin_ = std::max(0, -cp.min_dx());
    right_margin_ = std::max(0, cp.max_dx());
    // The per-iteration band halo grows with the advancing fields only:
    // const fields never change, so their reads hit the full frame at every
    // fused level and do not widen the trapezoid.
    const std::vector<Field_extent>& extents = cp.field_extents();
    for (std::size_t f = 0; f < extents.size(); ++f) {
        if (!extents[f].used || !step.is_state_index(static_cast<int>(f))) continue;
        state_up_ = std::max(state_up_, -extents[f].min_dy);
        state_down_ = std::max(state_down_, extents[f].max_dy);
    }
}

int Exec_engine::planned_interim_rows(int height, int band_rows, int depth,
                                      Boundary b) const {
    check_internal(height > 0 && depth >= 1, "planned_interim_rows: bad geometry");
    band_rows = std::clamp(band_rows, 1, height);
    const std::vector<Band_plan> plans =
        plan_bands(height, band_rows, depth, state_up_, state_down_, b);
    int rows = 0;
    for (const Band_plan& plan : plans) rows = std::max(rows, plan.interim_rows);
    return rows;
}

Frame_set Exec_engine::run(const Frame_set& initial, int iterations, Boundary b,
                           const Exec_options& options) const {
    if (options.fixed_format) {
        return run_fixed(initial, iterations, b, *options.fixed_format, options)
            .to_frame_set();
    }
    if (iterations <= 0) return initial;
    const int w = initial.width();
    const int h = initial.height();
    const Expr_pool& pool = step_->pool();

    // Double buffers in canonical field order (state first, then const);
    // const fields are copied once and never rewritten.
    Frame_set buf_a(w, h);
    Frame_set buf_b(w, h);
    for (const std::string& name : step_->state_fields()) {
        buf_a.add_field(name, initial.field(name));
        buf_b.add_field(name);
    }
    for (const std::string& name : step_->const_fields()) {
        buf_a.add_field(name, initial.field(name));
        buf_b.add_field(name, initial.field(name));
    }
    if (w == 0 || h == 0) return buf_a;

    const Double_policy policy(program_.compiled());
    Step_context<Double_policy> context;
    context.policy = &policy;
    context.cp = &program_.compiled();
    context.scratch_index = &scratch_index_;
    context.scratch_rows = scratch_rows_;
    context.left_margin = left_margin_;
    context.right_margin = right_margin_;
    context.width = w;
    context.height = h;
    context.boundary = b;
    context.field_base.resize(static_cast<std::size_t>(pool.field_count()));
    context.field_row_off.assign(static_cast<std::size_t>(pool.field_count()), 0);
    context.field_direct_rows.assign(static_cast<std::size_t>(pool.field_count()), 0);
    context.out_base.resize(step_->state_fields().size());
    context.state_pool_field.reserve(step_->state_fields().size());
    for (const std::string& name : step_->state_fields()) {
        context.state_pool_field.push_back(pool.find_field(name));
    }
    // Both buffers were built with identical field order, so one positional
    // mapping (pool field -> buffer index) serves every rebinding below.
    std::array<std::vector<const double*>, 2> bases;
    std::array<std::vector<double*>, 2> outs;
    bases[0].resize(static_cast<std::size_t>(pool.field_count()));
    bases[1].resize(static_cast<std::size_t>(pool.field_count()));
    for (int f = 0; f < pool.field_count(); ++f) {
        const auto idx = static_cast<std::size_t>(
            buf_a.index_of(intern_field(pool.field_name(f))));
        bases[0][static_cast<std::size_t>(f)] = buf_a.frame_at(idx).data().data();
        bases[1][static_cast<std::size_t>(f)] = buf_b.frame_at(idx).data().data();
    }
    outs[0].resize(step_->state_fields().size());
    outs[1].resize(step_->state_fields().size());
    for (std::size_t s = 0; s < step_->state_fields().size(); ++s) {
        outs[0][s] = buf_b.frame_at(s).data().data();
        outs[1][s] = buf_a.frame_at(s).data().data();
    }

    const int final_parity =
        run_buffers(context, iterations, b, options, state_up_, state_down_, bases, outs);
    return std::move(final_parity == 0 ? buf_a : buf_b);
}

Fixed_frame_result Exec_engine::run_fixed(const Frame_set& initial, int iterations,
                                          Boundary b, const Fixed_format& format,
                                          const Exec_options& options) const {
    const int w = initial.width();
    const int h = initial.height();
    const Expr_pool& pool = step_->pool();
    const Raw_quantizer quantize(format);
    const std::size_t elements = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);

    Fixed_frame_result result;
    result.width = w;
    result.height = h;
    result.format = format;

    // Quantize once into raw buffers: state fields double-buffered, const
    // fields shared by both parities (they are never rewritten).
    auto quantize_field = [&](const Frame& frame) {
        std::vector<std::int64_t> raw(elements);
        const std::vector<double>& data = frame.data();
        for (std::size_t i = 0; i < elements; ++i) raw[i] = quantize(data[i]);
        return raw;
    };
    std::vector<std::vector<std::int64_t>> state_a;
    std::vector<std::vector<std::int64_t>> state_b;
    std::vector<std::vector<std::int64_t>> const_raw;
    for (const std::string& name : step_->state_fields()) {
        result.names.push_back(name);
        state_a.push_back(quantize_field(initial.field(name)));
        state_b.emplace_back(elements, 0);
    }
    for (const std::string& name : step_->const_fields()) {
        result.names.push_back(name);
        const_raw.push_back(quantize_field(initial.field(name)));
    }

    auto finish = [&](std::vector<std::vector<std::int64_t>>&& state) {
        result.raw = std::move(state);
        for (std::vector<std::int64_t>& raw : const_raw) {
            result.raw.push_back(std::move(raw));
        }
        return std::move(result);
    };
    if (iterations <= 0 || w == 0 || h == 0) return finish(std::move(state_a));

    // One integer lowering per run; every fused level executes it.
    const Fixed_tape tape(program_.compiled(), format);
    const Fixed_policy policy(tape);
    Step_context<Fixed_policy> context;
    context.policy = &policy;
    context.cp = &program_.compiled();
    context.scratch_index = &scratch_index_;
    context.scratch_rows = scratch_rows_;
    context.left_margin = left_margin_;
    context.right_margin = right_margin_;
    context.width = w;
    context.height = h;
    context.boundary = b;
    context.field_base.resize(static_cast<std::size_t>(pool.field_count()));
    context.field_row_off.assign(static_cast<std::size_t>(pool.field_count()), 0);
    context.field_direct_rows.assign(static_cast<std::size_t>(pool.field_count()), 0);
    context.out_base.resize(step_->state_fields().size());
    context.state_pool_field.reserve(step_->state_fields().size());
    for (const std::string& name : step_->state_fields()) {
        context.state_pool_field.push_back(pool.find_field(name));
    }
    std::array<std::vector<const std::int64_t*>, 2> bases;
    std::array<std::vector<std::int64_t*>, 2> outs;
    bases[0].resize(static_cast<std::size_t>(pool.field_count()));
    bases[1].resize(static_cast<std::size_t>(pool.field_count()));
    for (std::size_t s = 0; s < state_a.size(); ++s) {
        const auto f = static_cast<std::size_t>(context.state_pool_field[s]);
        bases[0][f] = state_a[s].data();
        bases[1][f] = state_b[s].data();
    }
    for (std::size_t k = 0; k < const_raw.size(); ++k) {
        const auto f = static_cast<std::size_t>(
            pool.find_field(step_->const_fields()[k]));
        bases[0][f] = const_raw[k].data();
        bases[1][f] = const_raw[k].data();
    }
    outs[0].resize(state_a.size());
    outs[1].resize(state_a.size());
    for (std::size_t s = 0; s < state_a.size(); ++s) {
        outs[0][s] = state_b[s].data();
        outs[1][s] = state_a[s].data();
    }

    const int final_parity =
        run_buffers(context, iterations, b, options, state_up_, state_down_, bases, outs);
    return finish(final_parity == 0 ? std::move(state_a) : std::move(state_b));
}

Frame_set Fixed_frame_result::to_frame_set() const {
    Frame_set frames(width, height);
    for (std::size_t i = 0; i < names.size(); ++i) {
        Frame frame(width, height);
        std::vector<double>& data = frame.data();
        for (std::size_t j = 0; j < raw[i].size(); ++j) {
            data[j] = from_raw(raw[i][j], format);
        }
        frames.add_field(names[i], std::move(frame));
    }
    return frames;
}

}  // namespace islhls
