#include "sim/exec_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace islhls {

namespace {

// Everything one step execution needs, fixed before the row loops start.
struct Step_context {
    const Compiled_program* cp = nullptr;
    const std::vector<int>* scratch_index = nullptr;
    int scratch_rows = 0;
    int left_margin = 0;
    int right_margin = 0;
    int width = 0;
    int height = 0;
    Boundary boundary = Boundary::clamp;
    std::vector<const double*> field_base;  // per pool field index
    std::vector<double*> out_base;          // per state field
};

// Per-thread scratch bound to one frame width: one row per operation and
// constant slot, a zero row backing Boundary::zero reads of out-of-range
// rows, and the scalar buffers the border columns use. Constant rows are
// filled once at bind time — slots are single-assignment, so they survive
// every later row execution.
struct Workspace {
    std::vector<double> scratch;
    std::vector<const double*> row;  // per slot: operand row base pointer;
                                     // the value at column x is row[slot][x + col_off[slot]]
    std::vector<int> col_off;        // per slot: static dx (inputs) or 0
    std::vector<double> zero_row;
    std::vector<double> point_slots;
    std::vector<double> point_inputs;
};

void bind_workspace(Workspace& ws, const Step_context& c) {
    const auto w = static_cast<std::size_t>(c.width);
    const auto slots = static_cast<std::size_t>(c.cp->slot_count());
    ws.scratch.assign(static_cast<std::size_t>(c.scratch_rows) * w, 0.0);
    ws.row.assign(slots, nullptr);
    ws.col_off.assign(slots, 0);
    for (const Tape_input& in : c.cp->inputs()) {
        ws.col_off[static_cast<std::size_t>(in.slot)] = in.dx;
    }
    ws.zero_row.assign(w, 0.0);
    ws.point_slots.assign(slots, 0.0);
    ws.point_inputs.assign(c.cp->inputs().size(), 0.0);
    for (std::size_t slot = 0; slot < slots; ++slot) {
        const int idx = (*c.scratch_index)[slot];
        if (idx >= 0) ws.row[slot] = ws.scratch.data() + static_cast<std::size_t>(idx) * w;
    }
    for (const Tape_constant& k : c.cp->constants()) {
        double* r = ws.scratch.data() +
                    static_cast<std::size_t>((*c.scratch_index)[k.slot]) * w;
        std::fill(r, r + w, k.value);
    }
}

// Reusable workspaces for the parallel row blocks; scratch contents never
// influence results, so which worker gets which workspace is irrelevant to
// the determinism contract.
class Workspace_pool {
public:
    explicit Workspace_pool(const Step_context& context) : context_(&context) {}

    std::unique_ptr<Workspace> acquire() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                std::unique_ptr<Workspace> ws = std::move(free_.back());
                free_.pop_back();
                return ws;
            }
        }
        auto ws = std::make_unique<Workspace>();
        bind_workspace(*ws, *context_);
        return ws;
    }

    void release(std::unique_ptr<Workspace> ws) {
        const std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(ws));
    }

private:
    const Step_context* context_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<Workspace>> free_;
};

// Scalar fallback for one border column: every read goes through the
// Boundary policy, exactly like the reference interpreter.
void eval_border_column(const Step_context& c, Workspace& ws, int x, int y) {
    const std::vector<Tape_input>& inputs = c.cp->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Tape_input& in = inputs[i];
        const int rx = resolve_coordinate(x + in.dx, c.width, c.boundary);
        const int ry = resolve_coordinate(y + in.dy, c.height, c.boundary);
        ws.point_inputs[i] =
            (rx < 0 || ry < 0)
                ? 0.0
                : c.field_base[static_cast<std::size_t>(in.field)]
                             [static_cast<std::size_t>(ry) * c.width + rx];
    }
    c.cp->eval_point(ws.point_inputs.data(), ws.point_slots.data());
    const std::vector<std::int32_t>& out_slots = c.cp->output_slots();
    for (std::size_t s = 0; s < c.out_base.size(); ++s) {
        c.out_base[s][static_cast<std::size_t>(y) * c.width + x] =
            ws.point_slots[static_cast<std::size_t>(out_slots[s])];
    }
}

// One tape operation over the interior span [x0, x1) of the current row.
// Each case is a single loop of one arithmetic operation over contiguous
// data — the form the compiler auto-vectorizes. The arithmetic matches
// apply_op() case for case, so results are bit-identical to the scalar path.
//
// Operands are addressed as base[x + col_off]: the per-slot column offset
// (dx for input slots, 0 otherwise) is applied at the indexing site, never
// folded into the base pointer — x + col_off is in [0, width) for every
// interior x, so no pointer outside its allocation is ever formed.
void run_op_span(const Tape_op& op, const Workspace& ws, double* __restrict dst,
                 int x0, int x1) {
    const double* a = ws.row[static_cast<std::size_t>(op.src[0])];
    const int oa = ws.col_off[static_cast<std::size_t>(op.src[0])];
    const double* b = nullptr;
    int ob = 0;
    if (op.src_count > 1) {
        b = ws.row[static_cast<std::size_t>(op.src[1])];
        ob = ws.col_off[static_cast<std::size_t>(op.src[1])];
    }
    switch (op.kind) {
        case Op_kind::add:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] + b[x + ob];
            break;
        case Op_kind::sub:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] - b[x + ob];
            break;
        case Op_kind::mul:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] * b[x + ob];
            break;
        case Op_kind::div:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] / b[x + ob];
            break;
        case Op_kind::min_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fmin(a[x + oa], b[x + ob]);
            break;
        case Op_kind::max_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fmax(a[x + oa], b[x + ob]);
            break;
        case Op_kind::neg:
            for (int x = x0; x < x1; ++x) dst[x] = -a[x + oa];
            break;
        case Op_kind::abs_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::fabs(a[x + oa]);
            break;
        case Op_kind::sqrt_op:
            for (int x = x0; x < x1; ++x) dst[x] = std::sqrt(a[x + oa]);
            break;
        case Op_kind::lt:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] < b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::le:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] <= b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::eq:
            for (int x = x0; x < x1; ++x) dst[x] = a[x + oa] == b[x + ob] ? 1.0 : 0.0;
            break;
        case Op_kind::select: {
            const double* t = ws.row[static_cast<std::size_t>(op.src[1])];
            const int ot = ws.col_off[static_cast<std::size_t>(op.src[1])];
            const double* f = ws.row[static_cast<std::size_t>(op.src[2])];
            const int of = ws.col_off[static_cast<std::size_t>(op.src[2])];
            for (int x = x0; x < x1; ++x) {
                dst[x] = a[x + oa] != 0.0 ? t[x + ot] : f[x + of];
            }
            break;
        }
        case Op_kind::constant:
        case Op_kind::input:
            throw Internal_error("leaf kind on the operation tape");
    }
}

void exec_rows(const Step_context& c, Workspace& ws, int y0, int y1) {
    const int w = c.width;
    const int h = c.height;
    const std::vector<Tape_input>& inputs = c.cp->inputs();
    const std::vector<Tape_op>& ops = c.cp->ops();
    const std::vector<std::int32_t>& out_slots = c.cp->output_slots();
    // Interior columns: [x0, x1) reads in-range for every input offset.
    const int x0 = std::min(c.left_margin, w);
    const int x1 = std::max(x0, w - c.right_margin);

    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < x0; ++x) eval_border_column(c, ws, x, y);
        if (x1 > x0) {
            // Resolve the input row bases once per row; the static column
            // offsets bound in the workspace complete the addressing.
            for (const Tape_input& in : inputs) {
                const int ry = resolve_coordinate(y + in.dy, h, c.boundary);
                ws.row[static_cast<std::size_t>(in.slot)] =
                    ry < 0 ? ws.zero_row.data()
                           : c.field_base[static_cast<std::size_t>(in.field)] +
                                 static_cast<std::size_t>(ry) * w;
            }
            for (const Tape_op& op : ops) {
                double* dst =
                    ws.scratch.data() +
                    static_cast<std::size_t>(
                        (*c.scratch_index)[static_cast<std::size_t>(op.dest)]) *
                        w;
                run_op_span(op, ws, dst, x0, x1);
            }
            for (std::size_t s = 0; s < c.out_base.size(); ++s) {
                const std::size_t slot = static_cast<std::size_t>(out_slots[s]);
                const double* r = ws.row[slot] + (x0 + ws.col_off[slot]);
                std::memcpy(c.out_base[s] + static_cast<std::size_t>(y) * w + x0,
                            r, static_cast<std::size_t>(x1 - x0) * sizeof(double));
            }
        }
        for (int x = x1; x < w; ++x) eval_border_column(c, ws, x, y);
    }
}

}  // namespace

Exec_engine::Exec_engine(const Stencil_step& step)
    : step_(&step), program_(build_program(step.pool(), step.updates())) {
    const Compiled_program& cp = program_.compiled();
    scratch_index_.assign(static_cast<std::size_t>(cp.slot_count()), -1);
    for (const Tape_op& op : cp.ops()) {
        scratch_index_[static_cast<std::size_t>(op.dest)] = scratch_rows_++;
    }
    for (const Tape_constant& k : cp.constants()) {
        scratch_index_[static_cast<std::size_t>(k.slot)] = scratch_rows_++;
    }
    left_margin_ = std::max(0, -cp.min_dx());
    right_margin_ = std::max(0, cp.max_dx());
}

Frame_set Exec_engine::run(const Frame_set& initial, int iterations, Boundary b,
                           int threads) const {
    if (iterations <= 0) return initial;
    const int w = initial.width();
    const int h = initial.height();
    const Expr_pool& pool = step_->pool();

    // Double buffers in canonical field order (state first, then const);
    // const fields are copied once and never rewritten.
    Frame_set buf_a(w, h);
    Frame_set buf_b(w, h);
    for (const std::string& name : step_->state_fields()) {
        buf_a.add_field(name, initial.field(name));
        buf_b.add_field(name);
    }
    for (const std::string& name : step_->const_fields()) {
        buf_a.add_field(name, initial.field(name));
        buf_b.add_field(name, initial.field(name));
    }
    if (w == 0 || h == 0) return buf_a;

    Step_context context;
    context.cp = &program_.compiled();
    context.scratch_index = &scratch_index_;
    context.scratch_rows = scratch_rows_;
    context.left_margin = left_margin_;
    context.right_margin = right_margin_;
    context.width = w;
    context.height = h;
    context.boundary = b;
    context.field_base.resize(static_cast<std::size_t>(pool.field_count()));
    context.out_base.resize(step_->state_fields().size());

    const int total_threads = resolve_thread_count(threads);
    std::optional<Thread_pool> thread_pool;
    if (total_threads > 1 && h > 1) thread_pool.emplace(total_threads);

    Workspace serial_ws;
    if (!thread_pool) bind_workspace(serial_ws, context);
    Workspace_pool workspaces(context);

    Frame_set* current = &buf_a;
    Frame_set* next = &buf_b;
    for (int it = 0; it < iterations; ++it) {
        for (int f = 0; f < pool.field_count(); ++f) {
            context.field_base[static_cast<std::size_t>(f)] =
                current->field(pool.field_name(f)).data().data();
        }
        for (std::size_t s = 0; s < step_->state_fields().size(); ++s) {
            context.out_base[s] = next->field(step_->state_fields()[s]).data().data();
        }
        if (!thread_pool) {
            exec_rows(context, serial_ws, 0, h);
        } else {
            const std::size_t blocks = static_cast<std::size_t>(
                std::min(h, thread_pool->thread_count() * 4));
            thread_pool->for_each_index(blocks, [&](std::size_t i) {
                std::unique_ptr<Workspace> ws = workspaces.acquire();
                const int b0 = static_cast<int>(i * static_cast<std::size_t>(h) / blocks);
                const int b1 =
                    static_cast<int>((i + 1) * static_cast<std::size_t>(h) / blocks);
                exec_rows(context, *ws, b0, b1);
                workspaces.release(std::move(ws));
            });
        }
        std::swap(current, next);
    }
    return std::move(*current);
}

}  // namespace islhls
