// Virtual synthesis: the substitute for the Xilinx toolchain runs the paper
// performed (see DESIGN.md, substitution table).
//
// Given a cone's register program, the synthesizer technology-maps every
// operation (cost_model), applies a logic-sharing discount that grows with
// design size (real tools find sharing beyond the explicit register reuse,
// which is why the paper's Eq. 1 needs the empirical alpha), adds packing
// overhead, and perturbs the result by a small deterministic per-design
// amount standing in for unmodelled tool behaviour. It also reports timing
// (f_max from the slowest pipeline stage) and a simulated tool runtime,
// which is what makes exhaustive synthesis of the whole design space
// impractical and motivates the estimation flow.
#pragma once

#include <string>

#include "backend/fixed_point.hpp"
#include "cone/cone.hpp"
#include "synth/cost_model.hpp"
#include "synth/device.hpp"

namespace islhls {

struct Synth_options {
    Fixed_format format;
    bool use_dsp = false;  // see Cost_options::use_dsp
    // Seed folded into the per-design perturbation; fixed default so every
    // run of the repo reproduces the same numbers.
    std::uint64_t seed = 0xD5C0DE5EEDULL;
};

struct Synthesis_report {
    std::string design_name;
    double lut_count = 0.0;      // post-optimization slice LUTs
    double raw_lut_count = 0.0;  // direct mapping before logic sharing
    double ff_count = 0.0;
    int dsp_count = 0;
    double bram_kbits = 0.0;     // input/output window buffers
    double f_max_mhz = 0.0;
    int latency_cycles = 0;      // pipeline fill latency of one cone pass
    int register_count = 0;      // the Reg_i the estimator sees
    double synthesis_cpu_seconds = 0.0;  // simulated tool runtime

    // True when the design fits the device (LUT/DSP/BRAM wise) on its own.
    bool fits = true;
};

// Synthesizes one cone for one device.
Synthesis_report synthesize_cone(const Cone& cone, const std::string& kernel_name,
                                 const Fpga_device& device,
                                 const Synth_options& options = {});

// Lower-level entry: synthesizes an arbitrary register program under a
// design name (used by tests and by the generic-HLS baseline).
Synthesis_report synthesize_program(const Register_program& program,
                                    const std::string& design_name,
                                    const Fpga_device& device,
                                    const Synth_options& options = {});

}  // namespace islhls
