// Technology-mapping cost model: per-operation LUT / DSP / timing costs.
//
// This is the virtual synthesizer's view of how a Virtex-class tool maps
// fixed-point operators: adders on carry chains, constant multipliers as
// CSD shift-add networks, variable multipliers on DSP blocks (or LUT arrays
// when the blocks run out), dividers and square roots as pipelined digit
// recurrences. Delays are post-route estimates (logic + local routing).
#pragma once

#include "backend/fixed_point.hpp"
#include "ir/program.hpp"

namespace islhls {

struct Op_cost {
    double luts = 0.0;
    int dsps = 0;
    double ff_bits = 0.0;       // pipeline register bits for the result
    double delay_ns = 0.0;      // combinational delay of one stage
    int latency_stages = 1;     // internal pipeline stages (div/sqrt > 1)
};

struct Cost_options {
    Fixed_format format;
    // Map variable multipliers to DSP blocks. Off by default: LUT-mapped
    // multipliers keep the area-vs-registers relation linear across the
    // whole design space (DSP exhaustion on big cones would otherwise put a
    // cliff into the Eq. 1 calibration); enable to study DSP-rich mappings.
    bool use_dsp = false;
};

// Cost of one instruction within its program (operand kinds decide, e.g.,
// multiplication by a constant is a shift-add network, not a DSP).
Op_cost cost_of_instruction(const Register_program& prog, std::size_t index,
                            const Cost_options& options);

// Aggregate over a whole program.
struct Program_cost {
    double luts = 0.0;
    int dsps = 0;
    double ff_bits = 0.0;
    double max_stage_delay_ns = 0.0;
    int latency_stages = 0;  // weighted critical path (stages, not ops)
};
Program_cost cost_of_program(const Register_program& prog, const Cost_options& options);

}  // namespace islhls
