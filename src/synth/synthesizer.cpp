#include "synth/synthesizer.hpp"

#include <algorithm>
#include <cmath>

#include "support/numeric.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

// Logic-sharing discount: big designs give the optimizer more sharing
// opportunities. The saturation range is mild — this is the systematic
// non-linearity Eq. 1's alpha cannot see, so it bounds the estimator's
// achievable accuracy (the paper observed ~3% average / ~6.5% max error).
double sharing_factor(int operation_count) {
    return 0.85 + 0.05 * std::exp(-static_cast<double>(operation_count) / 900.0);
}

// Deterministic per-design perturbation in [-2.5%, +2.5%]: the stand-in for
// unmodelled tool behaviour (placement luck, packing effects). Keyed by the
// design fingerprint so re-synthesis reproduces the same number.
double perturbation(const std::string& design_name, const Fpga_device& device,
                    std::uint64_t seed) {
    std::uint64_t h = seed;
    for (char c : design_name) h = hash_combine(h, static_cast<std::uint64_t>(c));
    for (char c : device.name) h = hash_combine(h, static_cast<std::uint64_t>(c));
    return (hash_to_unit(h) - 0.5) * 0.05;
}

}  // namespace

Synthesis_report synthesize_program(const Register_program& program,
                                    const std::string& design_name,
                                    const Fpga_device& device,
                                    const Synth_options& options) {
    Cost_options cost_options{options.format, options.use_dsp};
    // DSP exhaustion: retry mapping multipliers to LUTs when the device has
    // too few blocks (matters on the small parts).
    Program_cost cost = cost_of_program(program, cost_options);
    if (cost.dsps > device.dsp_count) {
        cost_options.use_dsp = false;
        cost = cost_of_program(program, cost_options);
    }

    Synthesis_report report;
    report.design_name = design_name;
    report.register_count = program.register_count();
    report.raw_lut_count = cost.luts;

    const double share = sharing_factor(program.register_count());
    // Packing/control overhead: input bank addressing plus a fixed FSM.
    const double overhead = 120.0 + 0.8 * program.input_count();
    double luts = cost.luts * share + overhead;
    luts *= 1.0 + perturbation(design_name, device, options.seed);
    report.lut_count = luts;
    report.ff_count = cost.ff_bits;
    report.dsp_count = cost.dsps;

    // Double-buffered input and output windows in BRAM.
    const double bits_per_word = options.format.total_bits();
    report.bram_kbits =
        2.0 * bits_per_word *
        (program.input_count() + static_cast<double>(program.outputs().size())) /
        1024.0;

    // Timing: slowest stage through fanout/routing derate that grows slowly
    // with design size, capped by the device grade.
    const double size_derate =
        1.0 + 0.18 * std::log10(1.0 + program.register_count() / 100.0);
    const double stage_ns =
        cost.max_stage_delay_ns * 1.15 * size_derate * device.speed_factor;
    report.f_max_mhz = std::min(device.max_clock_mhz, 1000.0 / std::max(stage_ns, 0.5));
    report.latency_cycles = std::max(1, cost.latency_stages);

    // Simulated synthesis runtime: super-linear in design size — the reason
    // the paper estimates instead of synthesizing the whole space.
    report.synthesis_cpu_seconds =
        3.0 + 0.02 * std::pow(static_cast<double>(program.register_count()), 1.25);

    report.fits = report.lut_count <= static_cast<double>(device.lut_count) &&
                  report.dsp_count <= device.dsp_count &&
                  report.bram_kbits <= static_cast<double>(device.bram_kbits);
    return report;
}

Synthesis_report synthesize_cone(const Cone& cone, const std::string& kernel_name,
                                 const Fpga_device& device,
                                 const Synth_options& options) {
    const std::string name =
        cat(kernel_name, "_w", cone.spec().window_width, "x",
            cone.spec().window_height, "_d", cone.spec().depth);
    return synthesize_program(cone.program(), name, device, options);
}

}  // namespace islhls
