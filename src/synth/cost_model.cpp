#include "synth/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace islhls {

namespace {

// Number of non-zero digits in the canonic signed digit representation of
// |raw|; approximated by popcount (upper bound, good enough for costing).
int csd_digits(std::int64_t raw) {
    std::uint64_t v = static_cast<std::uint64_t>(raw < 0 ? -raw : raw);
    int count = 0;
    while (v != 0) {
        count += static_cast<int>(v & 1u);
        v >>= 1;
    }
    return std::max(1, count);
}

// Constant operand of a binary instruction, if any: returns the raw
// fixed-point value and which side it is on.
struct Const_operand {
    bool present = false;
    std::int64_t raw = 0;
};

Const_operand find_const_operand(const Register_program& prog, const Instruction& in,
                                 const Fixed_format& fmt) {
    Const_operand result;
    for (int i = 0; i < in.operand_count; ++i) {
        const Instruction& op =
            prog.instructions()[static_cast<std::size_t>(in.operands[static_cast<std::size_t>(i)])];
        if (op.kind == Op_kind::constant) {
            result.present = true;
            result.raw = to_raw(op.value, fmt);
            return result;
        }
    }
    return result;
}

}  // namespace

Op_cost cost_of_instruction(const Register_program& prog, std::size_t index,
                            const Cost_options& options) {
    const Instruction& in = prog.instructions()[index];
    const int w = options.format.total_bits();
    Op_cost cost;

    switch (in.kind) {
        case Op_kind::constant:
            return cost;  // folded into the consuming operator
        case Op_kind::input:
            // Held in the input register bank; no logic of its own.
            cost.ff_bits = w;
            cost.latency_stages = 0;
            cost.delay_ns = 0.0;
            return cost;
        case Op_kind::add:
        case Op_kind::sub:
            cost.luts = w;
            cost.delay_ns = 1.8 + 0.06 * w;
            break;
        case Op_kind::mul: {
            const Const_operand k = find_const_operand(prog, in, options.format);
            if (k.present) {
                // CSD shift-add network: one adder row per extra digit.
                const int digits = csd_digits(k.raw);
                cost.luts = w * std::max(1, digits - 1) * 0.9 + 0.25 * w;
                cost.delay_ns = 2.0 + 0.05 * w + 0.5 * digits;
            } else if (options.use_dsp && w <= 18) {
                cost.dsps = 1;
                cost.luts = 10.0;  // alignment / rounding glue
                cost.delay_ns = 5.6;
            } else {
                cost.luts = 0.55 * w * w;
                cost.delay_ns = 4.0 + 0.12 * w;
            }
            break;
        }
        case Op_kind::div: {
            const Const_operand k = find_const_operand(prog, in, options.format);
            const Instruction& rhs = prog.instructions()[static_cast<std::size_t>(
                in.operands[1])];
            if (k.present && rhs.kind == Op_kind::constant) {
                // Division by a constant = multiplication by the reciprocal.
                cost.luts = w * 2.2;
                cost.delay_ns = 2.4 + 0.06 * w;
            } else {
                // Pipelined non-restoring array divider.
                cost.luts = 1.1 * w * w;
                cost.delay_ns = 4.2;
                cost.latency_stages = std::max(2, w / 2);
            }
            break;
        }
        case Op_kind::sqrt_op:
            cost.luts = 0.7 * w * w;
            cost.delay_ns = 4.2;
            cost.latency_stages = std::max(2, w / 2);
            break;
        case Op_kind::min_op:
        case Op_kind::max_op:
            cost.luts = 1.5 * w;  // comparator + mux
            cost.delay_ns = 2.4 + 0.04 * w;
            break;
        case Op_kind::neg:
        case Op_kind::abs_op:
            cost.luts = w;
            cost.delay_ns = 1.6 + 0.04 * w;
            break;
        case Op_kind::lt:
        case Op_kind::le:
        case Op_kind::eq:
            cost.luts = 0.7 * w;
            cost.delay_ns = 1.8 + 0.035 * w;
            break;
        case Op_kind::select:
            cost.luts = 0.5 * w + 2;
            cost.delay_ns = 1.4 + 0.02 * w;
            break;
    }
    cost.ff_bits = w;  // every operation result lands in a pipeline register
    return cost;
}

Program_cost cost_of_program(const Register_program& prog, const Cost_options& options) {
    Program_cost total;
    const auto& instrs = prog.instructions();
    // Weighted critical path: per-instruction depth measured in pipeline
    // stages (dividers/square roots contribute several).
    std::vector<int> stage_depth(instrs.size(), 0);
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Op_cost c = cost_of_instruction(prog, i, options);
        total.luts += c.luts;
        total.dsps += c.dsps;
        total.ff_bits += c.ff_bits;
        total.max_stage_delay_ns = std::max(total.max_stage_delay_ns, c.delay_ns);
        const Instruction& in = instrs[i];
        int operand_depth = 0;
        for (int a = 0; a < in.operand_count; ++a) {
            operand_depth = std::max(
                operand_depth,
                stage_depth[static_cast<std::size_t>(in.operands[static_cast<std::size_t>(a)])]);
        }
        stage_depth[i] = operand_depth + (is_operation(in.kind) ? c.latency_stages : 0);
        total.latency_stages = std::max(total.latency_stages, stage_depth[i]);
    }
    return total;
}

}  // namespace islhls
