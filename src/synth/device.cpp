#include "synth/device.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {
std::vector<Fpga_device> build_devices() {
    std::vector<Fpga_device> devices;

    // Paper's main evaluation part (Figs. 7 and 10).
    Fpga_device v6;
    v6.name = "xc6vlx760";
    v6.family = "Virtex-6";
    v6.lut_count = 474240;
    v6.ff_count = 948480;
    v6.dsp_count = 864;
    v6.bram_kbits = 25920;
    v6.speed_factor = 1.0;
    v6.max_clock_mhz = 250.0;
    v6.usable_fraction = 0.75;
    v6.offchip_elems_per_cycle = 8.0;
    devices.push_back(v6);

    // Part used by [16] (Cope) for the convolution comparison in Sec. 4.1.
    Fpga_device v2p;
    v2p.name = "xc2vp30";
    v2p.family = "Virtex-II Pro";
    v2p.lut_count = 27392;
    v2p.ff_count = 27392;
    v2p.dsp_count = 136;  // MULT18x18 blocks
    v2p.bram_kbits = 2448;
    v2p.speed_factor = 2.2;  // older process, slower logic
    v2p.max_clock_mhz = 120.0;
    v2p.usable_fraction = 0.8;
    v2p.offchip_elems_per_cycle = 4.0;
    devices.push_back(v2p);

    // A contemporary larger part (extension experiments).
    Fpga_device v7;
    v7.name = "xc7vx485t";
    v7.family = "Virtex-7";
    v7.lut_count = 303600;
    v7.ff_count = 607200;
    v7.dsp_count = 2800;
    v7.bram_kbits = 37080;
    v7.speed_factor = 0.85;
    v7.max_clock_mhz = 350.0;
    v7.usable_fraction = 0.75;
    v7.offchip_elems_per_cycle = 16.0;
    devices.push_back(v7);

    // Small generic part for fast unit tests.
    Fpga_device small;
    small.name = "generic_small";
    small.family = "Generic";
    small.lut_count = 20000;
    small.ff_count = 40000;
    small.dsp_count = 40;
    small.bram_kbits = 1000;
    small.speed_factor = 1.5;
    small.max_clock_mhz = 200.0;
    small.usable_fraction = 0.8;
    small.offchip_elems_per_cycle = 4.0;
    devices.push_back(small);

    return devices;
}
}  // namespace

const std::vector<Fpga_device>& all_devices() {
    static const std::vector<Fpga_device> devices = build_devices();
    return devices;
}

const Fpga_device& device_by_name(const std::string& name) {
    for (const Fpga_device& d : all_devices()) {
        if (d.name == name) return d;
    }
    throw Error(cat("unknown device '", name, "'"));
}

}  // namespace islhls
