// FPGA device database.
//
// The virtual synthesizer and the throughput model read device capacities and
// timing factors from here. The two parts the paper evaluates on (Virtex-6
// XC6VLX760 for the headline numbers, Virtex-II Pro for the literature
// comparison) are included alongside a Virtex-7 and a small generic part used
// by tests.
#pragma once

#include <string>
#include <vector>

namespace islhls {

struct Fpga_device {
    std::string name;    // registry key, e.g. "xc6vlx760"
    std::string family;  // e.g. "Virtex-6"
    long long lut_count = 0;
    long long ff_count = 0;
    int dsp_count = 0;           // hardware multiplier blocks
    long long bram_kbits = 0;    // on-chip block RAM
    double speed_factor = 1.0;   // multiplies op delays (1.0 = Virtex-6 class)
    double max_clock_mhz = 400;  // hard cap on the achievable clock
    // Fraction of LUTs usable before routing congestion makes designs
    // unroutable; the explorer never allocates beyond it.
    double usable_fraction = 0.75;
    // Off-chip memory bandwidth, elements per clock cycle at the design clock
    // (element = one fixed-point word, DMA burst assumed).
    double offchip_elems_per_cycle = 8.0;

    long long usable_luts() const {
        return static_cast<long long>(static_cast<double>(lut_count) * usable_fraction);
    }
};

// Parts in a stable order; names: xc6vlx760, xc2vp30, xc7vx485t, generic_small.
const std::vector<Fpga_device>& all_devices();

// Lookup by name; throws Error when unknown.
const Fpga_device& device_by_name(const std::string& name);

}  // namespace islhls
