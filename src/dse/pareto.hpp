// Pareto extraction over (area, time) design points — both minimized.
#pragma once

#include <cstddef>
#include <vector>

namespace islhls {

struct Design_point {
    double area_luts = 0.0;
    double seconds_per_frame = 0.0;
    std::size_t tag = 0;  // caller's index into its own evaluation list
};

// Indices (into `points`) of the non-dominated set, sorted by ascending area.
// A point dominates another when it is <= in both objectives and < in at
// least one. Duplicate-coordinate points keep the first occurrence.
std::vector<std::size_t> pareto_front(const std::vector<Design_point>& points);

// True when `a` dominates `b`.
bool dominates(const Design_point& a, const Design_point& b);

}  // namespace islhls
