#include "dse/backend.hpp"

#include <iomanip>
#include <sstream>

#include "dse/pareto.hpp"

namespace islhls {

std::string Arch_backend::dump(const std::vector<Backend_point>& points) const {
    std::ostringstream os;
    os << std::setprecision(17);
    os << "points " << points.size() << "\n";
    for (const Backend_point& p : points) os << p.detail << "\n";
    std::vector<Design_point> dps;
    dps.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        dps.push_back({points[i].area_luts, points[i].seconds_per_frame, i});
    }
    os << "front";
    for (std::size_t i : pareto_front(dps)) os << " " << i;
    os << "\n";
    return os.str();
}

std::vector<Backend_point> evaluate_all_candidates(const Arch_backend& backend) {
    std::vector<Backend_point> points;
    const std::size_t count = backend.candidate_count();
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<Backend_point> candidate = backend.evaluate_candidate(i);
        points.insert(points.end(), candidate.begin(), candidate.end());
    }
    return points;
}

}  // namespace islhls
