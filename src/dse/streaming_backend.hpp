// Streaming multi-PE array backend.
//
// Where the paper's datapath tiles windows through a shared on-chip buffer,
// the streaming style (spcl/stencil_hls, Zohouri, SASA — PAPERS.md) fuses
// `depth` iterations into one deep pipeline and streams whole rows through
// it: `vector_width` elements enter per cycle, `pe_count` PEs each own a
// horizontal band of the frame, and `channels` off-chip channels feed the
// array. A frame pass costs max(compute, transfer) cycles; ceil(N/depth)
// passes run per frame. Halo cost is charged from pipeline depth: a band
// must stream footprint*depth extra rows per open edge, and every PE keeps
// the full input window height minus one in shift-register line buffers
// (charged as SRL LUTs on top of the per-PE datapath cost from the same
// Eq. 1 area model the paper backend calibrates).
//
// The model is validated against a cycle-approximate walk in sim/arch_sim
// (simulate_streaming_cycles), gated on all nine kernels.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dse/backend.hpp"
#include "dse/evaluator.hpp"

namespace islhls {

// One point of the streaming design space.
struct Streaming_config {
    int depth = 1;         // iterations fused per pass (temporal pipeline)
    int vector_width = 1;  // elements per cycle per PE (spatial, within a row)
    int pe_count = 1;      // row-band replication across the frame
    int channels = 1;      // off-chip channels feeding the array
};
std::string to_string(const Streaming_config& config);

struct Streaming_evaluation {
    Streaming_config config;
    bool feasible = true;
    std::string infeasible_reason;

    double area_luts = 0.0;         // datapaths + line buffers + channel logic
    double datapath_luts = 0.0;     // Eq. 1 per-PE cost x pe_count
    double line_buffer_luts = 0.0;  // SRL-mapped line buffers
    double line_buffer_kbits = 0.0;
    double f_max_mhz = 0.0;
    int passes = 0;                 // ceil(N / depth)
    double compute_cycles = 0.0;    // slowest band, one pass
    double memory_cycles = 0.0;     // channel transfer, one pass
    double cycles_per_pass = 0.0;   // max(compute, memory)
    std::string bottleneck;         // "compute" | "channel"
    double seconds_per_frame = 0.0;
    double fps = 0.0;
};

// Full-precision one-line rendering (no trailing newline); the streaming
// analogue of dump_evaluation_line.
std::string dump_line(const Streaming_evaluation& eval);

struct Streaming_options {
    std::vector<int> vector_widths = {1, 2, 4, 8};
    std::vector<int> pe_counts = {1, 2, 4, 8};
    std::vector<int> channel_counts = {1, 2, 4};
    double pe_overhead_luts = 6000.0;       // DMA engine + band control per PE
    double channel_overhead_luts = 9000.0;  // memory controller per channel
    double srl_bits_per_lut = 32.0;         // SRL packing of line-buffer bits
};

class Streaming_backend : public Arch_backend {
public:
    Streaming_backend(Cone_library& library, const Fpga_device& device,
                      const Evaluator_options& evaluator_options,
                      const Space_options& space,
                      Streaming_options options = {});

    const std::string& name() const override;
    void calibrate() override;
    std::size_t candidate_count() const override;
    std::vector<Backend_point> evaluate_candidate(std::size_t index) const override;

    // Typed evaluation of one config; pure const after calibrate(). Never
    // throws on infeasible configs (reports them).
    Streaming_evaluation evaluate(const Streaming_config& config) const;

    const std::vector<Streaming_config>& configs() const { return configs_; }
    const Streaming_options& streaming_options() const { return options_; }
    const Fpga_device& device() const { return device_; }

private:
    // Everything evaluate() needs about one fused depth, captured during the
    // serial calibrate() so evaluation never touches the library's locks or
    // the shared expression pool.
    struct Depth_profile {
        int register_count = 0;   // cone(1, d) registers (one output column)
        int pipeline_fill = 0;    // levelized DAG depth of cone(1, d)
        int halo_up = 0;          // extra rows above a band: footprint.up * d
        int halo_down = 0;        // extra rows below: footprint.down * d
        // synthesis(v, d) clock per vectorization width, capped at the
        // device: a v-wide PE is a v-column cone whose deeper sharing and
        // fatter registers derate the clock, so the streaming f_max is
        // calibrated against the width actually instantiated instead of
        // inheriting the one-column (or the paper model's) clock.
        std::map<int, double> f_max_by_width;
        Area_model model{1.0};    // Eq. 1 model fitted at the word width
    };

    Cone_library& library_;
    const Fpga_device& device_;
    Evaluator_options evaluator_options_;
    Space_options space_;
    Streaming_options options_;
    std::vector<Streaming_config> configs_;
    std::map<int, Depth_profile> profiles_;  // per fused depth
    int fields_in_ = 0;   // fields streamed in (state + const)
    int fields_out_ = 0;  // state fields streamed back out
    bool calibrated_ = false;
};

}  // namespace islhls
