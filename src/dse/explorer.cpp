#include "dse/explorer.hpp"

#include <algorithm>

#include "dse/pareto.hpp"

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/text.hpp"

namespace islhls {

Explorer::Explorer(Cone_library& library, const Fpga_device& device,
                   const Evaluator_options& evaluator_options,
                   const Space_options& space_options)
    : evaluator_(library, device, evaluator_options), space_(space_options) {
    check_internal(space_.iterations >= 1 && space_.max_window >= 1 &&
                       space_.max_depth >= 1,
                   "invalid space options");
}

std::vector<std::vector<int>> Explorer::depth_partitions() const {
    std::vector<int> parts;
    for (int d = 1; d <= space_.max_depth; ++d) parts.push_back(d);
    return partitions_into(space_.iterations, parts);
}

std::vector<int> Explorer::canonical_partition(int primary_depth) const {
    check_internal(primary_depth >= 1, "primary depth must be >= 1");
    std::vector<int> levels;
    int remaining = space_.iterations;
    int depth = primary_depth;
    while (remaining > 0) {
        if (depth > remaining) depth = remaining;
        levels.push_back(depth);
        remaining -= depth;
    }
    return levels;
}

Explorer::Grow_result Explorer::grow_allocation(Arch_instance instance,
                                                double area_budget,
                                                int max_total_cores,
                                                std::vector<Arch_evaluation>* out) {
    Grow_result result;
    // Minimal allocation: one core per depth class (the paper's feasibility
    // requirement).
    instance.cores_per_depth.clear();
    for (int d : instance.depth_classes()) instance.cores_per_depth[d] = 1;

    for (;;) {
        Arch_evaluation eval = evaluator_.evaluate(instance);
        const bool fits = eval.estimated_area_luts <= area_budget && eval.feasible;
        if (!fits) break;
        if (out != nullptr) out->push_back(eval);
        if (!result.any_feasible ||
            eval.throughput.fps > result.best.throughput.fps) {
            result.best = eval;
            result.any_feasible = true;
        }
        // Adding cores only helps while the design is core-bound.
        if (eval.throughput.bottleneck != "core") break;
        int total_cores = 0;
        for (const auto& [d, n] : instance.cores_per_depth) total_cores += n;
        if (total_cores >= max_total_cores) break;
        // Feed the bottleneck class.
        int bottleneck_depth = -1;
        double worst = -1.0;
        for (const auto& [d, cycles] : eval.throughput.class_cycles) {
            if (cycles > worst) {
                worst = cycles;
                bottleneck_depth = d;
            }
        }
        if (bottleneck_depth < 0) break;
        instance.cores_per_depth[bottleneck_depth] += 1;
    }
    return result;
}

Explorer::Pareto_result Explorer::explore_pareto() {
    Pareto_result result;
    const auto partitions = depth_partitions();
    for (int w = 1; w <= space_.max_window; ++w) {
        for (const auto& partition : partitions) {
            Arch_instance instance;
            instance.window = w;
            instance.level_depths = partition;
            grow_allocation(instance, space_.pareto_area_cap_luts,
                            space_.max_cores_per_sweep, &result.points);
        }
    }
    std::vector<Design_point> dps;
    dps.reserve(result.points.size());
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        dps.push_back({result.points[i].estimated_area_luts,
                       result.points[i].throughput.seconds_per_frame, i});
    }
    result.front = pareto_front(dps);
    return result;
}

Explorer::Fit_result Explorer::fit_device() {
    Fit_result result;
    const double budget =
        static_cast<double>(evaluator_.device().usable_luts());
    for (int w = 1; w <= space_.max_window; ++w) {
        for (int d = 1; d <= space_.max_depth; ++d) {
            Fit_cell cell;
            cell.window = w;
            cell.primary_depth = d;
            Arch_instance instance;
            instance.window = w;
            instance.level_depths = canonical_partition(d);
            const Grow_result grown = grow_allocation(
                instance, budget, space_.max_cores_per_sweep * 4, nullptr);
            cell.valid = grown.any_feasible;
            if (cell.valid) {
                cell.eval = grown.best;
                if (!result.has_best ||
                    cell.eval.throughput.fps > result.best.throughput.fps) {
                    result.best = cell.eval;
                    result.has_best = true;
                }
            }
            result.grid.push_back(std::move(cell));
        }
    }
    return result;
}

Explorer::Area_validation Explorer::validate_area_model() {
    Area_validation validation;
    const auto& calibration = evaluator_.options().calibration_windows;
    double err_sum = 0.0;
    int err_count = 0;
    for (int d = 1; d <= space_.max_depth; ++d) {
        for (int w = 1; w <= space_.max_window; ++w) {
            Area_point p;
            p.window = w;
            p.depth = d;
            p.registers = evaluator_.library().stats(w, d).register_count;
            p.estimated_luts = evaluator_.estimated_cone_area(w, d);
            p.actual_luts = evaluator_.actual_cone_area(w, d);
            p.is_calibration = std::find(calibration.begin(), calibration.end(), w) !=
                               calibration.end();
            p.rel_error = relative_error(p.estimated_luts, p.actual_luts);
            if (!p.is_calibration) {
                validation.max_rel_error = std::max(validation.max_rel_error, p.rel_error);
                err_sum += p.rel_error;
                err_count += 1;
            }
            validation.points.push_back(p);
        }
    }
    validation.avg_rel_error = err_count > 0 ? err_sum / err_count : 0.0;
    return validation;
}

}  // namespace islhls
