#include "dse/explorer.hpp"

#include <algorithm>

#include "dse/pareto.hpp"

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/parallel.hpp"

namespace islhls {

Explorer::Explorer(Cone_library& library, const Fpga_device& device,
                   const Evaluator_options& evaluator_options,
                   const Space_options& space_options, Thread_pool* shared_pool)
    : evaluator_(library, device, evaluator_options),
      space_(space_options),
      paper_(evaluator_, space_options),
      external_pool_(shared_pool) {
    check_internal(space_.iterations >= 1 && space_.max_window >= 1 &&
                       space_.max_depth >= 1,
                   "invalid space options");
}

std::vector<std::vector<int>> Explorer::depth_partitions() const {
    return islhls::depth_partitions(space_.iterations, space_.max_depth);
}

std::vector<int> Explorer::canonical_partition(int primary_depth) const {
    return islhls::canonical_partition(space_.iterations, primary_depth);
}

void Explorer::run_parallel(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    const int threads = external_pool_ ? external_pool_->thread_count()
                                       : resolve_thread_count(space_.threads);
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    if (external_pool_) {
        external_pool_->for_each_index(count, body);
        return;
    }
    if (!pool_) pool_ = std::make_unique<Thread_pool>(space_.threads);
    pool_->for_each_index(count, body);
}

islhls::Pareto_result Explorer::explore_pareto() {
    // One-time alpha calibration, then every candidate evaluation is pure.
    paper_.calibrate();

    const std::size_t count = paper_.candidate_count();
    std::vector<std::vector<Arch_evaluation>> steps(count);
    run_parallel(count, [&](std::size_t i) { steps[i] = paper_.candidate_steps(i); });

    islhls::Pareto_result result;
    result.backend = paper_.name();
    for (const auto& candidate_steps : steps) {
        result.points.insert(result.points.end(), candidate_steps.begin(),
                             candidate_steps.end());
    }
    std::vector<Design_point> dps;
    dps.reserve(result.points.size());
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        dps.push_back({result.points[i].estimated_area_luts,
                       result.points[i].throughput.seconds_per_frame, i});
    }
    result.front = pareto_front(dps);
    return result;
}

Backend_pareto Explorer::explore_backends(
    const std::vector<Arch_backend*>& backends) {
    // Serial calibration of every backend (model fitting and cone building
    // mutate the shared library), then the union of the candidate axes fans
    // across one pool.
    for (Arch_backend* backend : backends) backend->calibrate();

    struct Slot {
        std::size_t backend = 0;
        std::size_t candidate = 0;
    };
    std::vector<Slot> slots;
    for (std::size_t b = 0; b < backends.size(); ++b) {
        const std::size_t count = backends[b]->candidate_count();
        for (std::size_t c = 0; c < count; ++c) slots.push_back({b, c});
    }

    std::vector<std::vector<Backend_point>> results(slots.size());
    run_parallel(slots.size(), [&](std::size_t i) {
        results[i] = backends[slots[i].backend]->evaluate_candidate(
            slots[i].candidate);
    });

    Backend_pareto merged;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const std::string& backend_name = backends[slots[i].backend]->name();
        for (Backend_point& point : results[i]) {
            merged.points.push_back({backend_name, std::move(point)});
        }
    }
    std::vector<Design_point> dps;
    dps.reserve(merged.points.size());
    for (std::size_t i = 0; i < merged.points.size(); ++i) {
        dps.push_back({merged.points[i].point.area_luts,
                       merged.points[i].point.seconds_per_frame, i});
    }
    merged.front = pareto_front(dps);
    return merged;
}

islhls::Fit_result Explorer::fit_device() {
    paper_.calibrate();

    islhls::Fit_result result;
    result.backend = paper_.name();
    const double budget =
        static_cast<double>(evaluator_.device().usable_luts());
    const std::size_t cells =
        static_cast<std::size_t>(space_.max_window) *
        static_cast<std::size_t>(space_.max_depth);
    result.grid.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (window, primary depth), matching the serial loop nest.
        const int w = static_cast<int>(i) / space_.max_depth + 1;
        const int d = static_cast<int>(i) % space_.max_depth + 1;
        Fit_cell& cell = result.grid[i];
        cell.window = w;
        cell.primary_depth = d;
        Arch_instance instance;
        instance.window = w;
        instance.level_depths = canonical_partition(d);
        const Paper_backend::Grow_result grown = paper_.grow_allocation(
            instance, budget, space_.max_cores_per_sweep * 4, nullptr);
        cell.valid = grown.any_feasible;
        if (cell.valid) cell.eval = grown.best;
    });
    // Best cell: first strict fps maximum in grid order, as the serial scan
    // picked it.
    for (const Fit_cell& cell : result.grid) {
        if (!cell.valid) continue;
        if (!result.has_best ||
            cell.eval.throughput.fps > result.best.throughput.fps) {
            result.best = cell.eval;
            result.has_best = true;
        }
    }
    return result;
}

islhls::Area_validation Explorer::validate_area_model() {
    paper_.calibrate();

    islhls::Area_validation validation;
    validation.backend = paper_.name();
    const auto& calibration = evaluator_.options().calibration_windows;
    const std::size_t cells =
        static_cast<std::size_t>(space_.max_window) *
        static_cast<std::size_t>(space_.max_depth);
    validation.points.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (depth, window), matching the serial loop nest.
        const int d = static_cast<int>(i) / space_.max_window + 1;
        const int w = static_cast<int>(i) % space_.max_window + 1;
        Area_point& p = validation.points[i];
        p.window = w;
        p.depth = d;
        p.registers = evaluator_.library().stats(w, d).register_count;
        p.estimated_luts = evaluator_.estimated_cone_area(w, d);
        p.actual_luts = evaluator_.actual_cone_area(w, d);
        p.is_calibration = std::find(calibration.begin(), calibration.end(), w) !=
                           calibration.end();
        p.rel_error = relative_error(p.estimated_luts, p.actual_luts);
    });
    double err_sum = 0.0;
    int err_count = 0;
    for (const Area_point& p : validation.points) {
        if (p.is_calibration) continue;
        validation.max_rel_error = std::max(validation.max_rel_error, p.rel_error);
        err_sum += p.rel_error;
        err_count += 1;
    }
    validation.avg_rel_error = err_count > 0 ? err_sum / err_count : 0.0;
    return validation;
}

islhls::Format_grid Explorer::search_formats(const Frame_set& content,
                                             Boundary boundary,
                                             Format_search_options options) {
    // One search per cell inside the candidate fan-out; the search's own
    // sample-window pool stays disabled (its parallelism would nest).
    options.threads = 1;
    // Pre-build the cone grid serially: cone construction extends the
    // kernel's shared expression pool and must not race the parallel cells
    // (the same discipline as Arch_evaluator::calibrate, without paying for
    // syntheses this search never reads).
    Cone_library& library = evaluator_.library();
    for (int d = 1; d <= space_.max_depth; ++d) {
        for (int w = 1; w <= space_.max_window; ++w) library.cone(w, d);
        // The per-cell pricing evaluators lazily calibrate their depth's
        // area model from the calibration windows — those cones must exist
        // before the fan-out too.
        for (int w : evaluator_.options().calibration_windows) library.cone(w, d);
    }

    islhls::Format_grid grid;
    grid.backend = paper_.name();
    const std::size_t cells = static_cast<std::size_t>(space_.max_window) *
                              static_cast<std::size_t>(space_.max_depth);
    grid.cells.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (window, depth), matching the fit grid.
        const int w = static_cast<int>(i) / space_.max_depth + 1;
        const int d = static_cast<int>(i) % space_.max_depth + 1;
        Format_cell& cell = grid.cells[i];
        cell.window = w;
        cell.depth = d;
        cell.result = search_fixed_format(library.cone(w, d), content, boundary,
                                          options);
        if (!cell.result.satisfiable) return;
        // Full re-evaluation at the searched format: a per-cell evaluator
        // whose cost model, synthesis clock and throughput all see the
        // searched word width prices the canonical single-level design point
        // (one core of this cell's cone) — so the cell is a true
        // (area, fps, PSNR) point, not an area-only re-price. Synthesis
        // memoization and lazy model calibration are thread-safe, and each
        // cell's evaluator is independent, so the grid stays bit-identical
        // at any thread count.
        Evaluator_options priced = evaluator_.options();
        priced.format = cell.result.format;
        priced.synth.format = cell.result.format;
        const Arch_evaluator pricer(library, evaluator_.device(), priced);
        Arch_instance instance;
        instance.window = w;
        instance.level_depths = {d};
        instance.cores_per_depth[d] = 1;
        const Arch_evaluation eval = pricer.evaluate(instance);
        if (!eval.feasible) return;
        cell.evaluated = true;
        cell.area_luts = eval.estimated_area_luts;
        cell.f_max_mhz = eval.f_max_mhz;
        cell.fps = eval.throughput.fps;
    });
    return grid;
}

}  // namespace islhls
