#include "dse/explorer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "dse/pareto.hpp"

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/parallel.hpp"
#include "support/text.hpp"

namespace islhls {

Explorer::Explorer(Cone_library& library, const Fpga_device& device,
                   const Evaluator_options& evaluator_options,
                   const Space_options& space_options, Thread_pool* shared_pool)
    : evaluator_(library, device, evaluator_options),
      space_(space_options),
      external_pool_(shared_pool) {
    check_internal(space_.iterations >= 1 && space_.max_window >= 1 &&
                       space_.max_depth >= 1,
                   "invalid space options");
}

std::vector<std::vector<int>> Explorer::depth_partitions() const {
    std::vector<int> parts;
    for (int d = 1; d <= space_.max_depth; ++d) parts.push_back(d);
    return partitions_into(space_.iterations, parts);
}

std::vector<int> Explorer::canonical_partition(int primary_depth) const {
    check_internal(primary_depth >= 1, "primary depth must be >= 1");
    std::vector<int> levels;
    int remaining = space_.iterations;
    int depth = primary_depth;
    while (remaining > 0) {
        if (depth > remaining) depth = remaining;
        levels.push_back(depth);
        remaining -= depth;
    }
    return levels;
}

void Explorer::run_parallel(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    const int threads = external_pool_ ? external_pool_->thread_count()
                                       : resolve_thread_count(space_.threads);
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    if (external_pool_) {
        external_pool_->for_each_index(count, body);
        return;
    }
    if (!pool_) pool_ = std::make_unique<Thread_pool>(space_.threads);
    pool_->for_each_index(count, body);
}

Explorer::Grow_result Explorer::grow_allocation(
    Arch_instance instance, double area_budget, int max_total_cores,
    std::vector<Arch_evaluation>* out) const {
    Grow_result result;
    // Minimal allocation: one core per depth class (the paper's feasibility
    // requirement).
    instance.cores_per_depth.clear();
    for (int d : instance.depth_classes()) instance.cores_per_depth[d] = 1;

    for (;;) {
        Arch_evaluation eval = evaluator_.evaluate(instance);
        const bool fits = eval.estimated_area_luts <= area_budget && eval.feasible;
        if (!fits) break;
        if (out != nullptr) out->push_back(eval);
        if (!result.any_feasible ||
            eval.throughput.fps > result.best.throughput.fps) {
            result.best = eval;
            result.any_feasible = true;
        }
        // Adding cores only helps while the design is core-bound.
        if (eval.throughput.bottleneck != "core") break;
        int total_cores = 0;
        for (const auto& [d, n] : instance.cores_per_depth) total_cores += n;
        if (total_cores >= max_total_cores) break;
        // Feed the bottleneck class.
        int bottleneck_depth = -1;
        double worst = -1.0;
        for (const auto& [d, cycles] : eval.throughput.class_cycles) {
            if (cycles > worst) {
                worst = cycles;
                bottleneck_depth = d;
            }
        }
        if (bottleneck_depth < 0) break;
        instance.cores_per_depth[bottleneck_depth] += 1;
    }
    return result;
}

Explorer::Pareto_result Explorer::explore_pareto() {
    // One-time alpha calibration, then every candidate evaluation is pure.
    evaluator_.calibrate(space_.max_window, space_.max_depth);

    const auto partitions = depth_partitions();
    struct Candidate {
        int window = 0;
        const std::vector<int>* partition = nullptr;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(static_cast<std::size_t>(space_.max_window) * partitions.size());
    for (int w = 1; w <= space_.max_window; ++w) {
        for (const auto& partition : partitions) {
            candidates.push_back({w, &partition});
        }
    }

    std::vector<std::vector<Arch_evaluation>> steps(candidates.size());
    run_parallel(candidates.size(), [&](std::size_t i) {
        Arch_instance instance;
        instance.window = candidates[i].window;
        instance.level_depths = *candidates[i].partition;
        grow_allocation(instance, space_.pareto_area_cap_luts,
                        space_.max_cores_per_sweep, &steps[i]);
    });

    Pareto_result result;
    for (const auto& candidate_steps : steps) {
        result.points.insert(result.points.end(), candidate_steps.begin(),
                             candidate_steps.end());
    }
    std::vector<Design_point> dps;
    dps.reserve(result.points.size());
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        dps.push_back({result.points[i].estimated_area_luts,
                       result.points[i].throughput.seconds_per_frame, i});
    }
    result.front = pareto_front(dps);
    return result;
}

Explorer::Fit_result Explorer::fit_device() {
    evaluator_.calibrate(space_.max_window, space_.max_depth);

    Fit_result result;
    const double budget =
        static_cast<double>(evaluator_.device().usable_luts());
    const std::size_t cells =
        static_cast<std::size_t>(space_.max_window) *
        static_cast<std::size_t>(space_.max_depth);
    result.grid.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (window, primary depth), matching the serial loop nest.
        const int w = static_cast<int>(i) / space_.max_depth + 1;
        const int d = static_cast<int>(i) % space_.max_depth + 1;
        Fit_cell& cell = result.grid[i];
        cell.window = w;
        cell.primary_depth = d;
        Arch_instance instance;
        instance.window = w;
        instance.level_depths = canonical_partition(d);
        const Grow_result grown = grow_allocation(
            instance, budget, space_.max_cores_per_sweep * 4, nullptr);
        cell.valid = grown.any_feasible;
        if (cell.valid) cell.eval = grown.best;
    });
    // Best cell: first strict fps maximum in grid order, as the serial scan
    // picked it.
    for (const Fit_cell& cell : result.grid) {
        if (!cell.valid) continue;
        if (!result.has_best ||
            cell.eval.throughput.fps > result.best.throughput.fps) {
            result.best = cell.eval;
            result.has_best = true;
        }
    }
    return result;
}

Explorer::Area_validation Explorer::validate_area_model() {
    evaluator_.calibrate(space_.max_window, space_.max_depth);

    Area_validation validation;
    const auto& calibration = evaluator_.options().calibration_windows;
    const std::size_t cells =
        static_cast<std::size_t>(space_.max_window) *
        static_cast<std::size_t>(space_.max_depth);
    validation.points.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (depth, window), matching the serial loop nest.
        const int d = static_cast<int>(i) / space_.max_window + 1;
        const int w = static_cast<int>(i) % space_.max_window + 1;
        Area_point& p = validation.points[i];
        p.window = w;
        p.depth = d;
        p.registers = evaluator_.library().stats(w, d).register_count;
        p.estimated_luts = evaluator_.estimated_cone_area(w, d);
        p.actual_luts = evaluator_.actual_cone_area(w, d);
        p.is_calibration = std::find(calibration.begin(), calibration.end(), w) !=
                           calibration.end();
        p.rel_error = relative_error(p.estimated_luts, p.actual_luts);
    });
    double err_sum = 0.0;
    int err_count = 0;
    for (const Area_point& p : validation.points) {
        if (p.is_calibration) continue;
        validation.max_rel_error = std::max(validation.max_rel_error, p.rel_error);
        err_sum += p.rel_error;
        err_count += 1;
    }
    validation.avg_rel_error = err_count > 0 ? err_sum / err_count : 0.0;
    return validation;
}

Explorer::Format_grid Explorer::search_formats(const Frame_set& content,
                                               Boundary boundary,
                                               Format_search_options options) {
    // One search per cell inside the candidate fan-out; the search's own
    // sample-window pool stays disabled (its parallelism would nest).
    options.threads = 1;
    // Pre-build the cone grid serially: cone construction extends the
    // kernel's shared expression pool and must not race the parallel cells
    // (the same discipline as Arch_evaluator::calibrate, without paying for
    // syntheses this search never reads).
    Cone_library& library = evaluator_.library();
    for (int d = 1; d <= space_.max_depth; ++d) {
        for (int w = 1; w <= space_.max_window; ++w) library.cone(w, d);
    }

    Format_grid grid;
    const std::size_t cells = static_cast<std::size_t>(space_.max_window) *
                              static_cast<std::size_t>(space_.max_depth);
    grid.cells.resize(cells);
    run_parallel(cells, [&](std::size_t i) {
        // Row-major (window, depth), matching the fit grid.
        const int w = static_cast<int>(i) / space_.max_depth + 1;
        const int d = static_cast<int>(i) % space_.max_depth + 1;
        Format_cell& cell = grid.cells[i];
        cell.window = w;
        cell.depth = d;
        cell.result = search_fixed_format(library.cone(w, d), content, boundary,
                                          options);
    });
    return grid;
}

// --- deterministic dumps ---------------------------------------------------------

namespace {

std::ostream& full_precision(std::ostream& os) {
    os << std::setprecision(17);
    return os;
}

void dump_evaluation(std::ostream& os, const Arch_evaluation& e) {
    os << to_string(e.instance) << " feasible=" << e.feasible;
    if (!e.feasible) os << " reason=" << e.infeasible_reason;
    os << " est_luts=" << e.estimated_area_luts
       << " act_luts=" << e.actual_area_luts << " f_max=" << e.f_max_mhz
       << " wpf=" << e.windows_per_frame
       << " cycles=" << e.throughput.cycles_per_window
       << " bneck=" << e.throughput.bottleneck
       << " spf=" << e.throughput.seconds_per_frame
       << " fps=" << e.throughput.fps << " mem_kbits=" << e.memory.total_kbits;
}

}  // namespace

std::string dump(const Arch_evaluation& eval) {
    std::ostringstream os;
    full_precision(os);
    dump_evaluation(os, eval);
    os << "\n";
    return os.str();
}

std::string dump(const Explorer::Pareto_result& result) {
    std::ostringstream os;
    full_precision(os);
    os << "points " << result.points.size() << "\n";
    for (const Arch_evaluation& e : result.points) {
        dump_evaluation(os, e);
        os << "\n";
    }
    os << "front";
    for (std::size_t i : result.front) os << " " << i;
    os << "\n";
    return os.str();
}

std::string dump(const Explorer::Fit_result& result) {
    std::ostringstream os;
    full_precision(os);
    os << "grid " << result.grid.size() << "\n";
    for (const Explorer::Fit_cell& cell : result.grid) {
        os << "w" << cell.window << " d" << cell.primary_depth
           << " valid=" << cell.valid;
        if (cell.valid) {
            os << " ";
            dump_evaluation(os, cell.eval);
        }
        os << "\n";
    }
    os << "best " << result.has_best;
    if (result.has_best) {
        os << " ";
        dump_evaluation(os, result.best);
    }
    os << "\n";
    return os.str();
}

std::string dump(const Explorer::Area_validation& validation) {
    std::ostringstream os;
    full_precision(os);
    for (const Explorer::Area_point& p : validation.points) {
        os << "w" << p.window << " d" << p.depth << " regs=" << p.registers
           << " est=" << p.estimated_luts << " act=" << p.actual_luts
           << " cal=" << p.is_calibration << " err=" << p.rel_error << "\n";
    }
    os << "avg=" << validation.avg_rel_error << " max=" << validation.max_rel_error
       << "\n";
    return os.str();
}

std::string dump(const Explorer::Format_grid& grid) {
    std::ostringstream os;
    full_precision(os);
    for (const Explorer::Format_cell& cell : grid.cells) {
        os << "w" << cell.window << " d" << cell.depth << " "
           << to_string(cell.result.format) << " psnr=" << cell.result.psnr_db
           << " max_abs=" << cell.result.max_abs_value
           << " tried=" << cell.result.formats_tried
           << " sat=" << cell.result.satisfiable << "\n";
    }
    return os.str();
}

}  // namespace islhls
