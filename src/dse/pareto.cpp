#include "dse/pareto.hpp"

#include <algorithm>
#include <limits>

namespace islhls {

bool dominates(const Design_point& a, const Design_point& b) {
    const bool no_worse = a.area_luts <= b.area_luts &&
                          a.seconds_per_frame <= b.seconds_per_frame;
    const bool better = a.area_luts < b.area_luts ||
                        a.seconds_per_frame < b.seconds_per_frame;
    return no_worse && better;
}

std::vector<std::size_t> pareto_front(const std::vector<Design_point>& points) {
    // Sort by area ascending, then time ascending; sweep keeping the points
    // that strictly improve the best time seen so far.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (points[a].area_luts != points[b].area_luts) {
            return points[a].area_luts < points[b].area_luts;
        }
        return points[a].seconds_per_frame < points[b].seconds_per_frame;
    });
    std::vector<std::size_t> front;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        if (points[idx].seconds_per_frame < best_time) {
            front.push_back(idx);
            best_time = points[idx].seconds_per_frame;
        }
    }
    return front;
}

}  // namespace islhls
