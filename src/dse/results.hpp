// Top-level result types for design-space explorations.
//
// These used to be nested inside Explorer; they moved here when the DSE grew
// multiple architecture backends (dse/backend.hpp), so results can carry the
// backend that produced them and flow through caches, reports and merged
// Pareto fronts without dragging the Explorer type along. Explorer keeps
// deprecated aliases (Explorer::Pareto_result etc.) for one PR so existing
// call sites migrate gradually.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dse/evaluator.hpp"
#include "estimate/format_search.hpp"

namespace islhls {

// --- Pareto exploration ---------------------------------------------------------
struct Pareto_result {
    std::string backend = "paper";         // Arch_backend that produced it
    std::vector<Arch_evaluation> points;   // every evaluated allocation
    std::vector<std::size_t> front;        // indices into `points`
};

// --- device fit -----------------------------------------------------------------
struct Fit_cell {
    int window = 0;
    int primary_depth = 0;
    bool valid = false;          // a feasible allocation exists
    Arch_evaluation eval;
};
struct Fit_result {
    std::string backend = "paper";
    std::vector<Fit_cell> grid;  // (window, primary depth) row-major
    bool has_best = false;
    Arch_evaluation best;        // highest fps over the valid grid
};

// --- area-model validation ------------------------------------------------------
struct Area_point {
    int window = 0;
    int depth = 0;
    int registers = 0;
    double estimated_luts = 0.0;
    double actual_luts = 0.0;
    bool is_calibration = false;  // synthesized to fit alpha
    double rel_error = 0.0;
};
struct Area_validation {
    std::string backend = "paper";
    std::vector<Area_point> points;
    double max_rel_error = 0.0;  // over non-calibration points
    double avg_rel_error = 0.0;
};

// --- per-candidate fixed-point format search ------------------------------------
// One (window, depth) cell: the searched format plus the full evaluation of
// the canonical single-level design point {window, depths={depth}, 1 core}
// at that format — a true (area, fps, PSNR) point, with f_max and cycles
// re-priced at the searched word width instead of the global format.
struct Format_cell {
    int window = 0;
    int depth = 0;
    Format_search_result result;
    // Full re-evaluation at the searched format (device-dependent, iteration-
    // count-independent). `evaluated` is false when the search was
    // unsatisfiable or the caller skipped pricing.
    bool evaluated = false;
    double area_luts = 0.0;
    double f_max_mhz = 0.0;
    double fps = 0.0;
};
struct Format_grid {
    std::string backend = "paper";
    std::vector<Format_cell> cells;  // (window, primary depth) row-major

    const Format_cell& at(int window, int depth, int max_depth) const {
        return cells[static_cast<std::size_t>(window - 1) *
                         static_cast<std::size_t>(max_depth) +
                     static_cast<std::size_t>(depth - 1)];
    }
};

// --- generic backend points -----------------------------------------------------
// One feasible design point as any backend reports it: the two Pareto
// objectives plus a human-readable candidate identity and a full-precision
// detail line (the byte-identity currency of dump()).
struct Backend_point {
    std::string config;            // e.g. "w3 [2,2,1] ..." or "stream(d=2,...)"
    double area_luts = 0.0;
    double seconds_per_frame = 0.0;
    double fps = 0.0;
    std::string detail;            // full-precision dump line, no newline
};

// A cross-backend exploration: every point tagged with its backend, one
// merged front over (area, seconds_per_frame).
struct Backend_pareto {
    struct Tagged {
        std::string backend;
        Backend_point point;
    };
    std::vector<Tagged> points;
    std::vector<std::size_t> front;  // indices into `points`
};

// Deterministic full-precision renderings, used to assert byte-identity
// between serial and parallel explorations (tests, benches) and to diff
// results across code changes. The backend tag is deliberately not printed
// by the legacy dumps: a paper-backend exploration must render byte-identical
// to the pre-backend-interface output.
std::string dump(const Arch_evaluation& eval);
std::string dump(const Pareto_result& result);
std::string dump(const Fit_result& result);
std::string dump(const Area_validation& validation);
std::string dump(const Format_grid& grid);
std::string dump(const Backend_pareto& result);

// The one-line full-precision rendering of an evaluation (no trailing
// newline); backends fill Backend_point::detail with it so generic dumps
// stay byte-identical to the typed ones.
std::string dump_evaluation_line(const Arch_evaluation& eval);

}  // namespace islhls
