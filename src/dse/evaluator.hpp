// Evaluation of one architecture instance: area (estimated via the paper's
// Eq. 1 model, with the virtual-synthesis "actual" kept alongside for
// validation), throughput, memory budget and feasibility.
#pragma once

#include <map>
#include <string>

#include "backend/fixed_point.hpp"
#include "dse/architecture.hpp"
#include "dse/cone_library.hpp"
#include "estimate/area_model.hpp"
#include "estimate/memory_model.hpp"
#include "estimate/throughput_model.hpp"
#include "synth/device.hpp"

namespace islhls {

struct Evaluator_options {
    int frame_width = 1024;
    int frame_height = 768;
    Fixed_format format;
    Synth_options synth;
    Throughput_params throughput;
    // Windows synthesized (per depth class) to calibrate the area model; the
    // paper uses two ("as low as two" syntheses).
    std::vector<int> calibration_windows = {1, 2};
    // Fixed infrastructure per cone class: DMA lane, sequencer, buffer
    // alignment network. Charged once per distinct depth in the instance,
    // which is what makes remainder classes expensive on a full device.
    double class_overhead_luts = 24000.0;
};

struct Arch_evaluation {
    Arch_instance instance;
    bool feasible = true;
    std::string infeasible_reason;

    double estimated_area_luts = 0.0;  // Eq. 1 model, what the DSE ranks by
    double actual_area_luts = 0.0;     // virtual synthesis ground truth
    double f_max_mhz = 0.0;            // slowest cone type clock
    long long windows_per_frame = 0;
    Throughput_estimate throughput;
    Memory_budget memory;
};

class Arch_evaluator {
public:
    Arch_evaluator(Cone_library& library, const Fpga_device& device,
                   const Evaluator_options& options);

    // Full evaluation; never throws on infeasible instances (reports them).
    Arch_evaluation evaluate(const Arch_instance& instance);

    // Eq. 1 estimated LUTs of one cone type (calibrating the depth's model on
    // first use).
    double estimated_cone_area(int window, int depth);
    // Virtual-synthesis LUTs of one cone type.
    double actual_cone_area(int window, int depth);

    const Fpga_device& device() const { return device_; }
    Cone_library& library() { return library_; }
    const Evaluator_options& options() const { return options_; }

private:
    const Area_model& model_for_depth(int depth);

    Cone_library& library_;
    const Fpga_device& device_;
    Evaluator_options options_;
    std::map<int, Area_model> area_models_;  // per depth class
};

}  // namespace islhls
