// Evaluation of one architecture instance: area (estimated via the paper's
// Eq. 1 model, with the virtual-synthesis "actual" kept alongside for
// validation), throughput, memory budget and feasibility.
//
// Evaluation is split into two phases so the explorer can fan out safely:
// calibrate() fits the per-depth area models once (each costs the two alpha
// syntheses of the paper), after which evaluate() is pure — it only reads
// the calibrated models and the memoized cone library, so any number of
// threads may evaluate candidates concurrently. Lazy calibration on first
// use is kept for one-off callers and is itself lock-protected.
#pragma once

#include <map>
#include <shared_mutex>
#include <string>

#include "backend/fixed_point.hpp"
#include "dse/architecture.hpp"
#include "dse/cone_library.hpp"
#include "estimate/area_model.hpp"
#include "estimate/memory_model.hpp"
#include "estimate/throughput_model.hpp"
#include "synth/device.hpp"

namespace islhls {

struct Evaluator_options {
    int frame_width = 1024;
    int frame_height = 768;
    Fixed_format format;
    Synth_options synth;
    Throughput_params throughput;
    // Windows synthesized (per depth class) to calibrate the area model; the
    // paper uses two ("as low as two" syntheses).
    std::vector<int> calibration_windows = {1, 2};
    // Fixed infrastructure per cone class: DMA lane, sequencer, buffer
    // alignment network. Charged once per distinct depth in the instance,
    // which is what makes remainder classes expensive on a full device.
    double class_overhead_luts = 24000.0;
};

struct Arch_evaluation {
    Arch_instance instance;
    bool feasible = true;
    std::string infeasible_reason;

    double estimated_area_luts = 0.0;  // Eq. 1 model, what the DSE ranks by
    double actual_area_luts = 0.0;     // virtual synthesis ground truth
    double f_max_mhz = 0.0;            // slowest cone type clock
    long long windows_per_frame = 0;
    Throughput_estimate throughput;
    Memory_budget memory;
};

class Arch_evaluator {
public:
    Arch_evaluator(Cone_library& library, const Fpga_device& device,
                   const Evaluator_options& options);

    // One-time calibration: fits the area models for depths 1..max_depth
    // (the alpha syntheses of Eq. 1) and pre-builds every cone of the
    // (1..max_window, 1..max_depth) grid. Cone construction extends the
    // kernel's shared expression pool, so it must not race the unlocked pool
    // reads inside evaluate(); after calibrate(W, D), evaluating any
    // instance with window <= W and depths <= D is pure — no model fitting,
    // no pool mutation — and safe from many threads at once.
    void calibrate(int max_window, int max_depth);
    bool is_calibrated(int depth) const;

    // Full evaluation; never throws on infeasible instances (reports them).
    Arch_evaluation evaluate(const Arch_instance& instance) const;

    // Eq. 1 estimated LUTs of one cone type (calibrating the depth's model on
    // first use).
    double estimated_cone_area(int window, int depth) const;
    // Virtual-synthesis LUTs of one cone type.
    double actual_cone_area(int window, int depth) const;

    const Fpga_device& device() const { return device_; }
    Cone_library& library() const { return library_; }
    const Evaluator_options& options() const { return options_; }

private:
    const Area_model& model_for_depth(int depth) const;

    Cone_library& library_;
    const Fpga_device& device_;
    Evaluator_options options_;
    mutable std::shared_mutex models_mutex_;
    mutable std::map<int, Area_model> area_models_;  // per depth class
};

}  // namespace islhls
