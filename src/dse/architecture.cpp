#include "dse/architecture.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/text.hpp"

namespace islhls {

int Arch_instance::iterations() const {
    return std::accumulate(level_depths.begin(), level_depths.end(), 0);
}

std::vector<int> Arch_instance::depth_classes() const {
    std::vector<int> classes = level_depths;
    std::sort(classes.begin(), classes.end(), std::greater<int>());
    classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
    return classes;
}

std::string to_string(const Arch_instance& a) {
    std::vector<std::string> depth_text;
    for (int d : a.level_depths) depth_text.push_back(std::to_string(d));
    std::string cores;
    for (const auto& [depth, count] : a.cores_per_depth) {
        cores += cat(" d", depth, "x", count);
    }
    return cat("arch(w=", a.window, ", levels=[", join(depth_text, ","), "],", cores,
               ")");
}

Coverage level_coverages(int window, const std::vector<int>& level_depths,
                         const Footprint& step_footprint) {
    check_internal(window >= 1, "level_coverages: window must be >= 1");
    check_internal(!level_depths.empty(), "level_coverages: no levels");
    const std::size_t levels = level_depths.size();
    Coverage cov;
    cov.width.assign(levels + 1, 0);
    cov.height.assign(levels + 1, 0);
    // Walk backwards from the output: each earlier level must additionally
    // cover the halo consumed by everything after it.
    cov.width[levels] = window;
    cov.height[levels] = window;
    for (std::size_t k = levels; k-- > 0;) {
        const Footprint grown = repeat(step_footprint, level_depths[k]);
        cov.width[k] = cov.width[k + 1] + grown.width_growth();
        cov.height[k] = cov.height[k + 1] + grown.height_growth();
    }
    return cov;
}

long long executions_for_level(const Coverage& coverage, std::size_t level, int window) {
    check_internal(level + 1 < coverage.width.size() + 1 && level >= 1,
                   "executions_for_level: level out of range");
    check_internal(level < coverage.width.size(), "executions_for_level: bad level");
    return static_cast<long long>(ceil_div(coverage.width[level], window)) *
           static_cast<long long>(ceil_div(coverage.height[level], window));
}

}  // namespace islhls
