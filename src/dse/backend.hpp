// The architecture-backend seam of the DSE.
//
// The paper evaluates a single temporally-pipelined datapath, but the design
// space the successors explore is datapath style x replication x bandwidth
// (Zohouri's spatial+temporal blocking, SASA's multi-PE arrays on HBM — see
// PAPERS.md). An Arch_backend is one datapath style: it enumerates its own
// candidate axis and prices every candidate into generic Backend_points, so
// the Explorer can fan a *set* of backends across one Thread_pool and merge
// everything into a single cross-backend Pareto front.
//
// The two-phase contract mirrors Arch_evaluator: calibrate() runs serially
// once (fits cost models, pre-builds cones — anything that mutates the shared
// expression pool), after which evaluate_candidate() is pure const and safe
// from any number of threads. Candidate enumeration is deterministic, and so
// is every point's full-precision `detail` line, which is what dump() renders
// — the byte-identity currency the tests diff across thread counts and code
// changes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dse/results.hpp"

namespace islhls {

struct Space_options {
    int iterations = 10;      // N, the total ISL iteration count
    int max_window = 9;       // output windows 1..max (square)
    int max_depth = 5;        // cone depths 1..max
    int max_cores_per_sweep = 16;       // Pareto sweep: total cores cap
    double pareto_area_cap_luts = 6e6;  // Pareto sweep: area cap
    int threads = 1;          // DSE fan-out width; 0 = all hardware threads
};

class Arch_backend {
public:
    virtual ~Arch_backend() = default;

    // Stable identity ("paper", "streaming"); tags Pareto points, report rows
    // and cache keys.
    virtual const std::string& name() const = 0;

    // One-time serial phase: fit area/cost models, pre-build the cone grid.
    // Must run before evaluate_candidate(); idempotent.
    virtual void calibrate() = 0;

    // Deterministic candidate axis. evaluate_candidate(i) returns the
    // feasible design points candidate i contributes (possibly none, possibly
    // a whole allocation-growth trajectory), in a deterministic order. Pure
    // const after calibrate(): safe to call concurrently for different (or
    // equal) indices.
    virtual std::size_t candidate_count() const = 0;
    virtual std::vector<Backend_point> evaluate_candidate(std::size_t index) const = 0;

    // Full-precision rendering of an exploration over this backend: one
    // detail line per point plus the front over (area, seconds_per_frame).
    // The default layout matches the legacy dump(Pareto_result) byte for
    // byte when the detail lines do.
    virtual std::string dump(const std::vector<Backend_point>& points) const;
};

// Runs every candidate of `backend` serially, in candidate order, and
// returns the concatenated points. Convenience for tests and one-off
// callers; Explorer::explore_backends is the pooled multi-backend path.
std::vector<Backend_point> evaluate_all_candidates(const Arch_backend& backend);

}  // namespace islhls
