// The paper's datapath as an Arch_backend: a thin adapter over
// Arch_evaluator with zero behavior change (locked by dump-identity tests
// against the pre-interface Explorer output).
//
// A candidate is one (window, iteration-partition) pair; evaluating it grows
// the core allocation greedily (always feeding the bottleneck class) while
// the estimated area stays under the Pareto sweep cap, recording every step
// — exactly the enumeration Explorer::explore_pareto has always fanned out.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dse/backend.hpp"
#include "dse/evaluator.hpp"

namespace islhls {

// All deep-first partitions of `iterations` into parts <= max_depth.
std::vector<std::vector<int>> depth_partitions(int iterations, int max_depth);

// Canonical partition for a primary depth d: floor(N/d) levels of d, the
// remainder split recursively (the paper's "missing iterations" handling:
// depth 3 over N=10 becomes [3,3,3,1], depth 4 becomes [4,4,2]).
std::vector<int> canonical_partition(int iterations, int primary_depth);

class Paper_backend : public Arch_backend {
public:
    // The evaluator must outlive the backend; its library/device/options
    // define the datapath being priced.
    Paper_backend(Arch_evaluator& evaluator, const Space_options& space);

    const std::string& name() const override;
    void calibrate() override;
    std::size_t candidate_count() const override;
    std::vector<Backend_point> evaluate_candidate(std::size_t index) const override;

    // Typed variant of evaluate_candidate: the allocation-growth trajectory
    // of candidate `index` as full evaluations (what the legacy Pareto_result
    // concatenates).
    std::vector<Arch_evaluation> candidate_steps(std::size_t index) const;

    // Grows the core allocation of `instance` greedily (always feeding the
    // bottleneck class) while the estimated area stays within `area_budget`;
    // records every step into `out` when given. Returns the best-fps
    // evaluation found (any_feasible false when even the minimal allocation
    // does not fit). Pure: safe to run for many candidates concurrently once
    // the evaluator is calibrated.
    struct Grow_result {
        bool any_feasible = false;
        Arch_evaluation best;
    };
    Grow_result grow_allocation(Arch_instance instance, double area_budget,
                                int max_total_cores,
                                std::vector<Arch_evaluation>* out) const;

    const std::vector<std::vector<int>>& partitions() const { return partitions_; }
    Arch_evaluator& evaluator() const { return evaluator_; }
    const Space_options& space() const { return space_; }

private:
    struct Candidate {
        int window = 0;
        std::size_t partition = 0;  // index into partitions_
    };

    Arch_evaluator& evaluator_;
    Space_options space_;
    std::vector<std::vector<int>> partitions_;
    std::vector<Candidate> candidates_;
};

}  // namespace islhls
