// Design space exploration driver (the right half of the paper's Fig. 2).
//
// Three entry points mirror the paper's three experiment kinds:
//   - validate_area_model(): Eq. 1 estimated vs virtually-synthesized area
//     across the whole (window, depth) grid (Figs. 5 and 8);
//   - explore_pareto(): device-unconstrained sweep over windows, iteration
//     partitions and core allocations, Pareto set extraction (Figs. 6 and 9);
//   - fit_device(): maximize throughput inside one device's budget, per
//     (window, primary depth) cell (Figs. 7 and 10).
// A fourth, explore_backends(), fans a *set* of Arch_backends (the paper
// datapath, the streaming multi-PE array, ...) across the same pool and
// merges everything into one cross-backend Pareto front.
//
// All entry points fan independent candidates across a thread pool
// (Space_options::threads) after a one-time serial calibration. Each
// candidate writes into its own pre-sized slot and the cross-candidate
// aggregation (concatenation, Pareto extraction, best-cell scan, error
// statistics) runs after the join in the serial candidate order, so the
// results are byte-identical to a single-threaded run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/backend.hpp"
#include "dse/evaluator.hpp"
#include "dse/paper_backend.hpp"
#include "dse/results.hpp"
#include "estimate/format_search.hpp"
#include "support/parallel.hpp"

namespace islhls {

class Explorer {
public:
    // `shared_pool`, when given, replaces the explorer's own lazily built
    // pool: every exploration fans its candidates across it, so a session
    // driving many explorers (core/sweep.hpp) spins up one set of workers
    // for the whole batch. The pool must outlive the explorer and its
    // thread count supersedes Space_options::threads.
    Explorer(Cone_library& library, const Fpga_device& device,
             const Evaluator_options& evaluator_options,
             const Space_options& space_options, Thread_pool* shared_pool = nullptr);

    // All deep-first partitions of N into parts <= max_depth.
    std::vector<std::vector<int>> depth_partitions() const;

    // Canonical partition for a primary depth d: floor(N/d) levels of d, the
    // remainder split recursively (the paper's "missing iterations" handling:
    // depth 3 over N=10 becomes [3,3,3,1], depth 4 becomes [4,4,2]).
    std::vector<int> canonical_partition(int primary_depth) const;

    // Deprecated aliases: the result structs moved to dse/results.hpp as
    // top-level types (they now carry a `backend` field); these names are
    // kept one PR so existing call sites migrate cleanly.
    using Pareto_result = islhls::Pareto_result;
    using Fit_cell = islhls::Fit_cell;
    using Fit_result = islhls::Fit_result;
    using Area_point = islhls::Area_point;
    using Area_validation = islhls::Area_validation;
    using Format_cell = islhls::Format_cell;
    using Format_grid = islhls::Format_grid;

    // --- Pareto exploration (paper backend) --------------------------------------
    islhls::Pareto_result explore_pareto();

    // --- cross-backend Pareto exploration ----------------------------------------
    // Calibrates every backend serially, then fans the union of their
    // candidate axes across the pool and merges the points into one front,
    // each point tagged with its backend. The backends must share this
    // explorer's Cone_library (or be otherwise thread-safe against it).
    Backend_pareto explore_backends(const std::vector<Arch_backend*>& backends);

    // --- device fit --------------------------------------------------------------
    islhls::Fit_result fit_device();

    // --- area-model validation ---------------------------------------------------
    islhls::Area_validation validate_area_model();

    // --- per-candidate fixed-point format search ---------------------------------
    // The numeric axis of the design space: the narrowest passing Qm.f per
    // (window, depth) cell, searched over sample windows of `content` (the
    // same grid the fit/area explorations cover), plus the full evaluation
    // of each cell's canonical one-core design point at its searched format
    // (f_max, cycles and fps re-priced at the searched word width — a true
    // (area, fps, PSNR) point per cell). Cells are independent, so they fan
    // across the explorer's pool like any other candidate set; the per-cell
    // search itself runs serially (options.threads is overridden to 1 —
    // nested pools would oversubscribe) and each cell is seeded, so the
    // grid is bit-identical at any thread count.
    islhls::Format_grid search_formats(const Frame_set& content, Boundary boundary,
                                       Format_search_options options = {});

    Arch_evaluator& evaluator() { return evaluator_; }
    Paper_backend& paper_backend() { return paper_; }
    const Space_options& space() const { return space_; }

private:
    // Fans body(0..count-1) across the shared pool when one was injected,
    // otherwise the explorer's own pool (created on first use, reused by
    // every subsequent exploration); inline when threads <= 1.
    void run_parallel(std::size_t count,
                      const std::function<void(std::size_t)>& body);

    Arch_evaluator evaluator_;
    Space_options space_;
    Paper_backend paper_;
    Thread_pool* external_pool_ = nullptr;
    std::unique_ptr<Thread_pool> pool_;
};

}  // namespace islhls
