// Design space exploration driver (the right half of the paper's Fig. 2).
//
// Three entry points mirror the paper's three experiment kinds:
//   - validate_area_model(): Eq. 1 estimated vs virtually-synthesized area
//     across the whole (window, depth) grid (Figs. 5 and 8);
//   - explore_pareto(): device-unconstrained sweep over windows, iteration
//     partitions and core allocations, Pareto set extraction (Figs. 6 and 9);
//   - fit_device(): maximize throughput inside one device's budget, per
//     (window, primary depth) cell (Figs. 7 and 10).
//
// All three fan independent (window, partition, allocation) candidates
// across a thread pool (Space_options::threads) after a one-time area-model
// calibration. Each candidate writes into its own pre-sized slot and the
// cross-candidate aggregation (concatenation, Pareto extraction, best-cell
// scan, error statistics) runs after the join in the serial candidate
// order, so the results are byte-identical to a single-threaded run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/evaluator.hpp"
#include "estimate/format_search.hpp"
#include "support/parallel.hpp"

namespace islhls {

struct Space_options {
    int iterations = 10;      // N, the total ISL iteration count
    int max_window = 9;       // output windows 1..max (square)
    int max_depth = 5;        // cone depths 1..max
    int max_cores_per_sweep = 16;       // Pareto sweep: total cores cap
    double pareto_area_cap_luts = 6e6;  // Pareto sweep: area cap
    int threads = 1;          // DSE fan-out width; 0 = all hardware threads
};

class Explorer {
public:
    // `shared_pool`, when given, replaces the explorer's own lazily built
    // pool: every exploration fans its candidates across it, so a session
    // driving many explorers (core/sweep.hpp) spins up one set of workers
    // for the whole batch. The pool must outlive the explorer and its
    // thread count supersedes Space_options::threads.
    Explorer(Cone_library& library, const Fpga_device& device,
             const Evaluator_options& evaluator_options,
             const Space_options& space_options, Thread_pool* shared_pool = nullptr);

    // All deep-first partitions of N into parts <= max_depth.
    std::vector<std::vector<int>> depth_partitions() const;

    // Canonical partition for a primary depth d: floor(N/d) levels of d, the
    // remainder split recursively (the paper's "missing iterations" handling:
    // depth 3 over N=10 becomes [3,3,3,1], depth 4 becomes [4,4,2]).
    std::vector<int> canonical_partition(int primary_depth) const;

    // --- Pareto exploration -----------------------------------------------------
    struct Pareto_result {
        std::vector<Arch_evaluation> points;   // every evaluated allocation
        std::vector<std::size_t> front;        // indices into `points`
    };
    Pareto_result explore_pareto();

    // --- device fit ---------------------------------------------------------------
    struct Fit_cell {
        int window = 0;
        int primary_depth = 0;
        bool valid = false;          // a feasible allocation exists
        Arch_evaluation eval;
    };
    struct Fit_result {
        std::vector<Fit_cell> grid;  // (window, primary depth) row-major
        bool has_best = false;
        Arch_evaluation best;        // highest fps over the valid grid
    };
    Fit_result fit_device();

    // --- area-model validation -----------------------------------------------------
    struct Area_point {
        int window = 0;
        int depth = 0;
        int registers = 0;
        double estimated_luts = 0.0;
        double actual_luts = 0.0;
        bool is_calibration = false;  // synthesized to fit alpha
        double rel_error = 0.0;
    };
    struct Area_validation {
        std::vector<Area_point> points;
        double max_rel_error = 0.0;  // over non-calibration points
        double avg_rel_error = 0.0;
    };
    Area_validation validate_area_model();

    // --- per-candidate fixed-point format search ------------------------------------
    // The numeric axis of the design space: the narrowest passing Qm.f per
    // (window, depth) cell, searched over sample windows of `content` (the
    // same grid the fit/area explorations cover). Cells are independent, so
    // they fan across the explorer's pool like any other candidate set; the
    // per-cell search itself runs serially (options.threads is overridden to
    // 1 — nested pools would oversubscribe) and each cell is seeded, so the
    // grid is bit-identical at any thread count.
    struct Format_cell {
        int window = 0;
        int depth = 0;
        Format_search_result result;
    };
    struct Format_grid {
        std::vector<Format_cell> cells;  // (window, primary depth) row-major

        const Format_cell& at(int window, int depth, int max_depth) const {
            return cells[static_cast<std::size_t>(window - 1) *
                             static_cast<std::size_t>(max_depth) +
                         static_cast<std::size_t>(depth - 1)];
        }
    };
    Format_grid search_formats(const Frame_set& content, Boundary boundary,
                               Format_search_options options = {});

    Arch_evaluator& evaluator() { return evaluator_; }
    const Space_options& space() const { return space_; }

private:
    // Grows the core allocation of `instance` greedily (always feeding the
    // bottleneck class) while the estimated area stays within `area_budget`;
    // records every step into `out` when `record_steps` is set. Returns the
    // best-fps evaluation found (unset optional when even the minimal
    // allocation does not fit). Pure: safe to run for many candidates
    // concurrently once the evaluator is calibrated.
    struct Grow_result {
        bool any_feasible = false;
        Arch_evaluation best;
    };
    Grow_result grow_allocation(Arch_instance instance, double area_budget,
                                int max_total_cores,
                                std::vector<Arch_evaluation>* out) const;

    // Fans body(0..count-1) across the shared pool when one was injected,
    // otherwise the explorer's own pool (created on first use, reused by
    // every subsequent exploration); inline when threads <= 1.
    void run_parallel(std::size_t count,
                      const std::function<void(std::size_t)>& body);

    Arch_evaluator evaluator_;
    Space_options space_;
    Thread_pool* external_pool_ = nullptr;
    std::unique_ptr<Thread_pool> pool_;
};

// Deterministic full-precision renderings, used to assert byte-identity
// between serial and parallel explorations (tests, benches) and to diff
// results across code changes.
std::string dump(const Arch_evaluation& eval);
std::string dump(const Explorer::Pareto_result& result);
std::string dump(const Explorer::Fit_result& result);
std::string dump(const Explorer::Area_validation& validation);
std::string dump(const Explorer::Format_grid& grid);

}  // namespace islhls
