// Cache of built cones and their (virtual) synthesis results for one kernel.
//
// Building a cone is cheap; synthesizing one is not (the virtual synthesizer
// models tool runtimes of minutes to hours). The library keeps both memoized
// and tracks the cumulative simulated synthesis CPU time, so the flow can
// report how much the estimation-based exploration saves over synthesizing
// every design point.
//
// The library is safe for concurrent callers: lookups take a shared lock;
// cone cache misses build under the exclusive lock (building extends the
// kernel's shared expression pool, so it must serialize), while synthesis
// misses run the virtual synthesizer outside any lock (it only reads the
// cone's immutable register program) and insert first-wins — racing threads
// may duplicate a deterministic synthesis but never diverge. Returned
// references stay valid for the library's lifetime (node-based storage).
// The synthesis meter is derived from the memoization map in key order, so
// its value is independent of the schedule that filled the cache.
//
// One caveat for callers holding references into step(): a cone cache miss
// extends the shared expression pool, so unlocked pool reads (e.g.
// Stencil_step::footprint()) must not race cone() misses — pre-build the
// cone grid first, as Arch_evaluator::calibrate() does.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cone/cone.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/device.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

class Cone_library {
public:
    // Takes ownership of the stencil step (the shared expression pool).
    Cone_library(Stencil_step step, std::string kernel_name);

    const std::string& kernel_name() const { return kernel_name_; }
    const Stencil_step& step() const { return step_; }
    Stencil_step& step() { return step_; }

    // Builds (or returns the cached) square-window cone.
    const Cone& cone(int window, int depth);
    const Cone_stats& stats(int window, int depth);

    // Runs (or returns the cached) virtual synthesis of the cone on `device`.
    // Every *new* synthesis adds its simulated tool runtime to the meter.
    const Synthesis_report& synthesis(int window, int depth, const Fpga_device& device,
                                      const Synth_options& options);

    // Number of distinct syntheses performed and their cumulative simulated
    // CPU time (sum over the cache in key order — schedule-independent).
    int synthesis_runs() const;
    double synthesis_cpu_seconds() const;

    // Simulated tool runtime of each cached synthesis, in key order. Feed to
    // lpt_makespan() to report what a farm of synthesis workers would take.
    std::vector<double> synthesis_costs() const;

    // Cache effectiveness counters: total lookups (hits = lookups - builds).
    long long cone_lookups() const { return cone_lookups_.load(); }
    long long synthesis_lookups() const { return synthesis_lookups_.load(); }
    int cone_builds() const;

private:
    Stencil_step step_;
    std::string kernel_name_;
    mutable std::shared_mutex mutex_;
    std::map<std::pair<int, int>, std::unique_ptr<Cone>> cones_;
    std::map<std::tuple<int, int, std::string>, Synthesis_report> syntheses_;
    std::atomic<long long> cone_lookups_{0};
    std::atomic<long long> synthesis_lookups_{0};
};

}  // namespace islhls
