// Cache of built cones and their (virtual) synthesis results for one kernel.
//
// Building a cone is cheap; synthesizing one is not (the virtual synthesizer
// models tool runtimes of minutes to hours). The library keeps both memoized
// and tracks the cumulative simulated synthesis CPU time, so the flow can
// report how much the estimation-based exploration saves over synthesizing
// every design point.
//
// The library is safe for concurrent callers: lookups take a shared lock;
// cone cache misses build under the exclusive lock (building extends the
// kernel's shared expression pool, so it must serialize), while synthesis
// misses run the virtual synthesizer outside any lock (it only reads the
// cone's immutable register program) and insert first-wins — racing threads
// may duplicate a deterministic synthesis but never diverge. Returned
// references stay valid for the library's lifetime (node-based storage).
// The synthesis meter is derived from the memoization map in key order, so
// its value is independent of the schedule that filled the cache.
//
// One caveat for callers holding references into step(): a cone cache miss
// extends the shared expression pool, so unlocked pool reads (e.g.
// Stencil_step::footprint()) must not race cone() misses — pre-build the
// cone grid first, as Arch_evaluator::calibrate() does.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cone/cone.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/device.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

// Optional persistence seam for synthesis results. The library stays
// storage-agnostic: the owner (core/service.hpp) binds these to its
// content-addressed result cache. `load` returns a report previously stored
// under `key` or nullopt; `store` persists one best-effort (failures are the
// store's problem, never the library's). Both must be thread-safe.
struct Synthesis_store {
    std::function<std::optional<Synthesis_report>(const std::string& key)> load;
    std::function<void(const std::string& key, const Synthesis_report&)> store;
};

class Cone_library {
public:
    // Takes ownership of the stencil step (the shared expression pool).
    Cone_library(Stencil_step step, std::string kernel_name);

    const std::string& kernel_name() const { return kernel_name_; }
    const Stencil_step& step() const { return step_; }
    Stencil_step& step() { return step_; }

    // Builds (or returns the cached) square-window cone.
    const Cone& cone(int window, int depth);
    const Cone_stats& stats(int window, int depth);

    // Runs (or returns the cached) virtual synthesis of the cone on `device`.
    // Every *new* synthesis adds its simulated tool runtime to the meter.
    const Synthesis_report& synthesis(int window, int depth, const Fpga_device& device,
                                      const Synth_options& options);

    // Attaches a persistent synthesis store: synthesis() misses consult it
    // before running the virtual synthesizer, and fresh results are written
    // back through it. `key_prefix` pins the kernel's content identity so
    // two kernels (or two versions of one) never share records.
    void attach_synthesis_store(Synthesis_store store, std::string key_prefix);

    // Number of distinct syntheses performed and their cumulative simulated
    // CPU time (sum over the cache in key order — schedule-independent).
    // Reports loaded from the persistent store count as synthesis_loads(),
    // not runs, and contribute no CPU time: they were paid for in an
    // earlier process.
    int synthesis_runs() const;
    int synthesis_loads() const;
    double synthesis_cpu_seconds() const;

    // Simulated tool runtime of each cached synthesis, in key order. Feed to
    // lpt_makespan() to report what a farm of synthesis workers would take.
    std::vector<double> synthesis_costs() const;

    // Cache effectiveness counters: total lookups (hits = lookups - builds).
    long long cone_lookups() const { return cone_lookups_.load(); }
    long long synthesis_lookups() const { return synthesis_lookups_.load(); }
    int cone_builds() const;

private:
    using Synthesis_key = std::tuple<int, int, std::string>;

    Stencil_step step_;
    std::string kernel_name_;
    Synthesis_store store_;
    std::string store_key_prefix_;
    mutable std::shared_mutex mutex_;
    std::map<std::pair<int, int>, std::unique_ptr<Cone>> cones_;
    std::map<Synthesis_key, Synthesis_report> syntheses_;
    std::set<Synthesis_key> loaded_;  // subset of syntheses_ from the store
    std::atomic<long long> cone_lookups_{0};
    std::atomic<long long> synthesis_lookups_{0};
};

}  // namespace islhls
