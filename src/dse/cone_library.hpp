// Cache of built cones and their (virtual) synthesis results for one kernel.
//
// Building a cone is cheap; synthesizing one is not (the virtual synthesizer
// models tool runtimes of minutes to hours). The library keeps both memoized
// and tracks the cumulative simulated synthesis CPU time, so the flow can
// report how much the estimation-based exploration saves over synthesizing
// every design point.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cone/cone.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/device.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

class Cone_library {
public:
    // Takes ownership of the stencil step (the shared expression pool).
    Cone_library(Stencil_step step, std::string kernel_name);

    const std::string& kernel_name() const { return kernel_name_; }
    const Stencil_step& step() const { return step_; }
    Stencil_step& step() { return step_; }

    // Builds (or returns the cached) square-window cone.
    const Cone& cone(int window, int depth);
    const Cone_stats& stats(int window, int depth);

    // Runs (or returns the cached) virtual synthesis of the cone on `device`.
    // Every *new* synthesis adds its simulated tool runtime to the meter.
    const Synthesis_report& synthesis(int window, int depth, const Fpga_device& device,
                                      const Synth_options& options);

    // Number of syntheses performed and their cumulative simulated CPU time.
    int synthesis_runs() const { return synthesis_runs_; }
    double synthesis_cpu_seconds() const { return synthesis_cpu_seconds_; }

private:
    Stencil_step step_;
    std::string kernel_name_;
    std::map<std::pair<int, int>, std::unique_ptr<Cone>> cones_;
    std::map<std::tuple<int, int, std::string>, Synthesis_report> syntheses_;
    int synthesis_runs_ = 0;
    double synthesis_cpu_seconds_ = 0.0;
};

}  // namespace islhls
