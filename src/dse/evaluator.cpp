#include "dse/evaluator.hpp"

#include <algorithm>
#include <mutex>

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/text.hpp"

namespace islhls {

Arch_evaluator::Arch_evaluator(Cone_library& library, const Fpga_device& device,
                               const Evaluator_options& options)
    : library_(library), device_(device), options_(options) {
    check_internal(options.calibration_windows.size() >= 2,
                   "area calibration needs at least two windows");
}

const Area_model& Arch_evaluator::model_for_depth(int depth) const {
    {
        std::shared_lock<std::shared_mutex> lock(models_mutex_);
        auto it = area_models_.find(depth);
        if (it != area_models_.end()) return it->second;
    }
    // Fit outside the exclusive section — the alpha syntheses go through the
    // (thread-safe) cone library and are memoized there. Two racing threads
    // fit identical models; the first insert wins.
    Area_model model(options_.format.total_bits());
    for (int w : options_.calibration_windows) {
        const Synthesis_report& report =
            library_.synthesis(w, depth, device_, options_.synth);
        model.add_sample({report.register_count, report.lut_count});
    }
    model.calibrate();
    std::unique_lock<std::shared_mutex> lock(models_mutex_);
    return area_models_.emplace(depth, std::move(model)).first->second;
}

void Arch_evaluator::calibrate(int max_window, int max_depth) {
    check_internal(max_window >= 1 && max_depth >= 1,
                   "calibrate() needs positive bounds");
    for (int d = 1; d <= max_depth; ++d) {
        model_for_depth(d);
        // Building cones extends the shared expression pool; do all of it
        // here, serially, so parallel evaluations only read.
        for (int w = 1; w <= max_window; ++w) library_.cone(w, d);
    }
}

bool Arch_evaluator::is_calibrated(int depth) const {
    std::shared_lock<std::shared_mutex> lock(models_mutex_);
    return area_models_.count(depth) != 0;
}

double Arch_evaluator::estimated_cone_area(int window, int depth) const {
    // Calibration designs were really synthesized — return their exact area
    // (the paper does the same: estimation kicks in beyond the alpha points).
    for (int w : options_.calibration_windows) {
        if (w == window) {
            return library_.synthesis(window, depth, device_, options_.synth).lut_count;
        }
    }
    const Area_model& model = model_for_depth(depth);
    return model.estimate(library_.stats(window, depth).register_count);
}

double Arch_evaluator::actual_cone_area(int window, int depth) const {
    return library_.synthesis(window, depth, device_, options_.synth).lut_count;
}

Arch_evaluation Arch_evaluator::evaluate(const Arch_instance& instance) const {
    Arch_evaluation eval;
    eval.instance = instance;

    const Stencil_step& step = library_.step();
    const Footprint fp = step.footprint();
    const int w = instance.window;

    // --- area: sum over instantiated cores -----------------------------------
    double estimated = 0.0;
    double actual = 0.0;
    double f_max = device_.max_clock_mhz;
    for (const auto& [depth, count] : instance.cores_per_depth) {
        if (count <= 0) {
            eval.feasible = false;
            eval.infeasible_reason = cat("depth ", depth, " has no cores");
            return eval;
        }
        estimated += count * estimated_cone_area(w, depth);
        actual += count * actual_cone_area(w, depth);
        // Clock = slowest cone type (single clock domain).
        const Synthesis_report& report =
            library_.synthesis(w, depth, device_, options_.synth);
        f_max = std::min(f_max, report.f_max_mhz);
    }
    // Infrastructure scales with the device class: small parts ship leaner
    // DMA/sequencing blocks, so cap the per-class overhead at a fraction of
    // the usable fabric.
    const double per_class = std::min(
        options_.class_overhead_luts, 0.08 * static_cast<double>(device_.usable_luts()));
    const double infra =
        per_class * static_cast<double>(instance.depth_classes().size());
    eval.estimated_area_luts = estimated + infra;
    eval.actual_area_luts = actual + infra;
    eval.f_max_mhz = f_max;

    // Feasibility: the paper's rule — one core of each used depth class must
    // exist — plus the area budget when a device bound applies (checked by
    // the caller; here we only require the classes to be represented).
    for (int depth : instance.depth_classes()) {
        if (instance.cores_per_depth.count(depth) == 0) {
            eval.feasible = false;
            eval.infeasible_reason = cat("no core allocated for depth ", depth);
            return eval;
        }
    }

    // --- level structure -----------------------------------------------------
    const Coverage coverage = level_coverages(w, instance.level_depths, fp);
    std::vector<Level_load> loads;
    for (std::size_t k = 1; k <= instance.level_depths.size(); ++k) {
        Level_load load;
        load.depth = instance.level_depths[k - 1];
        load.executions = executions_for_level(coverage, k, w);
        const Cone_stats& stats = library_.stats(w, load.depth);
        load.cone_inputs = stats.input_count;
        load.latency_cycles =
            library_.synthesis(w, load.depth, device_, options_.synth).latency_cycles;
        loads.push_back(load);
    }

    eval.windows_per_frame =
        static_cast<long long>(ceil_div(options_.frame_width, w)) *
        static_cast<long long>(ceil_div(options_.frame_height, w));

    // Off-chip traffic per output window: the initial coverage (all state +
    // const fields) in, the output window (state fields) out.
    const int fields_in = step.pool().field_count();
    const int fields_out = step.state_field_count();
    const double offchip_elems =
        static_cast<double>(coverage.width[0]) * coverage.height[0] * fields_in +
        static_cast<double>(w) * w * fields_out;

    eval.throughput = estimate_throughput(
        loads, instance.cores_per_depth, eval.windows_per_frame, offchip_elems,
        f_max, device_.offchip_elems_per_cycle, options_.throughput);

    // --- memory budget ----------------------------------------------------------
    std::vector<int> sides;
    for (std::size_t i = 0; i < coverage.width.size(); ++i) {
        sides.push_back(std::max(coverage.width[i], coverage.height[i]));
    }
    eval.memory = plan_memory(sides, fields_in, options_.frame_width,
                              options_.frame_height, options_.format.total_bits());
    if (eval.memory.total_kbits > static_cast<double>(device_.bram_kbits)) {
        eval.feasible = false;
        eval.infeasible_reason = cat("on-chip buffers need ",
                                     format_fixed(eval.memory.total_kbits, 1),
                                     " kbit > device ", device_.bram_kbits, " kbit");
    }
    return eval;
}

}  // namespace islhls
