#include "dse/cone_library.hpp"

#include <mutex>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Cone_library::Cone_library(Stencil_step step, std::string kernel_name)
    : step_(std::move(step)), kernel_name_(std::move(kernel_name)) {}

const Cone& Cone_library::cone(int window, int depth) {
    check_internal(window >= 1 && depth >= 1, "cone(window, depth) must be positive");
    cone_lookups_.fetch_add(1, std::memory_order_relaxed);
    const auto key = std::make_pair(window, depth);
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = cones_.find(key);
        if (it != cones_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = cones_.find(key);
    if (it == cones_.end()) {
        auto built = std::make_unique<Cone>(step_, Cone_spec{window, window, depth});
        it = cones_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

const Cone_stats& Cone_library::stats(int window, int depth) {
    return cone(window, depth).stats();
}

void Cone_library::attach_synthesis_store(Synthesis_store store,
                                          std::string key_prefix) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    store_ = std::move(store);
    store_key_prefix_ = std::move(key_prefix);
}

const Synthesis_report& Cone_library::synthesis(int window, int depth,
                                                const Fpga_device& device,
                                                const Synth_options& options) {
    synthesis_lookups_.fetch_add(1, std::memory_order_relaxed);
    // The synthesis result depends on the device AND the synthesis options
    // (word width above all — the per-architecture format search re-prices
    // cones at several widths through one library), so the options are part
    // of the memoization key.
    const auto key =
        std::make_tuple(window, depth,
                        cat(device.name, '|', to_string(options.format),
                            options.use_dsp ? "|dsp" : "", '|', options.seed));
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = syntheses_.find(key);
        if (it != syntheses_.end()) return it->second;
    }
    // The persistent store, when attached, is consulted before synthesizing:
    // a loaded report enters the memo map flagged in loaded_, so the meters
    // keep reporting what THIS process actually ran. Load/store happen
    // outside any lock (the store synchronizes itself).
    if (store_.load) {
        const std::string persist_key =
            cat(store_key_prefix_, window, "/", depth, "/", std::get<2>(key), "\n");
        if (std::optional<Synthesis_report> loaded = store_.load(persist_key)) {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            auto [it, inserted] = syntheses_.emplace(key, std::move(*loaded));
            if (inserted) loaded_.insert(key);
            return it->second;
        }
    }
    // Synthesize outside the exclusive section: the synthesizer only reads
    // the cone's own (immutable once built) register program, so distinct
    // keys can synthesize concurrently. Racing threads may synthesize the
    // same key twice; the synthesizer is deterministic, the first insert
    // wins, and the meter counts cache entries, so nothing diverges.
    const Cone& built_cone = cone(window, depth);
    const Synthesis_report report =
        synthesize_cone(built_cone, kernel_name_, device, options);
    if (store_.store) {
        const std::string persist_key =
            cat(store_key_prefix_, window, "/", depth, "/", std::get<2>(key), "\n");
        store_.store(persist_key, report);
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    return syntheses_.emplace(key, report).first->second;
}

int Cone_library::synthesis_runs() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return static_cast<int>(syntheses_.size() - loaded_.size());
}

int Cone_library::synthesis_loads() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return static_cast<int>(loaded_.size());
}

double Cone_library::synthesis_cpu_seconds() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    double total = 0.0;
    for (const auto& [key, report] : syntheses_) {
        if (!loaded_.count(key)) total += report.synthesis_cpu_seconds;
    }
    return total;
}

std::vector<double> Cone_library::synthesis_costs() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<double> costs;
    costs.reserve(syntheses_.size());
    for (const auto& [key, report] : syntheses_) {
        if (!loaded_.count(key)) costs.push_back(report.synthesis_cpu_seconds);
    }
    return costs;
}

int Cone_library::cone_builds() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return static_cast<int>(cones_.size());
}

}  // namespace islhls
