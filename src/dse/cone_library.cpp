#include "dse/cone_library.hpp"

#include "support/error.hpp"

namespace islhls {

Cone_library::Cone_library(Stencil_step step, std::string kernel_name)
    : step_(std::move(step)), kernel_name_(std::move(kernel_name)) {}

const Cone& Cone_library::cone(int window, int depth) {
    check_internal(window >= 1 && depth >= 1, "cone(window, depth) must be positive");
    const auto key = std::make_pair(window, depth);
    auto it = cones_.find(key);
    if (it == cones_.end()) {
        auto built = std::make_unique<Cone>(step_, Cone_spec{window, window, depth});
        it = cones_.emplace(key, std::move(built)).first;
    }
    return *it->second;
}

const Cone_stats& Cone_library::stats(int window, int depth) {
    return cone(window, depth).stats();
}

const Synthesis_report& Cone_library::synthesis(int window, int depth,
                                                const Fpga_device& device,
                                                const Synth_options& options) {
    const auto key = std::make_tuple(window, depth, device.name);
    auto it = syntheses_.find(key);
    if (it == syntheses_.end()) {
        const Synthesis_report report =
            synthesize_cone(cone(window, depth), kernel_name_, device, options);
        synthesis_runs_ += 1;
        synthesis_cpu_seconds_ += report.synthesis_cpu_seconds;
        it = syntheses_.emplace(key, report).first;
    }
    return it->second;
}

}  // namespace islhls
