#include "dse/streaming_backend.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {

std::string to_string(const Streaming_config& config) {
    std::ostringstream os;
    os << "stream(d=" << config.depth << ",v=" << config.vector_width
       << ",pe=" << config.pe_count << ",ch=" << config.channels << ")";
    return os.str();
}

std::string dump_line(const Streaming_evaluation& eval) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << to_string(eval.config) << " feasible=" << eval.feasible;
    if (!eval.feasible) os << " reason=" << eval.infeasible_reason;
    os << " luts=" << eval.area_luts << " dp_luts=" << eval.datapath_luts
       << " lb_luts=" << eval.line_buffer_luts
       << " lb_kbits=" << eval.line_buffer_kbits << " f_max=" << eval.f_max_mhz
       << " passes=" << eval.passes << " comp=" << eval.compute_cycles
       << " mem=" << eval.memory_cycles << " cyc=" << eval.cycles_per_pass
       << " bneck=" << eval.bottleneck << " spf=" << eval.seconds_per_frame
       << " fps=" << eval.fps;
    return os.str();
}

Streaming_backend::Streaming_backend(Cone_library& library,
                                     const Fpga_device& device,
                                     const Evaluator_options& evaluator_options,
                                     const Space_options& space,
                                     Streaming_options options)
    : library_(library),
      device_(device),
      evaluator_options_(evaluator_options),
      space_(space),
      options_(std::move(options)) {
    check_internal(space_.iterations >= 1 && space_.max_depth >= 1,
                   "invalid space options");
    // The candidate axis: fused depth x vector width x PE count x channels,
    // enumerated deterministically. Depths beyond N would compute more
    // iterations than asked — excluded up front.
    const int max_depth = std::min(space_.max_depth, space_.iterations);
    for (int d = 1; d <= max_depth; ++d) {
        for (int v : options_.vector_widths) {
            for (int p : options_.pe_counts) {
                for (int c : options_.channel_counts) {
                    check_internal(v >= 1 && p >= 1 && c >= 1,
                                   "streaming axes must be positive");
                    configs_.push_back({d, v, p, c});
                }
            }
        }
    }
}

const std::string& Streaming_backend::name() const {
    static const std::string kName = "streaming";
    return kName;
}

void Streaming_backend::calibrate() {
    if (calibrated_) return;
    const int max_depth = std::min(space_.max_depth, space_.iterations);
    // Serial phase one: build every cone this backend prices. Construction
    // extends the kernel's shared expression pool, so it must finish before
    // any concurrent evaluate() reads the pool (same discipline as
    // Arch_evaluator::calibrate).
    for (int d = 1; d <= max_depth; ++d) {
        library_.cone(1, d);
        for (int w : evaluator_options_.calibration_windows) library_.cone(w, d);
        // The per-width clocks below synthesize a v-column cone per
        // vectorization width — those cones must exist before any
        // concurrent evaluate() too.
        for (int v : options_.vector_widths) library_.cone(v, d);
    }
    const Footprint footprint = library_.step().footprint();
    fields_in_ = library_.step().pool().field_count();
    fields_out_ = library_.step().state_field_count();
    // Phase two: per fused depth, fit the same Eq. 1 model the paper backend
    // calibrates — identical synthesis keys, so a shared Cone_library pays
    // for the calibration set once across backends.
    for (int d = 1; d <= max_depth; ++d) {
        Depth_profile profile;
        const Cone_stats& stats = library_.stats(1, d);
        profile.register_count = stats.register_count;
        profile.pipeline_fill = stats.pipeline_depth;
        profile.halo_up = footprint.up * d;
        profile.halo_down = footprint.down * d;
        Area_model model(
            static_cast<double>(evaluator_options_.format.total_bits()));
        for (int w : evaluator_options_.calibration_windows) {
            const Synthesis_report& report =
                library_.synthesis(w, d, device_, evaluator_options_.synth);
            model.add_sample({library_.stats(w, d).register_count,
                              report.lut_count});
        }
        model.calibrate();
        profile.model = model;
        // One synthesis per vectorization width: the v-wide PE's clock, not
        // the one-column cone's, prices every config at that width.
        for (int v : options_.vector_widths) {
            const Synthesis_report& wide =
                library_.synthesis(v, d, device_, evaluator_options_.synth);
            profile.f_max_by_width[v] =
                std::min(device_.max_clock_mhz, wide.f_max_mhz);
        }
        profiles_[d] = profile;
    }
    calibrated_ = true;
}

std::size_t Streaming_backend::candidate_count() const { return configs_.size(); }

Streaming_evaluation Streaming_backend::evaluate(
    const Streaming_config& config) const {
    check_internal(calibrated_, "Streaming_backend::evaluate before calibrate");
    Streaming_evaluation eval;
    eval.config = config;
    const auto it = profiles_.find(config.depth);
    check_internal(it != profiles_.end() && config.vector_width >= 1 &&
                       config.pe_count >= 1 && config.channels >= 1,
                   "invalid streaming config");
    const Depth_profile& profile = it->second;
    const int frame_w = evaluator_options_.frame_width;
    const int frame_h = evaluator_options_.frame_height;
    const int halo_rows = profile.halo_up + profile.halo_down;

    const auto infeasible = [&eval](const char* reason) {
        eval.feasible = false;
        eval.infeasible_reason = reason;
    };
    if (config.vector_width > frame_w) {
        infeasible("vector width exceeds frame width");
        return eval;
    }
    if (config.pe_count > frame_h) {
        infeasible("more PEs than frame rows");
        return eval;
    }
    const int band_rows = ceil_div(frame_h, config.pe_count);
    if (config.pe_count > 1 && halo_rows > band_rows) {
        infeasible("band smaller than halo");
        return eval;
    }

    // --- throughput: ceil(N/d) passes, each max(compute, transfer) ---------------
    eval.passes = ceil_div(space_.iterations, config.depth);
    const double row_groups = ceil_div(frame_w, config.vector_width);
    // The slowest band streams its own rows plus the halo rows of every open
    // edge (an edge band has one neighbour, an interior band two; halos at
    // the frame boundary are free).
    double streamed_rows = 0.0;
    if (config.pe_count == 1) {
        streamed_rows = frame_h;
    } else if (config.pe_count == 2) {
        streamed_rows = band_rows + std::max(profile.halo_up, profile.halo_down);
    } else {
        streamed_rows = band_rows + halo_rows;
    }
    eval.compute_cycles = streamed_rows * row_groups + profile.pipeline_fill;

    // Off-chip traffic: the frame once, plus the halo re-reads across the
    // pe_count - 1 interior band boundaries; all state fields come back.
    const double rows_read =
        frame_h + static_cast<double>(config.pe_count - 1) * halo_rows;
    const double elements_read = rows_read * frame_w * fields_in_;
    const double elements_written =
        static_cast<double>(frame_h) * frame_w * fields_out_;
    const double bandwidth = config.channels * device_.offchip_elems_per_cycle;
    eval.memory_cycles = (elements_read + elements_written) / bandwidth;

    eval.cycles_per_pass = std::max(eval.compute_cycles, eval.memory_cycles);
    eval.bottleneck =
        eval.memory_cycles > eval.compute_cycles ? "channel" : "compute";
    const auto clock = profile.f_max_by_width.find(config.vector_width);
    check_internal(clock != profile.f_max_by_width.end(),
                   "vector width was not calibrated");
    eval.f_max_mhz = clock->second;
    eval.seconds_per_frame =
        eval.passes * eval.cycles_per_pass / (eval.f_max_mhz * 1e6);
    eval.fps = 1.0 / eval.seconds_per_frame;

    // --- area: per-PE datapath (Eq. 1 at vector_width columns) + SRL line
    // buffers + replication/channel infrastructure --------------------------------
    eval.datapath_luts =
        config.pe_count *
        profile.model.estimate(config.vector_width * profile.register_count);
    const double line_buffer_bits =
        static_cast<double>(config.pe_count) * halo_rows * frame_w * fields_in_ *
        evaluator_options_.format.total_bits();
    eval.line_buffer_kbits = line_buffer_bits / 1024.0;
    eval.line_buffer_luts = line_buffer_bits / options_.srl_bits_per_lut;
    eval.area_luts = eval.datapath_luts + eval.line_buffer_luts +
                     config.pe_count * options_.pe_overhead_luts +
                     config.channels * options_.channel_overhead_luts;
    if (eval.area_luts > static_cast<double>(device_.usable_luts())) {
        infeasible("area exceeds device budget");
    }
    return eval;
}

std::vector<Backend_point> Streaming_backend::evaluate_candidate(
    std::size_t index) const {
    check_internal(index < configs_.size(), "candidate index out of range");
    const Streaming_evaluation eval = evaluate(configs_[index]);
    if (!eval.feasible) return {};
    Backend_point point;
    point.config = to_string(eval.config);
    point.area_luts = eval.area_luts;
    point.seconds_per_frame = eval.seconds_per_frame;
    point.fps = eval.fps;
    point.detail = dump_line(eval);
    return {std::move(point)};
}

}  // namespace islhls
