#include "dse/paper_backend.hpp"

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {

std::vector<std::vector<int>> depth_partitions(int iterations, int max_depth) {
    std::vector<int> parts;
    for (int d = 1; d <= max_depth; ++d) parts.push_back(d);
    return partitions_into(iterations, parts);
}

std::vector<int> canonical_partition(int iterations, int primary_depth) {
    check_internal(primary_depth >= 1, "primary depth must be >= 1");
    std::vector<int> levels;
    int remaining = iterations;
    int depth = primary_depth;
    while (remaining > 0) {
        if (depth > remaining) depth = remaining;
        levels.push_back(depth);
        remaining -= depth;
    }
    return levels;
}

Paper_backend::Paper_backend(Arch_evaluator& evaluator, const Space_options& space)
    : evaluator_(evaluator), space_(space) {
    check_internal(space_.iterations >= 1 && space_.max_window >= 1 &&
                       space_.max_depth >= 1,
                   "invalid space options");
    partitions_ = depth_partitions(space_.iterations, space_.max_depth);
    candidates_.reserve(static_cast<std::size_t>(space_.max_window) *
                        partitions_.size());
    for (int w = 1; w <= space_.max_window; ++w) {
        for (std::size_t p = 0; p < partitions_.size(); ++p) {
            candidates_.push_back({w, p});
        }
    }
}

const std::string& Paper_backend::name() const {
    static const std::string kName = "paper";
    return kName;
}

void Paper_backend::calibrate() {
    evaluator_.calibrate(space_.max_window, space_.max_depth);
}

std::size_t Paper_backend::candidate_count() const { return candidates_.size(); }

Paper_backend::Grow_result Paper_backend::grow_allocation(
    Arch_instance instance, double area_budget, int max_total_cores,
    std::vector<Arch_evaluation>* out) const {
    Grow_result result;
    // Minimal allocation: one core per depth class (the paper's feasibility
    // requirement).
    instance.cores_per_depth.clear();
    for (int d : instance.depth_classes()) instance.cores_per_depth[d] = 1;

    for (;;) {
        Arch_evaluation eval = evaluator_.evaluate(instance);
        const bool fits = eval.estimated_area_luts <= area_budget && eval.feasible;
        if (!fits) break;
        if (out != nullptr) out->push_back(eval);
        if (!result.any_feasible ||
            eval.throughput.fps > result.best.throughput.fps) {
            result.best = eval;
            result.any_feasible = true;
        }
        // Adding cores only helps while the design is core-bound.
        if (eval.throughput.bottleneck != "core") break;
        int total_cores = 0;
        for (const auto& [d, n] : instance.cores_per_depth) total_cores += n;
        if (total_cores >= max_total_cores) break;
        // Feed the bottleneck class.
        int bottleneck_depth = -1;
        double worst = -1.0;
        for (const auto& [d, cycles] : eval.throughput.class_cycles) {
            if (cycles > worst) {
                worst = cycles;
                bottleneck_depth = d;
            }
        }
        if (bottleneck_depth < 0) break;
        instance.cores_per_depth[bottleneck_depth] += 1;
    }
    return result;
}

std::vector<Arch_evaluation> Paper_backend::candidate_steps(
    std::size_t index) const {
    check_internal(index < candidates_.size(), "candidate index out of range");
    const Candidate& candidate = candidates_[index];
    Arch_instance instance;
    instance.window = candidate.window;
    instance.level_depths = partitions_[candidate.partition];
    std::vector<Arch_evaluation> steps;
    grow_allocation(instance, space_.pareto_area_cap_luts,
                    space_.max_cores_per_sweep, &steps);
    return steps;
}

std::vector<Backend_point> Paper_backend::evaluate_candidate(
    std::size_t index) const {
    std::vector<Backend_point> points;
    for (const Arch_evaluation& e : candidate_steps(index)) {
        Backend_point p;
        p.config = to_string(e.instance);
        p.area_luts = e.estimated_area_luts;
        p.seconds_per_frame = e.throughput.seconds_per_frame;
        p.fps = e.throughput.fps;
        p.detail = dump_evaluation_line(e);
        points.push_back(std::move(p));
    }
    return points;
}

}  // namespace islhls
