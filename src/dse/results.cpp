#include "dse/results.hpp"

#include <iomanip>
#include <sstream>

namespace islhls {

// --- deterministic dumps ---------------------------------------------------------

namespace {

std::ostream& full_precision(std::ostream& os) {
    os << std::setprecision(17);
    return os;
}

void dump_evaluation(std::ostream& os, const Arch_evaluation& e) {
    os << to_string(e.instance) << " feasible=" << e.feasible;
    if (!e.feasible) os << " reason=" << e.infeasible_reason;
    os << " est_luts=" << e.estimated_area_luts
       << " act_luts=" << e.actual_area_luts << " f_max=" << e.f_max_mhz
       << " wpf=" << e.windows_per_frame
       << " cycles=" << e.throughput.cycles_per_window
       << " bneck=" << e.throughput.bottleneck
       << " spf=" << e.throughput.seconds_per_frame
       << " fps=" << e.throughput.fps << " mem_kbits=" << e.memory.total_kbits;
}

}  // namespace

std::string dump_evaluation_line(const Arch_evaluation& eval) {
    std::ostringstream os;
    full_precision(os);
    dump_evaluation(os, eval);
    return os.str();
}

std::string dump(const Arch_evaluation& eval) {
    std::ostringstream os;
    full_precision(os);
    dump_evaluation(os, eval);
    os << "\n";
    return os.str();
}

std::string dump(const Pareto_result& result) {
    std::ostringstream os;
    full_precision(os);
    os << "points " << result.points.size() << "\n";
    for (const Arch_evaluation& e : result.points) {
        dump_evaluation(os, e);
        os << "\n";
    }
    os << "front";
    for (std::size_t i : result.front) os << " " << i;
    os << "\n";
    return os.str();
}

std::string dump(const Fit_result& result) {
    std::ostringstream os;
    full_precision(os);
    os << "grid " << result.grid.size() << "\n";
    for (const Fit_cell& cell : result.grid) {
        os << "w" << cell.window << " d" << cell.primary_depth
           << " valid=" << cell.valid;
        if (cell.valid) {
            os << " ";
            dump_evaluation(os, cell.eval);
        }
        os << "\n";
    }
    os << "best " << result.has_best;
    if (result.has_best) {
        os << " ";
        dump_evaluation(os, result.best);
    }
    os << "\n";
    return os.str();
}

std::string dump(const Area_validation& validation) {
    std::ostringstream os;
    full_precision(os);
    for (const Area_point& p : validation.points) {
        os << "w" << p.window << " d" << p.depth << " regs=" << p.registers
           << " est=" << p.estimated_luts << " act=" << p.actual_luts
           << " cal=" << p.is_calibration << " err=" << p.rel_error << "\n";
    }
    os << "avg=" << validation.avg_rel_error << " max=" << validation.max_rel_error
       << "\n";
    return os.str();
}

std::string dump(const Format_grid& grid) {
    std::ostringstream os;
    full_precision(os);
    for (const Format_cell& cell : grid.cells) {
        os << "w" << cell.window << " d" << cell.depth << " "
           << to_string(cell.result.format) << " psnr=" << cell.result.psnr_db
           << " exact=" << cell.result.exact
           << " max_abs=" << cell.result.max_abs_value
           << " range_int=" << cell.result.range_integer_bits
           << " tried=" << cell.result.formats_tried
           << " sat=" << cell.result.satisfiable;
        if (cell.evaluated) {
            os << " luts=" << cell.area_luts << " f_max=" << cell.f_max_mhz
               << " fps=" << cell.fps;
        }
        os << "\n";
    }
    return os.str();
}

std::string dump(const Backend_pareto& result) {
    std::ostringstream os;
    full_precision(os);
    os << "points " << result.points.size() << "\n";
    for (const Backend_pareto::Tagged& t : result.points) {
        os << t.point.detail << "\n";
    }
    os << "front";
    for (std::size_t i : result.front) os << " " << i;
    os << "\n";
    return os.str();
}

}  // namespace islhls
