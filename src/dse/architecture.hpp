// Architecture instances: the points of the design space (Sec. 3.1).
//
// An instance is fully characterized by the square output window size, the
// deep-first sequence of cone depths covering the N iterations, and how many
// cores of each depth class are instantiated. Helper functions derive the
// level coverages (how much area each level must materialize so later levels
// find their halos on chip) and the per-level execution counts.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "grid/tile.hpp"

namespace islhls {

struct Arch_instance {
    int window = 1;                    // square output window side
    std::vector<int> level_depths;     // deep-first, sums to the iteration count
    std::map<int, int> cores_per_depth;

    int iterations() const;
    // Distinct depth classes (each requires at least one core — the paper's
    // feasibility rule).
    std::vector<int> depth_classes() const;
};

std::string to_string(const Arch_instance& a);

// Per-level output coverage, deep-first, preceded by the initial input
// coverage: element [0] is the window loaded from off-chip (with the full
// remaining-iterations halo), element [k] is what level k must produce,
// element [L] equals the output window. Sizes are per axis.
struct Coverage {
    std::vector<int> width;   // size L+1
    std::vector<int> height;  // size L+1
};
Coverage level_coverages(int window, const std::vector<int>& level_depths,
                         const Footprint& step_footprint);

// Cone executions level k needs to tile its coverage with window-sized
// outputs (the paper's "cone A executed four times" pattern of Fig. 3).
long long executions_for_level(const Coverage& coverage, std::size_t level, int window);

}  // namespace islhls
