#include "ir/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/error.hpp"

namespace islhls {

int Op_census::count(Op_kind k) const {
    const auto it = by_kind.find(k);
    return it == by_kind.end() ? 0 : it->second;
}

std::vector<Expr_id> reachable_nodes(const Expr_pool& pool,
                                     const std::vector<Expr_id>& roots) {
    std::vector<Expr_id> order;
    std::unordered_set<Expr_id> visited;
    // Iterative post-order DFS: push (node, expanded) pairs.
    std::vector<std::pair<Expr_id, bool>> stack;
    for (auto it = roots.rbegin(); it != roots.rend(); ++it) stack.push_back({*it, false});
    while (!stack.empty()) {
        auto [id, expanded] = stack.back();
        stack.pop_back();
        if (expanded) {
            order.push_back(id);
            continue;
        }
        if (visited.count(id) != 0) continue;
        visited.insert(id);
        stack.push_back({id, true});
        const Expr_node& n = pool.node(id);
        for (int i = n.arg_count() - 1; i >= 0; --i) {
            const Expr_id arg = n.args[static_cast<std::size_t>(i)];
            if (visited.count(arg) == 0) stack.push_back({arg, false});
        }
    }
    return order;
}

Op_census count_ops(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    Op_census census;
    for (Expr_id id : reachable_nodes(pool, roots)) {
        const Expr_node& n = pool.node(id);
        census.by_kind[n.kind] += 1;
        if (is_operation(n.kind)) {
            census.operation_count += 1;
        } else if (n.kind == Op_kind::input) {
            census.input_count += 1;
        } else {
            census.constant_count += 1;
        }
    }
    return census;
}

int dag_depth(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    std::unordered_map<Expr_id, int> depth;
    int worst = 0;
    for (Expr_id id : reachable_nodes(pool, roots)) {
        const Expr_node& n = pool.node(id);
        int d = 0;
        if (is_operation(n.kind)) {
            int operand_max = 0;
            for (int i = 0; i < n.arg_count(); ++i) {
                operand_max = std::max(operand_max,
                                       depth.at(n.args[static_cast<std::size_t>(i)]));
            }
            d = operand_max + 1;
        }
        depth.emplace(id, d);
        worst = std::max(worst, d);
    }
    return worst;
}

std::vector<Input_ref> input_support(const Expr_pool& pool,
                                     const std::vector<Expr_id>& roots) {
    std::vector<Input_ref> refs;
    for (Expr_id id : reachable_nodes(pool, roots)) {
        const Expr_node& n = pool.node(id);
        if (n.kind == Op_kind::input) refs.push_back({n.field, n.dx, n.dy});
    }
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    return refs;
}

Footprint support_footprint(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    Footprint fp;
    for (const Input_ref& r : input_support(pool, roots)) {
        fp.left = std::max(fp.left, -r.dx);
        fp.right = std::max(fp.right, r.dx);
        fp.up = std::max(fp.up, -r.dy);
        fp.down = std::max(fp.down, r.dy);
    }
    return fp;
}

}  // namespace islhls
