#include "ir/program.hpp"

#include <algorithm>

#include "ir/analysis.hpp"
#include "ir/compiled.hpp"
#include "ir/eval.hpp"
#include "support/error.hpp"

namespace islhls {

Register_program build_program(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    Register_program prog;
    const std::vector<Expr_id> order = reachable_nodes(pool, roots);
    std::unordered_map<Expr_id, std::int32_t> reg_of;
    reg_of.reserve(order.size());

    for (Expr_id id : order) {
        const Expr_node& n = pool.node(id);
        Instruction instr;
        instr.kind = n.kind;
        instr.operand_count = n.arg_count();
        int level = 0;
        for (int i = 0; i < n.arg_count(); ++i) {
            const std::int32_t src = reg_of.at(n.args[static_cast<std::size_t>(i)]);
            instr.operands[static_cast<std::size_t>(i)] = src;
            level = std::max(level, prog.instrs_[static_cast<std::size_t>(src)].level);
        }
        switch (n.kind) {
            case Op_kind::constant:
                instr.value = n.value;
                prog.constant_count_ += 1;
                break;
            case Op_kind::input:
                instr.field = n.field;
                instr.dx = n.dx;
                instr.dy = n.dy;
                prog.ports_.push_back({n.field, n.dx, n.dy});
                prog.input_count_ += 1;
                break;
            default:
                instr.level = level + 1;
                prog.register_count_ += 1;
                break;
        }
        if (is_operation(n.kind)) {
            prog.depth_ = std::max(prog.depth_, instr.level);
        }
        reg_of.emplace(id, static_cast<std::int32_t>(prog.instrs_.size()));
        prog.instrs_.push_back(instr);
    }
    for (Expr_id r : roots) prog.output_regs_.push_back(reg_of.at(r));
    // Compile eagerly: the lowering is one linear pass over the finished
    // instruction vector, and doing it here keeps the program immutable
    // afterwards — compiled() needs no synchronization and copies share the
    // tape freely.
    prog.compiled_ = std::make_shared<const Compiled_program>(prog);
    return prog;
}

void Register_program::run_trace_into(const std::vector<double>& inputs,
                                      std::vector<double>& regs) const {
    check_internal(inputs.size() == static_cast<std::size_t>(input_count_),
                   "Register_program::run_trace input arity mismatch");
    regs.assign(instrs_.size(), 0.0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const Instruction& instr = instrs_[i];
        switch (instr.kind) {
            case Op_kind::constant:
                regs[i] = instr.value;
                break;
            case Op_kind::input:
                regs[i] = inputs[next_input++];
                break;
            default: {
                double operands[3] = {0.0, 0.0, 0.0};
                for (int a = 0; a < instr.operand_count; ++a) {
                    operands[a] = regs[static_cast<std::size_t>(
                        instr.operands[static_cast<std::size_t>(a)])];
                }
                regs[i] = apply_op(instr.kind, operands);
                break;
            }
        }
    }
}

std::vector<double> Register_program::run_trace(const std::vector<double>& inputs) const {
    std::vector<double> regs;
    run_trace_into(inputs, regs);
    return regs;
}

const Compiled_program& Register_program::compiled() const {
    check_internal(compiled_ != nullptr,
                   "compiled() on a default-constructed Register_program");
    return *compiled_;
}

std::vector<double> Register_program::run(const std::vector<double>& inputs) const {
    check_internal(inputs.size() == static_cast<std::size_t>(input_count_),
                   "Register_program::run input arity mismatch");
    if (instrs_.empty()) return {};
    const Compiled_program& cp = compiled();
    thread_local std::vector<double> slots;
    if (slots.size() < instrs_.size()) slots.resize(instrs_.size());
    cp.eval_point(inputs.data(), slots.data());
    std::vector<double> out;
    out.reserve(output_regs_.size());
    for (std::int32_t r : output_regs_) out.push_back(slots[static_cast<std::size_t>(r)]);
    return out;
}

}  // namespace islhls
