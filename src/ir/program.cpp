#include "ir/program.hpp"

#include <algorithm>

#include "ir/analysis.hpp"
#include "ir/eval.hpp"
#include "support/error.hpp"

namespace islhls {

Register_program build_program(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    Register_program prog;
    const std::vector<Expr_id> order = reachable_nodes(pool, roots);
    std::unordered_map<Expr_id, std::int32_t> reg_of;
    reg_of.reserve(order.size());

    for (Expr_id id : order) {
        const Expr_node& n = pool.node(id);
        Instruction instr;
        instr.kind = n.kind;
        instr.operand_count = n.arg_count();
        int level = 0;
        for (int i = 0; i < n.arg_count(); ++i) {
            const std::int32_t src = reg_of.at(n.args[static_cast<std::size_t>(i)]);
            instr.operands[static_cast<std::size_t>(i)] = src;
            level = std::max(level, prog.instrs_[static_cast<std::size_t>(src)].level);
        }
        switch (n.kind) {
            case Op_kind::constant:
                instr.value = n.value;
                prog.constant_count_ += 1;
                break;
            case Op_kind::input:
                instr.field = n.field;
                instr.dx = n.dx;
                instr.dy = n.dy;
                prog.ports_.push_back({n.field, n.dx, n.dy});
                prog.input_count_ += 1;
                break;
            default:
                instr.level = level + 1;
                prog.register_count_ += 1;
                break;
        }
        if (is_operation(n.kind)) {
            prog.depth_ = std::max(prog.depth_, instr.level);
        }
        reg_of.emplace(id, static_cast<std::int32_t>(prog.instrs_.size()));
        prog.instrs_.push_back(instr);
    }
    for (Expr_id r : roots) prog.output_regs_.push_back(reg_of.at(r));
    return prog;
}

std::vector<double> Register_program::run_trace(const std::vector<double>& inputs) const {
    check_internal(inputs.size() == static_cast<std::size_t>(input_count_),
                   "Register_program::run_trace input arity mismatch");
    std::vector<double> regs(instrs_.size(), 0.0);
    std::size_t next_input = 0;
    for (std::size_t i = 0; i < instrs_.size(); ++i) {
        const Instruction& instr = instrs_[i];
        switch (instr.kind) {
            case Op_kind::constant:
                regs[i] = instr.value;
                break;
            case Op_kind::input:
                regs[i] = inputs[next_input++];
                break;
            default: {
                double operands[3] = {0.0, 0.0, 0.0};
                for (int a = 0; a < instr.operand_count; ++a) {
                    operands[a] = regs[static_cast<std::size_t>(
                        instr.operands[static_cast<std::size_t>(a)])];
                }
                regs[i] = apply_op(instr.kind, operands);
                break;
            }
        }
    }
    return regs;
}

std::vector<double> Register_program::run(const std::vector<double>& inputs) const {
    const std::vector<double> regs = run_trace(inputs);
    std::vector<double> out;
    out.reserve(output_regs_.size());
    for (std::int32_t r : output_regs_) out.push_back(regs[static_cast<std::size_t>(r)]);
    return out;
}

}  // namespace islhls
