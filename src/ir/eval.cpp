#include "ir/eval.hpp"

#include <cmath>
#include <unordered_map>

#include "ir/analysis.hpp"
#include "support/error.hpp"

namespace islhls {

double apply_op(Op_kind kind, const double* operands) {
    switch (kind) {
        case Op_kind::add: return operands[0] + operands[1];
        case Op_kind::sub: return operands[0] - operands[1];
        case Op_kind::mul: return operands[0] * operands[1];
        case Op_kind::div: return operands[0] / operands[1];
        case Op_kind::min_op: return std::fmin(operands[0], operands[1]);
        case Op_kind::max_op: return std::fmax(operands[0], operands[1]);
        case Op_kind::neg: return -operands[0];
        case Op_kind::abs_op: return std::fabs(operands[0]);
        case Op_kind::sqrt_op: return std::sqrt(operands[0]);
        case Op_kind::lt: return operands[0] < operands[1] ? 1.0 : 0.0;
        case Op_kind::le: return operands[0] <= operands[1] ? 1.0 : 0.0;
        case Op_kind::eq: return operands[0] == operands[1] ? 1.0 : 0.0;
        case Op_kind::select: return operands[0] != 0.0 ? operands[1] : operands[2];
        case Op_kind::constant:
        case Op_kind::input:
            break;
    }
    throw Internal_error("apply_op called on a leaf kind");
}

std::vector<double> evaluate_many(const Expr_pool& pool,
                                  const std::vector<Expr_id>& roots,
                                  const Input_resolver& resolve) {
    std::unordered_map<Expr_id, double> memo;
    for (Expr_id id : reachable_nodes(pool, roots)) {
        const Expr_node& n = pool.node(id);
        double v = 0.0;
        switch (n.kind) {
            case Op_kind::constant:
                v = n.value;
                break;
            case Op_kind::input:
                v = resolve(n.field, n.dx, n.dy);
                break;
            default: {
                double operands[3] = {0.0, 0.0, 0.0};
                for (int i = 0; i < n.arg_count(); ++i) {
                    operands[i] = memo.at(n.args[static_cast<std::size_t>(i)]);
                }
                v = apply_op(n.kind, operands);
                break;
            }
        }
        memo.emplace(id, v);
    }
    std::vector<double> out;
    out.reserve(roots.size());
    for (Expr_id r : roots) out.push_back(memo.at(r));
    return out;
}

double evaluate(const Expr_pool& pool, Expr_id root, const Input_resolver& resolve) {
    return evaluate_many(pool, {root}, resolve)[0];
}

}  // namespace islhls
