#include "ir/compiled.hpp"

#include <algorithm>

#include "ir/eval.hpp"

namespace islhls {

Compiled_program::Compiled_program(const Register_program& program) {
    const std::vector<Instruction>& instrs = program.instructions();
    slot_count_ = static_cast<int>(instrs.size());
    bool any_input = false;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        const Instruction& instr = instrs[i];
        const auto slot = static_cast<std::int32_t>(i);
        switch (instr.kind) {
            case Op_kind::constant:
                constants_.push_back({slot, instr.value});
                break;
            case Op_kind::input: {
                inputs_.push_back({slot, instr.field, instr.dx, instr.dy});
                if (instr.field >= static_cast<int>(field_extents_.size())) {
                    field_extents_.resize(static_cast<std::size_t>(instr.field) + 1);
                }
                Field_extent& e = field_extents_[static_cast<std::size_t>(instr.field)];
                if (!e.used) {
                    e.used = true;
                    e.min_dx = e.max_dx = instr.dx;
                    e.min_dy = e.max_dy = instr.dy;
                } else {
                    e.min_dx = std::min(e.min_dx, instr.dx);
                    e.max_dx = std::max(e.max_dx, instr.dx);
                    e.min_dy = std::min(e.min_dy, instr.dy);
                    e.max_dy = std::max(e.max_dy, instr.dy);
                }
                if (!any_input) {
                    any_input = true;
                    min_dx_ = max_dx_ = instr.dx;
                    min_dy_ = max_dy_ = instr.dy;
                } else {
                    min_dx_ = std::min(min_dx_, instr.dx);
                    max_dx_ = std::max(max_dx_, instr.dx);
                    min_dy_ = std::min(min_dy_, instr.dy);
                    max_dy_ = std::max(max_dy_, instr.dy);
                }
                break;
            }
            default: {
                Tape_op op;
                op.kind = instr.kind;
                op.dest = slot;
                op.src = instr.operands;
                op.src_count = instr.operand_count;
                ops_.push_back(op);
                break;
            }
        }
    }
    output_slots_ = program.outputs();
}

Fixed_tape::Fixed_tape(const Compiled_program& tape, const Fixed_format& format)
    : tape_(&tape),
      format_(format),
      wrap_(format.total_bits()),
      fixed_one_(to_raw(1.0, format)) {
    constant_raw_.reserve(tape.constants().size());
    for (const Tape_constant& c : tape.constants()) {
        constant_raw_.push_back(to_raw(c.value, format));
    }
}

void Fixed_tape::eval_point(const std::int64_t* inputs, std::int64_t* slots) const {
    const std::vector<Tape_constant>& constants = tape_->constants();
    for (std::size_t i = 0; i < constants.size(); ++i) {
        slots[constants[i].slot] = constant_raw_[i];
    }
    const std::vector<Tape_input>& ins = tape_->inputs();
    for (std::size_t i = 0; i < ins.size(); ++i) {
        slots[ins[i].slot] = wrap_(inputs[i]);
    }
    const int frac = format_.frac_bits;
    for (const Tape_op& op : tape_->ops()) {
        std::int64_t operands[3] = {0, 0, 0};
        for (int a = 0; a < op.src_count; ++a) {
            operands[a] = slots[op.src[static_cast<std::size_t>(a)]];
        }
        slots[op.dest] = apply_op_fixed(op.kind, operands, wrap_, frac, fixed_one_);
    }
}

void Compiled_program::eval_point(const double* inputs, double* slots) const {
    for (const Tape_constant& c : constants_) {
        slots[c.slot] = c.value;
    }
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
        slots[inputs_[i].slot] = inputs[i];
    }
    for (const Tape_op& op : ops_) {
        double operands[3] = {0.0, 0.0, 0.0};
        for (int a = 0; a < op.src_count; ++a) {
            operands[a] = slots[op.src[static_cast<std::size_t>(a)]];
        }
        slots[op.dest] = apply_op(op.kind, operands);
    }
}

}  // namespace islhls
