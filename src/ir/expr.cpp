#include "ir/expr.hpp"

#include <cmath>
#include <functional>

#include "support/error.hpp"
#include "support/numeric.hpp"
#include "support/text.hpp"

namespace islhls {

bool is_operation(Op_kind k) {
    return k != Op_kind::constant && k != Op_kind::input;
}

bool is_commutative(Op_kind k) {
    return k == Op_kind::add || k == Op_kind::mul || k == Op_kind::min_op ||
           k == Op_kind::max_op || k == Op_kind::eq;
}

int arity(Op_kind k) {
    switch (k) {
        case Op_kind::constant:
        case Op_kind::input:
            return 0;
        case Op_kind::neg:
        case Op_kind::abs_op:
        case Op_kind::sqrt_op:
            return 1;
        case Op_kind::select:
            return 3;
        default:
            return 2;
    }
}

std::string to_string(Op_kind k) {
    switch (k) {
        case Op_kind::constant: return "const";
        case Op_kind::input: return "input";
        case Op_kind::add: return "add";
        case Op_kind::sub: return "sub";
        case Op_kind::mul: return "mul";
        case Op_kind::div: return "div";
        case Op_kind::min_op: return "min";
        case Op_kind::max_op: return "max";
        case Op_kind::neg: return "neg";
        case Op_kind::abs_op: return "abs";
        case Op_kind::sqrt_op: return "sqrt";
        case Op_kind::lt: return "lt";
        case Op_kind::le: return "le";
        case Op_kind::eq: return "eq";
        case Op_kind::select: return "select";
    }
    return "?";
}

// --- hashing / equality ------------------------------------------------------

std::size_t Expr_pool::Node_hash::operator()(const Expr_node& n) const {
    std::uint64_t h = hash_mix(static_cast<std::uint64_t>(n.kind));
    if (n.kind == Op_kind::constant) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(n.value));
        __builtin_memcpy(&bits, &n.value, sizeof(bits));
        h = hash_combine(h, bits);
    } else if (n.kind == Op_kind::input) {
        h = hash_combine(h, static_cast<std::uint64_t>(n.field));
        h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(n.dx) + (1 << 20)));
        h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(n.dy) + (1 << 20)));
    } else {
        for (int i = 0; i < n.arg_count(); ++i) {
            h = hash_combine(h, n.args[static_cast<std::size_t>(i)]);
        }
    }
    return static_cast<std::size_t>(h);
}

bool Expr_pool::Node_eq::operator()(const Expr_node& a, const Expr_node& b) const {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
        case Op_kind::constant: {
            // Bit-compare so that -0.0 and 0.0 are distinct (sign matters for
            // later folding) and NaN never aliases.
            std::uint64_t ba = 0, bb = 0;
            __builtin_memcpy(&ba, &a.value, sizeof(ba));
            __builtin_memcpy(&bb, &b.value, sizeof(bb));
            return ba == bb;
        }
        case Op_kind::input:
            return a.field == b.field && a.dx == b.dx && a.dy == b.dy;
        default:
            for (int i = 0; i < a.arg_count(); ++i) {
                if (a.args[static_cast<std::size_t>(i)] != b.args[static_cast<std::size_t>(i)]) {
                    return false;
                }
            }
            return true;
    }
}

Expr_id Expr_pool::intern(const Expr_node& n) {
    if (auto it = table_.find(n); it != table_.end()) return it->second;
    const Expr_id id = static_cast<Expr_id>(nodes_.size());
    nodes_.push_back(n);
    table_.emplace(n, id);
    return id;
}

const Expr_node& Expr_pool::node(Expr_id id) const {
    check_internal(id < nodes_.size(), "Expr_id out of range");
    return nodes_[id];
}

// --- leaves -------------------------------------------------------------------

Expr_id Expr_pool::constant(double v) {
    Expr_node n;
    n.kind = Op_kind::constant;
    n.value = v;
    return intern(n);
}

Expr_id Expr_pool::input(int field, int dx, int dy) {
    check_internal(field >= 0 && field < field_count(), "input field out of range");
    Expr_node n;
    n.kind = Op_kind::input;
    n.field = field;
    n.dx = dx;
    n.dy = dy;
    return intern(n);
}

// --- helpers ------------------------------------------------------------------

namespace {
bool is_const(const Expr_node& n, double v) {
    return n.kind == Op_kind::constant && n.value == v;
}
}  // namespace

// --- binary constructors --------------------------------------------------------

Expr_id Expr_pool::add(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value + nb.value);
    }
    if (is_const(na, 0.0)) return b;
    if (is_const(nb, 0.0)) return a;
    return raw_binary(Op_kind::add, a, b);
}

Expr_id Expr_pool::sub(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value - nb.value);
    }
    if (is_const(nb, 0.0)) return a;
    if (a == b) return constant(0.0);
    if (is_const(na, 0.0)) return neg(b);
    return raw_binary(Op_kind::sub, a, b);
}

Expr_id Expr_pool::mul(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value * nb.value);
    }
    if (is_const(na, 1.0)) return b;
    if (is_const(nb, 1.0)) return a;
    if (is_const(na, 0.0) || is_const(nb, 0.0)) return constant(0.0);
    return raw_binary(Op_kind::mul, a, b);
}

Expr_id Expr_pool::div(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant && nb.value != 0.0) {
        return constant(na.value / nb.value);
    }
    if (is_const(nb, 1.0)) return a;
    if (is_const(na, 0.0) && !(nb.kind == Op_kind::constant && nb.value == 0.0)) {
        return constant(0.0);
    }
    return raw_binary(Op_kind::div, a, b);
}

Expr_id Expr_pool::min_of(Expr_id a, Expr_id b) {
    if (a == b) return a;
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(std::fmin(na.value, nb.value));
    }
    return raw_binary(Op_kind::min_op, a, b);
}

Expr_id Expr_pool::max_of(Expr_id a, Expr_id b) {
    if (a == b) return a;
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(std::fmax(na.value, nb.value));
    }
    return raw_binary(Op_kind::max_op, a, b);
}

Expr_id Expr_pool::neg(Expr_id a) {
    const Expr_node& na = node(a);
    if (na.kind == Op_kind::constant) return constant(-na.value);
    if (na.kind == Op_kind::neg) return na.args[0];
    return raw_unary(Op_kind::neg, a);
}

Expr_id Expr_pool::abs_of(Expr_id a) {
    const Expr_node& na = node(a);
    if (na.kind == Op_kind::constant) return constant(std::fabs(na.value));
    if (na.kind == Op_kind::abs_op) return a;
    if (na.kind == Op_kind::neg) return abs_of(na.args[0]);
    return raw_unary(Op_kind::abs_op, a);
}

Expr_id Expr_pool::sqrt_of(Expr_id a) {
    const Expr_node& na = node(a);
    if (na.kind == Op_kind::constant && na.value >= 0.0) return constant(std::sqrt(na.value));
    return raw_unary(Op_kind::sqrt_op, a);
}

Expr_id Expr_pool::less(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value < nb.value ? 1.0 : 0.0);
    }
    if (a == b) return constant(0.0);
    return raw_binary(Op_kind::lt, a, b);
}

Expr_id Expr_pool::less_equal(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value <= nb.value ? 1.0 : 0.0);
    }
    if (a == b) return constant(1.0);
    return raw_binary(Op_kind::le, a, b);
}

Expr_id Expr_pool::equal(Expr_id a, Expr_id b) {
    const Expr_node& na = node(a);
    const Expr_node& nb = node(b);
    if (na.kind == Op_kind::constant && nb.kind == Op_kind::constant) {
        return constant(na.value == nb.value ? 1.0 : 0.0);
    }
    if (a == b) return constant(1.0);
    return raw_binary(Op_kind::eq, a, b);
}

Expr_id Expr_pool::select(Expr_id cond, Expr_id if_true, Expr_id if_false) {
    const Expr_node& nc = node(cond);
    if (nc.kind == Op_kind::constant) {
        return nc.value != 0.0 ? if_true : if_false;
    }
    if (if_true == if_false) return if_true;
    Expr_node n;
    n.kind = Op_kind::select;
    n.args = {cond, if_true, if_false};
    return intern(n);
}

Expr_id Expr_pool::raw_unary(Op_kind k, Expr_id a) {
    check_internal(arity(k) == 1, cat("raw_unary() called with ", to_string(k)));
    Expr_node n;
    n.kind = k;
    n.args = {a, no_expr, no_expr};
    return intern(n);
}

Expr_id Expr_pool::raw_binary(Op_kind k, Expr_id a, Expr_id b) {
    check_internal(arity(k) == 2, cat("raw_binary() called with ", to_string(k)));
    // Canonicalize commutative operand order; a op b and b op a then share a
    // node (and a hardware register). Safe bit-exactly for IEEE add/mul/min/max.
    if (is_commutative(k) && a > b) std::swap(a, b);
    Expr_node n;
    n.kind = k;
    n.args = {a, b, no_expr};
    return intern(n);
}


Expr_id Expr_pool::unary(Op_kind k, Expr_id a) {
    switch (k) {
        case Op_kind::neg: return neg(a);
        case Op_kind::abs_op: return abs_of(a);
        case Op_kind::sqrt_op: return sqrt_of(a);
        default:
            throw Internal_error(cat("unary() called with ", to_string(k)));
    }
}

Expr_id Expr_pool::binary(Op_kind k, Expr_id a, Expr_id b) {
    switch (k) {
        case Op_kind::add: return add(a, b);
        case Op_kind::sub: return sub(a, b);
        case Op_kind::mul: return mul(a, b);
        case Op_kind::div: return div(a, b);
        case Op_kind::min_op: return min_of(a, b);
        case Op_kind::max_op: return max_of(a, b);
        case Op_kind::lt: return less(a, b);
        case Op_kind::le: return less_equal(a, b);
        case Op_kind::eq: return equal(a, b);
        default:
            throw Internal_error(cat("binary() called with ", to_string(k)));
    }
}

// --- fields -------------------------------------------------------------------

int Expr_pool::intern_field(const std::string& name) {
    const int existing = find_field(name);
    if (existing >= 0) return existing;
    field_names_.push_back(name);
    return static_cast<int>(field_names_.size()) - 1;
}

int Expr_pool::find_field(const std::string& name) const {
    for (std::size_t i = 0; i < field_names_.size(); ++i) {
        if (field_names_[i] == name) return static_cast<int>(i);
    }
    return -1;
}

const std::string& Expr_pool::field_name(int field) const {
    check_internal(field >= 0 && field < field_count(), "field index out of range");
    return field_names_[static_cast<std::size_t>(field)];
}

}  // namespace islhls
