// Numeric evaluation of expression DAGs.
//
// Used by the golden checks (does a cone DAG compute the same values as N
// native iterations?) and by the architecture simulator's functional mode.
#pragma once

#include <functional>
#include <vector>

#include "ir/expr.hpp"

namespace islhls {

// Resolves the value of an input leaf (field, dx, dy) for the current
// evaluation context (typically a read from a Frame_set around some origin).
using Input_resolver = std::function<double(int field, int dx, int dy)>;

// Evaluates `root` with DAG memoization; every node computed at most once.
double evaluate(const Expr_pool& pool, Expr_id root, const Input_resolver& resolve);

// Evaluates several roots sharing one memo table (cheaper than repeated
// evaluate() calls when roots share structure, as cone outputs do).
std::vector<double> evaluate_many(const Expr_pool& pool,
                                  const std::vector<Expr_id>& roots,
                                  const Input_resolver& resolve);

// Applies a single operation to already-computed operand values; shared by
// the evaluator and the register-program executor so semantics never diverge.
double apply_op(Op_kind kind, const double* operands);

}  // namespace islhls
