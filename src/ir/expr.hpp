// Hash-consed expression DAG.
//
// This IR is what the symbolic executor produces and what cones are built
// from. Hash-consing (every structurally identical node exists exactly once
// in the pool) is the mechanism behind the paper's "register reuse": when the
// dependency unrolling would recompute the same sub-operation, it instead
// re-reads the single register holding that node's value (Fig. 4 of the
// paper). The simplifying constructors additionally perform constant folding
// and algebraic identities so the generated hardware contains no trivial
// operators.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace islhls {

// Index of a node inside its Expr_pool. Stable for the pool's lifetime.
using Expr_id = std::uint32_t;

// Sentinel for "no node".
inline constexpr Expr_id no_expr = 0xffffffffu;

enum class Op_kind : std::uint8_t {
    constant,  // leaf: literal double
    input,     // leaf: read of a field at a relative offset
    add,
    sub,
    mul,
    div,
    min_op,
    max_op,
    neg,
    abs_op,
    sqrt_op,
    lt,      // a < b  -> 1.0 / 0.0
    le,      // a <= b -> 1.0 / 0.0
    eq,      // a == b -> 1.0 / 0.0
    select,  // cond != 0 ? a : b
};

// True for node kinds that represent a computation (and therefore occupy a
// register in the generated hardware); false for leaves.
bool is_operation(Op_kind k);

// True for add/mul/min/max, whose operands may be reordered freely.
bool is_commutative(Op_kind k);

// Number of operands (0 for leaves, 3 for select, else 1 or 2).
int arity(Op_kind k);

// Mnemonic ("add", "sqrt", ...).
std::string to_string(Op_kind k);

// One DAG node. Plain data; the pool owns all nodes.
struct Expr_node {
    Op_kind kind = Op_kind::constant;
    double value = 0.0;                       // constant leaves
    int field = -1;                           // input leaves: interned field id
    int dx = 0;                               // input leaves: relative offset
    int dy = 0;
    std::array<Expr_id, 3> args = {no_expr, no_expr, no_expr};

    int arg_count() const { return arity(kind); }
};

// Arena + hash-consing table for expression nodes, plus the field-name
// interner (field leaves reference fields by small integer).
class Expr_pool {
public:
    Expr_pool() = default;

    // --- leaves -----------------------------------------------------------
    Expr_id constant(double v);
    Expr_id input(int field, int dx, int dy);

    // --- simplifying constructors ------------------------------------------
    // All apply constant folding and local identities, then hash-cons.
    Expr_id add(Expr_id a, Expr_id b);
    Expr_id sub(Expr_id a, Expr_id b);
    Expr_id mul(Expr_id a, Expr_id b);
    Expr_id div(Expr_id a, Expr_id b);
    Expr_id min_of(Expr_id a, Expr_id b);
    Expr_id max_of(Expr_id a, Expr_id b);
    Expr_id neg(Expr_id a);
    Expr_id abs_of(Expr_id a);
    Expr_id sqrt_of(Expr_id a);
    Expr_id less(Expr_id a, Expr_id b);
    Expr_id less_equal(Expr_id a, Expr_id b);
    Expr_id equal(Expr_id a, Expr_id b);
    Expr_id select(Expr_id cond, Expr_id if_true, Expr_id if_false);

    // Generic entry points dispatching to the simplifying constructors above;
    // used by node rewriters such as transform_inputs().
    Expr_id unary(Op_kind k, Expr_id a);
    Expr_id binary(Op_kind k, Expr_id a, Expr_id b);

    // --- access ------------------------------------------------------------
    const Expr_node& node(Expr_id id) const;
    std::size_t size() const { return nodes_.size(); }

    // --- field interning -----------------------------------------------------
    // Returns a stable small integer for `name`, creating it on first use.
    int intern_field(const std::string& name);
    // Looks up without creating; -1 when unknown.
    int find_field(const std::string& name) const;
    const std::string& field_name(int field) const;
    int field_count() const { return static_cast<int>(field_names_.size()); }

private:
    Expr_id intern(const Expr_node& n);
    Expr_id raw_unary(Op_kind k, Expr_id a);
    Expr_id raw_binary(Op_kind k, Expr_id a, Expr_id b);

    struct Node_hash {
        std::size_t operator()(const Expr_node& n) const;
    };
    struct Node_eq {
        bool operator()(const Expr_node& a, const Expr_node& b) const;
    };

    std::vector<Expr_node> nodes_;
    std::unordered_map<Expr_node, Expr_id, Node_hash, Node_eq> table_;
    std::vector<std::string> field_names_;
};

// Rebuilds `root` (which lives in `pool`) replacing every input leaf by the
// expression returned by `leaf(node)`; non-leaf structure is re-created
// through the simplifying constructors (so substitution can trigger further
// folding). Memoizes per call, preserving DAG sharing. This is the primitive
// the cone builder uses to chain iterations.
template <typename Leaf_fn>
Expr_id transform_inputs(Expr_pool& pool, Expr_id root, Leaf_fn&& leaf);

// --- implementation of the template ---------------------------------------
namespace detail {
template <typename Leaf_fn>
Expr_id transform_rec(Expr_pool& pool, Expr_id id, Leaf_fn& leaf,
                      std::unordered_map<Expr_id, Expr_id>& memo) {
    if (auto it = memo.find(id); it != memo.end()) return it->second;
    const Expr_node n = pool.node(id);  // copy: pool may reallocate below
    Expr_id result = no_expr;
    switch (n.kind) {
        case Op_kind::constant:
            result = id;
            break;
        case Op_kind::input:
            result = leaf(n);
            break;
        default: {
            std::array<Expr_id, 3> args = {no_expr, no_expr, no_expr};
            for (int i = 0; i < n.arg_count(); ++i) {
                args[static_cast<std::size_t>(i)] =
                    transform_rec(pool, n.args[static_cast<std::size_t>(i)], leaf, memo);
            }
            if (n.kind == Op_kind::select) {
                result = pool.select(args[0], args[1], args[2]);
            } else if (n.arg_count() == 1) {
                result = pool.unary(n.kind, args[0]);
            } else {
                result = pool.binary(n.kind, args[0], args[1]);
            }
            break;
        }
    }
    memo.emplace(id, result);
    return result;
}
}  // namespace detail

template <typename Leaf_fn>
Expr_id transform_inputs(Expr_pool& pool, Expr_id root, Leaf_fn&& leaf) {
    std::unordered_map<Expr_id, Expr_id> memo;
    return detail::transform_rec(pool, root, leaf, memo);
}

}  // namespace islhls
