#include "ir/print.hpp"

#include "support/text.hpp"

namespace islhls {

namespace {

std::string leaf_text(const Expr_pool& pool, const Expr_node& n) {
    if (n.kind == Op_kind::constant) return cat(n.value);
    return cat(pool.field_name(n.field), "[", n.dx, ",", n.dy, "]");
}

std::string infix_rec(const Expr_pool& pool, Expr_id id) {
    const Expr_node& n = pool.node(id);
    switch (n.kind) {
        case Op_kind::constant:
        case Op_kind::input:
            return leaf_text(pool, n);
        case Op_kind::add:
            return cat("(", infix_rec(pool, n.args[0]), " + ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::sub:
            return cat("(", infix_rec(pool, n.args[0]), " - ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::mul:
            return cat("(", infix_rec(pool, n.args[0]), " * ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::div:
            return cat("(", infix_rec(pool, n.args[0]), " / ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::lt:
            return cat("(", infix_rec(pool, n.args[0]), " < ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::le:
            return cat("(", infix_rec(pool, n.args[0]), " <= ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::eq:
            return cat("(", infix_rec(pool, n.args[0]), " == ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::min_op:
            return cat("min(", infix_rec(pool, n.args[0]), ", ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::max_op:
            return cat("max(", infix_rec(pool, n.args[0]), ", ", infix_rec(pool, n.args[1]), ")");
        case Op_kind::neg:
            return cat("(-", infix_rec(pool, n.args[0]), ")");
        case Op_kind::abs_op:
            return cat("fabs(", infix_rec(pool, n.args[0]), ")");
        case Op_kind::sqrt_op:
            return cat("sqrt(", infix_rec(pool, n.args[0]), ")");
        case Op_kind::select:
            return cat("(", infix_rec(pool, n.args[0]), " ? ", infix_rec(pool, n.args[1]),
                       " : ", infix_rec(pool, n.args[2]), ")");
    }
    return "?";
}

std::string sexpr_rec(const Expr_pool& pool, Expr_id id) {
    const Expr_node& n = pool.node(id);
    if (n.kind == Op_kind::constant || n.kind == Op_kind::input) {
        return leaf_text(pool, n);
    }
    std::string out = cat("(", to_string(n.kind));
    for (int i = 0; i < n.arg_count(); ++i) {
        out += ' ';
        out += sexpr_rec(pool, n.args[static_cast<std::size_t>(i)]);
    }
    out += ')';
    return out;
}

}  // namespace

std::string to_infix(const Expr_pool& pool, Expr_id root) { return infix_rec(pool, root); }

std::string to_sexpr(const Expr_pool& pool, Expr_id root) { return sexpr_rec(pool, root); }

}  // namespace islhls
