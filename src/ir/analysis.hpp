// Static analyses over expression DAGs: reachability, operation census,
// critical-path depth and input support. These feed the cone statistics the
// estimators consume (register counts drive the Eq. 1 area model; op kinds
// and depth drive the timing model).
#pragma once

#include <map>
#include <vector>

#include "grid/tile.hpp"
#include "ir/expr.hpp"

namespace islhls {

// Census of the nodes reachable from a set of roots. Every DAG node is
// counted once regardless of how many times it is referenced — that is the
// register-reuse property.
struct Op_census {
    std::map<Op_kind, int> by_kind;
    int operation_count = 0;  // nodes with is_operation(kind)
    int input_count = 0;      // distinct input leaves
    int constant_count = 0;   // distinct constants
    int count(Op_kind k) const;
};

// Unique reachable node ids from `roots`, in deterministic topological order
// (operands before users).
std::vector<Expr_id> reachable_nodes(const Expr_pool& pool,
                                     const std::vector<Expr_id>& roots);

Op_census count_ops(const Expr_pool& pool, const std::vector<Expr_id>& roots);

// Longest operand chain through operation nodes (leaves depth 0; an op node
// is 1 + max over operands). Equals the number of pipeline levels the
// backend emits for this DAG.
int dag_depth(const Expr_pool& pool, const std::vector<Expr_id>& roots);

// A reference to one distinct input element used by an expression.
struct Input_ref {
    int field = -1;
    int dx = 0;
    int dy = 0;
    auto operator<=>(const Input_ref&) const = default;
};

// Sorted distinct input leaves reachable from the roots.
std::vector<Input_ref> input_support(const Expr_pool& pool,
                                     const std::vector<Expr_id>& roots);

// Tightest footprint covering the support (per-field union). An expression
// with no input leaves yields the empty footprint.
Footprint support_footprint(const Expr_pool& pool, const std::vector<Expr_id>& roots);

}  // namespace islhls
