// Register programs: the scheduled, three-address form of an expression DAG.
//
// This is the paper's "slim VHDL with a high degree of resource reuse" made
// explicit: each DAG node becomes exactly one instruction whose destination
// is one hardware register; any further use of the value reads that register.
// The same structure drives the VHDL emitter, the virtual synthesizer's
// netlist costing, and the fast functional executor in the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/expr.hpp"

namespace islhls {

class Compiled_program;

// One instruction. `dest` is the register index (== position in the program's
// instruction vector). Leaves occupy instruction slots too: constants bind a
// literal, inputs bind an input port; neither consumes a hardware register.
struct Instruction {
    Op_kind kind = Op_kind::constant;
    double value = 0.0;                  // constant payload
    int field = -1;                      // input payload
    int dx = 0;
    int dy = 0;
    std::array<std::int32_t, 3> operands = {-1, -1, -1};  // register indices
    int operand_count = 0;
    int level = 0;  // ASAP pipeline stage; leaves at 0
};

// A topologically ordered instruction sequence with designated outputs.
class Register_program {
public:
    Register_program() = default;

    const std::vector<Instruction>& instructions() const { return instrs_; }
    const std::vector<std::int32_t>& outputs() const { return output_regs_; }

    // Number of operation instructions == hardware registers (the Reg_i of
    // the paper's Eq. 1).
    int register_count() const { return register_count_; }
    // Distinct input ports.
    int input_count() const { return input_count_; }
    // Distinct literal constants.
    int constant_count() const { return constant_count_; }
    // Pipeline depth (maximum level over all instructions).
    int depth() const { return depth_; }

    // Executes the program; `inputs[i]` must hold the value for the i-th
    // input instruction (in program order). Returns the output values.
    //
    // Compatibility wrapper over the compiled execution engine's scalar
    // path: it evaluates the tape into a reused per-thread scratch buffer
    // and only materializes the outputs (no full instruction-slot trace).
    // Hot loops should use compiled() / Exec_engine directly.
    std::vector<double> run(const std::vector<double>& inputs) const;

    // Like run(), but returns the value of *every* instruction slot — used
    // by range analysis (fixed-point format search) to see intermediates.
    std::vector<double> run_trace(const std::vector<double>& inputs) const;

    // Batch-friendly run_trace: writes every instruction slot's value into
    // `regs` (resized to the instruction count), reusing its capacity so a
    // caller tracing many input sets performs no per-call allocation. This
    // is the reference interpreter the compiled engine is validated against.
    void run_trace_into(const std::vector<double>& inputs,
                        std::vector<double>& regs) const;

    // The scanline-compiled form of this program. Built eagerly by
    // build_program() (a single linear pass) and shared by copies, so this
    // accessor is a plain read — no synchronization, valid for the
    // program's lifetime. Throws on a default-constructed program.
    const Compiled_program& compiled() const;

    // Input ports in program order, as (field, dx, dy) triples.
    struct Port {
        int field = -1;
        int dx = 0;
        int dy = 0;
    };
    const std::vector<Port>& input_ports() const { return ports_; }

    friend Register_program build_program(const Expr_pool& pool,
                                          const std::vector<Expr_id>& roots);

private:
    std::vector<Instruction> instrs_;
    std::vector<std::int32_t> output_regs_;
    std::vector<Port> ports_;
    int register_count_ = 0;
    int input_count_ = 0;
    int constant_count_ = 0;
    int depth_ = 0;
    // Set once by build_program(); immutable afterwards (which is what makes
    // the unsynchronized compiled() read safe).
    std::shared_ptr<const Compiled_program> compiled_;
};

// Lowers the DAG reachable from `roots` to a register program.
Register_program build_program(const Expr_pool& pool, const std::vector<Expr_id>& roots);

}  // namespace islhls
