// Scanline-compiled form of a register program.
//
// Register_program::run_trace_into() interprets the instruction vector one
// pixel at a time, branching on the instruction kind at every slot. The
// compiled form splits the program once into its three static parts:
//
//   - constants:  (slot, value) pairs, bound ahead of execution;
//   - inputs:     (slot, field, dx, dy) bindings in program port order;
//   - operations: a flat tape whose operands are slot indices.
//
// Because every slot is written by exactly one instruction, a consumer can
// hold one VALUE per slot (scalar evaluation, eval_point) or one ROW per
// slot (the simulation engine's structure-of-arrays execution, where each
// tape operation becomes a single tight loop over a frame row). Both styles
// share this one lowering, so they cannot diverge semantically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "backend/fixed_point.hpp"
#include "ir/program.hpp"
#include "support/error.hpp"

namespace islhls {

// One operation of the tape. `dest` and `src` are slot indices (== the
// instruction indices of the source Register_program).
struct Tape_op {
    Op_kind kind = Op_kind::add;
    std::int32_t dest = -1;
    std::array<std::int32_t, 3> src = {-1, -1, -1};
    int src_count = 0;
};

// An input binding: the slot receives field(x + dx, y + dy).
struct Tape_input {
    std::int32_t slot = -1;
    int field = -1;
    int dx = 0;
    int dy = 0;
};

// A literal bound to a slot.
struct Tape_constant {
    std::int32_t slot = -1;
    double value = 0.0;
};

// Per-field read-offset bounding box (the field's stencil radius), derived
// from the input bindings. Temporal tiling sizes its per-iteration halo from
// the extents of the fields that advance; fields the program never reads
// keep `used == false` and zero extents.
struct Field_extent {
    bool used = false;
    int min_dx = 0;
    int max_dx = 0;
    int min_dy = 0;
    int max_dy = 0;
};

class Compiled_program {
public:
    explicit Compiled_program(const Register_program& program);

    // Total slots; slot i corresponds to instruction i of the source program.
    int slot_count() const { return slot_count_; }

    const std::vector<Tape_op>& ops() const { return ops_; }
    const std::vector<Tape_input>& inputs() const { return inputs_; }
    const std::vector<Tape_constant>& constants() const { return constants_; }

    // Slots holding the program outputs, in output order.
    const std::vector<std::int32_t>& output_slots() const { return output_slots_; }

    // Bounding box of the input offsets (the one-application footprint);
    // all zero when the program reads no inputs.
    int min_dx() const { return min_dx_; }
    int max_dx() const { return max_dx_; }
    int min_dy() const { return min_dy_; }
    int max_dy() const { return max_dy_; }

    // Per-field offset bounding boxes, indexed by pool field id. Sized to
    // cover every field referenced by an input binding (fields past the last
    // referenced id are absent; treat them as unused).
    const std::vector<Field_extent>& field_extents() const { return field_extents_; }

    // Evaluates the whole tape for one point. `inputs[i]` must hold the
    // value of the i-th input binding (program port order); `slots` is
    // caller-owned scratch of slot_count() elements and is fully rewritten.
    // Outputs are read back via output_slots(). Allocation-free.
    void eval_point(const double* inputs, double* slots) const;

private:
    std::vector<Tape_op> ops_;
    std::vector<Tape_input> inputs_;
    std::vector<Tape_constant> constants_;
    std::vector<Field_extent> field_extents_;
    std::vector<std::int32_t> output_slots_;
    int slot_count_ = 0;
    int min_dx_ = 0;
    int max_dx_ = 0;
    int min_dy_ = 0;
    int max_dy_ = 0;
};

// Bit-accurate fixed-point semantics of one tape operation on raw Qm.f
// words, mirroring the generated VHDL operator for operator (wrap-around
// resize, truncating multiply shift, VHDL '/' truncation toward zero, floor
// integer square root) — the same arithmetic as the reference interpreter
// run_fixed_raw (sim/fixed_exec.hpp). Shared by the scalar path
// (Fixed_tape::eval_point) and the batched executor (Fixed_exec) so the
// integer semantics cannot diverge.
inline std::int64_t apply_op_fixed(Op_kind kind, const std::int64_t* o,
                                   const Bit_wrap& wrap, int frac,
                                   std::int64_t fixed_one) {
    switch (kind) {
        case Op_kind::add:
            return wrap(o[0] + o[1]);
        case Op_kind::sub:
            return wrap(o[0] - o[1]);
        case Op_kind::mul:
            // Full product then arithmetic right shift (floor), as in the
            // emitted shift_right(a*b, FRAC).
            return wrap((o[0] * o[1]) >> frac);
        case Op_kind::div:
            // VHDL '/': truncation toward zero, matching C++.
            return o[1] == 0 ? 0 : wrap((o[0] << frac) / o[1]);
        case Op_kind::sqrt_op:
            return o[0] <= 0 ? 0 : wrap(isqrt_floor(o[0] << frac));
        case Op_kind::min_op:
            return o[0] < o[1] ? o[0] : o[1];
        case Op_kind::max_op:
            return o[0] > o[1] ? o[0] : o[1];
        case Op_kind::neg:
            return wrap(-o[0]);
        case Op_kind::abs_op:
            return wrap(o[0] < 0 ? -o[0] : o[0]);
        case Op_kind::lt:
            return o[0] < o[1] ? fixed_one : 0;
        case Op_kind::le:
            return o[0] <= o[1] ? fixed_one : 0;
        case Op_kind::eq:
            return o[0] == o[1] ? fixed_one : 0;
        case Op_kind::select:
            return o[0] != 0 ? o[1] : o[2];
        case Op_kind::constant:
        case Op_kind::input:
            break;
    }
    throw Internal_error("leaf kind in apply_op_fixed");
}

// Integer-slot lowering of a compiled tape for one Qm.f format: the literal
// constants are quantized to raw two's-complement words once, and the
// format-derived operator parameters (wrap width, fraction shift, the raw
// value of 1.0 the comparison ops produce) are folded ahead of execution.
// One Fixed_tape serves any number of evaluations; eval_point is the scalar
// path (allocation-free, caller-owned slots), the lane-batched structure-
// of-arrays executor lives in sim/fixed_exec.hpp, and the whole-frame row
// executor (raw int64 row buffers, one integer loop per tape op per row) is
// Exec_engine::run_fixed in sim/exec_engine.hpp.
class Fixed_tape {
public:
    Fixed_tape(const Compiled_program& tape, const Fixed_format& format);

    const Compiled_program& tape() const { return *tape_; }
    const Fixed_format& format() const { return format_; }
    const Bit_wrap& wrap() const { return wrap_; }
    int frac_bits() const { return format_.frac_bits; }
    std::int64_t fixed_one() const { return fixed_one_; }

    // Raw words of the tape constants, parallel to tape().constants().
    const std::vector<std::int64_t>& constant_raw() const { return constant_raw_; }

    // Evaluates the whole tape for one sample of raw input words (program
    // port order; wrap-resized on load like the reference interpreter).
    // `slots` is caller-owned scratch of tape().slot_count() elements and is
    // fully rewritten; outputs are read back via tape().output_slots().
    // Byte-identical to run_fixed_raw, allocation-free.
    void eval_point(const std::int64_t* inputs, std::int64_t* slots) const;

private:
    const Compiled_program* tape_;
    Fixed_format format_;
    Bit_wrap wrap_;
    std::int64_t fixed_one_ = 0;
    std::vector<std::int64_t> constant_raw_;
};

}  // namespace islhls
