// Scanline-compiled form of a register program.
//
// Register_program::run_trace_into() interprets the instruction vector one
// pixel at a time, branching on the instruction kind at every slot. The
// compiled form splits the program once into its three static parts:
//
//   - constants:  (slot, value) pairs, bound ahead of execution;
//   - inputs:     (slot, field, dx, dy) bindings in program port order;
//   - operations: a flat tape whose operands are slot indices.
//
// Because every slot is written by exactly one instruction, a consumer can
// hold one VALUE per slot (scalar evaluation, eval_point) or one ROW per
// slot (the simulation engine's structure-of-arrays execution, where each
// tape operation becomes a single tight loop over a frame row). Both styles
// share this one lowering, so they cannot diverge semantically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/program.hpp"

namespace islhls {

// One operation of the tape. `dest` and `src` are slot indices (== the
// instruction indices of the source Register_program).
struct Tape_op {
    Op_kind kind = Op_kind::add;
    std::int32_t dest = -1;
    std::array<std::int32_t, 3> src = {-1, -1, -1};
    int src_count = 0;
};

// An input binding: the slot receives field(x + dx, y + dy).
struct Tape_input {
    std::int32_t slot = -1;
    int field = -1;
    int dx = 0;
    int dy = 0;
};

// A literal bound to a slot.
struct Tape_constant {
    std::int32_t slot = -1;
    double value = 0.0;
};

// Per-field read-offset bounding box (the field's stencil radius), derived
// from the input bindings. Temporal tiling sizes its per-iteration halo from
// the extents of the fields that advance; fields the program never reads
// keep `used == false` and zero extents.
struct Field_extent {
    bool used = false;
    int min_dx = 0;
    int max_dx = 0;
    int min_dy = 0;
    int max_dy = 0;
};

class Compiled_program {
public:
    explicit Compiled_program(const Register_program& program);

    // Total slots; slot i corresponds to instruction i of the source program.
    int slot_count() const { return slot_count_; }

    const std::vector<Tape_op>& ops() const { return ops_; }
    const std::vector<Tape_input>& inputs() const { return inputs_; }
    const std::vector<Tape_constant>& constants() const { return constants_; }

    // Slots holding the program outputs, in output order.
    const std::vector<std::int32_t>& output_slots() const { return output_slots_; }

    // Bounding box of the input offsets (the one-application footprint);
    // all zero when the program reads no inputs.
    int min_dx() const { return min_dx_; }
    int max_dx() const { return max_dx_; }
    int min_dy() const { return min_dy_; }
    int max_dy() const { return max_dy_; }

    // Per-field offset bounding boxes, indexed by pool field id. Sized to
    // cover every field referenced by an input binding (fields past the last
    // referenced id are absent; treat them as unused).
    const std::vector<Field_extent>& field_extents() const { return field_extents_; }

    // Evaluates the whole tape for one point. `inputs[i]` must hold the
    // value of the i-th input binding (program port order); `slots` is
    // caller-owned scratch of slot_count() elements and is fully rewritten.
    // Outputs are read back via output_slots(). Allocation-free.
    void eval_point(const double* inputs, double* slots) const;

private:
    std::vector<Tape_op> ops_;
    std::vector<Tape_input> inputs_;
    std::vector<Tape_constant> constants_;
    std::vector<Field_extent> field_extents_;
    std::vector<std::int32_t> output_slots_;
    int slot_count_ = 0;
    int min_dx_ = 0;
    int max_dx_ = 0;
    int min_dy_ = 0;
    int max_dy_ = 0;
};

}  // namespace islhls
