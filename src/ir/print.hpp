// Human-readable rendering of expressions, for diagnostics and tests.
#pragma once

#include <string>

#include "ir/expr.hpp"

namespace islhls {

// C-like infix rendering, fully parenthesized:
//   "((f[-1,0] + f[1,0]) * 0.5)". Shared subtrees are re-printed (the
// textual form is a tree view of the DAG).
std::string to_infix(const Expr_pool& pool, Expr_id root);

// Lisp-ish prefix rendering: "(mul (add f[-1,0] f[1,0]) 0.5)".
std::string to_sexpr(const Expr_pool& pool, Expr_id root);

}  // namespace islhls
