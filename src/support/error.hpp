// Error hierarchy for the ISL-HLS flow.
//
// Every failure in the flow is reported by throwing one of these exception
// types; they all derive from islhls::Error so callers can catch the whole
// family at the API boundary. Constructors take a human-readable message;
// frontend errors additionally carry a source location.
#pragma once

#include <stdexcept>
#include <string>

namespace islhls {

// Root of all exceptions thrown by this library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Lexer/parser failure; carries a 1-based line/column into the C source.
class Parse_error : public Error {
public:
    Parse_error(const std::string& what, int line, int column)
        : Error("parse error at " + std::to_string(line) + ":" +
                std::to_string(column) + ": " + what),
          line_(line),
          column_(column) {}

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_ = 0;
    int column_ = 0;
};

// Semantic analysis failure: the input is valid C but not a recognizable /
// synthesizable iterative stencil loop (e.g. non-affine subscripts).
class Sema_error : public Error {
public:
    using Error::Error;
};

// Symbolic execution failure (unsupported construct reached at run time).
class Symexec_error : public Error {
public:
    using Error::Error;
};

// Virtual synthesis failure (e.g. design does not fit any device variant).
class Synthesis_error : public Error {
public:
    using Error::Error;
};

// Design space exploration failure (e.g. empty feasible set).
class Dse_error : public Error {
public:
    using Error::Error;
};

// File / stream I/O failure.
class Io_error : public Error {
public:
    using Error::Error;
};

// Internal invariant violation: indicates a bug in the library itself.
class Internal_error : public Error {
public:
    using Error::Error;
};

// Throws Internal_error when `condition` is false. Used for internal
// invariants that should hold regardless of user input.
inline void check_internal(bool condition, const std::string& what) {
    if (!condition) throw Internal_error("internal invariant violated: " + what);
}

}  // namespace islhls
