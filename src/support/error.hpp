// Error hierarchy for the ISL-HLS flow.
//
// Every failure in the flow is reported by throwing one of these exception
// types; they all derive from islhls::Error so callers can catch the whole
// family at the API boundary. Each concrete type additionally carries an
// Error_kind — the structured taxonomy the long-lived sweep service routes
// on: `user` mistakes report and stop, `io`/`timeout` are transient and may
// be retried, `corrupt` records are quarantined and recomputed, `internal`
// is a bug in the library itself. Constructors take a human-readable
// message; frontend errors additionally carry a source location.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace islhls {

// The failure taxonomy. Every user-reachable failure maps to exactly one
// kind, so front-ends (CLI exit codes, the batch service's per-request
// outcomes) can report and route errors without string matching.
enum class Error_kind {
    user,      // bad input: options, source, request files, unknown names
    io,        // filesystem / stream failure (possibly transient: ENOSPC, ...)
    corrupt,   // on-disk record failed validation (quarantined, recomputed)
    timeout,   // a job exceeded its deadline or was cancelled
    internal,  // invariant violation: a bug in the library
};

constexpr const char* to_string(Error_kind kind) {
    switch (kind) {
        case Error_kind::user: return "user";
        case Error_kind::io: return "io";
        case Error_kind::corrupt: return "corrupt";
        case Error_kind::timeout: return "timeout";
        case Error_kind::internal: return "internal";
    }
    return "internal";
}

// Root of all exceptions thrown by this library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// An Error with a structured kind. All concrete error types derive from
// this, so `catch (const Islhls_error& e)` plus `e.kind()` classifies any
// library failure.
class Islhls_error : public Error {
public:
    Islhls_error(Error_kind kind, const std::string& what)
        : Error(what), kind_(kind) {}

    Error_kind kind() const { return kind_; }

private:
    Error_kind kind_;
};

// Bad user input outside the frontend: malformed options, unknown names,
// invalid request files.
class User_error : public Islhls_error {
public:
    explicit User_error(const std::string& what)
        : Islhls_error(Error_kind::user, what) {}
};

// Lexer/parser failure; carries a 1-based line/column into the C source.
class Parse_error : public Islhls_error {
public:
    Parse_error(const std::string& what, int line, int column)
        : Islhls_error(Error_kind::user,
                       "parse error at " + std::to_string(line) + ":" +
                           std::to_string(column) + ": " + what),
          line_(line),
          column_(column) {}

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_ = 0;
    int column_ = 0;
};

// Semantic analysis failure: the input is valid C but not a recognizable /
// synthesizable iterative stencil loop (e.g. non-affine subscripts).
class Sema_error : public Islhls_error {
public:
    explicit Sema_error(const std::string& what)
        : Islhls_error(Error_kind::user, what) {}
};

// Symbolic execution failure (unsupported construct reached at run time).
class Symexec_error : public Islhls_error {
public:
    explicit Symexec_error(const std::string& what)
        : Islhls_error(Error_kind::user, what) {}
};

// Virtual synthesis failure (e.g. design does not fit any device variant).
class Synthesis_error : public Islhls_error {
public:
    explicit Synthesis_error(const std::string& what)
        : Islhls_error(Error_kind::user, what) {}
};

// Design space exploration failure (e.g. empty feasible set).
class Dse_error : public Islhls_error {
public:
    explicit Dse_error(const std::string& what)
        : Islhls_error(Error_kind::user, what) {}
};

// File / stream I/O failure.
class Io_error : public Islhls_error {
public:
    explicit Io_error(const std::string& what)
        : Islhls_error(Error_kind::io, what) {}
};

// An on-disk record failed validation (bad magic, checksum mismatch,
// truncation). The result cache handles these internally by quarantining
// the record and recomputing; the type exists for the verify tooling.
class Corrupt_error : public Islhls_error {
public:
    explicit Corrupt_error(const std::string& what)
        : Islhls_error(Error_kind::corrupt, what) {}
};

// A job ran past its deadline or was cancelled cooperatively.
class Timeout_error : public Islhls_error {
public:
    explicit Timeout_error(const std::string& what)
        : Islhls_error(Error_kind::timeout, what) {}
};

// Internal invariant violation: indicates a bug in the library itself.
class Internal_error : public Islhls_error {
public:
    explicit Internal_error(const std::string& what)
        : Islhls_error(Error_kind::internal, what) {}
};

// Maps any in-flight exception to its taxonomy kind: Islhls_errors carry
// their own, a plain Error is treated as bad user input (every in-tree
// `throw Error(...)` reports on user-supplied names or options), anything
// else is an internal bug.
inline Error_kind classify_error(const std::exception& e) {
    if (auto* classified = dynamic_cast<const Islhls_error*>(&e)) {
        return classified->kind();
    }
    if (dynamic_cast<const Error*>(&e) != nullptr) return Error_kind::user;
    return Error_kind::internal;
}

// Throws Internal_error when `condition` is false. Used for internal
// invariants that should hold regardless of user input.
inline void check_internal(bool condition, const std::string& what) {
    if (!condition) throw Internal_error("internal invariant violated: " + what);
}

}  // namespace islhls
