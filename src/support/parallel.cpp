#include "support/parallel.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace islhls {

int resolve_thread_count(int requested) {
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::max(1, requested);
}

Thread_pool::Thread_pool(int threads) {
    const int total = resolve_thread_count(threads);
    workers_.reserve(static_cast<std::size_t>(total - 1));
    for (int i = 1; i < total; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Thread_pool::~Thread_pool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void Thread_pool::run_job(Job& job) {
    for (;;) {
        const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.count) return;
        try {
            (*job.body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job.error_mutex);
            if (!job.error || i < job.error_index) {
                job.error = std::current_exception();
                job.error_index = i;
            }
        }
        job.finished.fetch_add(1, std::memory_order_release);
    }
}

void Thread_pool::worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
        Job* job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || (job_ != nullptr && generation_ != seen_generation);
            });
            if (stopping_) return;
            seen_generation = generation_;
            job = job_;
            job->active_workers += 1;
        }
        run_job(*job);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job->active_workers -= 1;
        }
        done_.notify_all();
    }
}

void Thread_pool::for_each_index(std::size_t count,
                                 const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    Job job;
    job.count = count;
    job.body = &body;
    if (workers_.empty() || count == 1) {
        run_job(job);
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            generation_ += 1;
        }
        wake_.notify_all();
        run_job(job);
        // The job must outlive every worker that joined it: wait for all
        // indices to finish AND all joined workers to step off the job.
        std::unique_lock<std::mutex> lock(mutex_);
        job_ = nullptr;  // late workers must not join a finished job
        done_.wait(lock, [&] {
            return job.finished.load(std::memory_order_acquire) == count &&
                   job.active_workers == 0;
        });
    }
    if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    if (resolve_thread_count(threads) <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    Thread_pool pool(threads);
    pool.for_each_index(count, body);
}

double lpt_makespan(std::vector<double> costs, int workers) {
    check_internal(workers >= 1, "lpt_makespan needs at least one worker");
    std::sort(costs.begin(), costs.end(), std::greater<double>());
    std::vector<double> load(static_cast<std::size_t>(workers), 0.0);
    for (double c : costs) {
        auto least = std::min_element(load.begin(), load.end());
        *least += c;
    }
    return *std::max_element(load.begin(), load.end());
}

}  // namespace islhls
