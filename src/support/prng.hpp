// Deterministic pseudo-random number generation.
//
// All randomized inputs in the library (workload generators, property tests)
// go through this wrapper so that every run is reproducible from a seed.
#pragma once

#include <cstdint>

namespace islhls {

// xoshiro256** by Blackman & Vigna — small, fast, high quality, and fully
// deterministic across platforms (unlike std::mt19937 distributions).
class Prng {
public:
    explicit Prng(std::uint64_t seed);

    // Next raw 64-bit value.
    std::uint64_t next_u64();

    // Uniform double in [0, 1).
    double next_unit();

    // Uniform double in [lo, hi).
    double next_in(double lo, double hi);

    // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    int next_int(int lo, int hi);

    // Standard normal via Box-Muller (deterministic given the stream).
    double next_gaussian();

private:
    std::uint64_t state_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

}  // namespace islhls
