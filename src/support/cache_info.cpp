#include "support/cache_info.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace islhls {

namespace {

// Parses sysfs cache-size strings: "48K", "2048K", "2M", plain bytes.
// Returns 0 when the string is empty or malformed.
std::size_t parse_size_string(const std::string& text) {
    std::size_t value = 0;
    std::size_t i = 0;
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
        value = value * 10 + static_cast<std::size_t>(text[i] - '0');
        ++i;
    }
    if (i < text.size()) {
        switch (text[i]) {
            case 'K': case 'k': value *= 1024; break;
            case 'M': case 'm': value *= 1024 * 1024; break;
            case 'G': case 'g': value *= 1024 * 1024 * 1024; break;
            default: break;  // trailing newline/units noise: keep the digits
        }
    }
    return value;
}

std::string read_first_line(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    if (!in || !std::getline(in, line)) return {};
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
    }
    return line;
}

// Linux sysfs: one directory per cache of cpu0. Instruction caches are
// skipped; for each remaining level the largest reported size wins (some
// topologies list a slice per core cluster). `llc_shared_cpus` receives the
// winning LLC's shared_cpu_list (how many cpus contend for it).
bool probe_sysfs(Cache_topology& t, std::string* llc_shared_cpus) {
    bool any = false;
    for (int index = 0; index < 16; ++index) {
        const std::string dir = "/sys/devices/system/cpu/cpu0/cache/index" +
                                std::to_string(index) + "/";
        const std::string level_text = read_first_line(dir + "level");
        if (level_text.empty()) break;  // indices are contiguous
        const std::string type = read_first_line(dir + "type");
        if (type == "Instruction") continue;
        const std::size_t size = parse_size_string(read_first_line(dir + "size"));
        if (size == 0) continue;
        const int level = static_cast<int>(parse_size_string(level_text));
        if (level == 1) {
            t.l1d_bytes = std::max(t.l1d_bytes, size);
        } else if (level == 2) {
            t.l2_bytes = std::max(t.l2_bytes, size);
        }
        if (level >= 2 && size > t.llc_bytes) {
            t.llc_bytes = size;
            *llc_shared_cpus = read_first_line(dir + "shared_cpu_list");
        }
        any = true;
    }
    return any;
}

// The cgroup memory limit of this process, or 0 when unlimited/unknown.
// Reads cgroup v2 first ("max" = unlimited), then the v1 controller, where
// "no limit" is a huge number rather than a word.
std::size_t cgroup_memory_limit() {
    for (const char* path : {"/sys/fs/cgroup/memory.max",
                             "/sys/fs/cgroup/memory/memory.limit_in_bytes"}) {
        const std::string text = read_first_line(path);
        if (text.empty() || text == "max") continue;
        const std::size_t limit = parse_size_string(text);
        if (limit == 0 || limit >= (1ull << 60)) continue;  // v1 "unlimited"
        return limit;
    }
    return 0;
}

bool probe_sysconf(Cache_topology& t) {
    bool any = false;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
    const auto take = [&any](std::size_t& slot, int name) {
        const long v = sysconf(name);
        if (v > 0) {
            slot = std::max(slot, static_cast<std::size_t>(v));
            any = true;
        }
    };
    take(t.l1d_bytes, _SC_LEVEL1_DCACHE_SIZE);
    take(t.l2_bytes, _SC_LEVEL2_CACHE_SIZE);
    take(t.llc_bytes, _SC_LEVEL2_CACHE_SIZE);
    take(t.llc_bytes, _SC_LEVEL3_CACHE_SIZE);
#if defined(_SC_LEVEL4_CACHE_SIZE)
    take(t.llc_bytes, _SC_LEVEL4_CACHE_SIZE);
#endif
#else
    (void)t;
#endif
    return any;
}

Cache_topology probe() {
    Cache_topology t;
    std::string llc_shared_cpus;
    t.probed = probe_sysfs(t, &llc_shared_cpus);
    if (!t.probed) t.probed = probe_sysconf(t);
    if (t.l1d_bytes == 0) t.l1d_bytes = kFallback_l1d;
    if (t.l2_bytes == 0) t.l2_bytes = kFallback_l2;
    if (t.llc_bytes == 0) t.llc_bytes = kFallback_llc;
    // A last-level slice smaller than L2 only happens on malformed tables;
    // normalize so consumers can treat llc as "the biggest shared level".
    t.llc_bytes = std::max(t.llc_bytes, t.l2_bytes);
    t.raw_llc_bytes = t.llc_bytes;
    // Container clamp: a cgroup-limited 1-vCPU runner must not budget tiles
    // against the host server's whole shared LLC.
    int online_cpus = 0;
#if defined(_SC_NPROCESSORS_ONLN)
    const long online = sysconf(_SC_NPROCESSORS_ONLN);
    if (online > 0) online_cpus = static_cast<int>(online);
#endif
    t.llc_bytes =
        clamp_llc_bytes(t.raw_llc_bytes, t.l2_bytes, cgroup_memory_limit(),
                        count_cpu_list(llc_shared_cpus), online_cpus);
    t.llc_clamped = t.llc_bytes < t.raw_llc_bytes;
    return t;
}

std::string format_bytes(std::size_t bytes) {
    std::ostringstream out;
    if (bytes >= 1024u * 1024 && bytes % (512u * 1024) == 0) {
        const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
        out << mib << " MiB";
    } else if (bytes >= 1024 && bytes % 512 == 0) {
        out << static_cast<double>(bytes) / 1024.0 << " KiB";
    } else {
        out << bytes << " B";
    }
    return out.str();
}

}  // namespace

int count_cpu_list(const std::string& text) {
    // "0-3,8-11" -> 8; a lone "0" -> 1. Strict: any malformed token makes
    // the whole list count 0 (unknown), never a partial number.
    int count = 0;
    std::size_t i = 0;
    const auto parse_int = [&](long long* out) {
        if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
        long long v = 0;
        while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
            v = v * 10 + (text[i] - '0');
            ++i;
        }
        *out = v;
        return true;
    };
    while (i < text.size() &&
           (text[i] == '\n' || text[i] == '\r' || text[i] == ' ')) {
        ++i;
    }
    if (i >= text.size()) return 0;
    for (;;) {
        long long first = 0;
        if (!parse_int(&first)) return 0;
        long long last = first;
        if (i < text.size() && text[i] == '-') {
            ++i;
            if (!parse_int(&last) || last < first) return 0;
        }
        count += static_cast<int>(last - first + 1);
        while (i < text.size() &&
               (text[i] == '\n' || text[i] == '\r' || text[i] == ' ')) {
            ++i;
        }
        if (i >= text.size()) return count;
        if (text[i] != ',') return 0;
        ++i;
    }
}

std::size_t clamp_llc_bytes(std::size_t probed_llc, std::size_t l2_bytes,
                            std::size_t cgroup_limit_bytes, int sharing_cpus,
                            int online_cpus) {
    std::size_t clamped = probed_llc;
    if (sharing_cpus > 0 && online_cpus > 0 && online_cpus < sharing_cpus) {
        // Fewer cpus online than share the LLC: this environment owns a
        // proportional slice, not the whole thing.
        clamped = std::min(clamped, probed_llc /
                                        static_cast<std::size_t>(sharing_cpus) *
                                        static_cast<std::size_t>(online_cpus));
    }
    if (cgroup_limit_bytes > 0) {
        clamped = std::min(clamped, cgroup_limit_bytes / 2);
    }
    // Floor: the engine always gets at least an L2-sized band to tile in.
    return std::min(probed_llc, std::max(clamped, l2_bytes));
}

const Cache_topology& cache_topology() {
    // Magic-statics give the one-shot, thread-safe probe.
    static const Cache_topology topology = probe();
    return topology;
}

std::string to_string(const Cache_topology& topology) {
    return "L1d " + format_bytes(topology.l1d_bytes) + ", L2 " +
           format_bytes(topology.l2_bytes) + ", LLC " +
           format_bytes(topology.llc_bytes) +
           (topology.llc_clamped
                ? " (clamped from " + format_bytes(topology.raw_llc_bytes) + ")"
                : "") +
           (topology.probed ? " (probed)" : " (fallback)");
}

}  // namespace islhls
