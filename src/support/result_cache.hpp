// Crash-safe content-addressed on-disk result cache.
//
// Records are keyed by an arbitrary key string (the sweep service builds
// keys from the kernel IR dump plus every result-affecting option); the
// record file name is the FNV-1a 64 hash of the key in hex. Each record is
// self-validating:
//
//   magic "ISLHLSC1" (8) | version u32 | key_len u32 | payload_len u64 |
//   checksum u64 (FNV-1a over key + payload) | key bytes | payload bytes
//
// all little-endian. Stores are atomic: the record is written to a
// same-directory temp file, flushed, then renamed over the final name — a
// crash at any point leaves either the old record, no record, or an orphan
// temp file, never a reachable half-written record. Loads validate
// everything (magic, version, sizes against the file size, checksum, stored
// key against the requested key); any mismatch quarantines the file
// (renames it to <name>.quarantined) and reports a miss, so callers always
// fall back to recompute — corruption never aborts a sweep. Store failures
// (ENOSPC, read-only media) are soft: counted and skipped, the sweep
// continues uncached.
//
// verify()/gc() back the `islhls cache` subcommand: verify re-validates
// every record's checksum; gc additionally prunes quarantined records and
// orphaned temp files.
//
// Multi-process safety: concurrent sweeps sharing one cache directory are
// coordinated by an advisory lock file (.islhls.lock, created exclusively,
// holding "pid timestamp"). Mutating passes — store, quarantine, verify/gc —
// take it so a gc never sweeps away another process's in-flight temp file
// or a record mid-rename. The lock is best-effort by design: a holder that
// died or went silent past the staleness bound is taken over (its pid is
// probed), and a contender that cannot get the lock within the bounded wait
// proceeds unlocked rather than wedging a sweep — the store path stays
// crash-safe without the lock (pid-unique temp names + atomic rename), the
// lock only protects gc from racing it. Plain loads never take the lock.
//
// All OS mutation goes through the injectable Env_hooks seam, which is how
// the fault-injection tests exercise torn writes, ENOSPC and rename
// failures deterministically.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/env_hooks.hpp"

namespace islhls {

// FNV-1a 64-bit content hash (also the record file-name hash).
std::uint64_t fnv1a64(std::string_view data);

class Result_cache {
public:
    struct Stats {
        long long hits = 0;
        long long misses = 0;
        long long stores = 0;
        long long store_failures = 0;       // soft: sweep continues uncached
        long long corrupt_quarantined = 0;  // bad records moved aside on load
        long long lock_takeovers = 0;       // stale locks broken (dead holder)
        long long lock_timeouts = 0;        // waits that gave up -> unlocked op
    };

    struct Verify_report {
        int records_ok = 0;
        int records_corrupt = 0;   // failed validation during this pass
        int quarantined_files = 0; // *.quarantined seen (pre-existing + new)
        int temp_files = 0;        // orphaned *.tmp* seen
        int removed_files = 0;     // deleted by gc (corrupt/quarantined/temp)
        int records_evicted = 0;   // valid records deleted by the size budget
        long long record_bytes = 0;  // valid record bytes left on disk
        std::vector<std::string> notes;  // one line per problem file
    };

    // Opens the cache at `dir`, creating the directory on first use.
    // Throws Io_error when the path exists but is not a directory, when the
    // directory cannot be created, or when it is not writable (probed with
    // a real write so the failure surfaces at startup, not mid-sweep).
    explicit Result_cache(std::string dir, const Env_hooks* hooks = nullptr);

    // The payload stored under `key`, or nullopt on miss. Corrupt records
    // are quarantined and report a miss; I/O errors report a miss — the
    // caller's contract is always "recompute on nullopt".
    std::optional<std::string> load(const std::string& key);

    // Stores `payload` under `key` (overwriting any previous record) via an
    // atomic temp+rename. Returns false on failure (counted, best-effort
    // temp cleanup, never throws).
    bool store(const std::string& key, const std::string& payload);

    // Validates every record in the directory. With `gc`, additionally
    // removes quarantined records, orphaned temp files and records that
    // failed validation in this pass. A non-negative `max_bytes` (gc only)
    // further evicts *valid* records, least-recently-written first (file
    // mtime; a store refreshes it, so recency tracks last write), until the
    // surviving records fit the budget — survivors keep serving warm hits
    // unchanged.
    Verify_report verify(bool gc = false, long long max_bytes = -1);

    Stats stats() const;
    const std::string& dir() const { return dir_; }

    // Final on-disk path of the record for `key`.
    std::string record_path(const std::string& key) const;

    // Path of the advisory multi-process lock file.
    std::string lock_path() const;

private:
    friend class Scoped_dir_lock;

    std::string quarantine(const std::string& path);
    // Tries to take the advisory directory lock; true when held (the caller
    // must remove lock_path() when done), false to proceed unlocked.
    bool acquire_dir_lock();

    std::string dir_;
    const Env_hooks* hooks_;
    mutable std::mutex mutex_;  // guards stats_ and temp_counter_
    // Serializes this process's own mutating passes before the cross-process
    // file lock, so in-process threads never burn the bounded wait on each
    // other.
    std::mutex dir_lock_mutex_;
    Stats stats_;
    std::uint64_t temp_counter_ = 0;
};

}  // namespace islhls
