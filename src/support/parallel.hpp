// Fork-join parallelism for the DSE hot path.
//
// The pool runs index-addressed jobs: for_each_index(count, body) calls
// body(0) .. body(count-1) exactly once each, claiming indices from a shared
// counter so the load balances dynamically. Determinism is the caller's
// contract — every body writes only to slot `i` of a pre-sized result
// container, and any cross-index aggregation happens after the join, in
// index order. Under that contract the results are byte-identical to a
// serial run regardless of the thread count or the OS schedule.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace islhls {

// Resolves a user-facing thread request: 0 means "all hardware threads",
// anything else is clamped to >= 1.
int resolve_thread_count(int requested);

class Thread_pool {
public:
    // Spawns resolve_thread_count(threads) - 1 workers; the thread calling
    // for_each_index always participates, so `threads` is the total
    // parallelism.
    explicit Thread_pool(int threads);
    ~Thread_pool();

    Thread_pool(const Thread_pool&) = delete;
    Thread_pool& operator=(const Thread_pool&) = delete;

    int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

    // Runs body(i) for every i in [0, count), blocking until all complete.
    // The first exception by index order is rethrown after the join.
    void for_each_index(std::size_t count,
                        const std::function<void(std::size_t)>& body);

private:
    struct Job {
        std::size_t count = 0;
        const std::function<void(std::size_t)>* body = nullptr;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> finished{0};
        int active_workers = 0;  // guarded by the pool mutex
        std::mutex error_mutex;
        std::size_t error_index = 0;
        std::exception_ptr error;
    };

    void worker_loop();
    static void run_job(Job& job);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job* job_ = nullptr;
    std::uint64_t generation_ = 0;
    bool stopping_ = false;
};

// One-shot convenience: runs body over [0, count) on a transient pool of
// `threads` total threads (0 = all hardware threads). With threads <= 1 the
// body runs inline on the calling thread in index order.
void parallel_for(std::size_t count, int threads,
                  const std::function<void(std::size_t)>& body);

// Longest-processing-time-first makespan of scheduling `costs` across
// `workers` (>= 1): the wall time the job set would take with that much
// parallelism and a greedy scheduler. Used to report what a farm of
// synthesis workers would achieve on the virtual tool runtimes.
double lpt_makespan(std::vector<double> costs, int workers);

}  // namespace islhls
