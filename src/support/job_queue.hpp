// Async job queue with deduplication, deadlines and bounded retry.
//
// The queue admits keyed jobs and drains them in rounds over the existing
// Thread_pool (support/parallel.hpp) — or inline, serially, when no pool is
// given, which is what the sweep service uses so request-level execution
// stays deterministic while each request parallelizes internally.
//
// Robustness contract:
//   - Deduplication: a submit whose key matches an already queued job
//     shares that job's single execution and outcome (the "thousands of
//     identical sweep requests" case — the work runs once).
//   - Deadlines: each *attempt* gets deadline_ms on the injected clock.
//     Cancellation is cooperative: job bodies call Job_context::checkpoint()
//     at convenient boundaries and a past-deadline (or cancelled) job
//     surfaces as a structured Timeout_error / User_error instead of
//     running forever — a stuck job becomes a reported timeout, not a hang.
//   - Retry: attempts that fail with a transient kind (io, timeout) are
//     re-queued with exponential backoff up to Retry_policy::max_attempts;
//     user/corrupt/internal failures never retry. Backoff sleeps go through
//     the injected Env_hooks, so fault tests run instantly.
//
// Exceptions never escape drain(): every outcome is a structured
// Job_outcome carrying the error taxonomy kind.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/env_hooks.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace islhls {

struct Retry_policy {
    int max_attempts = 3;            // total tries per job (1 = no retry)
    std::int64_t backoff_ms = 100;   // delay before the first retry
    double backoff_factor = 2.0;     // growth per subsequent retry
};

struct Job_queue_options {
    Thread_pool* pool = nullptr;     // nullptr: run jobs inline, serially
    std::int64_t deadline_ms = 0;    // per-attempt budget; 0 = none
    Retry_policy retry;
    const Env_hooks* hooks = nullptr;  // clock + backoff sleep
};

struct Job_outcome {
    std::string key;
    bool ok = false;
    Error_kind kind = Error_kind::internal;  // meaningful when !ok
    std::string message;                     // meaningful when !ok
    int attempts = 0;
    bool deduplicated = false;  // this request shared another's execution
};

class Job_queue;

// Handed to each job body; the cooperative cancellation surface.
class Job_context {
public:
    // Throws Timeout_error when the attempt's deadline has passed, or
    // User_error when the queue was cancelled. Job bodies call this at
    // natural boundaries (e.g. between sweep combinations).
    void checkpoint() const;

    bool cancelled() const;
    int attempt() const { return attempt_; }
    std::int64_t deadline_ms() const { return deadline_; }  // absolute; 0 = none

private:
    friend class Job_queue;
    Job_context(const Job_queue& queue, std::string key, int attempt,
                std::int64_t deadline)
        : queue_(queue), key_(std::move(key)), attempt_(attempt),
          deadline_(deadline) {}

    const Job_queue& queue_;
    std::string key_;
    int attempt_ = 1;
    std::int64_t deadline_ = 0;
};

class Job_queue {
public:
    explicit Job_queue(Job_queue_options options = {});

    // Enqueues `body` under `key`. When `key` matches a job already in the
    // queue, no new job is created — the request maps onto the existing
    // one. Returns the request index (drain() outcomes are request-ordered).
    std::size_t submit(std::string key, std::function<void(Job_context&)> body);

    // Runs every queued job to completion (with retries), blocking. Returns
    // one outcome per submitted request, in submission order; deduplicated
    // requests carry their shared job's outcome with `deduplicated` set.
    // The queue is reusable afterwards (drained jobs are cleared).
    std::vector<Job_outcome> drain();

    // Cooperative cancellation: jobs not yet started fail fast with kind
    // user; running jobs observe it at their next checkpoint().
    void cancel_all() { cancelled_.store(true); }
    bool cancelled() const { return cancelled_.load(); }

    // Distinct job bodies actually executed (dedup effectiveness; a retried
    // job counts once per attempt).
    long long executed_attempts() const { return executed_attempts_.load(); }

    const Env_hooks& hooks() const { return *hooks_; }
    std::int64_t deadline_ms() const { return options_.deadline_ms; }

private:
    struct Job {
        std::string key;
        std::function<void(Job_context&)> body;
        int attempts = 0;
        bool done = false;
        bool ok = false;
        Error_kind kind = Error_kind::internal;
        std::string message;
        std::int64_t not_before = 0;  // earliest next attempt (hooks clock)
    };

    void run_attempt(Job& job);

    Job_queue_options options_;
    const Env_hooks* hooks_;
    std::vector<std::unique_ptr<Job>> jobs_;
    std::vector<std::pair<std::size_t, bool>> requests_;  // (job, deduplicated)
    std::map<std::string, std::size_t> by_key_;
    std::atomic<bool> cancelled_{false};
    std::atomic<long long> executed_attempts_{0};
};

}  // namespace islhls
