#include "support/result_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

constexpr char kMagic[8] = {'I', 'S', 'L', 'H', 'L', 'S', 'C', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

// Advisory lock tuning: a holder silent past kLockStaleMs is presumed hung
// even if its process is alive (individual mutating passes are fast; verify
// over a large directory refreshes nothing, so the bound is generous); a
// contender gives up after kLockWaitMs and proceeds unlocked.
constexpr std::int64_t kLockStaleMs = 10'000;
constexpr std::int64_t kLockWaitMs = 2'000;
constexpr std::int64_t kLockPollMs = 10;

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    }
    return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    }
    return v;
}

std::string encode_record(const std::string& key, const std::string& payload) {
    std::string out;
    out.reserve(kHeaderSize + key.size() + payload.size());
    out.append(kMagic, sizeof kMagic);
    put_u32(out, kVersion);
    put_u32(out, static_cast<std::uint32_t>(key.size()));
    put_u64(out, payload.size());
    std::uint64_t checksum = fnv1a64(key);
    // Chain the payload into the key's running hash: one checksum covers
    // both sections, so a flipped bit anywhere in the record is caught.
    for (char c : payload) {
        checksum ^= static_cast<unsigned char>(c);
        checksum *= 0x100000001B3ULL;
    }
    put_u64(out, checksum);
    out += key;
    out += payload;
    return out;
}

// Validates one raw record image. Returns the payload, or nullopt with
// `*why` describing the first validation failure. When `expected_key` is
// non-null the stored key must match it exactly (a hash collision or a
// corrupted key section both count as "not this record").
std::optional<std::string> decode_record(const std::string& raw,
                                         const std::string* expected_key,
                                         std::string* why) {
    if (raw.size() < kHeaderSize) {
        *why = cat("short header (", raw.size(), " bytes)");
        return std::nullopt;
    }
    if (raw.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
        *why = "bad magic";
        return std::nullopt;
    }
    const std::uint32_t version = get_u32(raw, 8);
    if (version != kVersion) {
        *why = cat("unsupported version ", version);
        return std::nullopt;
    }
    const std::uint64_t key_len = get_u32(raw, 12);
    const std::uint64_t payload_len = get_u64(raw, 16);
    const std::uint64_t checksum = get_u64(raw, 24);
    if (raw.size() != kHeaderSize + key_len + payload_len) {
        *why = cat("size mismatch: header claims ",
                   kHeaderSize + key_len + payload_len, " bytes, file has ",
                   raw.size());
        return std::nullopt;
    }
    const std::string_view body(raw.data() + kHeaderSize, key_len + payload_len);
    if (fnv1a64(body) != checksum) {
        *why = "checksum mismatch";
        return std::nullopt;
    }
    const std::string_view key = body.substr(0, key_len);
    if (expected_key != nullptr && key != *expected_key) {
        *why = "key mismatch (hash collision)";
        return std::nullopt;
    }
    return std::string(body.substr(key_len));
}

}  // namespace

// Holds the advisory directory lock for one mutating pass: in-process
// serialization first (cheap mutex), then the cross-process lock file.
// Releases on destruction; if the lock could not be taken the pass runs
// unlocked (the operations stay individually crash-safe).
class Scoped_dir_lock {
public:
    explicit Scoped_dir_lock(Result_cache& cache)
        : cache_(cache),
          in_process_(cache.dir_lock_mutex_),
          held_(cache.acquire_dir_lock()) {}
    ~Scoped_dir_lock() {
        if (held_) cache_.hooks_->remove_file(cache_.lock_path());
    }
    Scoped_dir_lock(const Scoped_dir_lock&) = delete;
    Scoped_dir_lock& operator=(const Scoped_dir_lock&) = delete;

private:
    Result_cache& cache_;
    std::lock_guard<std::mutex> in_process_;
    bool held_;
};

std::uint64_t fnv1a64(std::string_view data) {
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (char c : data) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

Result_cache::Result_cache(std::string dir, const Env_hooks* hooks)
    : dir_(std::move(dir)), hooks_(hooks ? hooks : &real_env_hooks()) {
    namespace fs = std::filesystem;
    if (dir_.empty()) throw Io_error("cache directory path is empty");
    std::error_code ec;
    const fs::file_status status = fs::status(dir_, ec);
    if (!ec && fs::exists(status) && !fs::is_directory(status)) {
        throw Io_error(cat("cache path '", dir_,
                           "' exists and is not a directory"));
    }
    fs::create_directories(dir_, ec);
    if (ec) {
        throw Io_error(cat("cannot create cache directory '", dir_, "': ",
                           ec.message()));
    }
    // Probe writability with a real write so an unusable directory fails at
    // startup with a clear message instead of as silent store failures.
    const std::string probe = dir_ + "/.islhls-probe.tmp";
    std::string error;
    if (!hooks_->write_file(probe, "probe", &error)) {
        throw Io_error(cat("cache directory '", dir_, "' is not writable: ",
                           error));
    }
    hooks_->remove_file(probe);
}

std::string Result_cache::record_path(const std::string& key) const {
    char name[17];
    std::snprintf(name, sizeof name, "%016llx",
                  static_cast<unsigned long long>(fnv1a64(key)));
    return cat(dir_, "/", name, ".rec");
}

std::string Result_cache::lock_path() const { return dir_ + "/.islhls.lock"; }

bool Result_cache::acquire_dir_lock() {
    // Hooks without the lock primitives (older injected harnesses) simply
    // run unlocked, as before the lock existed.
    if (!hooks_->create_exclusive || !hooks_->process_alive) return false;
    const std::string path = lock_path();
    const std::int64_t deadline = hooks_->now_ms() + kLockWaitMs;
    for (;;) {
        const std::string content =
            cat(static_cast<long long>(::getpid()), " ", hooks_->now_ms(), "\n");
        std::string error;
        if (hooks_->create_exclusive(path, content, &error)) return true;
        // Somebody holds it. A dead holder (crashed sweep) or an unparseable
        // or ancient stamp means the lock is abandoned: break it and retry.
        std::string holder;
        const Env_hooks::Read_result read =
            hooks_->read_file(path, &holder, &error);
        if (read == Env_hooks::Read_result::ok) {
            long long pid = 0;
            long long stamp = 0;
            const bool parsed =
                std::sscanf(holder.c_str(), "%lld %lld", &pid, &stamp) == 2;
            const bool stale = !parsed || !hooks_->process_alive(pid) ||
                               hooks_->now_ms() - stamp > kLockStaleMs;
            if (stale) {
                // Break it by renaming first: of several contenders spotting
                // the same stale lock, exactly one rename succeeds, so
                // nobody can delete a lock some other winner just re-made.
                // Fall through to the bounded retry either way (no immediate
                // continue: a break that cannot succeed must not busy-loop).
                const std::string breaker =
                    cat(path, ".stale.", static_cast<long long>(::getpid()));
                if (hooks_->rename_file(path, breaker, &error)) {
                    hooks_->remove_file(breaker);
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.lock_takeovers;
                }
            }
        }
        if (hooks_->now_ms() >= deadline) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.lock_timeouts;
            return false;
        }
        hooks_->sleep_ms(kLockPollMs);
    }
}

std::string Result_cache::quarantine(const std::string& path) {
    // Mutating: must not race a concurrent gc sweeping the same directory.
    Scoped_dir_lock lock_guard(*this);
    const std::string target = path + ".quarantined";
    std::string error;
    // Replacing any earlier quarantined copy is fine — one exhibit of the
    // corruption is enough, and gc prunes them either way.
    if (!hooks_->rename_file(path, target, &error)) {
        // Could not move it aside; remove it so the next store is clean.
        hooks_->remove_file(path);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corrupt_quarantined;
    return target;
}

std::optional<std::string> Result_cache::load(const std::string& key) {
    const std::string path = record_path(key);
    std::string raw;
    std::string error;
    const Env_hooks::Read_result read = hooks_->read_file(path, &raw, &error);
    if (read != Env_hooks::Read_result::ok) {
        // Missing records and read faults both resolve to recompute.
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::string why;
    std::optional<std::string> payload = decode_record(raw, &key, &why);
    if (!payload) {
        if (why == "key mismatch (hash collision)") {
            // The record is someone else's valid data, not corruption.
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
        } else {
            quarantine(path);
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
        }
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return payload;
}

bool Result_cache::store(const std::string& key, const std::string& payload) {
    // The lock keeps a concurrent gc from collecting the temp file between
    // its write and its rename (to gc it looks orphaned).
    Scoped_dir_lock lock_guard(*this);
    const std::string path = record_path(key);
    std::uint64_t serial;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        serial = temp_counter_++;
    }
    // Pid-unique temp names: two processes storing the same key must never
    // write through one temp file, locked or not.
    const std::string temp =
        cat(path, ".tmp", static_cast<long long>(::getpid()), ".", serial);
    const std::string record = encode_record(key, payload);
    std::string error;
    if (!hooks_->write_file(temp, record, &error)) {
        hooks_->remove_file(temp);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_failures;
        return false;
    }
    if (!hooks_->rename_file(temp, path, &error)) {
        hooks_->remove_file(temp);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.store_failures;
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stores;
    return true;
}

Result_cache::Verify_report Result_cache::verify(bool gc, long long max_bytes) {
    namespace fs = std::filesystem;
    // Whole-pass lock: gc decides what is an orphan from one consistent
    // directory snapshot, excluded from concurrent stores and quarantines.
    Scoped_dir_lock lock_guard(*this);
    Verify_report report;
    struct Survivor {
        std::string name;
        long long bytes = 0;
        fs::file_time_type mtime;
    };
    std::vector<Survivor> survivors;
    // Deterministic order for the notes regardless of directory iteration
    // order.
    std::vector<std::string> entries;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
        entries.push_back(entry.path().filename().string());
    }
    if (ec) {
        report.notes.push_back(cat("cannot list '", dir_, "': ", ec.message()));
        return report;
    }
    std::sort(entries.begin(), entries.end());
    for (const std::string& name : entries) {
        const std::string path = cat(dir_, "/", name);
        if (ends_with(name, ".quarantined")) {
            ++report.quarantined_files;
            if (gc && hooks_->remove_file(path)) ++report.removed_files;
            continue;
        }
        if (name.find(".tmp") != std::string::npos) {
            ++report.temp_files;
            if (gc && hooks_->remove_file(path)) ++report.removed_files;
            continue;
        }
        if (!ends_with(name, ".rec")) continue;  // foreign file: leave it
        std::string raw;
        std::string error;
        if (hooks_->read_file(path, &raw, &error) != Env_hooks::Read_result::ok) {
            ++report.records_corrupt;
            report.notes.push_back(cat(name, ": unreadable: ", error));
            continue;
        }
        std::string why;
        if (!decode_record(raw, nullptr, &why)) {
            ++report.records_corrupt;
            report.notes.push_back(cat(name, ": ", why));
            if (gc && hooks_->remove_file(path)) ++report.removed_files;
            continue;
        }
        ++report.records_ok;
        Survivor s;
        s.name = name;
        s.bytes = static_cast<long long>(raw.size());
        s.mtime = fs::last_write_time(path, ec);  // ec: mtime 0 = oldest
        report.record_bytes += s.bytes;
        survivors.push_back(std::move(s));
    }
    // Size-budget eviction: valid records leave least-recently-written
    // first (name breaks mtime ties deterministically) until the rest fit.
    if (gc && max_bytes >= 0 && report.record_bytes > max_bytes) {
        std::sort(survivors.begin(), survivors.end(),
                  [](const Survivor& a, const Survivor& b) {
                      return a.mtime != b.mtime ? a.mtime < b.mtime
                                                : a.name < b.name;
                  });
        for (const Survivor& victim : survivors) {
            if (report.record_bytes <= max_bytes) break;
            if (!hooks_->remove_file(cat(dir_, "/", victim.name))) continue;
            ++report.records_evicted;
            --report.records_ok;
            report.record_bytes -= victim.bytes;
            report.notes.push_back(cat(victim.name, ": evicted (size budget)"));
        }
    }
    return report;
}

Result_cache::Stats Result_cache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace islhls
