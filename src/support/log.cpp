#include "support/log.hpp"

#include <atomic>
#include <iostream>

namespace islhls {

namespace {
std::atomic<Log_level>& threshold_storage() {
    static std::atomic<Log_level> level{Log_level::warn};
    return level;
}

const char* level_tag(Log_level level) {
    switch (level) {
        case Log_level::debug: return "debug";
        case Log_level::info: return "info ";
        case Log_level::warn: return "warn ";
        case Log_level::error: return "error";
        case Log_level::off: return "off  ";
    }
    return "?";
}
}  // namespace

Log_level log_threshold() { return threshold_storage().load(); }

void set_log_threshold(Log_level level) { threshold_storage().store(level); }

void log_message(Log_level level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
    if (level == Log_level::off) return;
    std::cerr << "[islhls:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace islhls
