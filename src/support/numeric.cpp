#include "support/numeric.hpp"

#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace islhls {

std::vector<int> divisors(int n) {
    check_internal(n >= 1, "divisors() requires n >= 1");
    std::vector<int> small;
    std::vector<int> large;
    for (int d = 1; static_cast<long long>(d) * d <= n; ++d) {
        if (n % d != 0) continue;
        small.push_back(d);
        if (d != n / d) large.push_back(n / d);
    }
    for (auto it = large.rbegin(); it != large.rend(); ++it) small.push_back(*it);
    return small;
}

int gcd(int a, int b) {
    while (b != 0) {
        const int t = a % b;
        a = b;
        b = t;
    }
    return std::abs(a);
}

namespace {

void compositions_rec(int remaining, const std::vector<int>& parts,
                      std::vector<int>& current,
                      std::vector<std::vector<int>>& out) {
    if (remaining == 0) {
        out.push_back(current);
        return;
    }
    for (int p : parts) {
        if (p <= 0 || p > remaining) continue;
        current.push_back(p);
        compositions_rec(remaining - p, parts, current, out);
        current.pop_back();
    }
}

void partitions_rec(int remaining, int max_part, const std::vector<int>& parts,
                    std::vector<int>& current,
                    std::vector<std::vector<int>>& out) {
    if (remaining == 0) {
        out.push_back(current);
        return;
    }
    // Parts are tried in descending order so sequences are non-increasing.
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        const int p = *it;
        if (p <= 0 || p > remaining || p > max_part) continue;
        current.push_back(p);
        partitions_rec(remaining - p, p, parts, current, out);
        current.pop_back();
    }
}

}  // namespace

std::vector<std::vector<int>> compositions_into(int n, const std::vector<int>& parts) {
    std::vector<std::vector<int>> out;
    std::vector<int> current;
    compositions_rec(n, parts, current, out);
    return out;
}

std::vector<std::vector<int>> partitions_into(int n, const std::vector<int>& parts) {
    std::vector<std::vector<int>> out;
    std::vector<int> current;
    partitions_rec(n, n, parts, current, out);
    return out;
}

Linear_fit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
    check_internal(xs.size() == ys.size(), "fit_line() size mismatch");
    check_internal(xs.size() >= 2, "fit_line() needs at least two points");
    const double n = static_cast<double>(xs.size());
    double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sum_x += xs[i];
        sum_y += ys[i];
        sum_xx += xs[i] * xs[i];
        sum_xy += xs[i] * ys[i];
    }
    const double denom = n * sum_xx - sum_x * sum_x;
    Linear_fit fit;
    if (denom == 0.0) {
        // All x equal: fall back to a horizontal line through the mean.
        fit.slope = 0.0;
        fit.intercept = sum_y / n;
    } else {
        fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
        fit.intercept = (sum_y - fit.slope * sum_x) / n;
    }
    const double mean_y = sum_y / n;
    double ss_tot = 0.0, ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double pred = fit.slope * xs[i] + fit.intercept;
        ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
        ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
    return fit;
}

double fit_through_origin(const std::vector<double>& xs, const std::vector<double>& ys) {
    check_internal(xs.size() == ys.size(), "fit_through_origin() size mismatch");
    double sum_xx = 0.0, sum_xy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sum_xx += xs[i] * xs[i];
        sum_xy += xs[i] * ys[i];
    }
    check_internal(sum_xx > 0.0, "fit_through_origin() needs a nonzero x");
    return sum_xy / sum_xx;
}

double relative_error(double value, double reference) {
    const double diff = std::fabs(value - reference);
    if (reference == 0.0) return diff;
    return diff / std::fabs(reference);
}

std::uint64_t hash_mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
    return hash_mix(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

double hash_to_unit(std::uint64_t h) {
    // Take the top 53 bits for a uniform double in [0,1).
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace islhls
