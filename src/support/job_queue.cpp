#include "support/job_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/text.hpp"

namespace islhls {

void Job_context::checkpoint() const {
    if (queue_.cancelled()) {
        throw User_error(cat("job '", key_, "' cancelled"));
    }
    if (deadline_ > 0 && queue_.hooks().now_ms() > deadline_) {
        throw Timeout_error(cat("job '", key_, "' exceeded its ",
                                queue_.deadline_ms(), " ms deadline (attempt ",
                                attempt_, ")"));
    }
}

bool Job_context::cancelled() const { return queue_.cancelled(); }

Job_queue::Job_queue(Job_queue_options options)
    : options_(options),
      hooks_(options.hooks ? options.hooks : &real_env_hooks()) {}

std::size_t Job_queue::submit(std::string key,
                              std::function<void(Job_context&)> body) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        requests_.emplace_back(it->second, true);
        return requests_.size() - 1;
    }
    auto job = std::make_unique<Job>();
    job->key = std::move(key);
    job->body = std::move(body);
    jobs_.push_back(std::move(job));
    by_key_.emplace(jobs_.back()->key, jobs_.size() - 1);
    requests_.emplace_back(jobs_.size() - 1, false);
    return requests_.size() - 1;
}

void Job_queue::run_attempt(Job& job) {
    if (cancelled_.load()) {
        job.done = true;
        job.ok = false;
        job.kind = Error_kind::user;
        job.message = cat("job '", job.key, "' cancelled");
        return;
    }
    ++job.attempts;
    executed_attempts_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t start = hooks_->now_ms();
    const std::int64_t deadline =
        options_.deadline_ms > 0 ? start + options_.deadline_ms : 0;
    Job_context context(*this, job.key, job.attempts, deadline);
    Error_kind kind = Error_kind::internal;
    std::string message;
    try {
        job.body(context);
        job.done = true;
        job.ok = true;
        return;
    } catch (const std::exception& e) {
        kind = classify_error(e);
        message = e.what();
    } catch (...) {
        message = cat("job '", job.key, "' failed with a non-standard exception");
    }
    job.kind = kind;
    job.message = message;
    const bool transient = kind == Error_kind::io || kind == Error_kind::timeout;
    if (transient && job.attempts < options_.retry.max_attempts) {
        const double delay =
            static_cast<double>(options_.retry.backoff_ms) *
            std::pow(options_.retry.backoff_factor, job.attempts - 1);
        job.not_before = hooks_->now_ms() + std::llround(delay);
        return;  // stays pending; the next round retries it
    }
    job.done = true;
    job.ok = false;
}

std::vector<Job_outcome> Job_queue::drain() {
    for (;;) {
        const std::int64_t now = hooks_->now_ms();
        std::vector<std::size_t> runnable;
        std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
        bool pending = false;
        for (std::size_t i = 0; i < jobs_.size(); ++i) {
            Job& job = *jobs_[i];
            if (job.done) continue;
            pending = true;
            if (job.not_before <= now) {
                runnable.push_back(i);
            } else {
                earliest = std::min(earliest, job.not_before);
            }
        }
        if (!pending) break;
        if (runnable.empty()) {
            // Everything pending is backing off; wait out the nearest
            // retry. A test clock that ignores sleeps must not spin this
            // loop forever, so a sleep that does not advance the clock
            // counts as having elapsed.
            hooks_->sleep_ms(earliest - now);
            if (hooks_->now_ms() <= now) {
                for (auto& job : jobs_) {
                    if (!job->done) job->not_before = now;
                }
            }
            continue;
        }
        auto run_one = [&](std::size_t index) { run_attempt(*jobs_[runnable[index]]); };
        if (options_.pool != nullptr) {
            options_.pool->for_each_index(runnable.size(), run_one);
        } else {
            for (std::size_t i = 0; i < runnable.size(); ++i) run_one(i);
        }
    }
    std::vector<Job_outcome> outcomes;
    outcomes.reserve(requests_.size());
    for (const auto& [job_index, deduplicated] : requests_) {
        const Job& job = *jobs_[job_index];
        Job_outcome outcome;
        outcome.key = job.key;
        outcome.ok = job.ok;
        outcome.kind = job.kind;
        outcome.message = job.message;
        outcome.attempts = job.attempts;
        outcome.deduplicated = deduplicated;
        outcomes.push_back(std::move(outcome));
    }
    jobs_.clear();
    requests_.clear();
    by_key_.clear();
    cancelled_.store(false);
    return outcomes;
}

}  // namespace islhls
