// Minimal leveled logging to stderr.
//
// The flow is a batch tool; logging exists mainly so long explorations can
// report progress. Default level is `warn` so tests and benches stay quiet.
#pragma once

#include <string>

namespace islhls {

enum class Log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

// Process-wide minimum level that is actually emitted.
Log_level log_threshold();
void set_log_threshold(Log_level level);

// Emits `message` on stderr with a level tag when `level >= threshold`.
void log_message(Log_level level, const std::string& message);

inline void log_debug(const std::string& m) { log_message(Log_level::debug, m); }
inline void log_info(const std::string& m) { log_message(Log_level::info, m); }
inline void log_warn(const std::string& m) { log_message(Log_level::warn, m); }
inline void log_error(const std::string& m) { log_message(Log_level::error, m); }

}  // namespace islhls
