#include "support/prng.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Prng::Prng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words, as
    // recommended by the xoshiro authors.
    std::uint64_t s = seed;
    for (auto& word : state_) {
        s += 0x9e3779b97f4a7c15ULL;
        word = hash_mix(s);
    }
}

std::uint64_t Prng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Prng::next_unit() { return hash_to_unit(next_u64()); }

double Prng::next_in(double lo, double hi) { return lo + (hi - lo) * next_unit(); }

int Prng::next_int(int lo, int hi) {
    check_internal(lo <= hi, "Prng::next_int requires lo <= hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<int>(next_u64() % range);
}

double Prng::next_gaussian() {
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = next_unit();
    } while (u1 <= 1e-12);
    const double u2 = next_unit();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = radius * std::sin(angle);
    have_cached_gaussian_ = true;
    return radius * std::cos(angle);
}

}  // namespace islhls
