#include "support/text.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>

namespace islhls {

std::string format_fixed(double value, int decimals) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string format_sci(double value, int decimals) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(decimals) << value;
    return os.str();
}

std::string format_grouped(long long value) {
    const bool negative = value < 0;
    std::string digits = std::to_string(negative ? -value : value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    if (negative) out.push_back('-');
    std::reverse(out.begin(), out.end());
    return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::string current;
    for (char c : s) {
        if (c == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string trim(const std::string& s) {
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
    return s.substr(begin, end - begin);
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string pad_left(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return s + std::string(width - s.size(), ' ');
}

std::string to_lower(const std::string& s) {
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string replace_all(std::string s, const std::string& from, const std::string& to) {
    if (from.empty()) return s;
    std::size_t pos = 0;
    while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, from.size(), to);
        pos += to.size();
    }
    return s;
}

bool is_identifier(const std::string& name) {
    if (name.empty()) return false;
    const unsigned char first = static_cast<unsigned char>(name.front());
    if (!std::isalpha(first) && name.front() != '_') return false;
    return std::all_of(name.begin() + 1, name.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    });
}

}  // namespace islhls
