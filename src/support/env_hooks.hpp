// Injectable environment seam: filesystem, clock and sleep.
//
// The crash-safe result cache (support/result_cache.hpp) and the job queue
// (support/job_queue.hpp) never touch the OS directly — every mutation and
// every time read goes through an Env_hooks instance. Production code uses
// real_env_hooks() (POSIX whole-file I/O with an fsync before the atomic
// rename, steady-clock milliseconds); the fault-injection harness wraps the
// real hooks to inject torn writes, ENOSPC, rename failures, frozen or
// fast-forwarded clocks, and records backoff sleeps instead of sleeping.
//
// The seam deliberately covers only *mutating* filesystem operations plus
// whole-file reads: directory listing (cache verify/gc) stays on
// std::filesystem, because corrupting a listing is not a failure mode the
// cache needs to survive differently from an absent file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace islhls {

struct Env_hooks {
    enum class Read_result { ok, missing, error };

    // Creates/truncates `path` and writes `data`, flushing to disk before
    // returning. False on failure with `*error` describing it (errno text).
    std::function<bool(const std::string& path, const std::string& data,
                       std::string* error)>
        write_file;

    // Atomically renames `from` to `to` (same filesystem). False on failure.
    std::function<bool(const std::string& from, const std::string& to,
                       std::string* error)>
        rename_file;

    // Reads the whole file into `*out`. `missing` is distinguished from
    // `error` so a cache miss never looks like an I/O fault.
    std::function<Read_result(const std::string& path, std::string* out,
                              std::string* error)>
        read_file;

    // Removes `path`; false when it could not be removed (absent is fine).
    std::function<bool(const std::string& path)> remove_file;

    // Creates `path` exclusively (O_CREAT|O_EXCL) and writes `data`, flushed
    // before returning. False when the file already exists or on I/O
    // failure: the existence race is the point — this backs the advisory
    // multi-process cache lock, where exactly one contender's create wins.
    std::function<bool(const std::string& path, const std::string& data,
                       std::string* error)>
        create_exclusive;

    // True when a process with this id is alive (kill(pid, 0), with EPERM
    // counting as alive). Used to detect a crashed lock holder.
    std::function<bool(std::int64_t pid)> process_alive;

    // Monotonic milliseconds (steady clock). Job deadlines and retry
    // backoff are computed against this, never against wall time.
    std::function<std::int64_t()> now_ms;

    // Blocks the calling thread for `ms` milliseconds (retry backoff).
    std::function<void(std::int64_t ms)> sleep_ms;
};

// The process-wide real implementation (POSIX I/O, steady clock).
const Env_hooks& real_env_hooks();

}  // namespace islhls
