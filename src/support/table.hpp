// Plain-text and CSV table rendering for bench/report output.
//
// The bench binaries regenerate the paper's figures as textual tables; this
// helper keeps their formatting uniform (aligned columns, optional CSV dump).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace islhls {

// A rectangular table of strings with a header row.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    // Appends one row; must have exactly as many cells as the header.
    void add_row(std::vector<std::string> row);

    // Convenience: formats arithmetic cells with cat()-style streaming.
    template <typename... Cells>
    void add(const Cells&... cells);

    std::size_t row_count() const { return rows_.size(); }
    std::size_t column_count() const { return header_.size(); }
    const std::vector<std::string>& header() const { return header_; }
    const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

    // Renders with space-padded aligned columns and a separator rule.
    std::string to_text() const;

    // Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
    // quoted, quotes doubled).
    std::string to_csv() const;

    // Writes to_text() to the stream.
    friend std::ostream& operator<<(std::ostream& os, const Table& t);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cell_to_string(const std::string& s);
std::string cell_to_string(const char* s);
std::string cell_to_string(double v);
std::string cell_to_string(float v);
std::string cell_to_string(int v);
std::string cell_to_string(long v);
std::string cell_to_string(long long v);
std::string cell_to_string(unsigned v);
std::string cell_to_string(unsigned long v);
std::string cell_to_string(unsigned long long v);
}  // namespace detail

template <typename... Cells>
void Table::add(const Cells&... cells) {
    add_row({detail::cell_to_string(cells)...});
}

}  // namespace islhls
