#include "support/env_hooks.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

namespace islhls {

namespace {

std::string errno_text() { return std::strerror(errno); }

bool write_fd_flushed(int fd, const std::string& data, std::string* error) {
    if (fd < 0) {
        if (error) *error = errno_text();
        return false;
    }
    std::size_t written = 0;
    while (written < data.size()) {
        const ::ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (error) *error = errno_text();
            ::close(fd);
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    // Flush before the caller renames over the final name: a record must
    // never become reachable before its bytes are durable, or a crash could
    // leave a valid-looking name with torn contents.
    if (::fsync(fd) != 0) {
        if (error) *error = errno_text();
        ::close(fd);
        return false;
    }
    if (::close(fd) != 0) {
        if (error) *error = errno_text();
        return false;
    }
    return true;
}

bool real_write_file(const std::string& path, const std::string& data,
                     std::string* error) {
    return write_fd_flushed(::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644),
                            data, error);
}

bool real_create_exclusive(const std::string& path, const std::string& data,
                           std::string* error) {
    return write_fd_flushed(::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644),
                            data, error);
}

bool real_process_alive(std::int64_t pid) {
    if (pid <= 0) return false;
    // EPERM means "exists but not ours" — alive for lock purposes.
    return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

bool real_rename_file(const std::string& from, const std::string& to,
                      std::string* error) {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
        if (error) *error = errno_text();
        return false;
    }
    return true;
}

Env_hooks::Read_result real_read_file(const std::string& path, std::string* out,
                                      std::string* error) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) return Env_hooks::Read_result::missing;
        if (error) *error = errno_text();
        return Env_hooks::Read_result::error;
    }
    out->clear();
    char buffer[1 << 16];
    for (;;) {
        const ::ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (error) *error = errno_text();
            ::close(fd);
            return Env_hooks::Read_result::error;
        }
        if (n == 0) break;
        out->append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return Env_hooks::Read_result::ok;
}

bool real_remove_file(const std::string& path) {
    return ::unlink(path.c_str()) == 0;
}

std::int64_t real_now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void real_sleep_ms(std::int64_t ms) {
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const Env_hooks& real_env_hooks() {
    static const Env_hooks hooks = {
        real_write_file,       real_rename_file,   real_read_file,
        real_remove_file,      real_create_exclusive, real_process_alive,
        real_now_ms,           real_sleep_ms,
    };
    return hooks;
}

}  // namespace islhls
