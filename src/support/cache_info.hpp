// Cache-topology probe for cache-shaped execution.
//
// The execution engine sizes its temporal-tiling and column-panel decisions
// from the data-cache hierarchy of the host it actually runs on: how many
// bytes of working set stay resident decides when fusing iterations pays
// for its halo recompute, how tall a row band may grow, and how wide a
// column panel can be before a tape operation's rows fall out of L1. Those
// used to be hard-coded constants (32 MiB / 8 MiB) tuned for one machine;
// this probe reads the real sizes once per process — sysfs on Linux, then
// sysconf, then conservative fallbacks — so the same binary shapes itself
// to a 4 MiB laptop LLC and a 256 MiB server LLC alike.
//
// Callers that need determinism across hosts (tests, committed bench
// baselines) pin explicit budgets through Exec_options instead of relying
// on the probe; the probe only ever feeds heuristics, never results — every
// budget produces byte-identical frames.
#pragma once

#include <cstddef>
#include <string>

namespace islhls {

// Per-level data-cache sizes in bytes. Every field is non-zero: levels the
// host does not report fall back to conservative defaults (the constants
// the engine shipped with before the probe existed).
struct Cache_topology {
    std::size_t l1d_bytes = 0;
    std::size_t l2_bytes = 0;
    std::size_t llc_bytes = 0;
    // True when at least one level came from the OS rather than a fallback.
    bool probed = false;
    // The raw probed LLC before the container clamp below (equal to
    // llc_bytes on bare metal); kept so a clamp stays visible in logs.
    std::size_t raw_llc_bytes = 0;
    // True when llc_bytes was reduced below the raw probe. Containers make
    // the raw value a lie twice over: sysfs reports the host's whole shared
    // LLC even when the cgroup holds one vCPU of it (a 1-vCPU CI runner
    // "sees" a 260 MiB server LLC), and a cgroup memory limit can be smaller
    // than the LLC itself, where an LLC-sized working set would be OOM-killed
    // long before it became cache-resident. llc_bytes is clamped to the
    // per-core share and to half the cgroup memory limit, floored at l2.
    bool llc_clamped = false;
};

// Fallbacks applied per level when the host reports nothing: small enough
// to be safe on any machine this code plausibly runs on.
inline constexpr std::size_t kFallback_l1d = 32u * 1024;
inline constexpr std::size_t kFallback_l2 = 1u * 1024 * 1024;
inline constexpr std::size_t kFallback_llc = 32u * 1024 * 1024;

// The host's cache topology, probed once per process (thread-safe; later
// calls return the cached result). Reads
// /sys/devices/system/cpu/cpu0/cache/index*/{level,type,size} first,
// falls back to sysconf(_SC_LEVEL*_CACHE_SIZE) where available, and fills
// any still-unknown level with the constants above. llc_bytes is the
// largest reported level (>= l2_bytes >= l1d_bytes is NOT guaranteed by
// hardware tables, so consumers should not assume monotonicity beyond
// what this struct normalizes: llc >= l2 is enforced).
const Cache_topology& cache_topology();

// "L1d 48 KiB, L2 2 MiB, LLC 260 MiB (probed)" — for bench/CI logs, so
// cross-host ratio drift is diagnosable from the job output alone. A
// clamped LLC renders as "LLC 2 MiB (clamped from 260 MiB) (probed)".
std::string to_string(const Cache_topology& topology);

// --- pure clamp helpers (exported for unit tests) --------------------------------

// Number of cpus in a sysfs cpu-list string ("0-3,8-11" -> 8). 0 on empty
// or malformed input.
int count_cpu_list(const std::string& text);

// The effective LLC budget for this process: the probed size cut down to
// this cgroup's fair share. `sharing_cpus` is how many cpus share the LLC
// per the host topology, `online_cpus` how many this environment actually
// offers; when fewer, the budget shrinks proportionally. A non-zero
// `cgroup_limit_bytes` (container memory limit) further caps the budget at
// half the limit — headroom for everything that is not the tile. The result
// never drops below `l2_bytes` (the engine needs some band to work in) and
// never exceeds `probed_llc`. Zero parameters mean "unknown": no clamp from
// that source.
std::size_t clamp_llc_bytes(std::size_t probed_llc, std::size_t l2_bytes,
                            std::size_t cgroup_limit_bytes, int sharing_cpus,
                            int online_cpus);

}  // namespace islhls
