// Numeric helpers: integer combinatorics used by the design space enumerator
// and least-squares fitting used by the area-model calibration.
#pragma once

#include <cstdint>
#include <vector>

namespace islhls {

// All positive divisors of n (n >= 1), ascending. divisors(10) = {1,2,5,10}.
std::vector<int> divisors(int n);

// Ceiling division for non-negative integers.
constexpr int ceil_div(int a, int b) { return (a + b - 1) / b; }

// Greatest common divisor (non-negative inputs).
int gcd(int a, int b);

// All compositions of `n` into parts drawn from `parts` (order matters):
// compositions_into(3, {1,2}) = {(1,1,1),(1,2),(2,1)}. The enumeration is
// depth-first and deterministic. Used to enumerate level-depth sequences.
std::vector<std::vector<int>> compositions_into(int n, const std::vector<int>& parts);

// All multisets (non-increasing sequences) of `n` into parts from `parts`:
// partitions_into(3, {1,2}) = {(2,1),(1,1,1)}. Used when level order is
// irrelevant for cost.
std::vector<std::vector<int>> partitions_into(int n, const std::vector<int>& parts);

// Result of a 1-D least squares fit y ~ slope*x + intercept.
struct Linear_fit {
    double slope = 0.0;
    double intercept = 0.0;
    // Coefficient of determination in [0,1]; 1 means perfect fit.
    double r_squared = 0.0;
};

// Ordinary least squares over the given points (xs.size() == ys.size() >= 2).
// With exactly two points this degenerates to the line through them.
Linear_fit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

// Fit of y ~ alpha * x through the origin (used for Eq. 1 alpha calibration
// in its through-origin variant). Requires at least one x != 0.
double fit_through_origin(const std::vector<double>& xs, const std::vector<double>& ys);

// Relative error |value - reference| / |reference|; returns |value - reference|
// when reference == 0.
double relative_error(double value, double reference);

// Deterministic 64-bit hash mix (SplitMix64 finalizer). Used to derive
// reproducible per-design perturbations in the virtual synthesizer.
std::uint64_t hash_mix(std::uint64_t x);

// Combines a hash state with a new value.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// Maps a 64-bit hash to a double uniformly in [0,1).
double hash_to_unit(std::uint64_t h);

}  // namespace islhls
