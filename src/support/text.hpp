// Small string formatting helpers used across the library.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace islhls {

// Concatenates all arguments through an ostringstream.
// Example: cat("cone w=", 4, " d=", 2) == "cone w=4 d=2".
template <typename... Args>
std::string cat(const Args&... args) {
    std::ostringstream os;
    ((os << args), ...);
    return os.str();
}

// Fixed-precision decimal rendering, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

// Scientific rendering with `decimals` digits after the point.
std::string format_sci(double value, int decimals);

// Formats `value` with thousands separators: 1234567 -> "1,234,567".
std::string format_grouped(long long value);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

// True if `s` starts with `prefix` / ends with `suffix`.
bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

// Returns `s` left-padded (right-aligned) to `width` with spaces.
std::string pad_left(const std::string& s, std::size_t width);

// Returns `s` right-padded (left-aligned) to `width` with spaces.
std::string pad_right(const std::string& s, std::size_t width);

// Lowercases ASCII letters.
std::string to_lower(const std::string& s);

// Replaces every occurrence of `from` (non-empty) in `s` with `to`.
std::string replace_all(std::string s, const std::string& from, const std::string& to);

// True if `name` is a valid C identifier ([A-Za-z_][A-Za-z0-9_]*).
bool is_identifier(const std::string& name);

}  // namespace islhls
