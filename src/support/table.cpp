#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    check_internal(!header_.empty(), "Table requires a non-empty header");
}

void Table::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw Internal_error(cat("Table row has ", row.size(), " cells, expected ",
                                 header_.size()));
    }
    rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << "  ";
            os << pad_left(row[c], widths[c]);
        }
        os << '\n';
    };
    emit_row(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
    os << std::string(rule, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += '"';
    return out;
}
}  // namespace

std::string Table::to_csv() const {
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << ',';
            os << csv_escape(row[c]);
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_text(); }

namespace detail {
std::string cell_to_string(const std::string& s) { return s; }
std::string cell_to_string(const char* s) { return s; }
std::string cell_to_string(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
}
std::string cell_to_string(float v) { return cell_to_string(static_cast<double>(v)); }
std::string cell_to_string(int v) { return std::to_string(v); }
std::string cell_to_string(long v) { return std::to_string(v); }
std::string cell_to_string(long long v) { return std::to_string(v); }
std::string cell_to_string(unsigned v) { return std::to_string(v); }
std::string cell_to_string(unsigned long v) { return std::to_string(v); }
std::string cell_to_string(unsigned long long v) { return std::to_string(v); }
}  // namespace detail

}  // namespace islhls
