// Automatic fixed-point format selection.
//
// The paper fixes the hardware number format by hand; this extension picks
// the narrowest Qm.f automatically for a given accuracy target:
//   1. run the cone in double over sample windows, recording the dynamic
//      range of every intermediate register — that fixes the integer bits
//      (plus one guard bit against rounding growth);
//   2. grow the fraction bits until the bit-accurate fixed-point execution
//      reaches the requested PSNR against the double reference (or matches
//      it exactly — exactness is modelled as an explicit flag, never as a
//      sentinel decibel value; integer-native kernels accept on exactness
//      alone and skip PSNR pruning entirely);
//   3. shrink the integer bits back below the range-derived floor while the
//      raw fixed-point outputs stay byte-identical to the accepted format —
//      kernels whose intermediates stay tiny (chambolle's duals) drop below
//      the conservative sign+magnitude+guard estimate for free, because a
//      narrower wrap that never fires cannot change a single output word.
// Narrower formats mean cheaper operators everywhere in the cost model, so
// this directly trades accuracy against area.
//
// Every candidate format is evaluated in ONE batched pass over all sample
// windows through the integer-lowered tape (Fixed_exec): inputs are
// quantized into a flat raw buffer and advance kLane samples per tape
// operation out of reusable per-job scratch, optionally fanned across a
// thread pool — no per-sample interpreter run, no per-sample allocation.
// The PSNR fold rides inside the same jobs: every job accumulates the
// squared error of its own fixed sample range (the decomposition depends
// only on the sample count, never the thread count) and the partials
// combine in range order after the join, so the selected format, achieved
// PSNR and formats_tried are bit-identical at any thread count.
#pragma once

#include "backend/fixed_point.hpp"
#include "cone/cone.hpp"
#include "grid/frame_set.hpp"

namespace islhls {

struct Format_search_options {
    double target_psnr_db = 50.0;  // accuracy target vs the double reference
    double peak_value = 255.0;     // PSNR peak (data range)
    int sample_windows = 32;       // evaluation positions per frame
    int max_total_bits = 32;       // do not search beyond this width
    std::uint64_t seed = 99;       // window sampling
    // Sample-window fan-out per candidate format (support/parallel.hpp
    // semantics: 0 = all hardware threads). The result is byte-identical at
    // any thread count.
    int threads = 1;
    // Phase-3 integer-bit shrink below the range-derived floor (raw outputs
    // must stay byte-identical per shrunk candidate). Off reproduces the
    // plain two-phase search.
    bool shrink_integer_bits = true;
};

struct Format_search_result {
    Fixed_format format;       // the chosen (narrowest passing) format
    // Achieved accuracy at that format. Meaningless (0.0) when `exact` —
    // an exact match has no finite PSNR and is reported via the flag, not a
    // sentinel decibel value.
    double psnr_db = 0.0;
    // The fixed-point outputs reproduce the double reference bit-for-bit at
    // the chosen format (mse == 0 over every sample window).
    bool exact = false;
    double max_abs_value = 0.0;  // observed intermediate dynamic range
    // Range-derived integer-bit floor (sign + magnitude + guard) before the
    // shrink phase; format.integer_bits <= range_integer_bits always, and
    // strictly less when the shrink phase fired.
    int range_integer_bits = 0;
    int formats_tried = 0;     // counts shrink candidates too
    bool satisfiable = true;   // false when max_total_bits is insufficient
};

// Searches the format for `cone` with inputs drawn from `content` (boundary
// policy applied at the frame border).
Format_search_result search_fixed_format(const Cone& cone, const Frame_set& content,
                                         Boundary boundary,
                                         const Format_search_options& options = {});

}  // namespace islhls
