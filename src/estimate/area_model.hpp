// The paper's incremental area model (Eq. 1):
//
//   A_est(i) = A_est(i-1) + (Reg_i - Reg_{i-1}) * Size_reg * alpha
//
// chained from a synthesized base design, which telescopes to
//
//   A_est(Reg) = A_base + (Reg - Reg_base) * Size_reg * alpha.
//
// `Reg` is known for free once the VHDL (register program) is generated;
// `alpha` — the degree of logic reuse the synthesis tool achieves — is fitted
// from a small number of real syntheses (two suffice; more improve accuracy),
// exactly as in Sec. 3.3 of the paper.
#pragma once

#include <cstddef>
#include <vector>

namespace islhls {

// One calibration observation: a synthesized design.
struct Area_sample {
    int register_count = 0;
    double lut_count = 0.0;
};

class Area_model {
public:
    // `size_reg`: bits per register on the target (the paper's Size_reg);
    // equals the fixed-point word width in this flow. One Area_model prices
    // one width — the per-architecture format search (core/sweep.hpp)
    // re-prices a fit by fitting a second model at the searched width, so
    // narrower formats shrink the estimate through both Size_reg and the
    // cheaper calibration syntheses.
    explicit Area_model(double size_reg);

    // Adds a synthesized design to the calibration set.
    void add_sample(const Area_sample& sample);

    // Fits alpha by least squares relative to the smallest-register sample
    // (two samples reduce to the paper's two-synthesis form). Throws
    // Dse_error with fewer than two samples.
    void calibrate();

    bool calibrated() const { return calibrated_; }
    double alpha() const;
    double size_reg() const { return size_reg_; }
    std::size_t sample_count() const { return samples_.size(); }

    // Estimated LUT area for a design with `register_count` registers.
    double estimate(int register_count) const;

private:
    double size_reg_;
    std::vector<Area_sample> samples_;
    double alpha_ = 0.0;
    double base_area_ = 0.0;
    int base_regs_ = 0;
    bool calibrated_ = false;
};

}  // namespace islhls
