// On-chip memory budgeting for an architecture instance.
//
// The template keeps the whole multi-level computation of one output window
// on chip (that is its point — Sec. 2.2's memory/performance conflict): the
// initial input window with its N-iteration halo plus one intermediate
// buffer per level boundary. This model checks that those buffers fit the
// device's BRAM and quantifies how much smaller they are than the
// whole-frame buffers of the classic approach.
#pragma once

#include <vector>

namespace islhls {

struct Memory_budget {
    double input_buffer_kbits = 0.0;        // initial window incl. halo
    double intermediate_kbits = 0.0;        // level-boundary buffers
    double output_buffer_kbits = 0.0;       // final window
    double total_kbits = 0.0;
    double whole_frame_kbits = 0.0;         // classic two-buffer approach
    double saving_factor = 0.0;             // whole-frame / ours
};

// `coverage_sizes`: per level boundary (deep-first), the side length of the
// square region that must be materialized, starting with the initial input
// window and ending with the output window; `fields` counts state fields;
// `bits_per_word` is the fixed-point width.
Memory_budget plan_memory(const std::vector<int>& coverage_sizes, int fields,
                          int frame_width, int frame_height, double bits_per_word);

}  // namespace islhls
