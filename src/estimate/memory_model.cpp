#include "estimate/memory_model.hpp"

#include "support/error.hpp"

namespace islhls {

Memory_budget plan_memory(const std::vector<int>& coverage_sizes, int fields,
                          int frame_width, int frame_height, double bits_per_word) {
    check_internal(coverage_sizes.size() >= 2,
                   "plan_memory needs at least input and output coverage");
    check_internal(fields >= 1, "plan_memory needs at least one field");
    Memory_budget budget;
    auto kbits_of = [&](int side) {
        return static_cast<double>(side) * side * fields * bits_per_word / 1024.0;
    };
    budget.input_buffer_kbits = kbits_of(coverage_sizes.front());
    budget.output_buffer_kbits = kbits_of(coverage_sizes.back());
    for (std::size_t i = 1; i + 1 < coverage_sizes.size(); ++i) {
        budget.intermediate_kbits += kbits_of(coverage_sizes[i]);
    }
    // Double buffering on the external-facing ends to overlap transfers.
    budget.total_kbits = 2.0 * budget.input_buffer_kbits + budget.intermediate_kbits +
                         2.0 * budget.output_buffer_kbits;
    budget.whole_frame_kbits = 2.0 * static_cast<double>(frame_width) * frame_height *
                               fields * bits_per_word / 1024.0;
    budget.saving_factor =
        budget.total_kbits > 0.0 ? budget.whole_frame_kbits / budget.total_kbits : 0.0;
    return budget;
}

}  // namespace islhls
