#include "estimate/format_search.hpp"

#include <algorithm>
#include <cmath>

#include "sim/fixed_exec.hpp"
#include "support/error.hpp"
#include "support/prng.hpp"

namespace islhls {

Format_search_result search_fixed_format(const Cone& cone, const Frame_set& content,
                                         Boundary boundary,
                                         const Format_search_options& options) {
    check_internal(options.sample_windows >= 1, "need at least one sample window");
    const Register_program& program = cone.program();
    const Stencil_step& step = cone.step();

    // Sample window origins across the frame.
    Prng rng(options.seed);
    std::vector<std::pair<int, int>> origins;
    for (int i = 0; i < options.sample_windows; ++i) {
        origins.push_back({rng.next_int(0, std::max(0, content.width() - 1)),
                           rng.next_int(0, std::max(0, content.height() - 1))});
    }

    // Gather per-origin input vectors and the double reference. One batched
    // trace per origin (into a reused buffer) serves both the range analysis
    // and the reference outputs — no second execution, no per-origin trace
    // allocation.
    std::vector<std::vector<double>> input_sets;
    std::vector<std::vector<double>> references;
    std::vector<double> trace;
    double max_abs = 0.0;
    for (const auto& [ox, oy] : origins) {
        std::vector<double> inputs;
        inputs.reserve(program.input_ports().size());
        for (const auto& port : program.input_ports()) {
            const Frame& f = content.field(step.pool().field_name(port.field));
            inputs.push_back(f.sample(ox + port.dx, oy + port.dy, boundary));
        }
        // Range analysis over every intermediate register.
        program.run_trace_into(inputs, trace);
        for (double v : trace) {
            max_abs = std::max(max_abs, std::fabs(v));
        }
        std::vector<double> reference;
        reference.reserve(program.outputs().size());
        for (const std::int32_t r : program.outputs()) {
            reference.push_back(trace[static_cast<std::size_t>(r)]);
        }
        references.push_back(std::move(reference));
        input_sets.push_back(std::move(inputs));
    }

    Format_search_result result;
    result.max_abs_value = max_abs;
    // Integer bits: sign + magnitude + one guard bit for rounding growth.
    const int integer_bits =
        2 + static_cast<int>(std::ceil(std::log2(std::max(1.0, max_abs))));

    auto psnr_of = [&](const Fixed_format& fmt) {
        double se = 0.0;
        long long count = 0;
        for (std::size_t s = 0; s < input_sets.size(); ++s) {
            const std::vector<double> fixed = run_fixed(program, input_sets[s], fmt);
            for (std::size_t o = 0; o < fixed.size(); ++o) {
                const double d = fixed[o] - references[s][o];
                se += d * d;
                count += 1;
            }
        }
        const double mse = se / static_cast<double>(count);
        if (mse == 0.0) return 1e9;
        return 10.0 * std::log10(options.peak_value * options.peak_value / mse);
    };

    for (int frac = 1; integer_bits + frac <= options.max_total_bits; ++frac) {
        const Fixed_format fmt{integer_bits, frac};
        result.formats_tried += 1;
        const double psnr = psnr_of(fmt);
        if (psnr >= options.target_psnr_db) {
            result.format = fmt;
            result.psnr_db = psnr;
            return result;
        }
        result.format = fmt;
        result.psnr_db = psnr;
    }
    result.satisfiable = false;
    return result;
}

}  // namespace islhls
