#include "estimate/format_search.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "sim/fixed_exec.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"
#include "support/prng.hpp"

namespace islhls {

Format_search_result search_fixed_format(const Cone& cone, const Frame_set& content,
                                         Boundary boundary,
                                         const Format_search_options& options) {
    check_internal(options.sample_windows >= 1, "need at least one sample window");
    const Register_program& program = cone.program();
    const Stencil_step& step = cone.step();

    // Sample window origins across the frame.
    Prng rng(options.seed);
    std::vector<std::pair<int, int>> origins;
    for (int i = 0; i < options.sample_windows; ++i) {
        origins.push_back({rng.next_int(0, std::max(0, content.width() - 1)),
                           rng.next_int(0, std::max(0, content.height() - 1))});
    }

    // Gather the per-origin inputs (flat, row-major samples x ports) and the
    // double reference. One batched trace per origin (into a reused buffer)
    // serves both the range analysis and the reference outputs — no second
    // execution, no per-origin trace allocation.
    const std::size_t samples = origins.size();
    const std::size_t in_count = program.input_ports().size();
    const std::size_t out_count = program.outputs().size();
    std::vector<double> flat_inputs(samples * in_count);
    std::vector<double> references(samples * out_count);
    std::vector<double> inputs(in_count);
    std::vector<double> trace;
    double max_abs = 0.0;
    for (std::size_t s = 0; s < samples; ++s) {
        const auto [ox, oy] = origins[s];
        for (std::size_t p = 0; p < in_count; ++p) {
            const auto& port = program.input_ports()[p];
            const Frame& f = content.field(step.pool().field_name(port.field));
            inputs[p] = f.sample(ox + port.dx, oy + port.dy, boundary);
        }
        // Range analysis over every intermediate register.
        program.run_trace_into(inputs, trace);
        for (double v : trace) {
            max_abs = std::max(max_abs, std::fabs(v));
        }
        std::copy(inputs.begin(), inputs.end(), flat_inputs.begin() + s * in_count);
        for (std::size_t o = 0; o < out_count; ++o) {
            references[s * out_count + o] =
                trace[static_cast<std::size_t>(program.outputs()[o])];
        }
    }

    Format_search_result result;
    result.max_abs_value = max_abs;
    // Integer bits: sign + magnitude + one guard bit for rounding growth.
    // This is a conservative floor — phase 3 below may shrink under it when
    // the observed computation never exercises the head bits.
    const int integer_bits =
        2 + static_cast<int>(std::ceil(std::log2(std::max(1.0, max_abs))));
    result.range_integer_bits = integer_bits;

    // One batched tape pass per candidate format: quantize the flat inputs,
    // run every sample window through the integer-lowered tape, and fold the
    // squared error inside the SAME jobs that ran the batch. The job
    // decomposition is a function of the sample count alone (at most
    // kFoldJobs ranges, never smaller than one kLane block so the batch
    // executor's lane passes stay full), each job accumulates its partial
    // sum over its samples in sample order, and the partials combine in
    // range order after the join — so the PSNR is bit-identical at any
    // thread count, and the fold no longer runs as a serial epilogue after
    // the parallel batch. Jobs reuse their scratch across formats; the pool
    // is built once for the whole search.
    constexpr std::size_t kFoldJobs = 16;
    const std::size_t lane = static_cast<std::size_t>(Fixed_exec::kLane);
    const std::size_t jobs = std::max<std::size_t>(
        1, std::min(kFoldJobs, (samples + lane - 1) / lane));
    const int threads = resolve_thread_count(options.threads);
    std::optional<Thread_pool> pool;
    if (threads > 1 && jobs > 1) pool.emplace(threads);
    // Per-job scratch is only needed when jobs really run concurrently; a
    // serial pass keeps ONE cache-hot lane buffer across all ranges instead
    // of cycling jobs-many cold ones. Scratch never influences results.
    std::vector<Fixed_exec::Scratch> scratch(pool ? jobs : 1);
    std::vector<double> partial_se(jobs, 0.0);
    std::vector<std::int64_t> raw_inputs(samples * in_count);
    std::vector<std::int64_t> raw_outputs(samples * out_count);

    // Accuracy of one candidate: either exact (mse == 0, no finite PSNR) or
    // a real decibel number — never a sentinel. `raw_outputs` holds the
    // candidate's output words after the call, which is what the shrink
    // phase compares against.
    struct Accuracy {
        bool exact = false;
        double psnr_db = 0.0;
    };
    auto measure = [&](const Fixed_format& fmt) -> Accuracy {
        const Fixed_exec exec(program, fmt);
        const Raw_quantizer quantize(fmt);
        auto run_range = [&](std::size_t j) {
            const std::size_t s0 = j * samples / jobs;
            const std::size_t s1 = (j + 1) * samples / jobs;
            for (std::size_t k = s0 * in_count; k < s1 * in_count; ++k) {
                raw_inputs[k] = quantize(flat_inputs[k]);
            }
            exec.run_raw_batch(raw_inputs.data() + s0 * in_count, s1 - s0,
                               raw_outputs.data() + s0 * out_count,
                               scratch[pool ? j : 0]);
            double se = 0.0;
            for (std::size_t k = s0 * out_count; k < s1 * out_count; ++k) {
                const double d = from_raw(raw_outputs[k], fmt) - references[k];
                se += d * d;
            }
            partial_se[j] = se;
        };
        if (pool) {
            pool->for_each_index(jobs, run_range);
        } else {
            for (std::size_t j = 0; j < jobs; ++j) run_range(j);
        }
        double se = 0.0;
        for (std::size_t j = 0; j < jobs; ++j) se += partial_se[j];
        const double mse = se / static_cast<double>(samples * out_count);
        if (mse == 0.0) return {true, 0.0};
        return {false,
                10.0 * std::log10(options.peak_value * options.peak_value / mse)};
    };
    // Integer-native programs compute exact whole numbers: a near-miss PSNR
    // is as wrong as a distant one, so they accept on exactness alone.
    auto accepts = [&](const Accuracy& acc) {
        if (step.integer_native()) return acc.exact;
        return acc.exact || acc.psnr_db >= options.target_psnr_db;
    };

    // Phase 3: walk the integer bits down below the range-derived floor
    // while every output word of the batch stays byte-identical to the
    // accepted format (same fraction bits, so the raw words are directly
    // comparable; a wrap or input saturation that fires shows up as a
    // differing word and stops the walk).
    auto shrink = [&]() {
        if (!options.shrink_integer_bits) return;
        const std::vector<std::int64_t> accepted = raw_outputs;
        const int frac = result.format.frac_bits;
        for (int m = result.format.integer_bits - 1; m >= 1 && m + frac >= 2; --m) {
            result.formats_tried += 1;
            measure(Fixed_format{m, frac});
            if (raw_outputs != accepted) break;
            result.format.integer_bits = m;
        }
    };

    // Integer-native programs start the candidate ladder at zero fractional
    // bits — a Q m.0 format already reproduces the whole-number reference.
    const int first_frac = step.integer_native() ? 0 : 1;
    for (int frac = first_frac; integer_bits + frac <= options.max_total_bits; ++frac) {
        const Fixed_format fmt{integer_bits, frac};
        result.formats_tried += 1;
        const Accuracy acc = measure(fmt);
        result.format = fmt;
        result.psnr_db = acc.psnr_db;
        result.exact = acc.exact;
        if (accepts(acc)) {
            shrink();
            return result;
        }
    }
    result.satisfiable = false;
    return result;
}

}  // namespace islhls
