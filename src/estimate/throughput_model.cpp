#include "estimate/throughput_model.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Throughput_estimate estimate_throughput(const std::vector<Level_load>& levels,
                                        const std::map<int, int>& cores_per_depth,
                                        long long windows_per_frame,
                                        double offchip_elems_per_window,
                                        double f_max_mhz,
                                        double offchip_elems_per_cycle,
                                        const Throughput_params& params) {
    check_internal(!levels.empty(), "estimate_throughput: empty level structure");
    check_internal(windows_per_frame > 0, "estimate_throughput: no windows");
    check_internal(f_max_mhz > 0.0, "estimate_throughput: f_max must be positive");

    Throughput_estimate est;

    // 1. Core bound: levels of the same depth class share that class's cores,
    //    so their occupancies accumulate; distinct classes work on different
    //    in-flight windows and the slowest class is the station bottleneck.
    double total_reads = 0.0;
    for (const Level_load& level : levels) {
        const auto it = cores_per_depth.find(level.depth);
        check_internal(it != cores_per_depth.end() && it->second > 0,
                       cat("no cores allocated for depth ", level.depth));
        const double occupancy_per_exec = std::max(
            1.0, std::ceil(static_cast<double>(level.cone_inputs) /
                           params.core_read_ports));
        est.class_cycles[level.depth] +=
            static_cast<double>(level.executions) * occupancy_per_exec /
            static_cast<double>(it->second);
        total_reads +=
            static_cast<double>(level.executions) * static_cast<double>(level.cone_inputs);
    }
    // Distinct classes serialize through the shared level buffers within a
    // window pass (sum, not max), and every extra class costs a drain.
    double core_bound = 0.0;
    for (const auto& [depth, cycles] : est.class_cycles) core_bound += cycles;
    core_bound += params.class_switch_cycles *
                  static_cast<double>(est.class_cycles.size() - 1);
    est.core_bound_cycles = core_bound;

    // 2. Shared on-chip read bandwidth.
    est.onchip_bound_cycles = total_reads / params.global_read_ports;

    // 3. Off-chip transfers for the window's initial halo and result.
    est.offchip_bound_cycles =
        offchip_elems_per_window * params.offchip_write_cost / offchip_elems_per_cycle;

    est.cycles_per_window = std::max(
        {est.core_bound_cycles, est.onchip_bound_cycles, est.offchip_bound_cycles});
    est.bottleneck = est.cycles_per_window == est.core_bound_cycles ? "core"
                     : est.cycles_per_window == est.onchip_bound_cycles ? "onchip"
                                                                        : "offchip";

    const double cycles_per_frame =
        est.cycles_per_window * static_cast<double>(windows_per_frame);
    est.seconds_per_frame = cycles_per_frame / (f_max_mhz * 1e6);
    est.fps = est.seconds_per_frame > 0.0 ? 1.0 / est.seconds_per_frame : 0.0;
    return est;
}

}  // namespace islhls
