#include "estimate/area_model.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/numeric.hpp"

namespace islhls {

Area_model::Area_model(double size_reg) : size_reg_(size_reg) {
    check_internal(size_reg > 0.0, "Size_reg must be positive");
}

void Area_model::add_sample(const Area_sample& sample) {
    samples_.push_back(sample);
    calibrated_ = false;
}

void Area_model::calibrate() {
    if (samples_.size() < 2) {
        throw Dse_error("area model calibration needs at least two syntheses");
    }
    // Base = the smallest design (cheapest to synthesize, so the natural
    // anchor in practice).
    const auto base = std::min_element(
        samples_.begin(), samples_.end(),
        [](const Area_sample& a, const Area_sample& b) {
            return a.register_count < b.register_count;
        });
    base_regs_ = base->register_count;
    base_area_ = base->lut_count;

    // alpha = least squares of (A - A_base) over ((Reg - Reg_base) * Size_reg),
    // through the origin: with two samples this is the paper's direct ratio.
    std::vector<double> xs;
    std::vector<double> ys;
    for (const Area_sample& s : samples_) {
        if (s.register_count == base_regs_) continue;
        xs.push_back((s.register_count - base_regs_) * size_reg_);
        ys.push_back(s.lut_count - base_area_);
    }
    if (xs.empty()) {
        throw Dse_error("area model calibration needs two distinct register counts");
    }
    alpha_ = fit_through_origin(xs, ys);
    calibrated_ = true;
}

double Area_model::alpha() const {
    check_internal(calibrated_, "alpha() before calibrate()");
    return alpha_;
}

double Area_model::estimate(int register_count) const {
    check_internal(calibrated_, "estimate() before calibrate()");
    return base_area_ + (register_count - base_regs_) * size_reg_ * alpha_;
}

}  // namespace islhls
