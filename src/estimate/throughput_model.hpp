// Throughput estimation (Sec. 3.3 of the paper): operator delays give the
// cone latency, core counts give the parallelism, and the architecture
// template's level structure gives the number of cone executions per output
// window. Three resources can bound a design:
//
//   1. cores    — each cone execution occupies a core for the cycles it takes
//                 to stream the cone's input window through the core's ports;
//   2. on-chip  — all executions share the global BRAM read bandwidth
//                 (shallow architectures re-read intermediate results every
//                 iteration and saturate this first — the paper's
//                 memory/performance conflict);
//   3. off-chip — the initial window (with its full N-iteration halo) is
//                 fetched from external memory once per output window, and
//                 the result written back.
//
// Time per output window is the max of the three; frame time multiplies by
// the window count. Depths that do not divide N need an extra remainder
// level whose distinct cone type competes for area — the paper's
// `missing_iterations` penalty visible in Figs. 7 and 10.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace islhls {

// Tunable resource parameters (defaults calibrated against the paper's
// Virtex-6 numbers; see EXPERIMENTS.md).
struct Throughput_params {
    double core_read_ports = 8.0;        // elements/cycle into one cone core
    double global_read_ports = 32.0;     // total on-chip read elements/cycle
    double offchip_write_cost = 1.0;     // relative cost of result write-back
    // Pipeline drain + buffer turnover when a window pass hands over between
    // cone classes of different depths. Architectures whose depth divides N
    // use a single class and never pay it — the paper's "missing iterations"
    // penalty (Sec. 4.1).
    double class_switch_cycles = 120.0;
};

// One level of the architecture template, as the evaluator sees it.
struct Level_load {
    int depth = 0;                 // cone depth class used by this level
    long long executions = 0;      // cone runs needed per output window
    long long cone_inputs = 0;     // input elements per run
    int latency_cycles = 0;        // pipeline latency of the cone
};

struct Throughput_estimate {
    double cycles_per_window = 0.0;
    double core_bound_cycles = 0.0;
    double onchip_bound_cycles = 0.0;
    double offchip_bound_cycles = 0.0;
    std::string bottleneck;  // "core" | "onchip" | "offchip"
    double seconds_per_frame = 0.0;
    double fps = 0.0;
    // Occupancy cycles of each depth class (before the max over classes) —
    // what a core-allocation heuristic should grow next.
    std::map<int, double> class_cycles;
};

// Estimates the frame rate of an architecture instance.
//  `levels`            — deep-first level structure with per-level loads;
//  `cores_per_depth`   — how many cores of each depth class are instantiated;
//  `windows_per_frame` — number of output windows tiling the frame;
//  `offchip_elems_per_window` — external reads+writes per output window;
//  `f_max_mhz`         — design clock;
//  `offchip_elems_per_cycle`  — device external bandwidth.
Throughput_estimate estimate_throughput(const std::vector<Level_load>& levels,
                                        const std::map<int, int>& cores_per_depth,
                                        long long windows_per_frame,
                                        double offchip_elems_per_window,
                                        double f_max_mhz,
                                        double offchip_elems_per_cycle,
                                        const Throughput_params& params = {});

}  // namespace islhls
