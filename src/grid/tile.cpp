#include "grid/tile.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Footprint union_of(const Footprint& a, const Footprint& b) {
    return Footprint{std::max(a.left, b.left), std::max(a.right, b.right),
                     std::max(a.up, b.up), std::max(a.down, b.down)};
}

Footprint compose(const Footprint& a, const Footprint& b) {
    return Footprint{a.left + b.left, a.right + b.right, a.up + b.up, a.down + b.down};
}

Footprint repeat(const Footprint& f, int iterations) {
    check_internal(iterations >= 0, "repeat() requires iterations >= 0");
    return Footprint{f.left * iterations, f.right * iterations, f.up * iterations,
                     f.down * iterations};
}

std::string to_string(const Footprint& f) {
    return cat("{l:", f.left, " r:", f.right, " u:", f.up, " d:", f.down, "}");
}

Window input_window_for(const Window& output, const Footprint& f, int depth) {
    const Footprint total = repeat(f, depth);
    return Window{output.x0 - total.left, output.y0 - total.up,
                  output.width + total.width_growth(),
                  output.height + total.height_growth()};
}

std::string to_string(const Window& w) {
    return cat("[", w.x0, ",", w.y0, " ", w.width, "x", w.height, "]");
}

}  // namespace islhls
