// Frame generators and comparison metrics.
//
// Generators produce the synthetic workloads used by examples, tests and
// benches (the paper used camera frames; any translation-invariant content
// exercises the same code paths). Metrics quantify golden-vs-simulated and
// float-vs-fixed-point differences.
#pragma once

#include <cstdint>

#include "grid/frame.hpp"

namespace islhls {

// Horizontal linear ramp from `lo` at x=0 to `hi` at x=width-1.
Frame make_gradient(int width, int height, double lo = 0.0, double hi = 255.0);

// Checkerboard of `cell`-sized squares alternating lo/hi.
Frame make_checkerboard(int width, int height, int cell, double lo = 0.0,
                        double hi = 255.0);

// Single impulse of `amplitude` at (cx, cy) over a zero background — useful
// to observe the stencil's impulse response directly.
Frame make_impulse(int width, int height, int cx, int cy, double amplitude = 1.0);

// Uniform noise in [lo, hi), deterministic from `seed`.
Frame make_noise(int width, int height, std::uint64_t seed, double lo = 0.0,
                 double hi = 255.0);

// Synthetic "natural" image: smooth low-frequency blobs plus mild noise;
// approximates camera-frame statistics for the multimedia case studies.
Frame make_synthetic_scene(int width, int height, std::uint64_t seed);

// Largest absolute element difference; frames must have equal dimensions.
double max_abs_diff(const Frame& a, const Frame& b);

// Root of the mean squared element difference.
double rmse(const Frame& a, const Frame& b);

// Peak signal-to-noise ratio in dB for the given peak value; returns +inf
// when the frames are identical.
double psnr(const Frame& a, const Frame& b, double peak = 255.0);

// Sum of all elements (used in conservation checks).
double element_sum(const Frame& f);

}  // namespace islhls
