// 2-D frames (the matrices an ISL iterates on) and boundary handling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace islhls {

// How out-of-range reads are resolved. ISL hardware implementations pick one
// of these at the frame border; the golden model and the architecture
// simulator must agree on it for bit-exact comparison.
enum class Boundary {
    clamp,     // replicate the nearest edge element
    zero,      // read 0 outside the frame
    mirror,    // reflect across the edge (abcb|abcd|cbab style reflection)
    periodic,  // wrap around (toroidal)
};

// Returns a human-readable name ("clamp", ...).
std::string to_string(Boundary b);

// A dense row-major 2-D array of doubles.
//
// Doubles are used as the golden arithmetic; the fixed-point backend
// quantizes separately. Indexing is (x, y) with x the column (fastest
// varying) to match the image convention used in the paper.
class Frame {
public:
    Frame() = default;
    Frame(int width, int height, double fill = 0.0);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t element_count() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    // Unchecked in-range access.
    double& at(int x, int y);
    double at(int x, int y) const;

    // In-range check.
    bool contains(int x, int y) const {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    // Boundary-resolved read: any (x, y), resolved per `b`.
    double sample(int x, int y, Boundary b) const;

    // Raw storage access (row-major, row y starts at y*width).
    const std::vector<double>& data() const { return data_; }
    std::vector<double>& data() { return data_; }

    bool operator==(const Frame& other) const = default;

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<double> data_;
};

// Maps an arbitrary coordinate into [0, n) according to the boundary policy.
// For Boundary::zero the function returns -1 to signal "outside".
int resolve_coordinate(int v, int n, Boundary b);

}  // namespace islhls
