#include "grid/frame.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

std::string to_string(Boundary b) {
    switch (b) {
        case Boundary::clamp: return "clamp";
        case Boundary::zero: return "zero";
        case Boundary::mirror: return "mirror";
        case Boundary::periodic: return "periodic";
    }
    return "?";
}

Frame::Frame(int width, int height, double fill)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
    check_internal(width >= 0 && height >= 0, "Frame dimensions must be non-negative");
}

double& Frame::at(int x, int y) {
    check_internal(contains(x, y), cat("Frame::at out of range (", x, ",", y, ") in ",
                                       width_, "x", height_));
    return data_[static_cast<std::size_t>(y) * width_ + x];
}

double Frame::at(int x, int y) const {
    check_internal(contains(x, y), cat("Frame::at out of range (", x, ",", y, ") in ",
                                       width_, "x", height_));
    return data_[static_cast<std::size_t>(y) * width_ + x];
}

double Frame::sample(int x, int y, Boundary b) const {
    const int rx = resolve_coordinate(x, width_, b);
    const int ry = resolve_coordinate(y, height_, b);
    if (rx < 0 || ry < 0) return 0.0;  // Boundary::zero outside
    return data_[static_cast<std::size_t>(ry) * width_ + rx];
}

int resolve_coordinate(int v, int n, Boundary b) {
    check_internal(n > 0, "resolve_coordinate on empty axis");
    if (v >= 0 && v < n) return v;
    switch (b) {
        case Boundary::clamp:
            return v < 0 ? 0 : n - 1;
        case Boundary::zero:
            return -1;
        case Boundary::mirror: {
            // Reflect without repeating the edge element: for n==1 everything
            // maps to 0. Period of the reflected sequence is 2n-2.
            if (n == 1) return 0;
            const int period = 2 * n - 2;
            int m = v % period;
            if (m < 0) m += period;
            return m < n ? m : period - m;
        }
        case Boundary::periodic: {
            int m = v % n;
            if (m < 0) m += n;
            return m;
        }
    }
    return -1;
}

}  // namespace islhls
