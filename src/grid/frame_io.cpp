#include "grid/frame_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

void save_pgm(const Frame& frame, const std::string& path, int maxval) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw Io_error(cat("cannot open '", path, "' for writing"));
    write_pgm(frame, os, maxval);
    if (!os) throw Io_error(cat("write failed for '", path, "'"));
}

void write_pgm(const Frame& frame, std::ostream& os, int maxval) {
    check_internal(maxval >= 1 && maxval <= 255, "write_pgm supports maxval 1..255");
    os << "P5\n" << frame.width() << ' ' << frame.height() << '\n' << maxval << '\n';
    for (int y = 0; y < frame.height(); ++y) {
        for (int x = 0; x < frame.width(); ++x) {
            double v = std::round(frame.at(x, y));
            v = std::min(static_cast<double>(maxval), std::max(0.0, v));
            const char byte = static_cast<char>(static_cast<unsigned char>(v));
            os.write(&byte, 1);
        }
    }
}

Frame load_pgm(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw Io_error(cat("cannot open '", path, "' for reading"));
    return read_pgm(is);
}

namespace {
// Reads the next header token, skipping whitespace and '#' comments.
std::string next_token(std::istream& is) {
    std::string tok;
    int c = is.get();
    while (c != EOF) {
        if (c == '#') {
            while (c != EOF && c != '\n') c = is.get();
        } else if (std::isspace(c)) {
            c = is.get();
        } else {
            break;
        }
    }
    while (c != EOF && !std::isspace(c)) {
        tok.push_back(static_cast<char>(c));
        c = is.get();
    }
    return tok;
}

int next_int(std::istream& is, const char* what) {
    const std::string tok = next_token(is);
    if (tok.empty()) throw Io_error(cat("PGM: missing ", what));
    try {
        return std::stoi(tok);
    } catch (const std::exception&) {
        throw Io_error(cat("PGM: bad ", what, " '", tok, "'"));
    }
}
}  // namespace

Frame read_pgm(std::istream& is) {
    const std::string magic = next_token(is);
    if (magic != "P5" && magic != "P2") {
        throw Io_error(cat("PGM: unsupported magic '", magic, "'"));
    }
    const int width = next_int(is, "width");
    const int height = next_int(is, "height");
    const int maxval = next_int(is, "maxval");
    if (width <= 0 || height <= 0 || maxval <= 0 || maxval > 255) {
        throw Io_error("PGM: bad dimensions or maxval");
    }
    Frame frame(width, height);
    if (magic == "P2") {
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) frame.at(x, y) = next_int(is, "pixel");
        }
    } else {
        // next_token consumed exactly the single whitespace byte after the
        // maxval token, so the stream already points at the binary payload.
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                char byte = 0;
                if (!is.read(&byte, 1)) throw Io_error("PGM: truncated pixel data");
                frame.at(x, y) = static_cast<unsigned char>(byte);
            }
        }
    }
    return frame;
}

}  // namespace islhls
