// PGM (portable graymap) I/O for frames.
//
// PGM is enough to move test images in and out of the flow without external
// dependencies. Values are clipped to [0, maxval] and rounded on save.
#pragma once

#include <iosfwd>
#include <string>

#include "grid/frame.hpp"

namespace islhls {

// Writes binary PGM (P5). Throws Io_error on stream failure.
void save_pgm(const Frame& frame, const std::string& path, int maxval = 255);
void write_pgm(const Frame& frame, std::ostream& os, int maxval = 255);

// Reads binary (P5) or ASCII (P2) PGM. Throws Io_error on malformed input.
Frame load_pgm(const std::string& path);
Frame read_pgm(std::istream& is);

}  // namespace islhls
