// Geometry helpers for stencil dependency footprints, windows and halos.
//
// A `Footprint` records how far a stencil reaches in each direction from the
// element it computes; composing footprints across iterations (Minkowski sum)
// gives the input halo a cone of a given depth needs — the quantity that
// drives on-chip memory in the paper's architecture template (Sec. 3.1).
#pragma once

#include <string>

namespace islhls {

// Per-direction dependency extents, all non-negative.
// A 3x3 kernel has {left:1, right:1, up:1, down:1}; Chambolle's divergence
// term reads p1[x-1] giving an asymmetric footprint.
struct Footprint {
    int left = 0;
    int right = 0;
    int up = 0;
    int down = 0;

    // Horizontal / vertical span in elements added around a point.
    int width_growth() const { return left + right; }
    int height_growth() const { return up + down; }

    bool operator==(const Footprint&) const = default;
};

// Smallest footprint covering both arguments.
Footprint union_of(const Footprint& a, const Footprint& b);

// Footprint of applying `a` then `b` (dependency composition = Minkowski sum).
Footprint compose(const Footprint& a, const Footprint& b);

// Footprint of `iterations` repeated applications of `f`.
Footprint repeat(const Footprint& f, int iterations);

std::string to_string(const Footprint& f);

// An axis-aligned window of elements: x in [x0, x0+width), y likewise.
struct Window {
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;

    long long element_count() const {
        return static_cast<long long>(width) * height;
    }
    bool operator==(const Window&) const = default;
};

// Input window needed to produce `output` through a stencil with footprint
// `f` applied `depth` times: the output window expanded by the repeated
// footprint.
Window input_window_for(const Window& output, const Footprint& f, int depth);

std::string to_string(const Window& w);

}  // namespace islhls
