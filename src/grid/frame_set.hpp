// Named collections of equally-sized frames.
//
// An ISL state can span several fields (Chambolle advances the dual fields
// p1 and p2 and additionally reads the constant input image g). A Frame_set
// holds one Frame per field name, all with identical dimensions.
//
// Field names are interned into process-wide Field_ids so per-call lookups
// compare integers instead of strings: hot callers (the execution engine's
// per-iteration rebinding, the ghost goldens' pad/crop loops) resolve a name
// once with intern_field() and then use the id or positional accessors.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "grid/frame.hpp"

namespace islhls {

// A process-wide interned field name. Equal names always intern to the same
// id, so id equality == name equality.
using Field_id = int;

// Returns the id of `name`, creating one on first use. Thread-safe;
// lookups of already-interned names take a shared lock only.
Field_id intern_field(const std::string& name);

// Lookup without interning: the id of `name`, or -1 when no Frame_set has
// ever used it. Keeps negative queries (has_field on arbitrary names)
// side-effect free — probing never grows the registry.
Field_id find_field_id(const std::string& name);

// The name behind an id; throws on an id intern_field never returned.
const std::string& field_name(Field_id id);

class Frame_set {
public:
    Frame_set() = default;
    Frame_set(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t field_count() const { return names_.size(); }

    // Adds a zero-filled field; throws if the name already exists.
    Frame& add_field(const std::string& name);
    // Adds a field initialized from `frame`; dimensions must match.
    Frame& add_field(const std::string& name, Frame frame);
    Frame& add_field(Field_id id, Frame frame);

    bool has_field(const std::string& name) const;
    bool has_field(Field_id id) const { return index_of(id) >= 0; }
    Frame& field(const std::string& name);
    const Frame& field(const std::string& name) const;
    Frame& field(Field_id id);
    const Frame& field(Field_id id) const;

    // Positional access (insertion order) for callers iterating every field.
    Field_id id_at(std::size_t i) const { return ids_[i]; }
    Frame& frame_at(std::size_t i) { return frames_[i]; }
    const Frame& frame_at(std::size_t i) const { return frames_[i]; }

    // Position of an interned field within this set; -1 when absent.
    int index_of(Field_id id) const;

    // Field names in insertion order (deterministic iteration).
    const std::vector<std::string>& names() const { return names_; }
    // Interned ids parallel to names().
    const std::vector<Field_id>& ids() const { return ids_; }

    bool operator==(const Frame_set& other) const {
        // ids_ is derived from names_, so it carries no extra information.
        return width_ == other.width_ && height_ == other.height_ &&
               names_ == other.names_ && frames_ == other.frames_;
    }

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::string> names_;
    std::vector<Field_id> ids_;  // parallel to names_
    // deque: references returned by add_field()/field() stay valid when more
    // fields are added later (vector reallocation would dangle them).
    std::deque<Frame> frames_;
};

}  // namespace islhls
