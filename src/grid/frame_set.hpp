// Named collections of equally-sized frames.
//
// An ISL state can span several fields (Chambolle advances the dual fields
// p1 and p2 and additionally reads the constant input image g). A Frame_set
// holds one Frame per field name, all with identical dimensions.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "grid/frame.hpp"

namespace islhls {

class Frame_set {
public:
    Frame_set() = default;
    Frame_set(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t field_count() const { return names_.size(); }

    // Adds a zero-filled field; throws if the name already exists.
    Frame& add_field(const std::string& name);
    // Adds a field initialized from `frame`; dimensions must match.
    Frame& add_field(const std::string& name, Frame frame);

    bool has_field(const std::string& name) const;
    Frame& field(const std::string& name);
    const Frame& field(const std::string& name) const;

    // Field names in insertion order (deterministic iteration).
    const std::vector<std::string>& names() const { return names_; }

    bool operator==(const Frame_set&) const = default;

private:
    int index_of(const std::string& name) const;  // -1 when absent

    int width_ = 0;
    int height_ = 0;
    std::vector<std::string> names_;
    // deque: references returned by add_field()/field() stay valid when more
    // fields are added later (vector reallocation would dangle them).
    std::deque<Frame> frames_;
};

}  // namespace islhls
