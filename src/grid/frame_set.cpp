#include "grid/frame_set.hpp"

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Frame_set::Frame_set(int width, int height) : width_(width), height_(height) {
    check_internal(width >= 0 && height >= 0, "Frame_set dimensions must be non-negative");
}

int Frame_set::index_of(const std::string& name) const {
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name) return static_cast<int>(i);
    }
    return -1;
}

Frame& Frame_set::add_field(const std::string& name) {
    return add_field(name, Frame(width_, height_));
}

Frame& Frame_set::add_field(const std::string& name, Frame frame) {
    if (index_of(name) >= 0) throw Error(cat("duplicate field '", name, "'"));
    if (frame.width() != width_ || frame.height() != height_) {
        throw Error(cat("field '", name, "' has size ", frame.width(), "x",
                        frame.height(), ", expected ", width_, "x", height_));
    }
    names_.push_back(name);
    frames_.push_back(std::move(frame));
    return frames_.back();
}

bool Frame_set::has_field(const std::string& name) const { return index_of(name) >= 0; }

Frame& Frame_set::field(const std::string& name) {
    const int i = index_of(name);
    if (i < 0) throw Error(cat("unknown field '", name, "'"));
    return frames_[static_cast<std::size_t>(i)];
}

const Frame& Frame_set::field(const std::string& name) const {
    const int i = index_of(name);
    if (i < 0) throw Error(cat("unknown field '", name, "'"));
    return frames_[static_cast<std::size_t>(i)];
}

}  // namespace islhls
