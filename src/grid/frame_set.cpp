#include "grid/frame_set.hpp"

#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

// The process-wide name <-> id registry. Reads (the common case once a name
// has been seen anywhere) take the shared lock; only a first-ever intern of
// a name upgrades to exclusive. `names` is a deque so the references
// field_name() hands out survive later interns.
struct Field_registry {
    std::shared_mutex mutex;
    std::unordered_map<std::string, Field_id> ids;
    std::deque<std::string> names;
};

Field_registry& registry() {
    static Field_registry r;
    return r;
}

}  // namespace

Field_id intern_field(const std::string& name) {
    Field_registry& r = registry();
    {
        const std::shared_lock<std::shared_mutex> lock(r.mutex);
        const auto it = r.ids.find(name);
        if (it != r.ids.end()) return it->second;
    }
    const std::unique_lock<std::shared_mutex> lock(r.mutex);
    const auto [it, inserted] = r.ids.emplace(name, static_cast<Field_id>(r.names.size()));
    if (inserted) r.names.push_back(name);
    return it->second;
}

Field_id find_field_id(const std::string& name) {
    Field_registry& r = registry();
    const std::shared_lock<std::shared_mutex> lock(r.mutex);
    const auto it = r.ids.find(name);
    return it != r.ids.end() ? it->second : -1;
}

const std::string& field_name(Field_id id) {
    Field_registry& r = registry();
    const std::shared_lock<std::shared_mutex> lock(r.mutex);
    check_internal(id >= 0 && static_cast<std::size_t>(id) < r.names.size(),
                   cat("field_name of uninterned id ", id));
    return r.names[static_cast<std::size_t>(id)];
}

Frame_set::Frame_set(int width, int height) : width_(width), height_(height) {
    check_internal(width >= 0 && height >= 0, "Frame_set dimensions must be non-negative");
}

int Frame_set::index_of(Field_id id) const {
    for (std::size_t i = 0; i < ids_.size(); ++i) {
        if (ids_[i] == id) return static_cast<int>(i);
    }
    return -1;
}

Frame& Frame_set::add_field(const std::string& name) {
    return add_field(intern_field(name), Frame(width_, height_));
}

Frame& Frame_set::add_field(const std::string& name, Frame frame) {
    return add_field(intern_field(name), std::move(frame));
}

Frame& Frame_set::add_field(Field_id id, Frame frame) {
    if (index_of(id) >= 0) throw Error(cat("duplicate field '", field_name(id), "'"));
    if (frame.width() != width_ || frame.height() != height_) {
        throw Error(cat("field '", field_name(id), "' has size ", frame.width(), "x",
                        frame.height(), ", expected ", width_, "x", height_));
    }
    names_.push_back(field_name(id));
    ids_.push_back(id);
    frames_.push_back(std::move(frame));
    return frames_.back();
}

bool Frame_set::has_field(const std::string& name) const {
    const Field_id id = find_field_id(name);
    return id >= 0 && index_of(id) >= 0;
}

Frame& Frame_set::field(const std::string& name) {
    return const_cast<Frame&>(std::as_const(*this).field(name));
}

const Frame& Frame_set::field(const std::string& name) const {
    const Field_id id = find_field_id(name);
    const int i = id >= 0 ? index_of(id) : -1;
    if (i < 0) throw Error(cat("unknown field '", name, "'"));
    return frames_[static_cast<std::size_t>(i)];
}

Frame& Frame_set::field(Field_id id) {
    const int i = index_of(id);
    if (i < 0) throw Error(cat("unknown field '", field_name(id), "'"));
    return frames_[static_cast<std::size_t>(i)];
}

const Frame& Frame_set::field(Field_id id) const {
    const int i = index_of(id);
    if (i < 0) throw Error(cat("unknown field '", field_name(id), "'"));
    return frames_[static_cast<std::size_t>(i)];
}

}  // namespace islhls
