#include "grid/frame_ops.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/prng.hpp"

namespace islhls {

Frame make_gradient(int width, int height, double lo, double hi) {
    Frame f(width, height);
    const double step = width > 1 ? (hi - lo) / (width - 1) : 0.0;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) f.at(x, y) = lo + step * x;
    }
    return f;
}

Frame make_checkerboard(int width, int height, int cell, double lo, double hi) {
    check_internal(cell >= 1, "checkerboard cell must be >= 1");
    Frame f(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const bool odd = ((x / cell) + (y / cell)) % 2 != 0;
            f.at(x, y) = odd ? hi : lo;
        }
    }
    return f;
}

Frame make_impulse(int width, int height, int cx, int cy, double amplitude) {
    Frame f(width, height);
    f.at(cx, cy) = amplitude;
    return f;
}

Frame make_noise(int width, int height, std::uint64_t seed, double lo, double hi) {
    Frame f(width, height);
    Prng rng(seed);
    for (double& v : f.data()) v = rng.next_in(lo, hi);
    return f;
}

Frame make_synthetic_scene(int width, int height, std::uint64_t seed) {
    Frame f(width, height, 64.0);
    Prng rng(seed);
    // A handful of smooth Gaussian blobs...
    const int blob_count = 6;
    for (int b = 0; b < blob_count; ++b) {
        const double cx = rng.next_in(0.0, width);
        const double cy = rng.next_in(0.0, height);
        const double sigma = rng.next_in(width / 16.0 + 1.0, width / 4.0 + 2.0);
        const double amp = rng.next_in(30.0, 120.0);
        for (int y = 0; y < height; ++y) {
            for (int x = 0; x < width; ++x) {
                const double dx = x - cx;
                const double dy = y - cy;
                f.at(x, y) += amp * std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
            }
        }
    }
    // ...plus mild sensor-like noise, clipped to the 8-bit range.
    for (double& v : f.data()) {
        v += rng.next_gaussian() * 2.0;
        v = std::min(255.0, std::max(0.0, v));
    }
    return f;
}

namespace {
void require_same_size(const Frame& a, const Frame& b) {
    check_internal(a.width() == b.width() && a.height() == b.height(),
                   "frame metric requires equal dimensions");
}
}  // namespace

double max_abs_diff(const Frame& a, const Frame& b) {
    require_same_size(a, b);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        worst = std::max(worst, std::fabs(a.data()[i] - b.data()[i]));
    }
    return worst;
}

double rmse(const Frame& a, const Frame& b) {
    require_same_size(a, b);
    if (a.data().empty()) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        const double d = a.data()[i] - b.data()[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.data().size()));
}

double psnr(const Frame& a, const Frame& b, double peak) {
    const double e = rmse(a, b);
    if (e == 0.0) return std::numeric_limits<double>::infinity();
    return 20.0 * std::log10(peak / e);
}

double element_sum(const Frame& f) {
    double acc = 0.0;
    for (double v : f.data()) acc += v;
    return acc;
}

}  // namespace islhls
