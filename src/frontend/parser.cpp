#include "frontend/parser.hpp"

#include <cmath>

#include "frontend/lexer.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Translation_unit_ast parse_unit() {
        Translation_unit_ast unit;
        while (!peek().is(Token_kind::end_of_input)) {
            unit.functions.push_back(parse_function());
        }
        if (unit.functions.empty()) fail("no function definition found");
        return unit;
    }

private:
    // --- token helpers -------------------------------------------------------
    const Token& peek(int ahead = 0) const {
        const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
        return p < tokens_.size() ? tokens_[p] : tokens_.back();
    }
    const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

    [[noreturn]] void fail(const std::string& what) const {
        const Token& t = peek();
        throw Parse_error(cat(what, " (got '", t.text.empty() ? "<eof>" : t.text, "')"),
                          t.loc.line, t.loc.column);
    }

    bool match(Token_kind k, const std::string& text) {
        if (peek().is(k, text)) {
            advance();
            return true;
        }
        return false;
    }

    void expect(Token_kind k, const std::string& text) {
        if (!match(k, text)) fail(cat("expected '", text, "'"));
    }

    std::string expect_identifier(const char* what) {
        if (!peek().is(Token_kind::identifier)) fail(cat("expected ", what));
        return advance().text;
    }

    bool peek_type(int ahead = 0) const {
        const Token& t = peek(ahead);
        return t.is(Token_kind::keyword, "int") || t.is(Token_kind::keyword, "float") ||
               t.is(Token_kind::keyword, "double") || t.is(Token_kind::keyword, "void");
    }

    // --- declarations --------------------------------------------------------
    Function_ast parse_function() {
        Function_ast fn;
        fn.loc = peek().loc;
        if (!peek_type()) fail("expected return type");
        fn.return_type = advance().text;
        fn.name = expect_identifier("function name");
        expect(Token_kind::punctuation, "(");
        if (!peek().is(Token_kind::punctuation, ")")) {
            fn.params.push_back(parse_param());
            while (match(Token_kind::punctuation, ",")) fn.params.push_back(parse_param());
        }
        expect(Token_kind::punctuation, ")");
        fn.body = parse_block();
        return fn;
    }

    Param_ast parse_param() {
        Param_ast p;
        p.loc = peek().loc;
        p.is_const = match(Token_kind::keyword, "const");
        if (!peek_type()) fail("expected parameter type");
        p.type_name = advance().text;
        if (p.type_name == "void") fail("parameter cannot be void");
        p.name = expect_identifier("parameter name");
        while (match(Token_kind::punctuation, "[")) {
            const Token& dim = peek();
            if (dim.is(Token_kind::identifier) || dim.is(Token_kind::number)) {
                p.dims.push_back(advance().text);
            } else {
                fail("expected array dimension");
            }
            expect(Token_kind::punctuation, "]");
        }
        return p;
    }

    // --- statements ----------------------------------------------------------
    Stmt_ast_ptr parse_block() {
        auto block = std::make_unique<Stmt_ast>();
        block->kind = Stmt_ast_kind::block;
        block->loc = peek().loc;
        expect(Token_kind::punctuation, "{");
        while (!peek().is(Token_kind::punctuation, "}")) {
            if (peek().is(Token_kind::end_of_input)) fail("unterminated block");
            block->stmts.push_back(parse_statement());
        }
        expect(Token_kind::punctuation, "}");
        return block;
    }

    Stmt_ast_ptr parse_statement() {
        const Token& t = peek();
        if (t.is(Token_kind::punctuation, "{")) return parse_block();
        if (t.is(Token_kind::keyword, "for")) return parse_for();
        if (t.is(Token_kind::keyword, "if")) return parse_if();
        if (t.is(Token_kind::keyword, "while") || t.is(Token_kind::keyword, "do")) {
            fail("while/do loops are not supported; use canonical for loops");
        }
        if (t.is(Token_kind::keyword, "return")) {
            fail("return statements are not supported in void kernels");
        }
        if (t.is(Token_kind::keyword, "const") || peek_type()) {
            auto decl = parse_decl();
            expect(Token_kind::punctuation, ";");
            return decl;
        }
        auto assign = parse_assign();
        expect(Token_kind::punctuation, ";");
        return assign;
    }

    Stmt_ast_ptr parse_decl() {
        auto stmt = std::make_unique<Stmt_ast>();
        stmt->kind = Stmt_ast_kind::decl;
        stmt->loc = peek().loc;
        stmt->is_const = match(Token_kind::keyword, "const");
        if (!peek_type()) fail("expected type in declaration");
        stmt->type_name = advance().text;
        if (stmt->type_name == "void") fail("cannot declare a void variable");
        stmt->name = expect_identifier("variable name");
        while (match(Token_kind::punctuation, "[")) {
            const Token& dim = peek();
            if (!dim.is(Token_kind::number) || !dim.is_integer) {
                fail("local array dimensions must be integer literals");
            }
            stmt->array_dims.push_back(static_cast<int>(advance().number_value));
            expect(Token_kind::punctuation, "]");
        }
        if (match(Token_kind::op, "=")) {
            if (peek().is(Token_kind::punctuation, "{")) {
                parse_init_list(*stmt);
            } else {
                stmt->init = parse_expr();
            }
        }
        return stmt;
    }

    // Flattens nested brace initializers (row-major, matching C layout).
    void parse_init_list(Stmt_ast& decl) {
        expect(Token_kind::punctuation, "{");
        while (!peek().is(Token_kind::punctuation, "}")) {
            if (peek().is(Token_kind::punctuation, "{")) {
                // Nested braces: recurse by reusing the same flat list.
                parse_init_list(decl);
            } else {
                decl.init_list.push_back(parse_expr());
            }
            if (!match(Token_kind::punctuation, ",")) break;
        }
        expect(Token_kind::punctuation, "}");
    }

    Stmt_ast_ptr parse_assign() {
        auto stmt = std::make_unique<Stmt_ast>();
        stmt->kind = Stmt_ast_kind::assign;
        stmt->loc = peek().loc;
        // Prefix increment/decrement.
        if (peek().is(Token_kind::op, "++") || peek().is(Token_kind::op, "--")) {
            const std::string op = advance().text;
            stmt->target = parse_postfix();
            stmt->assign_op = op == "++" ? "+=" : "-=";
            stmt->value = make_number(1.0, stmt->loc);
            return stmt;
        }
        stmt->target = parse_postfix();
        if (stmt->target->kind != Expr_ast_kind::var &&
            stmt->target->kind != Expr_ast_kind::array_access) {
            fail("assignment target must be a variable or array element");
        }
        const Token& t = peek();
        if (t.is(Token_kind::op, "++") || t.is(Token_kind::op, "--")) {
            stmt->assign_op = advance().text == "++" ? "+=" : "-=";
            stmt->value = make_number(1.0, stmt->loc);
            return stmt;
        }
        if (t.is(Token_kind::op, "=") || t.is(Token_kind::op, "+=") ||
            t.is(Token_kind::op, "-=") || t.is(Token_kind::op, "*=") ||
            t.is(Token_kind::op, "/=")) {
            stmt->assign_op = advance().text;
            stmt->value = parse_expr();
            return stmt;
        }
        fail("expected assignment operator");
    }

    Stmt_ast_ptr parse_for() {
        auto stmt = std::make_unique<Stmt_ast>();
        stmt->kind = Stmt_ast_kind::for_loop;
        stmt->loc = peek().loc;
        expect(Token_kind::keyword, "for");
        expect(Token_kind::punctuation, "(");
        if (!peek().is(Token_kind::punctuation, ";")) {
            if (peek().is(Token_kind::keyword, "const") || peek_type()) {
                stmt->for_init = parse_decl();
            } else {
                stmt->for_init = parse_assign();
            }
        }
        expect(Token_kind::punctuation, ";");
        if (!peek().is(Token_kind::punctuation, ";")) stmt->cond = parse_expr();
        expect(Token_kind::punctuation, ";");
        if (!peek().is(Token_kind::punctuation, ")")) stmt->for_step = parse_assign();
        expect(Token_kind::punctuation, ")");
        stmt->body = parse_statement();
        return stmt;
    }

    Stmt_ast_ptr parse_if() {
        auto stmt = std::make_unique<Stmt_ast>();
        stmt->kind = Stmt_ast_kind::if_stmt;
        stmt->loc = peek().loc;
        expect(Token_kind::keyword, "if");
        expect(Token_kind::punctuation, "(");
        stmt->cond = parse_expr();
        expect(Token_kind::punctuation, ")");
        stmt->body = parse_statement();
        if (match(Token_kind::keyword, "else")) stmt->else_body = parse_statement();
        return stmt;
    }

    // --- expressions -----------------------------------------------------------
    static Expr_ast_ptr make_number(double v, Source_loc loc) {
        auto e = std::make_unique<Expr_ast>();
        e->kind = Expr_ast_kind::number;
        e->number = v;
        e->is_integer = std::floor(v) == v;
        e->loc = loc;
        return e;
    }

    Expr_ast_ptr make_binary(const std::string& op, Expr_ast_ptr lhs, Expr_ast_ptr rhs) {
        auto e = std::make_unique<Expr_ast>();
        e->kind = Expr_ast_kind::binary;
        e->loc = lhs->loc;
        e->op = op;
        e->args.push_back(std::move(lhs));
        e->args.push_back(std::move(rhs));
        return e;
    }

    Expr_ast_ptr parse_expr() { return parse_ternary(); }

    Expr_ast_ptr parse_ternary() {
        Expr_ast_ptr cond = parse_logical_or();
        if (!peek().is(Token_kind::op, "?")) return cond;
        advance();
        Expr_ast_ptr then_e = parse_expr();
        expect(Token_kind::op, ":");
        Expr_ast_ptr else_e = parse_ternary();
        auto e = std::make_unique<Expr_ast>();
        e->kind = Expr_ast_kind::ternary;
        e->loc = cond->loc;
        e->args.push_back(std::move(cond));
        e->args.push_back(std::move(then_e));
        e->args.push_back(std::move(else_e));
        return e;
    }

    Expr_ast_ptr parse_logical_or() {
        Expr_ast_ptr lhs = parse_logical_and();
        while (peek().is(Token_kind::op, "||")) {
            advance();
            lhs = make_binary("||", std::move(lhs), parse_logical_and());
        }
        return lhs;
    }

    Expr_ast_ptr parse_logical_and() {
        Expr_ast_ptr lhs = parse_equality();
        while (peek().is(Token_kind::op, "&&")) {
            advance();
            lhs = make_binary("&&", std::move(lhs), parse_equality());
        }
        return lhs;
    }

    Expr_ast_ptr parse_equality() {
        Expr_ast_ptr lhs = parse_relational();
        while (peek().is(Token_kind::op, "==") || peek().is(Token_kind::op, "!=")) {
            const std::string op = advance().text;
            lhs = make_binary(op, std::move(lhs), parse_relational());
        }
        return lhs;
    }

    Expr_ast_ptr parse_relational() {
        Expr_ast_ptr lhs = parse_additive();
        while (peek().is(Token_kind::op, "<") || peek().is(Token_kind::op, "<=") ||
               peek().is(Token_kind::op, ">") || peek().is(Token_kind::op, ">=")) {
            const std::string op = advance().text;
            lhs = make_binary(op, std::move(lhs), parse_additive());
        }
        return lhs;
    }

    Expr_ast_ptr parse_additive() {
        Expr_ast_ptr lhs = parse_multiplicative();
        while (peek().is(Token_kind::op, "+") || peek().is(Token_kind::op, "-")) {
            const std::string op = advance().text;
            lhs = make_binary(op, std::move(lhs), parse_multiplicative());
        }
        return lhs;
    }

    Expr_ast_ptr parse_multiplicative() {
        Expr_ast_ptr lhs = parse_unary();
        while (peek().is(Token_kind::op, "*") || peek().is(Token_kind::op, "/") ||
               peek().is(Token_kind::op, "%")) {
            const std::string op = advance().text;
            lhs = make_binary(op, std::move(lhs), parse_unary());
        }
        return lhs;
    }

    Expr_ast_ptr parse_unary() {
        const Token& t = peek();
        if (t.is(Token_kind::op, "-") || t.is(Token_kind::op, "+") ||
            t.is(Token_kind::op, "!")) {
            const std::string op = advance().text;
            auto e = std::make_unique<Expr_ast>();
            e->kind = Expr_ast_kind::unary;
            e->loc = t.loc;
            e->op = op;
            e->args.push_back(parse_unary());
            return e;
        }
        return parse_postfix();
    }

    Expr_ast_ptr parse_postfix() {
        Expr_ast_ptr base = parse_primary();
        if (!peek().is(Token_kind::punctuation, "[")) return base;
        if (base->kind != Expr_ast_kind::var) fail("only identifiers can be subscripted");
        auto access = std::make_unique<Expr_ast>();
        access->kind = Expr_ast_kind::array_access;
        access->loc = base->loc;
        access->name = base->name;
        while (match(Token_kind::punctuation, "[")) {
            access->args.push_back(parse_expr());
            expect(Token_kind::punctuation, "]");
        }
        return access;
    }

    Expr_ast_ptr parse_primary() {
        const Token& t = peek();
        if (t.is(Token_kind::number)) {
            const Token& num = advance();
            auto e = make_number(num.number_value, num.loc);
            e->is_integer = num.is_integer;
            return e;
        }
        if (t.is(Token_kind::punctuation, "(")) {
            advance();
            Expr_ast_ptr inner = parse_expr();
            expect(Token_kind::punctuation, ")");
            return inner;
        }
        if (t.is(Token_kind::identifier)) {
            const std::string name = advance().text;
            if (peek().is(Token_kind::punctuation, "(")) {
                advance();
                auto call = std::make_unique<Expr_ast>();
                call->kind = Expr_ast_kind::call;
                call->loc = t.loc;
                call->name = name;
                if (!peek().is(Token_kind::punctuation, ")")) {
                    call->args.push_back(parse_expr());
                    while (match(Token_kind::punctuation, ",")) {
                        call->args.push_back(parse_expr());
                    }
                }
                expect(Token_kind::punctuation, ")");
                return call;
            }
            auto var = std::make_unique<Expr_ast>();
            var->kind = Expr_ast_kind::var;
            var->loc = t.loc;
            var->name = name;
            return var;
        }
        fail("expected expression");
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Translation_unit_ast parse_translation_unit(const std::string& source) {
    return Parser(tokenize(source)).parse_unit();
}

Function_ast parse_single_function(const std::string& source) {
    Translation_unit_ast unit = parse_translation_unit(source);
    if (unit.functions.size() != 1) {
        throw Parse_error(cat("expected exactly one function, found ",
                              unit.functions.size()),
                          1, 1);
    }
    return std::move(unit.functions.front());
}

}  // namespace islhls
