// Abstract syntax tree for the C-subset kernel language.
//
// Nodes are tagged unions (one struct per syntactic class with a kind tag);
// ownership is by unique_ptr down the tree. The AST is deliberately close to
// the source: semantic interpretation happens in sema / symexec.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/token.hpp"

namespace islhls {

struct Expr_ast;
using Expr_ast_ptr = std::unique_ptr<Expr_ast>;

enum class Expr_ast_kind {
    number,        // literal
    var,           // identifier
    array_access,  // base[i0][i1]... — `args` holds the index expressions
    call,          // name(arg, ...)
    unary,         // op operand (`-`, `+`, `!`)
    binary,        // operand op operand
    ternary,       // cond ? a : b — args = {cond, a, b}
};

struct Expr_ast {
    Expr_ast_kind kind = Expr_ast_kind::number;
    Source_loc loc;
    double number = 0.0;     // number
    bool is_integer = false; // number: literal was integral
    std::string name;        // var / call / array base
    std::string op;          // unary / binary operator spelling
    std::vector<Expr_ast_ptr> args;
};

struct Stmt_ast;
using Stmt_ast_ptr = std::unique_ptr<Stmt_ast>;

enum class Stmt_ast_kind {
    decl,      // [const] type name [dims] [= init | = {init_list}]
    assign,    // target (=|+=|-=|*=|/=) value;  also covers ++/--
    for_loop,  // for (init; cond; step) body
    if_stmt,   // if (cond) body [else else_body]
    block,     // { stmts }
};

struct Stmt_ast {
    Stmt_ast_kind kind = Stmt_ast_kind::block;
    Source_loc loc;

    // decl
    std::string type_name;   // "int" | "float" | "double"
    bool is_const = false;
    std::string name;
    std::vector<int> array_dims;          // empty for scalars
    std::vector<Expr_ast_ptr> init_list;  // flattened brace initializer
    Expr_ast_ptr init;                    // scalar initializer

    // assign
    Expr_ast_ptr target;  // var or array_access
    std::string assign_op;
    Expr_ast_ptr value;

    // for / if
    Stmt_ast_ptr for_init;  // decl or assign
    Expr_ast_ptr cond;
    Stmt_ast_ptr for_step;  // assign
    Stmt_ast_ptr body;
    Stmt_ast_ptr else_body;

    // block
    std::vector<Stmt_ast_ptr> stmts;
};

// One function parameter: `[const] float name[dim0][dim1]` or a scalar.
struct Param_ast {
    bool is_const = false;
    std::string type_name;
    std::string name;
    std::vector<std::string> dims;  // dimension spellings (identifier or number)
    Source_loc loc;
};

struct Function_ast {
    std::string return_type;  // must be "void" for kernels
    std::string name;
    std::vector<Param_ast> params;
    Stmt_ast_ptr body;  // block
    Source_loc loc;
};

struct Translation_unit_ast {
    std::vector<Function_ast> functions;
};

}  // namespace islhls
