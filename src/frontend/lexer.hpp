// Lexer for the C-subset kernel language.
//
// Handles identifiers, integer/float literals (with exponents and f-suffix),
// all operators/punctuation used by the grammar, // and /* */ comments, and a
// one-line `#define NAME literal` preprocessor subset (each use of NAME is
// replaced by the literal token).
#pragma once

#include <string>
#include <vector>

#include "frontend/token.hpp"

namespace islhls {

// Tokenizes the entire source; the last token is always end_of_input.
// Throws Parse_error on malformed input.
std::vector<Token> tokenize(const std::string& source);

}  // namespace islhls
