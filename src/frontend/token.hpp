// Token definitions for the C-subset frontend.
#pragma once

#include <string>

namespace islhls {

enum class Token_kind {
    end_of_input,
    identifier,
    number,       // int or floating literal; spelled value kept in `text`
    keyword,      // void int float double const for if else return define
    punctuation,  // ( ) [ ] { } , ;
    op,           // + - * / % = += -= *= /= == != < <= > >= && || ! ? : ++ --
};

// Position within the original source, 1-based.
struct Source_loc {
    int line = 1;
    int column = 1;
};

struct Token {
    Token_kind kind = Token_kind::end_of_input;
    std::string text;
    double number_value = 0.0;   // valid when kind == number
    bool is_integer = false;     // literal had no '.', exponent or f-suffix
    Source_loc loc;

    bool is(Token_kind k) const { return kind == k; }
    bool is(Token_kind k, const std::string& t) const { return kind == k && text == t; }
};

// True for spellings treated as keywords by the lexer.
bool is_keyword(const std::string& spelling);

}  // namespace islhls
