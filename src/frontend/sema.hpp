// Semantic analysis: recognizing the canonical ISL form.
//
// The flow accepts C kernels in the shape of the paper's Algorithm 1, one
// spatial sweep of the elementary transformation t:
//
//   void step(float u_out[H][W], const float u[H][W], const float g[H][W]) {
//       const float k = 0.25f;                // optional preamble constants
//       for (int y = 0; y < H; y++) {
//           for (int x = 0; x < W; x++) {
//               u_out[y][x] = ...u[y-1][x]...g[y][x]...;
//           }
//       }
//   }
//
// Field roles are inferred from parameter names and constness:
//   - `X_out` paired with `X`  -> X is a *state field* advanced per iteration;
//   - a const array with no `_out` counterpart -> iteration-invariant field.
//
// Sema validates the shape (void return, 2-D arrays of float/double with
// consistent dimensions, a two-deep canonical spatial loop nest stepping by
// one, writes only to `X_out[row][col]` at offset zero) and hands symexec the
// kernel body plus the classification below. Offset affinity (subscripts are
// loopvar +/- constant — the translational-invariance restriction) is
// enforced during symbolic execution where indices are actually evaluated.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace islhls {

// One logical field of the ISL state.
struct Field_info {
    std::string name;       // base name as seen by reads ("u", "g")
    bool is_state = false;  // true when an `_out` counterpart exists
    std::string out_param;  // parameter receiving the next iteration (state only)
};

// Everything later stages need to know about a validated kernel.
struct Kernel_info {
    std::string kernel_name;
    // True when every field parameter is `int`: the kernel computes on whole
    // numbers only (cellular automata, counters). Integer kernels flow
    // through the same double-valued IR — every intermediate is a small
    // integer, exactly representable — but the flag lets downstream stages
    // treat the fixed-point domain as the native one (Q m.0 formats, exact
    // golden). Mixing int and float fields is rejected.
    bool integer_domain = false;
    std::vector<Field_info> fields;       // declaration order; state and const
    std::vector<std::string> dim_names;   // the two dimension spellings [rows, cols]
    std::string row_var;                  // first-subscript loop variable
    std::string col_var;                  // second-subscript loop variable

    // Non-owning pointers into the analyzed Function_ast (keep it alive).
    std::vector<const Stmt_ast*> preamble;  // const decls before/between loops
    const Stmt_ast* kernel_body = nullptr;  // innermost loop body

    // Convenience lookups.
    const Field_info* find_field(const std::string& name) const;
    std::vector<std::string> state_field_names() const;
    std::vector<std::string> const_field_names() const;
};

// Validates `fn` and extracts the kernel structure. Throws Sema_error with an
// explanatory message on any deviation from the canonical form.
Kernel_info analyze_kernel(const Function_ast& fn);

}  // namespace islhls
