#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

bool is_keyword(const std::string& spelling) {
    return spelling == "void" || spelling == "int" || spelling == "float" ||
           spelling == "double" || spelling == "const" || spelling == "for" ||
           spelling == "if" || spelling == "else" || spelling == "return" ||
           spelling == "while" || spelling == "do";
}

namespace {

class Lexer {
public:
    explicit Lexer(const std::string& source) : src_(source) {}

    std::vector<Token> run() {
        std::vector<Token> tokens;
        for (;;) {
            skip_space_and_comments();
            if (at_end()) break;
            if (peek() == '#') {
                handle_directive();
                continue;
            }
            Token t = next_token();
            // #define substitution: identifier that names a macro becomes its
            // literal replacement token (location of the use site).
            if (t.kind == Token_kind::identifier) {
                const auto it = defines_.find(t.text);
                if (it != defines_.end()) {
                    Token replacement = it->second;
                    replacement.loc = t.loc;
                    t = replacement;
                }
            }
            tokens.push_back(std::move(t));
        }
        Token eoi;
        eoi.kind = Token_kind::end_of_input;
        eoi.loc = loc_;
        tokens.push_back(eoi);
        return tokens;
    }

private:
    bool at_end() const { return pos_ >= src_.size(); }
    char peek(int ahead = 0) const {
        const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
        return p < src_.size() ? src_[p] : '\0';
    }
    char advance() {
        const char c = src_[pos_++];
        if (c == '\n') {
            loc_.line += 1;
            loc_.column = 1;
        } else {
            loc_.column += 1;
        }
        return c;
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw Parse_error(what, loc_.line, loc_.column);
    }

    void skip_space_and_comments() {
        for (;;) {
            if (at_end()) return;
            const char c = peek();
            if (std::isspace(static_cast<unsigned char>(c))) {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (!at_end() && peek() != '\n') advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
                if (at_end()) fail("unterminated /* comment");
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    void handle_directive() {
        const Source_loc start = loc_;
        advance();  // '#'
        std::string word;
        while (!at_end() && std::isalpha(static_cast<unsigned char>(peek()))) {
            word.push_back(advance());
        }
        if (word != "define") {
            throw Parse_error(cat("unsupported preprocessor directive '#", word, "'"),
                              start.line, start.column);
        }
        skip_inline_space();
        Token name = next_token();
        if (name.kind != Token_kind::identifier) {
            throw Parse_error("#define expects an identifier", name.loc.line,
                              name.loc.column);
        }
        skip_inline_space();
        Token value = next_token();
        if (value.kind != Token_kind::number) {
            throw Parse_error("#define supports only numeric literal values",
                              value.loc.line, value.loc.column);
        }
        defines_[name.text] = value;
    }

    void skip_inline_space() {
        while (!at_end() && (peek() == ' ' || peek() == '\t')) advance();
    }

    Token next_token() {
        Token t;
        t.loc = loc_;
        const char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string word;
            while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                                 peek() == '_')) {
                word.push_back(advance());
            }
            t.kind = is_keyword(word) ? Token_kind::keyword : Token_kind::identifier;
            t.text = word;
            return t;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            return lex_number();
        }
        return lex_operator_or_punct();
    }

    Token lex_number() {
        Token t;
        t.loc = loc_;
        t.kind = Token_kind::number;
        std::string digits;
        bool is_float = false;
        while (std::isdigit(static_cast<unsigned char>(peek()))) digits.push_back(advance());
        if (peek() == '.') {
            is_float = true;
            digits.push_back(advance());
            while (std::isdigit(static_cast<unsigned char>(peek()))) digits.push_back(advance());
        }
        if (peek() == 'e' || peek() == 'E') {
            is_float = true;
            digits.push_back(advance());
            if (peek() == '+' || peek() == '-') digits.push_back(advance());
            if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("malformed exponent");
            while (std::isdigit(static_cast<unsigned char>(peek()))) digits.push_back(advance());
        }
        if (peek() == 'f' || peek() == 'F') {
            is_float = true;
            advance();  // suffix dropped; golden arithmetic is double
        }
        t.text = digits;
        t.number_value = std::strtod(digits.c_str(), nullptr);
        t.is_integer = !is_float;
        return t;
    }

    Token lex_operator_or_punct() {
        Token t;
        t.loc = loc_;
        const char c = peek();
        // Two-character operators first.
        static const char* two_char[] = {"==", "!=", "<=", ">=", "&&", "||",
                                         "+=", "-=", "*=", "/=", "++", "--"};
        for (const char* op2 : two_char) {
            if (c == op2[0] && peek(1) == op2[1]) {
                advance();
                advance();
                t.kind = Token_kind::op;
                t.text = op2;
                return t;
            }
        }
        switch (c) {
            case '+': case '-': case '*': case '/': case '%':
            case '<': case '>': case '=': case '!': case '?': case ':':
                advance();
                t.kind = Token_kind::op;
                t.text = std::string(1, c);
                return t;
            case '(': case ')': case '[': case ']': case '{': case '}':
            case ',': case ';':
                advance();
                t.kind = Token_kind::punctuation;
                t.text = std::string(1, c);
                return t;
            default:
                fail(cat("unexpected character '", std::string(1, c), "'"));
        }
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    Source_loc loc_;
    std::map<std::string, Token> defines_;
};

}  // namespace

std::vector<Token> tokenize(const std::string& source) { return Lexer(source).run(); }

}  // namespace islhls
