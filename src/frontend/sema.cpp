#include "frontend/sema.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

const Field_info* Kernel_info::find_field(const std::string& name) const {
    for (const Field_info& f : fields) {
        if (f.name == name) return &f;
    }
    return nullptr;
}

std::vector<std::string> Kernel_info::state_field_names() const {
    std::vector<std::string> out;
    for (const Field_info& f : fields) {
        if (f.is_state) out.push_back(f.name);
    }
    return out;
}

std::vector<std::string> Kernel_info::const_field_names() const {
    std::vector<std::string> out;
    for (const Field_info& f : fields) {
        if (!f.is_state) out.push_back(f.name);
    }
    return out;
}

namespace {

[[noreturn]] void fail(const std::string& what) { throw Sema_error(what); }

bool is_float_type(const std::string& t) { return t == "float" || t == "double"; }

// Extracts the loop variable from a canonical for-init (decl `int v = e` or
// assignment `v = e`); returns the variable name.
std::string loop_variable(const Stmt_ast& loop, const char* which) {
    if (loop.for_init == nullptr) {
        fail(cat(which, " spatial loop must initialize its counter"));
    }
    const Stmt_ast& init = *loop.for_init;
    if (init.kind == Stmt_ast_kind::decl) {
        if (init.type_name != "int") {
            fail(cat(which, " spatial loop counter must be int"));
        }
        return init.name;
    }
    if (init.kind == Stmt_ast_kind::assign &&
        init.target->kind == Expr_ast_kind::var && init.assign_op == "=") {
        return init.target->name;
    }
    fail(cat(which, " spatial loop has a non-canonical initializer"));
}

// Spatial loops must advance by exactly one element per trip (windows are
// contiguous); accepts v++, ++v, v += 1.
void check_unit_step(const Stmt_ast& loop, const std::string& var, const char* which) {
    if (loop.for_step == nullptr) fail(cat(which, " spatial loop must have a step"));
    const Stmt_ast& step = *loop.for_step;
    if (step.kind != Stmt_ast_kind::assign || step.target->kind != Expr_ast_kind::var ||
        step.target->name != var) {
        fail(cat(which, " spatial loop step must update its own counter"));
    }
    const bool plus_one = step.assign_op == "+=" &&
                          step.value->kind == Expr_ast_kind::number &&
                          step.value->number == 1.0;
    if (!plus_one) fail(cat(which, " spatial loop must step by exactly 1"));
    if (loop.cond == nullptr) fail(cat(which, " spatial loop must have a condition"));
}

// Recursively checks statements of the kernel body: writes may only go to
// local scalars or `X_out[row][col]`; out fields are never read.
class Body_checker {
public:
    Body_checker(const Kernel_info& info, const std::vector<std::string>& out_params)
        : info_(info), out_params_(out_params) {}

    void check_stmt(const Stmt_ast& s) {
        switch (s.kind) {
            case Stmt_ast_kind::block:
                for (const auto& sub : s.stmts) check_stmt(*sub);
                break;
            case Stmt_ast_kind::decl:
                if (s.init != nullptr) check_expr(*s.init);
                for (const auto& e : s.init_list) check_expr(*e);
                locals_.push_back(s.name);
                break;
            case Stmt_ast_kind::assign:
                check_assign(s);
                break;
            case Stmt_ast_kind::for_loop:
                if (s.for_init != nullptr) check_stmt(*s.for_init);
                if (s.cond != nullptr) check_expr(*s.cond);
                if (s.for_step != nullptr) check_stmt(*s.for_step);
                check_stmt(*s.body);
                break;
            case Stmt_ast_kind::if_stmt:
                check_expr(*s.cond);
                check_stmt(*s.body);
                if (s.else_body != nullptr) check_stmt(*s.else_body);
                break;
        }
    }

private:
    bool is_out_param(const std::string& name) const {
        return std::find(out_params_.begin(), out_params_.end(), name) != out_params_.end();
    }

    void check_assign(const Stmt_ast& s) {
        const Expr_ast& target = *s.target;
        if (target.kind == Expr_ast_kind::var) {
            if (info_.find_field(target.name) != nullptr || is_out_param(target.name)) {
                fail(cat("cannot assign a whole array '", target.name, "'"));
            }
        } else if (target.kind == Expr_ast_kind::array_access) {
            if (!is_out_param(target.name)) {
                const bool is_local_array =
                    std::find(locals_.begin(), locals_.end(), target.name) != locals_.end();
                if (info_.find_field(target.name) != nullptr) {
                    fail(cat("input field '", target.name,
                             "' is read-only inside the kernel"));
                }
                if (!is_local_array) {
                    fail(cat("assignment to unknown array '", target.name, "'"));
                }
            }
            for (const auto& idx : target.args) check_expr(*idx);
        } else {
            fail("assignment target must be a variable or array element");
        }
        check_expr(*s.value);
    }

    void check_expr(const Expr_ast& e) {
        switch (e.kind) {
            case Expr_ast_kind::var:
                if (is_out_param(e.name)) {
                    fail(cat("output parameter '", e.name, "' cannot be read"));
                }
                break;
            case Expr_ast_kind::array_access: {
                if (is_out_param(e.name)) {
                    fail(cat("output parameter '", e.name,
                             "' cannot be read (ISL iterations only flow forward)"));
                }
                const Field_info* field = info_.find_field(e.name);
                if (field != nullptr && e.args.size() != 2) {
                    fail(cat("field '", e.name, "' requires two subscripts"));
                }
                for (const auto& idx : e.args) check_expr(*idx);
                break;
            }
            default:
                for (const auto& a : e.args) check_expr(*a);
                break;
        }
    }

    const Kernel_info& info_;
    const std::vector<std::string>& out_params_;
    std::vector<std::string> locals_;
};

}  // namespace

Kernel_info analyze_kernel(const Function_ast& fn) {
    Kernel_info info;
    info.kernel_name = fn.name;

    if (fn.return_type != "void") {
        fail(cat("kernel '", fn.name, "' must return void"));
    }
    if (fn.params.empty()) fail("kernel has no parameters");

    // --- classify parameters -------------------------------------------------
    std::vector<std::string> out_params;
    std::vector<const Param_ast*> in_params;
    bool any_int = false;
    bool any_float = false;
    for (const Param_ast& p : fn.params) {
        if (p.dims.size() != 2) {
            fail(cat("parameter '", p.name, "' must be a 2-D array (got ",
                     p.dims.size(), " dimensions)"));
        }
        if (p.type_name == "int") {
            any_int = true;
        } else if (is_float_type(p.type_name)) {
            any_float = true;
        } else {
            fail(cat("parameter '", p.name, "' must be int, float or double"));
        }
        if (any_int && any_float) {
            fail(cat("parameter '", p.name, "' mixes int and float fields; an "
                     "integer kernel must declare every field int"));
        }
        if (info.dim_names.empty()) {
            info.dim_names = {p.dims[0], p.dims[1]};
        } else if (info.dim_names[0] != p.dims[0] || info.dim_names[1] != p.dims[1]) {
            fail(cat("parameter '", p.name, "' dimensions [", p.dims[0], "][",
                     p.dims[1], "] differ from [", info.dim_names[0], "][",
                     info.dim_names[1], "]"));
        }
        if (ends_with(p.name, "_out")) {
            if (p.is_const) fail(cat("output parameter '", p.name, "' cannot be const"));
            out_params.push_back(p.name);
        } else {
            in_params.push_back(&p);
        }
    }
    if (out_params.empty()) fail("kernel has no '_out' output parameter");
    info.integer_domain = any_int;

    // --- pair X_out with X ----------------------------------------------------
    for (const Param_ast* p : in_params) {
        Field_info field;
        field.name = p->name;
        const std::string expected_out = p->name + "_out";
        const bool has_out = std::find(out_params.begin(), out_params.end(),
                                       expected_out) != out_params.end();
        if (has_out) {
            field.is_state = true;
            field.out_param = expected_out;
        } else {
            if (!p->is_const) {
                fail(cat("parameter '", p->name,
                         "' has no '_out' counterpart; mark it const if it is an "
                         "iteration-invariant input"));
            }
            field.is_state = false;
        }
        info.fields.push_back(field);
    }
    for (const std::string& out : out_params) {
        const std::string base = out.substr(0, out.size() - 4);
        if (info.find_field(base) == nullptr || !info.find_field(base)->is_state) {
            fail(cat("output parameter '", out, "' has no matching input '", base, "'"));
        }
    }
    if (info.state_field_names().empty()) fail("kernel advances no state field");

    // --- locate the canonical spatial loop nest ---------------------------------
    const Stmt_ast* row_loop = nullptr;
    check_internal(fn.body != nullptr && fn.body->kind == Stmt_ast_kind::block,
                   "function body must be a block");
    for (const auto& stmt : fn.body->stmts) {
        if (stmt->kind == Stmt_ast_kind::decl) {
            if (!stmt->is_const) {
                fail(cat("preamble declaration '", stmt->name,
                         "' must be const (it is evaluated once per kernel)"));
            }
            info.preamble.push_back(stmt.get());
        } else if (stmt->kind == Stmt_ast_kind::for_loop) {
            if (row_loop != nullptr) fail("kernel must contain exactly one loop nest");
            row_loop = stmt.get();
        } else {
            fail("kernel body may contain only const declarations and the loop nest");
        }
    }
    if (row_loop == nullptr) fail("kernel contains no spatial loop nest");

    // Inner loop: the row loop's body is either the column loop directly or a
    // block of const decls plus the column loop.
    const Stmt_ast* col_loop = nullptr;
    const Stmt_ast& row_body = *row_loop->body;
    if (row_body.kind == Stmt_ast_kind::for_loop) {
        col_loop = &row_body;
    } else if (row_body.kind == Stmt_ast_kind::block) {
        for (const auto& stmt : row_body.stmts) {
            if (stmt->kind == Stmt_ast_kind::decl) {
                if (!stmt->is_const) {
                    fail("declarations between the spatial loops must be const");
                }
                info.preamble.push_back(stmt.get());
            } else if (stmt->kind == Stmt_ast_kind::for_loop) {
                if (col_loop != nullptr) fail("expected a single inner spatial loop");
                col_loop = stmt.get();
            } else {
                fail("only const declarations may appear between the spatial loops");
            }
        }
    }
    if (col_loop == nullptr) fail("kernel requires a two-deep spatial loop nest");

    info.row_var = loop_variable(*row_loop, "outer");
    info.col_var = loop_variable(*col_loop, "inner");
    if (info.row_var == info.col_var) fail("spatial loop counters must differ");
    check_unit_step(*row_loop, info.row_var, "outer");
    check_unit_step(*col_loop, info.col_var, "inner");

    info.kernel_body = col_loop->body.get();
    check_internal(info.kernel_body != nullptr, "column loop has no body");

    // --- validate reads/writes inside the kernel body ----------------------------
    Body_checker checker(info, out_params);
    checker.check_stmt(*info.kernel_body);

    return info;
}

}  // namespace islhls
