// Recursive-descent parser for the C-subset kernel language.
//
// Grammar (EBNF, informal):
//   unit        := function+
//   function    := type ident '(' params? ')' block
//   params      := param (',' param)*
//   param       := 'const'? type ident ('[' (ident|number) ']')*
//   block       := '{' stmt* '}'
//   stmt        := decl ';' | assign ';' | for | if | block
//   decl        := 'const'? type ident dims? ('=' (expr | '{'...'}'))?
//   assign      := lvalue ('='|'+='|'-='|'*='|'/=') expr | lvalue '++' | '++' lvalue
//   for         := 'for' '(' (decl|assign)? ';' expr? ';' assign? ')' stmt
//   if          := 'if' '(' expr ')' stmt ('else' stmt)?
//   expr        := ternary; usual C precedence: ?: || && ==/!= rel +- */ unary postfix
//   postfix     := primary ('[' expr ']')*
//   primary     := number | ident | call | '(' expr ')'
//
// Unsupported C (pointers, structs, while/do, return values, ...) produces a
// Parse_error with a source location.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace islhls {

// Parses a whole translation unit. Throws Parse_error.
Translation_unit_ast parse_translation_unit(const std::string& source);

// Parses a source that must contain exactly one function.
Function_ast parse_single_function(const std::string& source);

}  // namespace islhls
