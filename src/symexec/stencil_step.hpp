// The result of symbolically executing one ISL iteration.
//
// A Stencil_step captures the elementary transformation t as one expression
// per state field, written over *relative* reads of the previous-iteration
// fields (translational invariance means one expression describes every
// element — the key reduction of Sec. 3.2 of the paper). The contained
// Expr_pool also serves as the arena the cone builder extends when unrolling
// multiple iterations.
#pragma once

#include <string>
#include <vector>

#include "grid/tile.hpp"
#include "ir/expr.hpp"

namespace islhls {

class Stencil_step {
public:
    Stencil_step() = default;

    // --- construction (used by the symbolic executor) ---------------------------
    // Fields must be registered before updates referencing them are added.
    // Returns the pool field index.
    int add_state_field(const std::string& name);
    int add_const_field(const std::string& name);
    // Sets the update expression for a registered state field.
    void set_update(const std::string& state_field, Expr_id expr);

    // Marks the step as integer-native (every field of the source kernel was
    // declared int). All values are exact whole numbers in the double IR, so
    // a Q m.0 fixed-point format reproduces the double engine word for word
    // and the format search needs no fractional bits.
    void set_integer_native(bool value) { integer_native_ = value; }
    bool integer_native() const { return integer_native_; }

    // --- queries -----------------------------------------------------------------
    Expr_pool& pool() { return pool_; }
    const Expr_pool& pool() const { return pool_; }

    const std::vector<std::string>& state_fields() const { return state_fields_; }
    const std::vector<std::string>& const_fields() const { return const_fields_; }
    int state_field_count() const { return static_cast<int>(state_fields_.size()); }

    // Update expression of the i-th state field (declaration order).
    Expr_id update(int state_index) const;
    Expr_id update(const std::string& state_field) const;
    std::vector<Expr_id> updates() const { return updates_; }

    // Pool field index of a named field; -1 when unknown.
    int field_index(const std::string& name) const { return pool_.find_field(name); }
    // True when the pool field index refers to a state (advancing) field.
    bool is_state_index(int field) const;
    // Position of a pool field index within state_fields(); -1 for const fields.
    int state_position(int field) const;

    // Dependency footprint of one application (union over all state updates).
    Footprint footprint() const;

    // Largest single-direction extent (domain narrowness measure).
    int max_reach() const;

    // One-line human-readable summary per state field.
    std::string describe() const;

private:
    Expr_pool pool_;
    std::vector<std::string> state_fields_;
    std::vector<std::string> const_fields_;
    std::vector<Expr_id> updates_;  // parallel to state_fields_
    bool integer_native_ = false;
};

}  // namespace islhls
