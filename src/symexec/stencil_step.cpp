#include "symexec/stencil_step.hpp"

#include <algorithm>

#include "ir/analysis.hpp"
#include "ir/print.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

int Stencil_step::add_state_field(const std::string& name) {
    check_internal(pool_.find_field(name) < 0, cat("field '", name, "' already exists"));
    state_fields_.push_back(name);
    updates_.push_back(no_expr);
    return pool_.intern_field(name);
}

int Stencil_step::add_const_field(const std::string& name) {
    check_internal(pool_.find_field(name) < 0, cat("field '", name, "' already exists"));
    const_fields_.push_back(name);
    return pool_.intern_field(name);
}

void Stencil_step::set_update(const std::string& state_field, Expr_id expr) {
    const auto it = std::find(state_fields_.begin(), state_fields_.end(), state_field);
    check_internal(it != state_fields_.end(),
                   cat("set_update on unknown state field '", state_field, "'"));
    updates_[static_cast<std::size_t>(it - state_fields_.begin())] = expr;
}

Expr_id Stencil_step::update(int state_index) const {
    check_internal(state_index >= 0 &&
                       state_index < static_cast<int>(updates_.size()),
                   "state index out of range");
    const Expr_id e = updates_[static_cast<std::size_t>(state_index)];
    check_internal(e != no_expr, "state field has no update expression");
    return e;
}

Expr_id Stencil_step::update(const std::string& state_field) const {
    const auto it = std::find(state_fields_.begin(), state_fields_.end(), state_field);
    check_internal(it != state_fields_.end(),
                   cat("update() on unknown state field '", state_field, "'"));
    return update(static_cast<int>(it - state_fields_.begin()));
}

bool Stencil_step::is_state_index(int field) const { return state_position(field) >= 0; }

int Stencil_step::state_position(int field) const {
    if (field < 0 || field >= pool_.field_count()) return -1;
    const std::string& name = pool_.field_name(field);
    const auto it = std::find(state_fields_.begin(), state_fields_.end(), name);
    return it == state_fields_.end() ? -1
                                     : static_cast<int>(it - state_fields_.begin());
}

Footprint Stencil_step::footprint() const {
    return support_footprint(pool_, updates_);
}

int Stencil_step::max_reach() const {
    const Footprint fp = footprint();
    return std::max({fp.left, fp.right, fp.up, fp.down});
}

std::string Stencil_step::describe() const {
    std::string out;
    for (std::size_t i = 0; i < state_fields_.size(); ++i) {
        out += cat(state_fields_[i], "' = ", to_infix(pool_, updates_[i]), "\n");
    }
    return out;
}

}  // namespace islhls
