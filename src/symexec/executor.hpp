// Symbolic execution of the kernel body (Sec. 3.2 of the paper).
//
// The executor runs the validated kernel body once, at a symbolic origin
// (row, col): integer-typed values are tracked in a tiny affine domain
// `loopvar + constant` so array subscripts resolve to relative offsets, and
// float-typed values become expression DAG nodes. Inner fixed-trip-count
// loops are fully unrolled; `if` statements with data-dependent conditions
// execute both arms and merge the environments through select() (classic
// symbolic execution with path merging). Exponential symbol growth is
// avoided by the pool's hash-consing — the register-reuse argument of the
// paper.
//
// Options bound the analysis: `max_unroll` caps total unrolled inner-loop
// trips, `max_reach` enforces domain narrowness on the resulting footprint.
#pragma once

#include "frontend/ast.hpp"
#include "frontend/sema.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

struct Symexec_options {
    int max_unroll = 4096;  // total inner-loop trips before giving up
    int max_reach = 8;      // domain-narrowness bound on any single extent
};

// Extracts the single-iteration dependency structure from a validated kernel.
// Throws Symexec_error on unsupported constructs (non-affine subscripts,
// spatial indices escaping into value arithmetic, unbounded loops, ...).
Stencil_step execute_symbolically(const Function_ast& fn, const Kernel_info& info,
                                  const Symexec_options& options = {});

// Convenience: parse + analyze + execute in one call.
Stencil_step extract_stencil(const std::string& c_source,
                             const Symexec_options& options = {});

}  // namespace islhls
