#include "symexec/executor.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

namespace {

// --- symbolic values ----------------------------------------------------------

// Integer affine value: `offset` when var < 0, or `loopvar + offset` where
// var 0 is the row (outer) counter and var 1 the column (inner) counter.
struct Affine {
    int var = -1;
    long long offset = 0;
    bool concrete() const { return var < 0; }
};

struct Sym_value {
    enum class Tag { affine, numeric };
    Tag tag = Tag::affine;
    Affine affine;
    Expr_id expr = no_expr;

    static Sym_value make_affine(int var, long long offset) {
        Sym_value v;
        v.tag = Tag::affine;
        v.affine = {var, offset};
        return v;
    }
    static Sym_value make_numeric(Expr_id e) {
        Sym_value v;
        v.tag = Tag::numeric;
        v.expr = e;
        return v;
    }
    bool operator==(const Sym_value& o) const {
        if (tag != o.tag) return false;
        if (tag == Tag::affine) {
            return affine.var == o.affine.var && affine.offset == o.affine.offset;
        }
        return expr == o.expr;
    }
};

// A named scalar binding; `is_int` fixes the coercion discipline.
struct Binding {
    Sym_value value;
    bool is_int = false;
    bool is_const = false;
};

// A local float array (possibly mutable), row-major.
struct Array_binding {
    std::vector<int> dims;
    std::vector<Sym_value> elems;  // all numeric
    bool is_const = false;
};

// Hash maps: these bindings are hit on every evaluated expression, and the
// executor unrolls loops, so lookups dominate. Anything that *iterates* a
// map (merge_envs) must impose its own order — unordered iteration order
// would leak into expression-pool creation order and break determinism.
struct Env {
    std::unordered_map<std::string, Binding> scalars;
    std::unordered_map<std::string, Array_binding> arrays;
    // Recorded next-iteration expressions, keyed by *state field* name.
    std::unordered_map<std::string, Expr_id> outputs;
};

// The names of `map`, sorted — the deterministic iteration order for merges
// (matches the old std::map order exactly).
template <typename Map>
std::vector<std::string> sorted_keys(const Map& map) {
    std::vector<std::string> keys;
    keys.reserve(map.size());
    for (const auto& [name, value] : map) keys.push_back(name);
    std::sort(keys.begin(), keys.end());
    return keys;
}

[[noreturn]] void fail(const Source_loc& loc, const std::string& what) {
    throw Symexec_error(cat("symbolic execution at ", loc.line, ":", loc.column, ": ",
                            what));
}

// Pre-scan: does the first out-field write subscript with [row][col] or
// [col][row]? Decides which subscript position maps to the vertical axis.
const Expr_ast* find_first_out_write(const Stmt_ast& s,
                                     const std::vector<std::string>& out_params) {
    switch (s.kind) {
        case Stmt_ast_kind::assign:
            if (s.target->kind == Expr_ast_kind::array_access) {
                for (const std::string& p : out_params) {
                    if (s.target->name == p) return s.target.get();
                }
            }
            return nullptr;
        case Stmt_ast_kind::block:
            for (const auto& sub : s.stmts) {
                if (const Expr_ast* hit = find_first_out_write(*sub, out_params)) {
                    return hit;
                }
            }
            return nullptr;
        case Stmt_ast_kind::for_loop:
            return s.body ? find_first_out_write(*s.body, out_params) : nullptr;
        case Stmt_ast_kind::if_stmt: {
            if (const Expr_ast* hit = find_first_out_write(*s.body, out_params)) return hit;
            return s.else_body ? find_first_out_write(*s.else_body, out_params) : nullptr;
        }
        case Stmt_ast_kind::decl:
            return nullptr;
    }
    return nullptr;
}

class Executor {
public:
    Executor(const Function_ast& fn, const Kernel_info& info,
             const Symexec_options& options)
        : fn_(fn), info_(info), options_(options) {}

    Stencil_step run() {
        // Register fields in declaration order so pool indices are stable.
        for (const Field_info& f : info_.fields) {
            if (f.is_state) {
                step_.add_state_field(f.name);
            } else {
                step_.add_const_field(f.name);
            }
        }
        step_.set_integer_native(info_.integer_domain);

        decide_axis_mapping();

        Env env;
        // Spatial counters: row var is affine var 0, col var is affine var 1.
        env.scalars[info_.row_var] = {Sym_value::make_affine(0, 0), true, true};
        env.scalars[info_.col_var] = {Sym_value::make_affine(1, 0), true, true};

        for (const Stmt_ast* decl : info_.preamble) exec_decl(*decl, env);
        exec_stmt(*info_.kernel_body, env);

        for (const std::string& field : info_.state_field_names()) {
            const auto it = env.outputs.find(field);
            if (it == env.outputs.end()) {
                throw Symexec_error(cat("kernel never writes '", field, "_out'"));
            }
            step_.set_update(field, it->second);
        }

        const int reach = step_.max_reach();
        if (reach > options_.max_reach) {
            throw Symexec_error(cat("stencil reach ", reach,
                                    " exceeds the domain-narrowness bound ",
                                    options_.max_reach));
        }
        return std::move(step_);
    }

private:
    Expr_pool& pool() { return step_.pool(); }

    void decide_axis_mapping() {
        std::vector<std::string> out_params;
        for (const Field_info& f : info_.fields) {
            if (f.is_state) out_params.push_back(f.out_param);
        }
        row_is_first_subscript_ = true;
        if (const Expr_ast* w = find_first_out_write(*info_.kernel_body, out_params)) {
            if (!w->args.empty() && w->args[0]->kind == Expr_ast_kind::var &&
                w->args[0]->name == info_.col_var) {
                row_is_first_subscript_ = false;
            }
        }
    }

    // --- coercions ---------------------------------------------------------------

    Expr_id to_numeric(const Sym_value& v, const Source_loc& loc) {
        if (v.tag == Sym_value::Tag::numeric) return v.expr;
        if (!v.affine.concrete()) {
            fail(loc, "a spatial loop index cannot be used as a value (the kernel "
                      "would not be translation invariant)");
        }
        return pool().constant(static_cast<double>(v.affine.offset));
    }

    Affine to_affine(const Sym_value& v, const Source_loc& loc, const char* what) {
        if (v.tag == Sym_value::Tag::affine) return v.affine;
        const Expr_node& n = pool().node(v.expr);
        if (n.kind == Op_kind::constant && n.value == static_cast<long long>(n.value)) {
            return Affine{-1, static_cast<long long>(n.value)};
        }
        fail(loc, cat(what, " must be an integer expression of the form "
                            "loop_variable +/- constant"));
    }

    // --- expression evaluation -----------------------------------------------------

    Sym_value eval(const Expr_ast& e, Env& env) {
        switch (e.kind) {
            case Expr_ast_kind::number:
                if (e.is_integer) {
                    return Sym_value::make_affine(-1, static_cast<long long>(e.number));
                }
                return Sym_value::make_numeric(pool().constant(e.number));
            case Expr_ast_kind::var:
                return eval_var(e, env);
            case Expr_ast_kind::array_access:
                return eval_access(e, env);
            case Expr_ast_kind::call:
                return eval_call(e, env);
            case Expr_ast_kind::unary:
                return eval_unary(e, env);
            case Expr_ast_kind::binary:
                return eval_binary(e, env);
            case Expr_ast_kind::ternary:
                return eval_ternary(e, env);
        }
        fail(e.loc, "unsupported expression");
    }

    Sym_value eval_var(const Expr_ast& e, Env& env) {
        const auto it = env.scalars.find(e.name);
        if (it != env.scalars.end()) return it->second.value;
        if (env.arrays.count(e.name) != 0 || step_.field_index(e.name) >= 0) {
            fail(e.loc, cat("array '", e.name, "' must be subscripted"));
        }
        fail(e.loc, cat("use of undeclared variable '", e.name, "'"));
    }

    Sym_value eval_access(const Expr_ast& e, Env& env) {
        // Local array?
        const auto arr = env.arrays.find(e.name);
        if (arr != env.arrays.end()) {
            return arr->second.elems[local_array_index(e, arr->second, env)];
        }
        // Field read -> input leaf.
        const int field = step_.field_index(e.name);
        if (field < 0) fail(e.loc, cat("use of undeclared array '", e.name, "'"));
        if (e.args.size() != 2) fail(e.loc, "fields require exactly two subscripts");
        const auto [dx, dy] = field_offsets(e, env);
        return Sym_value::make_numeric(pool().input(field, dx, dy));
    }

    // Resolves the two subscripts of a field access into (dx, dy) relative
    // offsets, enforcing the affine form and axis consistency.
    std::pair<int, int> field_offsets(const Expr_ast& e, Env& env) {
        const Affine i0 = to_affine(eval(*e.args[0], env), e.args[0]->loc, "a subscript");
        const Affine i1 = to_affine(eval(*e.args[1], env), e.args[1]->loc, "a subscript");
        const int row_axis = row_is_first_subscript_ ? 0 : 1;
        const Affine& row_idx = row_is_first_subscript_ ? i0 : i1;
        const Affine& col_idx = row_is_first_subscript_ ? i1 : i0;
        (void)row_axis;
        if (row_idx.var != 0) {
            fail(e.loc, cat("subscript of '", e.name,
                            "' must be the row loop variable plus a constant"));
        }
        if (col_idx.var != 1) {
            fail(e.loc, cat("subscript of '", e.name,
                            "' must be the column loop variable plus a constant"));
        }
        return {static_cast<int>(col_idx.offset), static_cast<int>(row_idx.offset)};
    }

    std::size_t local_array_index(const Expr_ast& e, const Array_binding& arr, Env& env) {
        if (e.args.size() != arr.dims.size()) {
            fail(e.loc, cat("array '", e.name, "' expects ", arr.dims.size(),
                            " subscripts"));
        }
        long long flat = 0;
        for (std::size_t d = 0; d < arr.dims.size(); ++d) {
            const Affine idx =
                to_affine(eval(*e.args[d], env), e.args[d]->loc, "a local array subscript");
            if (!idx.concrete()) {
                fail(e.args[d]->loc,
                     "local array subscripts must be compile-time constants after "
                     "loop unrolling");
            }
            if (idx.offset < 0 || idx.offset >= arr.dims[d]) {
                fail(e.args[d]->loc, cat("local array subscript ", idx.offset,
                                         " is out of bounds [0,", arr.dims[d], ")"));
            }
            flat = flat * arr.dims[d] + idx.offset;
        }
        return static_cast<std::size_t>(flat);
    }

    Sym_value eval_call(const Expr_ast& e, Env& env) {
        auto arg = [&](std::size_t i) {
            return to_numeric(eval(*e.args[i], env), e.args[i]->loc);
        };
        const std::string& f = e.name;
        auto expect_args = [&](std::size_t n) {
            if (e.args.size() != n) {
                fail(e.loc, cat("'", f, "' expects ", n, " argument(s)"));
            }
        };
        if (f == "fabs" || f == "fabsf") {
            expect_args(1);
            return Sym_value::make_numeric(pool().abs_of(arg(0)));
        }
        if (f == "sqrt" || f == "sqrtf") {
            expect_args(1);
            return Sym_value::make_numeric(pool().sqrt_of(arg(0)));
        }
        if (f == "fmin" || f == "fminf") {
            expect_args(2);
            return Sym_value::make_numeric(pool().min_of(arg(0), arg(1)));
        }
        if (f == "fmax" || f == "fmaxf") {
            expect_args(2);
            return Sym_value::make_numeric(pool().max_of(arg(0), arg(1)));
        }
        if (f == "hypot" || f == "hypotf") {
            expect_args(2);
            const Expr_id a = arg(0);
            const Expr_id b = arg(1);
            return Sym_value::make_numeric(
                pool().sqrt_of(pool().add(pool().mul(a, a), pool().mul(b, b))));
        }
        fail(e.loc, cat("unsupported function '", f,
                        "' (supported: fabs, sqrt, fmin, fmax, hypot and f-suffixed "
                        "variants)"));
    }

    Sym_value eval_unary(const Expr_ast& e, Env& env) {
        const Sym_value v = eval(*e.args[0], env);
        if (e.op == "+") return v;
        if (e.op == "-") {
            if (v.tag == Sym_value::Tag::affine && v.affine.concrete()) {
                return Sym_value::make_affine(-1, -v.affine.offset);
            }
            return Sym_value::make_numeric(pool().neg(to_numeric(v, e.loc)));
        }
        if (e.op == "!") {
            if (v.tag == Sym_value::Tag::affine && v.affine.concrete()) {
                return Sym_value::make_affine(-1, v.affine.offset == 0 ? 1 : 0);
            }
            return Sym_value::make_numeric(
                pool().equal(to_numeric(v, e.loc), pool().constant(0.0)));
        }
        fail(e.loc, cat("unsupported unary operator '", e.op, "'"));
    }

    Sym_value eval_binary(const Expr_ast& e, Env& env) {
        const Sym_value a = eval(*e.args[0], env);
        const Sym_value b = eval(*e.args[1], env);
        const std::string& op = e.op;
        const bool both_affine =
            a.tag == Sym_value::Tag::affine && b.tag == Sym_value::Tag::affine;

        if (both_affine) {
            if (auto r = try_affine_op(op, a.affine, b.affine, e.loc)) return *r;
        }
        // Numeric path.
        const Expr_id na = to_numeric(a, e.args[0]->loc);
        const Expr_id nb = to_numeric(b, e.args[1]->loc);
        Expr_pool& p = pool();
        if (op == "+") return Sym_value::make_numeric(p.add(na, nb));
        if (op == "-") return Sym_value::make_numeric(p.sub(na, nb));
        if (op == "*") return Sym_value::make_numeric(p.mul(na, nb));
        if (op == "/") return Sym_value::make_numeric(p.div(na, nb));
        if (op == "<") return Sym_value::make_numeric(p.less(na, nb));
        if (op == "<=") return Sym_value::make_numeric(p.less_equal(na, nb));
        if (op == ">") return Sym_value::make_numeric(p.less(nb, na));
        if (op == ">=") return Sym_value::make_numeric(p.less_equal(nb, na));
        if (op == "==") return Sym_value::make_numeric(p.equal(na, nb));
        if (op == "!=") {
            return Sym_value::make_numeric(p.sub(p.constant(1.0), p.equal(na, nb)));
        }
        if (op == "&&") {
            return Sym_value::make_numeric(p.mul(boolean_of(na), boolean_of(nb)));
        }
        if (op == "||") {
            return Sym_value::make_numeric(p.max_of(boolean_of(na), boolean_of(nb)));
        }
        if (op == "%") fail(e.loc, "'%' requires integer operands");
        fail(e.loc, cat("unsupported binary operator '", op, "'"));
    }

    Expr_id boolean_of(Expr_id x) {
        Expr_pool& p = pool();
        return p.sub(p.constant(1.0), p.equal(x, p.constant(0.0)));
    }

    // Affine arithmetic; nullopt when the operation leaves the affine domain
    // (falls through to the numeric path, which may then report an error).
    std::optional<Sym_value> try_affine_op(const std::string& op, const Affine& a,
                                           const Affine& b, const Source_loc& loc) {
        if (op == "+") {
            if (a.var >= 0 && b.var >= 0) {
                fail(loc, "subscript arithmetic cannot add two loop variables");
            }
            const int var = a.var >= 0 ? a.var : b.var;
            return Sym_value::make_affine(var, a.offset + b.offset);
        }
        if (op == "-") {
            if (b.var < 0) return Sym_value::make_affine(a.var, a.offset - b.offset);
            if (a.var == b.var) return Sym_value::make_affine(-1, a.offset - b.offset);
            fail(loc, "subscript arithmetic cannot negate a loop variable");
        }
        if (op == "*") {
            if (a.concrete() && b.concrete()) {
                return Sym_value::make_affine(-1, a.offset * b.offset);
            }
            fail(loc, "subscripts must have unit coefficients (no k*index terms)");
        }
        if (op == "/" || op == "%") {
            if (a.concrete() && b.concrete()) {
                if (b.offset == 0) fail(loc, "integer division by zero");
                return Sym_value::make_affine(
                    -1, op == "/" ? a.offset / b.offset : a.offset % b.offset);
            }
            fail(loc, "integer division requires constant operands");
        }
        // Comparisons need both sides concrete to stay in the affine domain.
        if (op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
            op == "!=") {
            if (a.var == b.var) {
                // Same symbol (or both concrete): offsets decide.
                const long long x = a.offset;
                const long long y = b.offset;
                bool r = false;
                if (op == "<") r = x < y;
                else if (op == "<=") r = x <= y;
                else if (op == ">") r = x > y;
                else if (op == ">=") r = x >= y;
                else if (op == "==") r = x == y;
                else r = x != y;
                return Sym_value::make_affine(-1, r ? 1 : 0);
            }
            return std::nullopt;  // mixed symbolic comparison -> numeric path
        }
        if (op == "&&" || op == "||") {
            if (a.concrete() && b.concrete()) {
                const bool r = op == "&&" ? (a.offset != 0 && b.offset != 0)
                                          : (a.offset != 0 || b.offset != 0);
                return Sym_value::make_affine(-1, r ? 1 : 0);
            }
            return std::nullopt;
        }
        return std::nullopt;
    }

    Sym_value eval_ternary(const Expr_ast& e, Env& env) {
        const Sym_value cond = eval(*e.args[0], env);
        if (cond.tag == Sym_value::Tag::affine) {
            if (!cond.affine.concrete()) {
                fail(e.loc, "control flow cannot depend directly on a spatial index");
            }
            return eval(cond.affine.offset != 0 ? *e.args[1] : *e.args[2], env);
        }
        const Expr_node& n = pool().node(cond.expr);
        if (n.kind == Op_kind::constant) {
            return eval(n.value != 0.0 ? *e.args[1] : *e.args[2], env);
        }
        const Expr_id t = to_numeric(eval(*e.args[1], env), e.args[1]->loc);
        const Expr_id f = to_numeric(eval(*e.args[2], env), e.args[2]->loc);
        return Sym_value::make_numeric(pool().select(cond.expr, t, f));
    }

    // --- statement execution ---------------------------------------------------------

    void exec_stmt(const Stmt_ast& s, Env& env) {
        switch (s.kind) {
            case Stmt_ast_kind::block: {
                std::vector<std::string> declared;
                for (const auto& sub : s.stmts) {
                    if (sub->kind == Stmt_ast_kind::decl) declared.push_back(sub->name);
                    exec_stmt(*sub, env);
                }
                for (const std::string& name : declared) {
                    env.scalars.erase(name);
                    env.arrays.erase(name);
                }
                break;
            }
            case Stmt_ast_kind::decl:
                exec_decl(s, env);
                break;
            case Stmt_ast_kind::assign:
                exec_assign(s, env);
                break;
            case Stmt_ast_kind::for_loop:
                exec_for(s, env);
                break;
            case Stmt_ast_kind::if_stmt:
                exec_if(s, env);
                break;
        }
    }

    void exec_decl(const Stmt_ast& s, Env& env) {
        if (env.scalars.count(s.name) != 0 || env.arrays.count(s.name) != 0 ||
            step_.field_index(s.name) >= 0) {
            fail(s.loc, cat("redeclaration of '", s.name, "'"));
        }
        if (!s.array_dims.empty()) {
            if (s.type_name == "int") {
                fail(s.loc, "local arrays must be float or double");
            }
            Array_binding arr;
            arr.dims = s.array_dims;
            arr.is_const = s.is_const;
            long long total = 1;
            for (int d : s.array_dims) {
                if (d <= 0) fail(s.loc, "array dimensions must be positive");
                total *= d;
            }
            if (static_cast<long long>(s.init_list.size()) > total) {
                fail(s.loc, "too many initializers");
            }
            arr.elems.assign(static_cast<std::size_t>(total),
                             Sym_value::make_numeric(pool().constant(0.0)));
            for (std::size_t i = 0; i < s.init_list.size(); ++i) {
                arr.elems[i] = Sym_value::make_numeric(
                    to_numeric(eval(*s.init_list[i], env), s.init_list[i]->loc));
            }
            env.arrays.emplace(s.name, std::move(arr));
            return;
        }
        Binding b;
        b.is_int = s.type_name == "int";
        b.is_const = s.is_const;
        if (s.init != nullptr) {
            b.value = coerce_to(eval(*s.init, env), b.is_int, s.init->loc);
        } else {
            if (s.is_const) fail(s.loc, "const variable requires an initializer");
            b.value = b.is_int ? Sym_value::make_affine(-1, 0)
                               : Sym_value::make_numeric(pool().constant(0.0));
        }
        env.scalars.emplace(s.name, std::move(b));
    }

    Sym_value coerce_to(const Sym_value& v, bool is_int, const Source_loc& loc) {
        if (is_int) {
            if (v.tag == Sym_value::Tag::affine) return v;
            const Expr_node& n = pool().node(v.expr);
            if (n.kind == Op_kind::constant &&
                n.value == static_cast<double>(static_cast<long long>(n.value))) {
                return Sym_value::make_affine(-1, static_cast<long long>(n.value));
            }
            // Integer-domain kernels compute on field values: whole numbers,
            // but not compile-time constants. They stay symbolic — every IR
            // op on them is exact in double — while subscript arithmetic
            // still demands the affine form (to_affine rejects these).
            if (info_.integer_domain) return v;
            const Affine a = to_affine(v, loc, "an int value");
            return Sym_value::make_affine(a.var, a.offset);
        }
        return Sym_value::make_numeric(to_numeric(v, loc));
    }

    void exec_assign(const Stmt_ast& s, Env& env) {
        const Expr_ast& target = *s.target;
        if (target.kind == Expr_ast_kind::var) {
            const auto it = env.scalars.find(target.name);
            if (it == env.scalars.end()) {
                fail(s.loc, cat("assignment to undeclared variable '", target.name, "'"));
            }
            Binding& b = it->second;
            if (b.is_const) fail(s.loc, cat("assignment to const '", target.name, "'"));
            Sym_value rhs = eval(*s.value, env);
            if (s.assign_op != "=") {
                rhs = combine_compound(s.assign_op, b.value, rhs, s.loc);
            }
            b.value = coerce_to(rhs, b.is_int, s.loc);
            return;
        }
        check_internal(target.kind == Expr_ast_kind::array_access,
                       "assign target must be var or array access");
        // Out-field write?
        for (const Field_info& f : info_.fields) {
            if (f.is_state && f.out_param == target.name) {
                exec_out_write(s, f, env);
                return;
            }
        }
        // Local array element write.
        const auto arr = env.arrays.find(target.name);
        if (arr == env.arrays.end()) {
            fail(s.loc, cat("assignment to unknown array '", target.name, "'"));
        }
        if (arr->second.is_const) {
            fail(s.loc, cat("assignment to const array '", target.name, "'"));
        }
        const std::size_t idx = local_array_index(target, arr->second, env);
        Sym_value rhs = eval(*s.value, env);
        if (s.assign_op != "=") {
            rhs = combine_compound(s.assign_op, arr->second.elems[idx], rhs, s.loc);
        }
        arr->second.elems[idx] =
            Sym_value::make_numeric(to_numeric(rhs, s.value->loc));
    }

    Sym_value combine_compound(const std::string& op, const Sym_value& old_v,
                               const Sym_value& rhs, const Source_loc& loc) {
        const bool both_affine = old_v.tag == Sym_value::Tag::affine &&
                                 rhs.tag == Sym_value::Tag::affine;
        const std::string base = op.substr(0, 1);  // "+=" -> "+"
        if (both_affine) {
            if (auto r = try_affine_op(base, old_v.affine, rhs.affine, loc)) return *r;
        }
        Expr_pool& p = pool();
        const Expr_id a = to_numeric(old_v, loc);
        const Expr_id b = to_numeric(rhs, loc);
        if (base == "+") return Sym_value::make_numeric(p.add(a, b));
        if (base == "-") return Sym_value::make_numeric(p.sub(a, b));
        if (base == "*") return Sym_value::make_numeric(p.mul(a, b));
        if (base == "/") return Sym_value::make_numeric(p.div(a, b));
        fail(loc, cat("unsupported compound assignment '", op, "'"));
    }

    void exec_out_write(const Stmt_ast& s, const Field_info& field, Env& env) {
        if (s.assign_op != "=") {
            fail(s.loc, cat("output '", field.out_param,
                            "' must be written with plain '=' assignment"));
        }
        const Expr_ast& target = *s.target;
        if (target.args.size() != 2) {
            fail(s.loc, "output writes require exactly two subscripts");
        }
        const auto [dx, dy] = field_offsets(target, env);
        if (dx != 0 || dy != 0) {
            fail(s.loc, cat("output '", field.out_param,
                            "' must be written at offset [0][0] (got dy=", dy,
                            ", dx=", dx, "); shift the reads instead"));
        }
        env.outputs[field.name] = to_numeric(eval(*s.value, env), s.value->loc);
    }

    void exec_for(const Stmt_ast& s, Env& env) {
        // The kernel body may contain fixed-trip-count loops (e.g. iterating
        // a 3x3 coefficient table); they are fully unrolled here.
        bool counter_declared = false;
        std::string counter;
        if (s.for_init != nullptr) {
            if (s.for_init->kind == Stmt_ast_kind::decl) {
                exec_decl(*s.for_init, env);
                counter_declared = true;
                counter = s.for_init->name;
            } else {
                exec_stmt(*s.for_init, env);
            }
        }
        if (s.cond == nullptr) fail(s.loc, "inner loops must have a bound");
        int trips = 0;
        for (;;) {
            const Sym_value c = eval(*s.cond, env);
            const Affine ca = to_affine(c, s.cond->loc, "an inner loop bound");
            if (!ca.concrete()) {
                fail(s.cond->loc,
                     "inner loop bounds must be compile-time constants (only the two "
                     "spatial loops may scan the frame)");
            }
            if (ca.offset == 0) break;
            exec_stmt(*s.body, env);
            if (s.for_step != nullptr) exec_stmt(*s.for_step, env);
            unroll_budget_ += 1;
            trips += 1;
            if (unroll_budget_ > options_.max_unroll) {
                fail(s.loc, cat("inner loop unrolling exceeded ", options_.max_unroll,
                                " total trips"));
            }
        }
        (void)trips;
        if (counter_declared) env.scalars.erase(counter);
    }

    void exec_if(const Stmt_ast& s, Env& env) {
        const Sym_value cond = eval(*s.cond, env);
        if (cond.tag == Sym_value::Tag::affine) {
            if (!cond.affine.concrete()) {
                fail(s.loc, "control flow cannot depend directly on a spatial index");
            }
            if (cond.affine.offset != 0) {
                exec_stmt(*s.body, env);
            } else if (s.else_body != nullptr) {
                exec_stmt(*s.else_body, env);
            }
            return;
        }
        const Expr_node& n = pool().node(cond.expr);
        if (n.kind == Op_kind::constant) {
            if (n.value != 0.0) {
                exec_stmt(*s.body, env);
            } else if (s.else_body != nullptr) {
                exec_stmt(*s.else_body, env);
            }
            return;
        }
        // Data-dependent branch: execute both arms on copies and merge with
        // select() — hardware evaluates both sides anyway.
        Env then_env = env;
        exec_stmt(*s.body, then_env);
        Env else_env = env;
        if (s.else_body != nullptr) exec_stmt(*s.else_body, else_env);
        merge_envs(env, then_env, else_env, cond.expr, s.loc);
    }

    void merge_envs(Env& env, const Env& then_env, const Env& else_env, Expr_id cond,
                    const Source_loc& loc) {
        Expr_pool& p = pool();
        // Scalars visible before the branch, merged in sorted-name order so
        // the select nodes are created deterministically.
        for (const std::string& name : sorted_keys(env.scalars)) {
            Binding& binding = env.scalars.at(name);
            const Binding& tv = then_env.scalars.at(name);
            const Binding& ev = else_env.scalars.at(name);
            if (tv.value == ev.value) {
                binding.value = tv.value;
                continue;
            }
            // Integer-domain kernels may select between diverging int values
            // (both sides are exact whole numbers); affine values bound to a
            // loop variable can never merge, and outside the integer domain
            // diverging ints stay an error.
            const bool mergeable =
                (tv.value.tag == Sym_value::Tag::numeric || tv.value.affine.concrete()) &&
                (ev.value.tag == Sym_value::Tag::numeric || ev.value.affine.concrete());
            if (binding.is_int && !(info_.integer_domain && mergeable)) {
                fail(loc, cat("integer variable '", name,
                              "' takes different values on a data-dependent branch"));
            }
            binding.value = Sym_value::make_numeric(
                p.select(cond, to_numeric(tv.value, loc), to_numeric(ev.value, loc)));
        }
        // Local arrays, element-wise, likewise in sorted-name order.
        for (const std::string& name : sorted_keys(env.arrays)) {
            Array_binding& arr = env.arrays.at(name);
            const Array_binding& ta = then_env.arrays.at(name);
            const Array_binding& ea = else_env.arrays.at(name);
            for (std::size_t i = 0; i < arr.elems.size(); ++i) {
                if (ta.elems[i] == ea.elems[i]) {
                    arr.elems[i] = ta.elems[i];
                } else {
                    arr.elems[i] = Sym_value::make_numeric(
                        p.select(cond, to_numeric(ta.elems[i], loc),
                                 to_numeric(ea.elems[i], loc)));
                }
            }
        }
        // Outputs: a write on one arm must be merged with the other arm's
        // value (or rejected when the other arm never defines it). Iterates
        // the declared fields, which is already deterministic.
        std::unordered_map<std::string, Expr_id> merged;
        for (const Field_info& f : info_.fields) {
            if (!f.is_state) continue;
            const auto t = then_env.outputs.find(f.name);
            const auto e = else_env.outputs.find(f.name);
            const bool in_then = t != then_env.outputs.end();
            const bool in_else = e != else_env.outputs.end();
            if (!in_then && !in_else) continue;
            if (in_then && in_else) {
                merged[f.name] = t->second == e->second
                                     ? t->second
                                     : p.select(cond, t->second, e->second);
            } else {
                fail(loc, cat("output '", f.out_param,
                              "' is written on only one arm of a data-dependent "
                              "branch"));
            }
        }
        env.outputs = std::move(merged);
    }

    const Function_ast& fn_;
    const Kernel_info& info_;
    Symexec_options options_;
    Stencil_step step_;
    bool row_is_first_subscript_ = true;
    int unroll_budget_ = 0;
};

}  // namespace

Stencil_step execute_symbolically(const Function_ast& fn, const Kernel_info& info,
                                  const Symexec_options& options) {
    return Executor(fn, info, options).run();
}

Stencil_step extract_stencil(const std::string& c_source,
                             const Symexec_options& options) {
    const Function_ast fn = parse_single_function(c_source);
    const Kernel_info info = analyze_kernel(fn);
    return execute_symbolically(fn, info, options);
}

}  // namespace islhls
