#include "baseline/frame_buffer.hpp"

#include <algorithm>
#include <cmath>

#include "ir/program.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

Frame_buffer_estimate estimate_frame_buffer(const Stencil_step& step, int iterations,
                                            int frame_width, int frame_height,
                                            const Fpga_device& device,
                                            const Frame_buffer_options& options) {
    Frame_buffer_estimate est;

    const Register_program program = build_program(step.pool(), step.updates());
    Synth_options synth_options;
    synth_options.format = options.format;
    const Synthesis_report pe =
        synthesize_program(program, "frame_buffer_pe", device, synth_options);
    est.f_max_mhz = pe.f_max_mhz;

    const double fields = step.pool().field_count();
    est.onchip_kbits_needed = 2.0 * frame_width * frame_height * fields *
                              options.buffer_bits_per_element / 1024.0;
    est.frame_fits_onchip =
        est.onchip_kbits_needed <= static_cast<double>(device.bram_kbits);

    const double reads_per_element = program.input_count();
    double cycles_per_element = 0.0;
    if (est.frame_fits_onchip) {
        // Dual-port BRAM: two reads per cycle per buffer, pipelined compute.
        cycles_per_element = std::max(1.0, reads_per_element / 2.0) /
                             std::max(1, options.parallel_elements);
    } else {
        // Each stencil read is an external access; writes too. No reuse
        // across neighbouring elements (the paper's un-analyzed dependency
        // case), so performance is transfer-bound.
        cycles_per_element =
            (reads_per_element + 1.0) * options.offchip_access_cycles /
            std::max(1, options.parallel_elements);
    }
    est.cycles_per_element = cycles_per_element;

    const double elements = static_cast<double>(frame_width) * frame_height;
    const double cycles_per_frame = elements * cycles_per_element * iterations;
    est.seconds_per_frame = cycles_per_frame / (est.f_max_mhz * 1e6);
    est.fps = est.seconds_per_frame > 0 ? 1.0 / est.seconds_per_frame : 0.0;
    return est;
}

}  // namespace islhls
