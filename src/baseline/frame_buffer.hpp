// The classic two-frame-buffer ISL architecture ([1][2][3] in the paper):
// compute fi completely, store it, then compute fi+1 from it. When the frame
// does not fit on chip (the realistic case the paper argues from), every
// element access goes to external memory and performance collapses.
//
// This model is the reference point for the paper's claim that cone
// architectures decouple on-chip memory from frame size.
#pragma once

#include "backend/fixed_point.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/device.hpp"

namespace islhls {

struct Frame_buffer_options {
    Fixed_format format;        // datapath format of the processing element
    // Buffer element width: generic tools keep the C type (float = 32 bits),
    // they do not quantize the frames the way the cone flow does.
    double buffer_bits_per_element = 32.0;
    int parallel_elements = 1;  // elements computed concurrently
    double offchip_access_cycles = 6.0;  // per random external word
};

struct Frame_buffer_estimate {
    bool frame_fits_onchip = false;
    double onchip_kbits_needed = 0.0;
    double seconds_per_frame = 0.0;
    double fps = 0.0;
    double f_max_mhz = 0.0;
    double cycles_per_element = 0.0;
};

// Estimates the two-buffer architecture for `step` iterated `iterations`
// times over a frame of the given size on `device`.
Frame_buffer_estimate estimate_frame_buffer(const Stencil_step& step, int iterations,
                                            int frame_width, int frame_height,
                                            const Fpga_device& device,
                                            const Frame_buffer_options& options = {});

}  // namespace islhls
