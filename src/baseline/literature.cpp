#include "baseline/literature.hpp"

#include <algorithm>

namespace islhls {

const std::vector<Literature_point>& literature_points() {
    static const std::vector<Literature_point> points = {
        {"[16] Cope 2006", "hand-written 20-iteration 3x3 convolution",
         "Virtex-II Pro", "convolution 1024x768", 13.5, false},
        {"[16] Cope 2006", "hand-written 20-iteration 3x3 convolution",
         "Virtex-II Pro", "convolution 1920x1080", 4.9, false},
        {"[19] Akin 2011", "hand-optimized Chambolle (months of design work)",
         "Virtex-6", "chambolle 1024x768", 38.0, true},
        {"[19] Akin 2011", "hand-optimized Chambolle (months of design work)",
         "Virtex-6", "chambolle 512x512", 99.0, true},
        {"[3] Pock 2007", "TV-L1 optical flow (GPU-oriented, no ISL parallelism)",
         "GPU/CPU", "chambolle 512x512", 25.0, false},
        {"[22] Zach 2007", "duality-based TV-L1 realtime attempt",
         "GPU", "chambolle 512x512", 28.0, false},
        {"[23] Weishaupt 2010", "tracking/structure-from-motion implementation",
         "CPU", "chambolle 512x512", 12.0, false},
    };
    return points;
}

std::vector<Literature_point> literature_for(const std::string& keyword) {
    std::vector<Literature_point> out;
    for (const Literature_point& p : literature_points()) {
        if (p.workload.find(keyword) != std::string::npos) out.push_back(p);
    }
    return out;
}

}  // namespace islhls
