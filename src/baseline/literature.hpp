// Published reference points the paper compares against (Secs. 4.1, 4.2).
// These are constants from the cited works, kept verbatim so the benches can
// print the same comparison rows.
#pragma once

#include <string>
#include <vector>

namespace islhls {

struct Literature_point {
    std::string citation;   // e.g. "[16] Cope 2006"
    std::string system;     // short description
    std::string device;     // FPGA used by the cited work
    std::string workload;   // algorithm + frame size
    double fps = 0.0;       // published frame rate
    bool real_time = false; // >= 30 fps as the paper's threshold
};

// All reference points mentioned in the paper's experimental section.
const std::vector<Literature_point>& literature_points();

// Reference points for one workload keyword ("convolution" or "chambolle").
std::vector<Literature_point> literature_for(const std::string& keyword);

}  // namespace islhls
