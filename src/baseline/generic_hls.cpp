#include "baseline/generic_hls.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/frame_buffer.hpp"
#include "ir/program.hpp"
#include "support/error.hpp"
#include "support/text.hpp"
#include "synth/synthesizer.hpp"

namespace islhls {

std::string to_string(Hls_directive d) {
    switch (d) {
        case Hls_directive::none: return "none";
        case Hls_directive::unroll_inner: return "unroll_inner";
        case Hls_directive::array_partition: return "array_partition";
        case Hls_directive::pipeline_inner: return "pipeline_inner";
        case Hls_directive::partition_and_pipeline: return "partition_and_pipeline";
        case Hls_directive::loop_merge: return "loop_merge";
        case Hls_directive::flatten_and_pipeline: return "flatten_and_pipeline";
    }
    return "?";
}

Generic_hls_result run_generic_hls(const Stencil_step& step, int iterations,
                                   int frame_width, int frame_height,
                                   const Fpga_device& device, Hls_directive directive,
                                   const Generic_hls_options& options) {
    Generic_hls_result result;
    result.directive = directive;

    const Register_program program = build_program(step.pool(), step.updates());
    Synth_options synth_options;
    synth_options.format = options.format;
    const Synthesis_report pe = synthesize_program(
        program, cat("generic_hls_", to_string(directive)), device, synth_options);
    result.f_max_mhz = pe.f_max_mhz;
    result.lut_count = pe.lut_count;

    // --- failure modes ------------------------------------------------------------
    if (directive == Hls_directive::loop_merge) {
        // Merging the iteration loop with the spatial loops requires f(i+1)
        // elements to be computable before f(i) is complete — the tool's
        // dependence analysis rejects exactly this for ISL kernels.
        result.succeeded = false;
        result.failure =
            "loop merge rejected: carried dependency between iteration i and i+1 "
            "(each output element reads neighbours of the previous frame)";
        return result;
    }
    if (directive == Hls_directive::flatten_and_pipeline) {
        // Flattening N x H x W and pipelining asks the scheduler to hold the
        // whole unrolled dataflow graph: ops_per_element * H * W * N nodes.
        const double nodes = static_cast<double>(program.register_count()) *
                             frame_width * frame_height * iterations;
        const double bytes_per_node = 256.0;  // IR node + scheduling metadata
        const double needed_gb = nodes * bytes_per_node / (1024.0 * 1024.0 * 1024.0);
        if (needed_gb > options.host_memory_gb) {
            result.succeeded = false;
            result.failure = cat("out of memory while scheduling: ~",
                                 format_fixed(needed_gb, 0), " GB needed for ",
                                 format_grouped(static_cast<long long>(nodes)),
                                 " dataflow nodes, host has ",
                                 format_fixed(options.host_memory_gb, 0), " GB");
            return result;
        }
    }

    // --- performance of the succeeding configurations --------------------------------
    // All of them keep the two-frame-buffer structure; directives change the
    // inner-loop issue rate only.
    Frame_buffer_options fb;
    fb.format = options.format;
    const Frame_buffer_estimate base = estimate_frame_buffer(
        step, iterations, frame_width, frame_height, device, fb);

    double speedup = 1.0;
    switch (directive) {
        case Hls_directive::none:
            speedup = 1.0;
            break;
        case Hls_directive::unroll_inner:
            // Unrolling without partitioning fights over the two BRAM ports /
            // the external bus; modest gain.
            speedup = base.frame_fits_onchip ? 1.5 : 1.2;
            break;
        case Hls_directive::array_partition:
            // More banks help only the on-chip case.
            speedup = base.frame_fits_onchip ? options.partition_banks / 2.0 : 1.3;
            break;
        case Hls_directive::pipeline_inner:
            speedup = base.frame_fits_onchip ? 2.0 : 1.4;
            break;
        case Hls_directive::partition_and_pipeline:
            speedup = base.frame_fits_onchip
                          ? options.partition_banks
                          : 1.6;  // external accesses still serialize
            break;
        case Hls_directive::flatten_and_pipeline:
            speedup = base.frame_fits_onchip ? options.partition_banks : 1.6;
            break;
        case Hls_directive::loop_merge:
            break;  // unreachable
    }
    result.succeeded = true;
    result.seconds_per_frame = base.seconds_per_frame / speedup;
    result.fps = result.seconds_per_frame > 0 ? 1.0 / result.seconds_per_frame : 0.0;
    return result;
}

std::vector<Generic_hls_result> run_generic_hls_menu(
    const Stencil_step& step, int iterations, int frame_width, int frame_height,
    const Fpga_device& device, const Generic_hls_options& options) {
    std::vector<Generic_hls_result> menu;
    for (Hls_directive d :
         {Hls_directive::none, Hls_directive::unroll_inner, Hls_directive::array_partition,
          Hls_directive::pipeline_inner, Hls_directive::partition_and_pipeline,
          Hls_directive::loop_merge, Hls_directive::flatten_and_pipeline}) {
        menu.push_back(run_generic_hls(step, iterations, frame_width, frame_height,
                                       device, d, options));
    }
    return menu;
}

const Generic_hls_result& best_of(const std::vector<Generic_hls_result>& menu) {
    const Generic_hls_result* best = nullptr;
    for (const Generic_hls_result& r : menu) {
        if (!r.succeeded) continue;
        if (best == nullptr || r.fps > best->fps) best = &r;
    }
    if (best == nullptr) throw Dse_error("no generic HLS configuration succeeded");
    return *best;
}

}  // namespace islhls
