// Model of a generic commercial HLS tool (Vivado HLS / Synphony C style)
// applied to an ISL kernel, reproducing Sec. 4.3 of the paper.
//
// Such tools optimize one loop nest at a time with a fixed menu of
// transformations and do not restructure computation across ISL iterations.
// The model implements the menu and the paper's observed failure modes:
//   - loop merging is rejected because of the inter-iteration dependency;
//   - full flattening + pipelining explodes the internal representation
//     (the paper saw out-of-memory on a 16 GB machine);
//   - everything else degenerates to the two-frame-buffer architecture,
//     off-chip bound for realistic frames.
#pragma once

#include <string>
#include <vector>

#include "backend/fixed_point.hpp"
#include "symexec/stencil_step.hpp"
#include "synth/device.hpp"

namespace islhls {

enum class Hls_directive {
    none,              // as-written code
    unroll_inner,      // partial unroll of the x loop
    array_partition,   // cyclic partitioning of the frame buffers
    pipeline_inner,    // pipeline the x loop
    partition_and_pipeline,
    loop_merge,        // merge the iteration loop into the spatial nest
    flatten_and_pipeline,  // flatten all loops, pipeline the body
};

std::string to_string(Hls_directive d);

struct Generic_hls_result {
    Hls_directive directive = Hls_directive::none;
    bool succeeded = false;
    std::string failure;  // tool diagnostic when !succeeded
    double fps = 0.0;
    double seconds_per_frame = 0.0;
    double lut_count = 0.0;
    double f_max_mhz = 0.0;
};

struct Generic_hls_options {
    Fixed_format format;
    int unroll_factor = 8;
    int partition_banks = 8;
    double host_memory_gb = 16.0;  // machine running the HLS tool
};

// Runs one directive configuration through the model.
Generic_hls_result run_generic_hls(const Stencil_step& step, int iterations,
                                   int frame_width, int frame_height,
                                   const Fpga_device& device, Hls_directive directive,
                                   const Generic_hls_options& options = {});

// Runs the full menu (the exploration a user of such tools would do) and
// returns every configuration's outcome.
std::vector<Generic_hls_result> run_generic_hls_menu(
    const Stencil_step& step, int iterations, int frame_width, int frame_height,
    const Fpga_device& device, const Generic_hls_options& options = {});

// The best succeeded configuration of a menu run (throws Dse_error if none).
const Generic_hls_result& best_of(const std::vector<Generic_hls_result>& menu);

}  // namespace islhls
