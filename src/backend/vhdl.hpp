// Synthesizable VHDL generation for cones and cone architectures.
//
// The emitter lowers a cone's register program to an entity with one
// pipeline register per operation (the paper's "slim VHDL code with a high
// degree of resource reuse" — Sec. 3.2): repeated sub-operations exist once
// and every consumer reads the same signal. Division and square root are
// instantiated from a small support package whose behavioral entities any
// synthesis tool can map.
#pragma once

#include <string>

#include "backend/fixed_point.hpp"
#include "cone/cone.hpp"

namespace islhls {

struct Vhdl_options {
    Fixed_format format;
    std::string entity_prefix = "islhls";
    bool include_assertions = true;  // emit synthesis-time sanity comments
};

// VHDL identifier for a cone entity, e.g. "islhls_igf_w4x4_d2".
std::string cone_entity_name(const std::string& kernel_name, const Cone_spec& spec,
                             const Vhdl_options& options = {});

// Support package: fixed-point divider / square root entities shared by all
// generated cones. Emit once per output library.
std::string emit_support_package(const Vhdl_options& options = {});

// The cone datapath entity (flattened input/output vectors, one register per
// operation, ASAP pipeline levels).
std::string emit_cone(const Cone& cone, const std::string& kernel_name,
                      const Vhdl_options& options = {});

// A self-checking testbench driving the cone entity with the given quantized
// input stimulus and asserting the expected outputs (computed by the caller,
// typically via the fixed-point simulator).
std::string emit_cone_testbench(const Cone& cone, const std::string& kernel_name,
                                const std::vector<double>& stimulus,
                                const std::vector<double>& expected,
                                const Vhdl_options& options = {});

// Structural summary parsed back out of emitted VHDL (used by tests to check
// emitter invariants without a VHDL simulator).
struct Vhdl_structure {
    int register_assignments = 0;  // "<=" inside the clocked process
    int input_bits = 0;
    int output_bits = 0;
    int divider_instances = 0;
    int sqrt_instances = 0;
};
Vhdl_structure analyze_vhdl(const std::string& vhdl_text);

}  // namespace islhls
