#include "backend/fixed_point.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

double Fixed_format::scale() const { return std::ldexp(1.0, frac_bits); }

double Fixed_format::max_value() const {
    return (std::ldexp(1.0, total_bits() - 1) - 1.0) / scale();
}

double Fixed_format::min_value() const {
    return -std::ldexp(1.0, total_bits() - 1) / scale();
}

double Fixed_format::resolution() const { return 1.0 / scale(); }

std::string to_string(const Fixed_format& fmt) {
    return cat("Q", fmt.integer_bits, ".", fmt.frac_bits);
}

double quantize(double value, const Fixed_format& fmt) {
    return from_raw(to_raw(value, fmt), fmt);
}

std::int64_t to_raw(double value, const Fixed_format& fmt) {
    check_internal(fmt.total_bits() >= 2 && fmt.total_bits() <= 62,
                   "fixed format must have 2..62 bits");
    const double scaled = std::nearbyint(value * fmt.scale());
    const double hi = std::ldexp(1.0, fmt.total_bits() - 1) - 1.0;
    const double lo = -std::ldexp(1.0, fmt.total_bits() - 1);
    if (scaled > hi) return static_cast<std::int64_t>(hi);
    if (scaled < lo) return static_cast<std::int64_t>(lo);
    return static_cast<std::int64_t>(scaled);
}

double from_raw(std::int64_t raw, const Fixed_format& fmt) {
    return static_cast<double>(raw) / fmt.scale();
}

}  // namespace islhls
