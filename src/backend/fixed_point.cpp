#include "backend/fixed_point.hpp"

#include <cmath>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

double Fixed_format::scale() const { return std::ldexp(1.0, frac_bits); }

double Fixed_format::max_value() const {
    return (std::ldexp(1.0, total_bits() - 1) - 1.0) / scale();
}

double Fixed_format::min_value() const {
    return -std::ldexp(1.0, total_bits() - 1) / scale();
}

double Fixed_format::resolution() const { return 1.0 / scale(); }

std::string to_string(const Fixed_format& fmt) {
    return cat("Q", fmt.integer_bits, ".", fmt.frac_bits);
}

double quantize(double value, const Fixed_format& fmt) {
    return from_raw(to_raw(value, fmt), fmt);
}

std::int64_t to_raw(double value, const Fixed_format& fmt) {
    return Raw_quantizer(fmt)(value);
}

Raw_quantizer::Raw_quantizer(const Fixed_format& fmt) {
    check_internal(fmt.total_bits() >= 2 && fmt.total_bits() <= 62,
                   "fixed format must have 2..62 bits");
    scale_ = fmt.scale();
    hi_ = std::ldexp(1.0, fmt.total_bits() - 1) - 1.0;
    lo_ = -std::ldexp(1.0, fmt.total_bits() - 1);
    hi_raw_ = static_cast<std::int64_t>(hi_);
    lo_raw_ = static_cast<std::int64_t>(lo_);
}

double from_raw(std::int64_t raw, const Fixed_format& fmt) {
    return static_cast<double>(raw) / fmt.scale();
}

Bit_wrap::Bit_wrap(int bits) : bits_(bits) {
    check_internal(bits >= 2 && bits <= 62, "Bit_wrap supports 2..62 bits");
    mask_ = (std::uint64_t{1} << bits) - 1;
    sign_ = std::uint64_t{1} << (bits - 1);
}

std::int64_t wrap_to_bits(std::int64_t v, int bits) { return Bit_wrap(bits)(v); }

std::int64_t isqrt_floor(std::int64_t v) {
    if (v <= 0) return 0;
    std::int64_t x = v;
    std::int64_t y = (x + 1) / 2;
    while (y < x) {
        x = y;
        y = (x + v / x) / 2;
    }
    return x;
}

}  // namespace islhls
