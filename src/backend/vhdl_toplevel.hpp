// Top-level architecture emitter: the complete hardware implementation the
// flow outputs (right edge of the paper's Fig. 2).
//
// For an architecture instance (output window, level depths) the emitter
// produces one entity that:
//   - streams the initial input coverage in through a word-wide port into a
//     double-buffered on-chip input memory,
//   - sequences the levels deep-first, running the instantiated cone
//     entity(ies) over the sub-tiles of each level's coverage (the Fig. 3
//     schedule: "cone A executed four times"),
//   - streams the output window back out.
// One cone entity per depth class is instantiated; the sequencer multiplexes
// sub-tile inputs onto it, which mirrors the paper's feasibility rule ("at
// least one cone of each depth").
//
// The generated VHDL is self-contained apart from the cone entities and the
// support package (emit_cone / emit_support_package).
#pragma once

#include "backend/vhdl.hpp"
#include "dse/architecture.hpp"
#include "dse/cone_library.hpp"

namespace islhls {

// Entity name, e.g. "islhls_igf_top_w4_l2x5" (window 4, levels 2,5).
std::string toplevel_entity_name(const std::string& kernel_name,
                                 const Arch_instance& instance,
                                 const Vhdl_options& options = {});

// Emits the top-level entity. The instance's level structure must be valid
// (positive window, at least one level). Cones are built through `library`.
std::string emit_architecture_toplevel(Cone_library& library,
                                       const Arch_instance& instance,
                                       const Vhdl_options& options = {});

// Structural facts parsed back from the emitted top level (for tests).
struct Toplevel_structure {
    int cone_instances = 0;      // one per depth class
    int buffer_declarations = 0; // level/input/output memories
    int fsm_states = 0;
    bool has_stream_in = false;
    bool has_stream_out = false;
};
Toplevel_structure analyze_toplevel(const std::string& vhdl_text);

}  // namespace islhls
