// Fixed-point number formats for the generated hardware.
//
// The VHDL backend and the virtual synthesizer agree on a signed Qm.f format
// (m integer bits including sign, f fraction bits). The simulator can run
// cones under quantization to measure the accuracy cost of a format choice.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace islhls {

struct Fixed_format {
    int integer_bits = 10;  // includes the sign bit
    int frac_bits = 6;

    int total_bits() const { return integer_bits + frac_bits; }
    double scale() const;        // 2^frac_bits
    double max_value() const;    // largest representable value
    double min_value() const;    // smallest (most negative) representable value
    double resolution() const;   // value of one LSB

    bool operator==(const Fixed_format&) const = default;
};

std::string to_string(const Fixed_format& fmt);

// Rounds to the nearest representable value, saturating at the range ends.
double quantize(double value, const Fixed_format& fmt);

// Raw two's-complement integer for `value` (saturating).
std::int64_t to_raw(double value, const Fixed_format& fmt);

// Value of a raw integer in the format.
double from_raw(std::int64_t raw, const Fixed_format& fmt);

// Raw conversion with the format constants (scale, saturation bounds)
// resolved once, for loops that quantize whole sample buffers: one
// multiply-round-clamp per element instead of recomputing 2^f per call.
// operator() is bit-identical to to_raw (to_raw is implemented over it).
class Raw_quantizer {
public:
    explicit Raw_quantizer(const Fixed_format& fmt);  // checks 2..62 bits

    std::int64_t operator()(double value) const {
        const double scaled = std::nearbyint(value * scale_);
        if (scaled > hi_) return hi_raw_;
        if (scaled < lo_) return lo_raw_;
        return static_cast<std::int64_t>(scaled);
    }

private:
    double scale_ = 1.0;
    double hi_ = 0.0;
    double lo_ = 0.0;
    std::int64_t hi_raw_ = 0;
    std::int64_t lo_raw_ = 0;
};

// Precomputed wrap-around resize to one bit width (VHDL resize semantics).
// The width is validated once at construction; operator() is branch-light so
// the fixed-point tape loops can wrap every element without a per-call range
// check (wrap_to_bits below is the checked one-shot form).
class Bit_wrap {
public:
    explicit Bit_wrap(int bits);  // requires 2 <= bits <= 62

    int bits() const { return bits_; }

    std::int64_t operator()(std::int64_t v) const {
        // Branchless sign extension ((u ^ sign) - sign flips the sign bit
        // into a borrow), so wrapped operations stay one straight-line
        // expression inside the vectorized tape loops.
        const std::uint64_t u = static_cast<std::uint64_t>(v) & mask_;
        return static_cast<std::int64_t>((u ^ sign_) - sign_);
    }

private:
    int bits_ = 2;
    std::uint64_t mask_ = 0;
    std::uint64_t sign_ = 0;
};

// Wraps `v` into the two's-complement range of `bits` (VHDL resize semantics).
std::int64_t wrap_to_bits(std::int64_t v, int bits);

// Floor integer square root of a non-negative value.
std::int64_t isqrt_floor(std::int64_t v);

}  // namespace islhls
