// Fixed-point number formats for the generated hardware.
//
// The VHDL backend and the virtual synthesizer agree on a signed Qm.f format
// (m integer bits including sign, f fraction bits). The simulator can run
// cones under quantization to measure the accuracy cost of a format choice.
#pragma once

#include <cstdint>
#include <string>

namespace islhls {

struct Fixed_format {
    int integer_bits = 10;  // includes the sign bit
    int frac_bits = 6;

    int total_bits() const { return integer_bits + frac_bits; }
    double scale() const;        // 2^frac_bits
    double max_value() const;    // largest representable value
    double min_value() const;    // smallest (most negative) representable value
    double resolution() const;   // value of one LSB

    bool operator==(const Fixed_format&) const = default;
};

std::string to_string(const Fixed_format& fmt);

// Rounds to the nearest representable value, saturating at the range ends.
double quantize(double value, const Fixed_format& fmt);

// Raw two's-complement integer for `value` (saturating).
std::int64_t to_raw(double value, const Fixed_format& fmt);

// Value of a raw integer in the format.
double from_raw(std::int64_t raw, const Fixed_format& fmt);

}  // namespace islhls
