// Cones: hardware modules computing a window of iteration i+depth directly
// from iteration i (Sec. 3.1/3.2 of the paper).
//
// A cone of depth d and output window w x h evaluates, for every state field
// and every element of the window, the composition of d applications of the
// stencil step. Construction unrolls the dependencies level by level through
// memoized substitution into the shared expression pool: a value needed by
// several consumers (Fig. 4's shared diagonal reads) is created once and
// referenced many times, which is exactly the register-reuse scheme the
// paper uses to keep the generated VHDL slim.
#pragma once

#include <string>
#include <vector>

#include "grid/tile.hpp"
#include "ir/analysis.hpp"
#include "ir/program.hpp"
#include "symexec/stencil_step.hpp"

namespace islhls {

// Geometry of a cone: output window size and number of iterations fused.
struct Cone_spec {
    int window_width = 1;
    int window_height = 1;
    int depth = 1;

    long long output_elements_per_field() const {
        return static_cast<long long>(window_width) * window_height;
    }
    bool operator==(const Cone_spec&) const = default;
};

std::string to_string(const Cone_spec& spec);

// Aggregate numbers the estimators consume.
struct Cone_stats {
    Cone_spec spec;
    int register_count = 0;    // operation nodes == pipeline registers (Reg_i)
    int input_count = 0;       // distinct input elements (on-chip reads)
    int output_count = 0;      // state_fields * window elements
    int pipeline_depth = 0;    // levelized DAG depth
    Op_census census;          // per-kind operation counts
    Window input_window;       // bounding box of inputs incl. halo
    double naive_operation_count = 0.0;  // tree-expanded op count (no reuse)

    // How many raw operations each materialized register replaces on average;
    // > 1 whenever the unrolled dependencies overlap.
    double reuse_factor() const {
        return register_count > 0 ? naive_operation_count / register_count : 1.0;
    }
};

// A built cone. Shares (and extends) the Stencil_step's expression pool; the
// step must outlive the cone.
class Cone {
public:
    // Builds the cone for `spec` over the given stencil. Throws on
    // non-positive geometry.
    Cone(Stencil_step& step, const Cone_spec& spec);

    const Cone_spec& spec() const { return spec_; }
    const Stencil_step& step() const { return *step_; }

    // Output roots: field-major, then row-major inside the window
    // (field 0 row 0 col 0, field 0 row 0 col 1, ...).
    const std::vector<Expr_id>& outputs() const { return outputs_; }
    int output_index(int state_field, int x, int y) const;

    // Lowered register program (drives VHDL, synthesis costing, simulation).
    const Register_program& program() const { return program_; }

    const Cone_stats& stats() const { return stats_; }

    // Input bounding box relative to the output window origin; equals the
    // output window inflated by depth repetitions of the stencil footprint.
    const Window& input_window() const { return stats_.input_window; }

private:
    Stencil_step* step_;
    Cone_spec spec_;
    std::vector<Expr_id> outputs_;
    Register_program program_;
    Cone_stats stats_;
};

}  // namespace islhls
