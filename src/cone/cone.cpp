#include "cone/cone.hpp"

#include <map>
#include <tuple>
#include <unordered_map>

#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

std::string to_string(const Cone_spec& spec) {
    return cat("cone(", spec.window_width, "x", spec.window_height, ", depth ",
               spec.depth, ")");
}

namespace {

// Builds the value of every requested (field, level, position) through
// memoized substitution.
class Cone_builder {
public:
    Cone_builder(Stencil_step& step) : step_(step) {}

    // Value of state field `s` (state position) at unrolling level `level`
    // (level 0 = cone input), at position (x, y) relative to the window origin.
    Expr_id value(int s, int level, int x, int y) {
        if (level == 0) {
            const int field = step_.pool().find_field(step_.state_fields()[s]);
            return step_.pool().input(field, x, y);
        }
        const Key key{s, level, x, y};
        if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

        const Expr_id root = step_.update(s);
        const Expr_id result = transform_inputs(
            step_.pool(), root, [&](const Expr_node& leaf) -> Expr_id {
                const int state_pos = step_.state_position(leaf.field);
                if (state_pos >= 0) {
                    return value(state_pos, level - 1, x + leaf.dx, y + leaf.dy);
                }
                // Constant (iteration-invariant) field: always read from the
                // cone input window, whatever the level.
                return step_.pool().input(leaf.field, x + leaf.dx, y + leaf.dy);
            });
        memo_.emplace(key, result);
        return result;
    }

private:
    using Key = std::tuple<int, int, int, int>;
    struct Key_hash {
        std::size_t operator()(const Key& k) const {
            const auto [a, b, c, d] = k;
            std::size_t h = static_cast<std::size_t>(a) * 1000003u;
            h ^= static_cast<std::size_t>(b) * 10007u;
            h ^= static_cast<std::size_t>(c + 4096) * 131u;
            h ^= static_cast<std::size_t>(d + 4096);
            return h;
        }
    };

    Stencil_step& step_;
    std::unordered_map<Key, Expr_id, Key_hash> memo_;
};

// Tree-expanded operation count: what symbolic execution without register
// reuse would have materialized. Computed per DAG node by dynamic
// programming, then summed over the roots (no sharing between roots either).
double naive_ops(const Expr_pool& pool, const std::vector<Expr_id>& roots) {
    std::unordered_map<Expr_id, double> memo;
    double total = 0.0;
    for (Expr_id root : roots) {
        // Depth-first with explicit stack; per-node cost = 1 + sum(children).
        std::vector<std::pair<Expr_id, bool>> stack{{root, false}};
        while (!stack.empty()) {
            auto [id, expanded] = stack.back();
            stack.pop_back();
            if (memo.count(id) != 0) continue;
            const Expr_node& n = pool.node(id);
            if (!expanded) {
                stack.push_back({id, true});
                for (int i = 0; i < n.arg_count(); ++i) {
                    stack.push_back({n.args[static_cast<std::size_t>(i)], false});
                }
            } else {
                double cost = is_operation(n.kind) ? 1.0 : 0.0;
                for (int i = 0; i < n.arg_count(); ++i) {
                    cost += memo.at(n.args[static_cast<std::size_t>(i)]);
                }
                memo.emplace(id, cost);
            }
        }
        total += memo.at(root);
    }
    return total;
}

}  // namespace

Cone::Cone(Stencil_step& step, const Cone_spec& spec) : step_(&step), spec_(spec) {
    check_internal(spec.window_width >= 1 && spec.window_height >= 1 && spec.depth >= 1,
                   cat("invalid ", to_string(spec)));

    Cone_builder builder(step);
    const int fields = step.state_field_count();
    outputs_.reserve(static_cast<std::size_t>(fields) * spec.window_width *
                     spec.window_height);
    for (int s = 0; s < fields; ++s) {
        for (int y = 0; y < spec.window_height; ++y) {
            for (int x = 0; x < spec.window_width; ++x) {
                outputs_.push_back(builder.value(s, spec.depth, x, y));
            }
        }
    }

    program_ = build_program(step.pool(), outputs_);

    stats_.spec = spec;
    stats_.register_count = program_.register_count();
    stats_.input_count = program_.input_count();
    stats_.output_count = static_cast<int>(outputs_.size());
    stats_.pipeline_depth = program_.depth();
    stats_.census = count_ops(step.pool(), outputs_);
    stats_.input_window = input_window_for(
        Window{0, 0, spec.window_width, spec.window_height}, step.footprint(),
        spec.depth);
    stats_.naive_operation_count = naive_ops(step.pool(), outputs_);
}

int Cone::output_index(int state_field, int x, int y) const {
    check_internal(state_field >= 0 && state_field < step_->state_field_count(),
                   "output_index: bad field");
    check_internal(x >= 0 && x < spec_.window_width && y >= 0 &&
                       y < spec_.window_height,
                   "output_index: bad position");
    return (state_field * spec_.window_height + y) * spec_.window_width + x;
}

}  // namespace islhls
