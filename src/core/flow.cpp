#include "core/flow.hpp"

#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "ir/print.hpp"
#include "support/error.hpp"
#include "support/text.hpp"

namespace islhls {

Hls_flow Hls_flow::from_source(const std::string& c_source, const Flow_options& options) {
    const Function_ast fn = parse_single_function(c_source);
    const Kernel_info info = analyze_kernel(fn);
    Stencil_step step = execute_symbolically(fn, info, options.symexec);
    return Hls_flow(std::move(step), info.kernel_name, options);
}

Hls_flow Hls_flow::from_kernel(const Kernel_def& kernel, const Flow_options& options) {
    const Function_ast fn = parse_single_function(kernel.c_source);
    const Kernel_info info = analyze_kernel(fn);
    Stencil_step step = execute_symbolically(fn, info, options.symexec);
    return Hls_flow(std::move(step), kernel.name, options);
}

Hls_flow::Hls_flow(Stencil_step step, std::string kernel_name,
                   const Flow_options& options)
    : options_(options), kernel_name_(std::move(kernel_name)) {
    library_ = std::make_unique<Cone_library>(std::move(step), kernel_name_);

    Evaluator_options evaluator_options;
    evaluator_options.frame_width = options_.frame_width;
    evaluator_options.frame_height = options_.frame_height;
    evaluator_options.format = options_.format;
    evaluator_options.synth.format = options_.format;
    evaluator_options.throughput = options_.throughput;
    evaluator_options.calibration_windows = options_.calibration_windows;

    // Flow_options::iterations is the authoritative iteration count; the copy
    // inside Space_options exists only so the Explorer reads one struct.
    // Overwrite it in the stored options too, so the two can never diverge.
    options_.space.iterations = options_.iterations;

    explorer_ = std::make_unique<Explorer>(*library_, device_by_name(options_.device),
                                           evaluator_options, options_.space);
    check_internal(explorer_->space().iterations == options_.iterations,
                   "Space_options::iterations diverged from Flow_options::iterations");
}

const Fpga_device& Hls_flow::device() const { return device_by_name(options_.device); }

std::string Hls_flow::generate_vhdl(int window, int depth) {
    Vhdl_options vhdl;
    vhdl.format = options_.format;
    return emit_cone(library_->cone(window, depth), kernel_name_, vhdl);
}

std::string Hls_flow::support_package() const {
    Vhdl_options vhdl;
    vhdl.format = options_.format;
    return emit_support_package(vhdl);
}

Explorer::Pareto_result Hls_flow::pareto() { return explorer_->explore_pareto(); }

Explorer::Fit_result Hls_flow::device_fit() { return explorer_->fit_device(); }

Explorer::Area_validation Hls_flow::area_validation() {
    return explorer_->validate_area_model();
}

std::string Hls_flow::describe() {
    const Stencil_step& step = library_->step();
    std::string out = cat("kernel '", kernel_name_, "': ",
                          step.state_field_count(), " state field(s), ",
                          step.const_fields().size(), " constant field(s)\n");
    out += cat("single-step footprint ", to_string(step.footprint()), "\n");
    for (int i = 0; i < step.state_field_count(); ++i) {
        out += cat("  ", step.state_fields()[static_cast<std::size_t>(i)],
                   "' = ", to_infix(step.pool(), step.update(i)), "\n");
    }
    const Cone_stats& example = library_->stats(4, 2);
    out += cat("example ", to_string(example.spec), ": ", example.register_count,
               " registers, ", example.input_count, " inputs, reuse factor ",
               format_fixed(example.reuse_factor(), 2), "\n");
    return out;
}

}  // namespace islhls
